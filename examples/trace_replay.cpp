/**
 * @file
 * Example: replay a request trace file against any deployment — the
 * library equivalent of the paper's artifact workflow (Appendix A: replay
 * the cleaned Azure/Mooncake traces and compare parallelisms).
 *
 * Usage:
 *   trace_replay --trace my.csv --model Llama-70B --strategy shift
 *   trace_replay --synthetic azure --strategy tp      # built-in generator
 *   trace_replay --synthetic mooncake --save out.csv  # export a trace
 *
 * Trace format: CSV with header `arrival_s,prompt_tokens,output_tokens`.
 */

#include <cstdio>

#include "core/deployment.h"
#include "core/report.h"
#include "model/presets.h"
#include "util/argparse.h"
#include "util/logging.h"
#include "workload/azure_trace.h"
#include "workload/characterize.h"
#include "workload/mooncake_trace.h"
#include "workload/trace_io.h"

using namespace shiftpar;

namespace {

model::ModelConfig
model_by_name(const std::string& name)
{
    for (const auto& m : model::table4_models())
        if (m.name == name)
            return m;
    fatal("unknown model '" + name +
          "' (expected one of: Llama-70B, Qwen-32B, Llama-17B-16E, "
          "Qwen-30B-A3B)");
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Replay a request trace against a simulated deployment");
    args.add_string("trace", "", "trace CSV to replay (see header docs)");
    args.add_string("synthetic", "azure",
                    "built-in generator when --trace is empty: "
                    "azure | mooncake");
    args.add_string("save", "", "write the workload to this CSV and exit");
    args.add_string("model", "Llama-70B", "model preset name");
    args.add_string("strategy", "shift", "dp | tp | sp | shift");
    args.add_int("seed", 2026, "generator seed");
    args.add_double("duration", 300.0, "synthetic trace duration, seconds");
    if (!args.parse(argc, argv))
        return 0;

    // ---- Obtain the workload ---------------------------------------------
    std::vector<engine::RequestSpec> reqs;
    if (!args.get_string("trace").empty()) {
        reqs = workload::load_trace(args.get_string("trace"));
    } else {
        Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
        if (args.get_string("synthetic") == "azure") {
            workload::AzureTraceOptions opts;
            opts.duration = args.get_double("duration");
            reqs = workload::azure_code_trace(rng, opts);
        } else if (args.get_string("synthetic") == "mooncake") {
            workload::MooncakeTraceOptions opts;
            opts.duration = args.get_double("duration");
            reqs = workload::mooncake_conversation_trace(rng, opts);
        } else {
            fatal("unknown --synthetic generator '" +
                  args.get_string("synthetic") + "'");
        }
    }
    if (!args.get_string("save").empty()) {
        workload::save_trace(args.get_string("save"), reqs);
        std::printf("wrote %zu requests to %s\n", reqs.size(),
                    args.get_string("save").c_str());
        return 0;
    }

    // ---- Replay ------------------------------------------------------------
    core::Deployment d;
    d.model = model_by_name(args.get_string("model"));
    d.strategy = parallel::parse_strategy(args.get_string("strategy"));
    const auto resolved = core::resolve(d);

    std::printf("workload: %s",
                workload::describe(workload::characterize(reqs)).c_str());
    const auto met = core::run_deployment(d, reqs);

    core::ReportOptions ropts;
    ropts.timeline = true;
    ropts.slo = engine::SloSpec{2.0, 0.05};
    std::printf("%s", core::format_report(resolved, met, ropts).c_str());
    return 0;
}
