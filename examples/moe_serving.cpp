/**
 * @file
 * Example: serving a mixture-of-experts model with Shift Parallelism and
 * the SP x EP extension (Section 4.6).
 *
 * Qwen-30B-A3B has 128 experts, only 4 KV heads, and 3B active
 * parameters. Serving it well needs every generalization from the paper:
 * KV-cache replication to reach SP=8, the shift threshold tuned for its
 * MoE cost profile, and — beyond the paper — expert parallelism to stop
 * replicating 27 GB of expert weights on every GPU.
 */

#include <cstdio>

#include "core/deployment.h"
#include "model/presets.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main()
{
    const auto m = model::qwen_30b_a3b();
    std::printf("%s: %d experts (%d active/token), %d KV heads, "
                "%.1fB total / %.1fB active params\n\n",
                m.name.c_str(), m.num_experts, m.active_experts, m.kv_heads,
                m.total_params() / 1e9, m.active_params() / 1e9);

    Rng rng(21);
    const auto workload = workload::make_requests(
        workload::poisson_arrivals(rng, 8.0, 60.0), rng,
        workload::lognormal_size(3000.0, 0.7, 400.0, 0.5));

    Table table({"Deployment", "Weights/GPU (GB)", "KV pool (GB)",
                 "p50 TTFT (ms)", "p50 TPOT (ms)", "Throughput (tok/s)"});
    const auto row = [&](const std::string& name, core::Deployment d) {
        const auto r = core::resolve(d);
        const auto met = core::run_deployment(d, workload);
        table.add_row({name, Table::fmt(to_gb(r.memory.weight_bytes())),
                       Table::fmt(to_gb(r.memory.kv_pool_bytes)),
                       Table::fmt(to_ms(met.ttft().percentile(50))),
                       Table::fmt(to_ms(met.tpot().percentile(50)), 2),
                       Table::fmt_count(static_cast<long long>(
                           met.mean_throughput()))});
    };

    core::Deployment base;
    base.model = m;
    base.strategy = parallel::Strategy::kTp;
    row("TP=8", base);

    base.strategy = parallel::Strategy::kShift;
    row("Shift (KV replication 2x)", base);

    base.ep = 8;
    row("Shift + EP=8 (Sec. 4.6 extension)", base);

    table.print();
    std::printf(
        "\nThe 4-KV-head model reaches SP=8 only through KV replication\n"
        "(Sec. 3.2.1); EP then shards the 128 experts across the node,\n"
        "freeing most weight memory for KV cache at similar latency.\n");
    return 0;
}
