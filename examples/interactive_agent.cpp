/**
 * @file
 * Example: an agentic coding assistant session — the paper's motivating
 * interactive workload (Section 2.1).
 *
 * A coding agent issues a closed loop of requests: it reads the repo
 * (long prompt), proposes an edit (medium output), runs tests, then
 * iterates. Each call's completion time gates the next, so the session's
 * wall-clock is the sum of request completion times — exactly the regime
 * where Shift Parallelism's low TTFT and TPOT compound.
 *
 * The example builds one deployment per strategy, replays the same
 * 12-turn agent session against each, and reports per-turn latency and
 * total session time.
 */

#include <cstdio>
#include <vector>

#include "core/deployment.h"
#include "engine/router.h"
#include "model/presets.h"
#include "util/table.h"
#include "util/units.h"

using namespace shiftpar;

namespace {

/** One agent turn: context grows as the conversation accumulates. */
struct Turn
{
    std::int64_t prompt;
    std::int64_t output;
};

/** A 12-turn agentic session: growing context, alternating edit/test. */
std::vector<Turn>
agent_session()
{
    std::vector<Turn> turns;
    std::int64_t context = 6000;  // initial repo context
    for (int i = 0; i < 12; ++i) {
        const bool edit_turn = i % 2 == 0;
        const std::int64_t output = edit_turn ? 700 : 150;
        turns.push_back({context, output});
        context += output + 900;  // tool results folded into the context
    }
    return turns;
}

/**
 * Replay the session sequentially: each turn is submitted when the
 * previous one completes (closed loop).
 */
double
run_session(const core::Deployment& d, const std::vector<Turn>& turns,
            Table* table, const std::string& name)
{
    auto router = core::build(d);
    double t = 0.0;
    engine::RequestId id = 0;
    for (const auto& turn : turns) {
        router->run_until(t);
        router->submit({t, turn.prompt, turn.output}, id++);
        router->drain();
        const engine::Metrics met = router->merged_metrics();
        const auto& rec = met.requests().back();
        t = rec.arrival + rec.completion;
    }
    const auto met = router->merged_metrics();
    table->add_row({name, Table::fmt(to_ms(met.ttft().mean())),
                    Table::fmt(to_ms(met.tpot().mean()), 1),
                    Table::fmt(met.completion().mean(), 2),
                    Table::fmt(t, 1)});
    return t;
}

} // namespace

int
main()
{
    const auto turns = agent_session();
    std::printf("Agentic coding session: %zu closed-loop turns on "
                "Llama-70B (8xH200)\n\n",
                turns.size());

    Table table({"Strategy", "mean TTFT (ms)", "mean TPOT (ms)",
                 "mean turn (s)", "session total (s)"});
    double shift_total = 0.0;
    double dp_total = 0.0;
    for (parallel::Strategy s :
         {parallel::Strategy::kDp, parallel::Strategy::kTp,
          parallel::Strategy::kSp, parallel::Strategy::kShift}) {
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = s;
        const double total =
            run_session(d, turns, &table, parallel::strategy_name(s));
        if (s == parallel::Strategy::kShift)
            shift_total = total;
        if (s == parallel::Strategy::kDp)
            dp_total = total;
    }
    table.print();
    std::printf(
        "\nThe agent finishes %.1fx faster under Shift than under the\n"
        "throughput-oriented DP deployment, and edges out the TP\n"
        "deployment on latency — while the same node would still absorb\n"
        "batch traffic at near-DP throughput between turns.\n",
        dp_total / shift_total);
    return 0;
}
