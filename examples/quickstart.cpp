/**
 * @file
 * Quickstart: deploy Llama-70B on an 8xH200 node under each parallelism
 * strategy, serve a small mixed workload, and compare TTFT / TPOT /
 * throughput — the library's 60-second tour.
 */

#include <cstdio>

#include "core/deployment.h"
#include "model/presets.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main()
{
    // 1. Pick a model and a node.
    const model::ModelConfig model = model::llama_70b();
    const hw::Node node = hw::h200_node();

    // 2. Make a workload: 60 seconds of Poisson arrivals at 2 req/s with
    //    realistic long-tailed request sizes.
    Rng rng(42);
    const auto workload = workload::make_requests(
        workload::poisson_arrivals(rng, /*rate=*/2.0, /*duration=*/60.0),
        rng, workload::lognormal_size(2000.0, 0.7, 250.0, 0.5));

    // 3. Serve it under each strategy and compare.
    Table table({"Strategy", "Config", "p50 TTFT (ms)", "p50 TPOT (ms)",
                 "p99 completion (s)", "Throughput (tok/s)"});
    for (parallel::Strategy s :
         {parallel::Strategy::kDp, parallel::Strategy::kTp,
          parallel::Strategy::kSp, parallel::Strategy::kShift}) {
        core::Deployment d;
        d.model = model;
        d.node = node;
        d.strategy = s;
        const auto resolved = core::resolve(d);
        const engine::Metrics m = core::run_deployment(d, workload);
        table.add_row({parallel::strategy_name(s),
                       resolved.base.to_string(),
                       Table::fmt(to_ms(m.ttft().median())),
                       Table::fmt(to_ms(m.tpot().median())),
                       Table::fmt(m.completion().percentile(99), 2),
                       Table::fmt_count(static_cast<long long>(
                           m.mean_throughput()))});
    }
    std::printf("Llama-70B on 8xH200, 60 s @ 2 req/s mixed workload\n");
    table.print();
    std::printf("\nShift Parallelism should match the lowest TTFT (SP-like)"
                "\nand the lowest TPOT (TP-like) at once.\n");
    return 0;
}
