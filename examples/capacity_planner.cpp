/**
 * @file
 * Example: capacity planning with the deployment auto-tuner.
 *
 * Given a model and a description of expected traffic, enumerate every
 * valid deployment of an 8xH200 node (all strategies, all (SP, TP)
 * splits, threshold variants), simulate each against a sample of the
 * traffic, and rank them by a weighted objective — the "which config do I
 * ship?" question every Section-4-style evaluation ultimately answers.
 *
 * Usage:
 *   capacity_planner --model Qwen-32B --rate 3 --prompt 4000 --output 400 \
 *                    --ttft-weight 0.5 --throughput-weight 0.5
 */

#include <cstdio>

#include "core/autotuner.h"
#include "model/presets.h"
#include "util/argparse.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    ArgParser args("Rank deployments of a model for your traffic");
    args.add_string("model", "Qwen-32B", "model preset name");
    args.add_double("rate", 3.0, "mean arrival rate, req/s");
    args.add_double("duration", 90.0, "sample duration, seconds");
    args.add_double("prompt", 4000.0, "median prompt tokens");
    args.add_double("output", 400.0, "median output tokens");
    args.add_double("completion-weight", 1.0, "objective: mean completion");
    args.add_double("ttft-weight", 0.0, "objective: p99 TTFT");
    args.add_double("throughput-weight", 0.0, "objective: throughput");
    args.add_bool("sweep-threshold", false, "also sweep shift thresholds");
    args.add_int("seed", 7, "workload seed");
    if (!args.parse(argc, argv))
        return 0;

    model::ModelConfig model;
    bool found = false;
    for (const auto& m : model::table4_models()) {
        if (m.name == args.get_string("model")) {
            model = m;
            found = true;
        }
    }
    if (!found)
        fatal("unknown model '" + args.get_string("model") + "'");

    Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    const auto sample = workload::make_requests(
        workload::poisson_arrivals(rng, args.get_double("rate"),
                                   args.get_double("duration")),
        rng,
        workload::lognormal_size(args.get_double("prompt"), 0.7,
                                 args.get_double("output"), 0.5));

    core::TuneObjective objective;
    objective.completion = args.get_double("completion-weight");
    objective.ttft_p99 = args.get_double("ttft-weight");
    objective.throughput = args.get_double("throughput-weight");
    core::TuneOptions options;
    options.sweep_threshold = args.get_bool("sweep-threshold");

    const core::AutoTuner tuner(model, hw::h200_node());
    const auto ranked = tuner.tune(sample, objective, options);

    std::printf("%s, %.1f req/s (~%.0f median prompt / %.0f output), "
                "%zu candidate deployments\n\n",
                model.name.c_str(), args.get_double("rate"),
                args.get_double("prompt"), args.get_double("output"),
                ranked.size());
    Table table({"#", "Deployment", "Score", "Mean completion (s)",
                 "p99 TTFT (s)", "Throughput (tok/s)"});
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const auto& r = ranked[i];
        table.add_row({std::to_string(i + 1), r.name,
                       Table::fmt(r.score, 3),
                       Table::fmt(r.mean_completion, 2),
                       Table::fmt(r.ttft_p99, 2),
                       Table::fmt_count(
                           static_cast<long long>(r.throughput))});
    }
    table.print();
    std::printf("\nbest: %s — %s\n", ranked.front().name.c_str(),
                ranked.front().resolved.describe().c_str());
    return 0;
}
