/**
 * @file
 * Example: batched document summarization — the paper's motivating batch
 * workload (Section 1: "batched summarization or translation of hundreds
 * or thousands of documents").
 *
 * A burst of document-summarization requests (long inputs, short outputs)
 * lands at once while a trickle of interactive chat requests keeps
 * arriving. The batch job cares about completion of the whole set
 * (throughput); the chat users care about TTFT. The example shows how
 * each deployment trades the two off, and that Shift serves both.
 */

#include <cstdio>

#include "core/deployment.h"
#include "model/presets.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main()
{
    // 600 documents (median 6k tokens) submitted at t = 0 ...
    Rng rng(11);
    auto docs = workload::make_requests(
        std::vector<double>(600, 0.0), rng,
        workload::lognormal_size(6000.0, 0.5, 120.0, 0.3));
    // ... plus chat users arriving at 0.5 req/s throughout.
    const auto chat = workload::make_requests(
        workload::poisson_arrivals(rng, 0.5, 120.0), rng,
        workload::lognormal_size(800.0, 0.5, 250.0, 0.4));
    const std::size_t num_docs = docs.size();
    docs.insert(docs.end(), chat.begin(), chat.end());

    std::printf("Batch summarization: %zu documents + %zu chat requests, "
                "Qwen-32B (8xH200)\n\n",
                num_docs, chat.size());

    Table table({"Strategy", "Batch done (s)", "Batch tok/s",
                 "Chat p50 TTFT (ms)", "Chat p99 TTFT (ms)"});
    for (parallel::Strategy s :
         {parallel::Strategy::kDp, parallel::Strategy::kTp,
          parallel::Strategy::kSp, parallel::Strategy::kShift}) {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = s;
        const auto met = core::run_deployment(d, docs);

        // Separate the two populations by output length (docs <= 200).
        Summary chat_ttft;
        double batch_done = 0.0;
        std::int64_t batch_tokens = 0;
        for (const auto& r : met.requests()) {
            if (r.arrival == 0.0 && r.output_tokens <= 200) {
                batch_done = std::max(batch_done, r.completion);
                batch_tokens += r.prompt_tokens + r.output_tokens;
            } else {
                chat_ttft.add(to_ms(r.ttft));
            }
        }
        table.add_row({parallel::strategy_name(s),
                       Table::fmt(batch_done, 1),
                       Table::fmt_count(static_cast<long long>(
                           static_cast<double>(batch_tokens) / batch_done)),
                       Table::fmt(chat_ttft.percentile(50)),
                       Table::fmt(chat_ttft.percentile(99))});
    }
    table.print();
    std::printf(
        "\nDP finishes the batch fastest but starves chat TTFT; TP serves\n"
        "chat but drags the batch. Shift finishes the batch near DP's pace\n"
        "while keeping chat TTFT near TP's.\n");
    return 0;
}
