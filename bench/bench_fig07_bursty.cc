/**
 * @file
 * Figure 7 + Table 5: the bursty synthetic workload.
 *
 * A steady interactive stream with four high-traffic bursts (Llama-70B,
 * 8xH200). We print the per-bin traffic/throughput timeline (Fig. 7) and
 * the summary statistics (Table 5): median TTFT, median TPOT, and peak
 * throughput per strategy.
 *
 * Paper shape: Shift obtains far lower median TTFT than both (148 ms vs.
 * 1.3-3.9 s), lower TPOT (51 vs. 83-85 ms), and near-DP peak throughput.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/bursty.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 7 / Table 5",
                        "Bursty synthetic workload (Llama-70B, 8xH200)");
    // Burst rate calibrated to the testbed's capacities: ~47k tok/s inside
    // a burst sits above TP's ~41k tok/s ceiling (its queue grows through
    // the burst) but below Shift's ~58k and DP's ~68k (they keep up) —
    // exactly the Table 5 regime.
    Rng rng(2026);
    workload::BurstyOptions opts;
    opts.duration = 400.0;
    opts.base_rate = 1.0;
    opts.num_bursts = 4;
    opts.burst_duration = 20.0;
    opts.burst_rate = 15.0;
    const auto reqs = workload::bursty_workload(rng, opts);
    std::printf("workload: %zu requests over %.0f s, %lld total tokens\n",
                reqs.size(), opts.duration,
                static_cast<long long>(workload::total_tokens(reqs)));

    const auto m = model::llama_70b();
    Table table({"Deployment", "Median TTFT", "Median TPOT",
                 "p99 TTFT", "Peak Throughput"});
    CsvWriter csv(bench::results_path("fig07_table5_bursty.csv"),
                  {"strategy", "median_ttft_ms", "median_tpot_ms",
                   "p99_ttft_ms", "peak_throughput_tok_s"});
    CsvWriter timeline(bench::results_path("fig07_timeline.csv"),
                       {"strategy", "t_s", "throughput_tok_s"});

    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t i) {
        const parallel::Strategy s = strategies[i];
        const auto run = bench::run_strategy(m, s, reqs);
        return bench::SweepCommit([&, s, run] {
            const auto& met = run.metrics;
            const char* label =
                s == parallel::Strategy::kDp ? "vLLM (throughput opt.-DP)"
                : s == parallel::Strategy::kTp ? "vLLM (latency opt.-TP)"
                : s == parallel::Strategy::kSp ? "vLLM+SP (static)"
                                               : "vLLM+Shift Parallelism";
            table.add_row(
                {label, Table::fmt(to_ms(met.ttft().median())) + " ms",
                 Table::fmt(to_ms(met.tpot().median())) + " ms",
                 Table::fmt(to_ms(met.ttft().percentile(99))) + " ms",
                 Table::fmt_count(static_cast<long long>(
                     met.throughput().peak_rate())) +
                     " tok/s"});
            csv.add_row({parallel::strategy_name(s),
                         Table::fmt(to_ms(met.ttft().median()), 2),
                         Table::fmt(to_ms(met.tpot().median()), 2),
                         Table::fmt(to_ms(met.ttft().percentile(99)), 2),
                         Table::fmt(met.throughput().peak_rate(), 0)});
            for (std::size_t b = 0; b < met.throughput().num_bins(); ++b) {
                timeline.add_row(
                    {parallel::strategy_name(s),
                     Table::fmt(met.throughput().bin_start(b), 1),
                     Table::fmt(met.throughput().rate(b), 0)});
            }
        });
    });
    table.print();
    std::printf(
        "\nPaper's Table 5: DP 1,355 ms / 83 ms / 75,535 tok/s; TP 3,930 ms\n"
        "/ 85 ms / 51,162 tok/s; Shift 148 ms / 51 ms / 69,147 tok/s —\n"
        "Shift sustains the bursts with TTFT that does not explode, TPOT\n"
        "below both, and near-DP peak throughput.\n");
    return 0;
}
