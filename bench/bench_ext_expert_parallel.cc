/**
 * @file
 * Extension (Section 4.6 future work): combining SP with Expert
 * Parallelism for the sparse models.
 *
 * The paper leaves SP x EP composition as future work. Our model: EP
 * shards the experts over the group (weight memory and expert streaming
 * drop by EP) at the cost of two routing all-to-alls per MoE layer; the
 * attention and KV cache are untouched, so EP composes with Shift
 * Parallelism's cache invariance unchanged.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (Sec. 4.6)",
                        "Shift Parallelism x Expert Parallelism on the MoE "
                        "models");
    CsvWriter csv(bench::results_path("ext_expert_parallel.csv"),
                  {"model", "ep", "weights_gb_per_gpu", "kv_pool_gb",
                   "ttft_ms", "tpot_ms", "throughput_tok_s"});

    for (const auto& m : {model::llama_17b_16e(), model::qwen_30b_a3b()}) {
        std::printf("\n%s (Shift strategy, EP swept)\n", m.name.c_str());
        Table table({"EP", "Weights/GPU (GB)", "KV pool (GB)", "TTFT (ms)",
                     "TPOT (ms)", "Peak tok/s"});
        std::vector<int> eps;
        for (int ep : {1, 2, 4, 8}) {
            if (m.num_experts % ep == 0)
                eps.push_back(ep);
        }
        bench::run_sweep(eps.size(), [&](std::size_t i) {
            const int ep = eps[i];
            core::Deployment d;
            d.model = m;
            d.strategy = parallel::Strategy::kShift;
            d.ep = ep;
            const auto resolved = core::resolve(d);

            const std::vector<engine::RequestSpec> one = {{0.0, 8192, 128}};
            const std::string series =
                m.name + " ep" + std::to_string(ep);
            const auto lat =
                bench::run_deployment_named(series + " (latency)", d, one)
                    .metrics;
            const auto thr_run =
                bench::run_deployment_named(
                    series + " (throughput)", d,
                    workload::uniform_batch(256, 8192, 250))
                    .metrics;

            return bench::SweepCommit([&, ep, resolved, lat, thr_run] {
                table.add_row(
                    {std::to_string(ep),
                     Table::fmt(to_gb(resolved.memory.weight_bytes())),
                     Table::fmt(to_gb(resolved.memory.kv_pool_bytes)),
                     Table::fmt(to_ms(lat.ttft().mean())),
                     Table::fmt(to_ms(lat.tpot().mean()), 2),
                     Table::fmt_count(static_cast<long long>(
                         thr_run.mean_throughput()))});
                csv.add_row(
                    {m.name, std::to_string(ep),
                     Table::fmt(to_gb(resolved.memory.weight_bytes()), 2),
                     Table::fmt(to_gb(resolved.memory.kv_pool_bytes), 2),
                     Table::fmt(to_ms(lat.ttft().mean()), 2),
                     Table::fmt(to_ms(lat.tpot().mean()), 3),
                     Table::fmt(thr_run.mean_throughput(), 0)});
            });
        });
        table.print();
    }
    std::printf(
        "\nExpected: EP frees weight memory (bigger KV pool) and cuts\n"
        "small-batch TPOT (less expert weight streamed per step) at the\n"
        "cost of routing all-to-alls that show up at high throughput —\n"
        "the SP x EP composition the paper calls for as future work.\n");
    return 0;
}
