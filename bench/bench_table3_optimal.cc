/**
 * @file
 * Table 3: which parallelism is optimal per (metric x traffic) regime.
 *
 * Low traffic = one request at a time; high traffic = saturated batch.
 * For each cell we measure all four strategies and report the winner,
 * regenerating the paper's matrix:
 *
 *              | Low Traffic | High Traffic |
 *   TTFT       | SP          | SP           |
 *   TPOT       | TP          | SP           |
 *   Throughput | SP* or TP   | DP           |
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

namespace {

/** Winner name among a metric map (lower better or higher better). */
std::string
winner(const std::map<std::string, double>& vals, bool lower_better)
{
    std::string best;
    double best_v = lower_better ? 1e300 : -1e300;
    for (const auto& [name, v] : vals) {
        const bool better = lower_better ? v < best_v : v > best_v;
        if (better) {
            best = name;
            best_v = v;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Table 3",
                        "Optimal parallelisms covered by Shift Parallelism "
                        "(Llama-70B; static strategies only)");
    const auto m = model::llama_70b();
    // Shift switches between SP and TP, so the table compares the *static*
    // strategies it covers (plus DP, which it cannot cover — Section 3.3).
    const std::vector<parallel::Strategy> statics = {
        parallel::Strategy::kDp, parallel::Strategy::kTp,
        parallel::Strategy::kSp};

    // ---- Low traffic: one isolated request -------------------------------
    std::map<std::string, double> lo_ttft;
    std::map<std::string, double> lo_tpot;
    std::map<std::string, double> lo_completion;
    bench::run_sweep(statics.size(), [&](std::size_t i) {
        const parallel::Strategy s = statics[i];
        const auto lat = bench::min_latency(m, s, 4096, 250);
        return bench::SweepCommit([&, s, lat] {
            const auto name = parallel::strategy_name(s);
            lo_ttft[name] = lat.ttft;
            lo_tpot[name] = lat.tpot;
            lo_completion[name] = lat.completion;
        });
    });

    // ---- High traffic -----------------------------------------------------
    // Throughput: a deep saturating batch. TTFT/TPOT: a finite burst of
    // *variable-size* requests (production bursts are heterogeneous, which
    // is what exposes DP's head-of-line blocking on TTFT).
    std::map<std::string, double> hi_thr;
    std::map<std::string, double> hi_ttft;
    std::map<std::string, double> hi_tpot;
    Rng rng(7);
    const auto burst = workload::make_requests(
        std::vector<double>(48, 0.0), rng,
        workload::lognormal_size(4096.0, 1.0, 250.0, 0.5));
    // Deep decode concurrency: decode batches above the shift threshold,
    // where SP's per-step advantage shows up in TPOT.
    const auto deep = workload::uniform_batch(2048, 512, 192);
    bench::run_sweep(statics.size(), [&](std::size_t i) {
        const parallel::Strategy s = statics[i];
        const double t = bench::run_strategy(
                             m, s, workload::uniform_batch(512, 4096, 250))
                             .metrics.mean_throughput();
        const double tt =
            bench::run_strategy(m, s, burst).metrics.ttft().median();
        const double tp =
            bench::run_strategy(m, s, deep).metrics.tpot().median();
        return bench::SweepCommit([&, s, t, tt, tp] {
            const auto name = parallel::strategy_name(s);
            hi_thr[name] = t;
            hi_ttft[name] = tt;
            hi_tpot[name] = tp;
        });
    });

    Table table({"Metric", "Low Traffic", "High Traffic"});
    table.add_row({"TTFT", winner(lo_ttft, true), winner(hi_ttft, true)});
    table.add_row({"TPOT", winner(lo_tpot, true), winner(hi_tpot, true)});
    table.add_row({"Throughput", winner(lo_completion, true) + " (compl.)",
                   winner(hi_thr, false)});
    table.print();

    CsvWriter csv(bench::results_path("table3_optimal.csv"),
                  {"metric", "low_traffic_winner", "high_traffic_winner"});
    csv.add_row({"ttft", winner(lo_ttft, true), winner(hi_ttft, true)});
    csv.add_row({"tpot", winner(lo_tpot, true), winner(hi_tpot, true)});
    csv.add_row({"throughput", winner(lo_completion, true),
                 winner(hi_thr, false)});

    std::printf(
        "\nPaper's Table 3: TTFT -> SP/SP; TPOT -> TP (low) / SP (high);\n"
        "Throughput -> SP-or-TP (low) / DP (high). Shift covers every cell\n"
        "except high-traffic DP throughput (parallel attention requires\n"
        "communication).\n");
    return 0;
}
