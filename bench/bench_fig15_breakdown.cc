/**
 * @file
 * Figure 15: end-to-end cost breakdown of a batch workload.
 *
 * For each strategy and input size we run a saturating batch and report
 * the share of step time spent in GEMMs, attention, communication, and
 * engine (vLLM-equivalent) overhead — the same component ablation the
 * paper builds by removing one component at a time.
 *
 * Paper shape: SP (and hence Shift) has a lower communication share than
 * TP; short sequences are dominated by engine overhead (especially on the
 * smaller Qwen model); long sequences are dominated by attention time.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 15",
                        "Cost breakdown of batch workloads");
    CsvWriter csv(bench::results_path("fig15_breakdown.csv"),
                  {"model", "strategy", "input_tokens", "gemm_s",
                   "attention_s", "comm_s", "overhead_s"});

    for (const auto& m : {model::llama_70b(), model::qwen_32b()}) {
        std::printf("\n%s — share of total step time (gemm/attn/comm/engine)\n",
                    m.name.c_str());
        Table table({"Input", "DP", "TP", "SP", "Shift"});
        for (std::int64_t input : {1024LL, 8192LL, 65536LL}) {
            std::vector<std::string> row = {
                Table::fmt_count(static_cast<long long>(input))};
            const int nreq = input >= 65536 ? 48 : 192;
            for (parallel::Strategy s : bench::comparison_strategies()) {
                const auto run = bench::run_strategy(
                    m, s, workload::uniform_batch(nreq, input, 250));
                const auto& c = run.metrics.component_totals();
                const double total = c.total();
                row.push_back(
                    Table::fmt(100.0 * c.gemm / total, 0) + "/" +
                    Table::fmt(100.0 * c.attention / total, 0) + "/" +
                    Table::fmt(100.0 * c.comm / total, 0) + "/" +
                    Table::fmt(100.0 * c.overhead / total, 0) + "%");
                csv.add_row({m.name, parallel::strategy_name(s),
                             std::to_string(input), Table::fmt(c.gemm, 4),
                             Table::fmt(c.attention, 4),
                             Table::fmt(c.comm, 4),
                             Table::fmt(c.overhead, 4)});
            }
            table.add_row(row);
        }
        table.print();
    }
    // ---- The paper's methodology: remove one component at a time ---------
    std::printf("\nComponent-removal ablation (Llama-70B, TP, 8k input):\n");
    Table removal({"System variant", "Batch time (s)", "vs full"});
    const auto timed = [&](const std::string& name,
                           parallel::PerfOptions opts) {
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = parallel::Strategy::kTp;
        d.perf = opts;
        return bench::run_deployment_named(
                   name, d, workload::uniform_batch(192, 8192, 250))
            .metrics.end_time();
    };
    const double full_time = timed("full system", {});
    const auto removal_row = [&](const char* name,
                                 parallel::PerfOptions opts) {
        const double t = timed(name, opts);
        removal.add_row({name, Table::fmt(t, 2),
                         Table::fmt(100.0 * t / full_time, 1) + "%"});
    };
    removal.add_row({"full system", Table::fmt(full_time, 2), "100.0%"});
    {
        parallel::PerfOptions o;
        o.comm_scale = 0.0;
        removal_row("- communication", o);
    }
    {
        parallel::PerfOptions o;
        o.attention_scale = 0.0;
        removal_row("- attention", o);
    }
    {
        parallel::PerfOptions o;
        o.engine_overhead = false;
        removal_row("- engine overhead", o);
    }
    removal.print();

    std::printf(
        "\nPaper's Fig. 15: SP/Shift communicate far less than TP; engine\n"
        "overhead dominates short sequences (worse for the small model);\n"
        "attention dominates long sequences.\n");
    return 0;
}
