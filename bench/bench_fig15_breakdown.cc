/**
 * @file
 * Figure 15: end-to-end cost breakdown of a batch workload.
 *
 * For each strategy and input size we run a saturating batch and report
 * the share of step time spent in GEMMs, attention, communication, and
 * engine (vLLM-equivalent) overhead — the same component ablation the
 * paper builds by removing one component at a time.
 *
 * Paper shape: SP (and hence Shift) has a lower communication share than
 * TP; short sequences are dominated by engine overhead (especially on the
 * smaller Qwen model); long sequences are dominated by attention time.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 15",
                        "Cost breakdown of batch workloads");
    CsvWriter csv(bench::results_path("fig15_breakdown.csv"),
                  {"model", "strategy", "input_tokens", "gemm_s",
                   "attention_s", "comm_s", "overhead_s"});

    for (const auto& m : {model::llama_70b(), model::qwen_32b()}) {
        std::printf("\n%s — share of total step time (gemm/attn/comm/engine)\n",
                    m.name.c_str());
        Table table({"Input", "DP", "TP", "SP", "Shift"});
        const std::vector<std::int64_t> inputs = {1024, 8192, 65536};
        const auto& strategies = bench::comparison_strategies();
        std::vector<std::string> row;
        bench::run_sweep(
            inputs.size() * strategies.size(), [&](std::size_t idx) {
                const std::int64_t input = inputs[idx / strategies.size()];
                const parallel::Strategy s =
                    strategies[idx % strategies.size()];
                const int nreq = input >= 65536 ? 48 : 192;
                const auto run = bench::run_strategy(
                    m, s, workload::uniform_batch(nreq, input, 250));
                const auto c = run.metrics.component_totals();
                return bench::SweepCommit([&, input, s, c] {
                    const double total = c.total();
                    if (row.empty()) {
                        row.push_back(
                            Table::fmt_count(static_cast<long long>(input)));
                    }
                    row.push_back(
                        Table::fmt(100.0 * c.gemm / total, 0) + "/" +
                        Table::fmt(100.0 * c.attention / total, 0) + "/" +
                        Table::fmt(100.0 * c.comm / total, 0) + "/" +
                        Table::fmt(100.0 * c.overhead / total, 0) + "%");
                    csv.add_row({m.name, parallel::strategy_name(s),
                                 std::to_string(input),
                                 Table::fmt(c.gemm, 4),
                                 Table::fmt(c.attention, 4),
                                 Table::fmt(c.comm, 4),
                                 Table::fmt(c.overhead, 4)});
                    if (row.size() == strategies.size() + 1) {
                        table.add_row(row);
                        row.clear();
                    }
                });
            });
        table.print();
    }
    // ---- The paper's methodology: remove one component at a time ---------
    std::printf("\nComponent-removal ablation (Llama-70B, TP, 8k input):\n");
    Table removal({"System variant", "Batch time (s)", "vs full"});
    const auto timed = [&](const std::string& name,
                           parallel::PerfOptions opts) {
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = parallel::Strategy::kTp;
        d.perf = opts;
        return bench::run_deployment_named(
                   name, d, workload::uniform_batch(192, 8192, 250))
            .metrics.end_time();
    };
    struct Variant
    {
        const char* name;
        parallel::PerfOptions opts;
    };
    std::vector<Variant> variants = {{"full system", {}}};
    {
        parallel::PerfOptions o;
        o.comm_scale = 0.0;
        variants.push_back({"- communication", o});
    }
    {
        parallel::PerfOptions o;
        o.attention_scale = 0.0;
        variants.push_back({"- attention", o});
    }
    {
        parallel::PerfOptions o;
        o.engine_overhead = false;
        variants.push_back({"- engine overhead", o});
    }
    // The "vs full" column needs the full-system time; it commits first
    // (index 0), so ordered commits preserve the dependency.
    double full_time = 0.0;
    bench::run_sweep(variants.size(), [&](std::size_t i) {
        const double t = timed(variants[i].name, variants[i].opts);
        return bench::SweepCommit([&, i, t] {
            if (i == 0)
                full_time = t;
            removal.add_row({variants[i].name, Table::fmt(t, 2),
                             Table::fmt(100.0 * t / full_time, 1) + "%"});
        });
    });
    removal.print();

    std::printf(
        "\nPaper's Fig. 15: SP/Shift communicate far less than TP; engine\n"
        "overhead dominates short sequences (worse for the small model);\n"
        "attention dominates long sequences.\n");
    return 0;
}
