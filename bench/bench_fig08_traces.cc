/**
 * @file
 * Figure 8: characteristics of the two production traces.
 *
 * Prints the input/output token distributions and the arrival-rate
 * timeline of (a) the synthetic Azure LLM Code trace (bursty agentic code
 * completion: silent regions + bursts, long prompts, short outputs) and
 * (b) the synthetic Mooncake conversation trace (steady ~9 requests every
 * 3 s, medium inputs, long outputs).
 */

#include <cstdio>

#include "common/bench_common.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/azure_trace.h"
#include "workload/mooncake_trace.h"

using namespace shiftpar;

namespace {

void
characterize(const char* name,
             const std::vector<engine::RequestSpec>& reqs, double duration,
             CsvWriter* csv)
{
    Summary in;
    Summary out;
    TimeSeries rate(10.0);
    for (const auto& r : reqs) {
        in.add(static_cast<double>(r.prompt_tokens));
        out.add(static_cast<double>(r.output_tokens));
        rate.add(r.arrival, 1.0);
    }
    std::printf("\n%s: %zu requests over %.0f s\n", name, reqs.size(),
                duration);
    Table t({"metric", "mean", "p50", "p90", "p99", "max"});
    t.add_row({"input tokens", Table::fmt(in.mean(), 0),
               Table::fmt(in.percentile(50), 0),
               Table::fmt(in.percentile(90), 0),
               Table::fmt(in.percentile(99), 0), Table::fmt(in.max(), 0)});
    t.add_row({"output tokens", Table::fmt(out.mean(), 0),
               Table::fmt(out.percentile(50), 0),
               Table::fmt(out.percentile(90), 0),
               Table::fmt(out.percentile(99), 0), Table::fmt(out.max(), 0)});
    t.print();

    // Arrival burstiness: peak vs mean 10-second bin rate.
    const double mean_rate = static_cast<double>(reqs.size()) / duration;
    std::printf("arrival rate: mean %.2f req/s, peak (10 s bins) %.2f "
                "req/s, peak/mean %.1fx\n",
                mean_rate, rate.peak_rate(), rate.peak_rate() / mean_rate);
    if (csv) {
        for (std::size_t b = 0; b < rate.num_bins(); ++b)
            csv->add_row({name, Table::fmt(rate.bin_start(b), 0),
                          Table::fmt(rate.rate(b), 3)});
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 8", "Production trace characteristics");
    CsvWriter csv(bench::results_path("fig08_traces.csv"),
                  {"trace", "t_s", "arrival_rate_req_s"});

    Rng rng_a(7);
    workload::AzureTraceOptions azure;
    characterize("Azure LLM Code trace (synthetic)",
                 workload::azure_code_trace(rng_a, azure), azure.duration,
                 &csv);

    Rng rng_m(8);
    workload::MooncakeTraceOptions moon;
    characterize("Mooncake conversation trace (synthetic)",
                 workload::mooncake_conversation_trace(rng_m, moon),
                 moon.duration, &csv);

    std::printf(
        "\nPaper's Fig. 8: (a) bursty agentic code completion with silent\n"
        "and burst regions, long inputs / short outputs; (b) steady batches\n"
        "of ~9 requests every 3 s, medium inputs / long outputs.\n");
    return 0;
}
