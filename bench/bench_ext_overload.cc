/**
 * @file
 * Extension: overload robustness — request-lifecycle mitigations under
 * saturating load.
 *
 * Overloaded clusters do not fail cleanly: queues grow without bound,
 * tail latency explodes, and every second of decode spent on a request
 * the client stopped waiting for is capacity stolen from one that would
 * still count. This bench sweeps an overload factor (arrival-rate
 * multiplier) against four mitigation strategies on the same 8-replica
 * DP deployment, with a mid-run straggler so hedges and breakers have a
 * slow replica to route around:
 *
 *  - none:     client cancellations only (the shared workload behavior);
 *  - deadline: per-request completion deadlines — the scheduler evicts
 *              expired requests instead of finishing work nobody wants;
 *  - hedge:    still-queued requests are duplicated onto the least-loaded
 *              other replica after a delay; first completion wins;
 *  - breaker:  per-replica circuit breakers steer admissions away from
 *              the straggler until a half-open probe clears it.
 *
 * Every row replays the identical workload and cancel stream, and the
 * lifecycle conservation invariant is asserted per row: submitted =
 * completed + expired + cancelled + lost + shed. Goodput counts only
 * requests meeting the interactive SLO, so burning tokens on doomed
 * requests shows up as lost goodput, not just lost latency.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "engine/router.h"
#include "fault/fault_schedule.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/units.h"
#include "workload/bursty.h"
#include "workload/lifecycle.h"

using namespace shiftpar;

namespace {

constexpr double kDuration = 120.0;  // workload length, seconds

/** Build the 8-replica DP deployment (one engine per GPU). */
std::unique_ptr<engine::Router>
build_system(const engine::OverloadOptions& overload)
{
    const auto m = model::qwen_32b();
    const auto node = hw::h200_node();
    std::vector<std::unique_ptr<engine::Engine>> engines;
    for (int i = 0; i < 8; ++i) {
        engine::EngineConfig cfg;
        cfg.base = {1, 1};
        if (obs::TraceSink* sink = bench::trace()) {
            obs::EngineMeta meta;
            meta.label = "engine " + std::to_string(i) + " " +
                         cfg.base.to_string();
            meta.base = cfg.base;
            cfg.trace = sink;
            cfg.trace_id = sink->register_engine(meta);
        }
        engines.push_back(std::make_unique<engine::Engine>(
            node, m, cfg,
            std::make_unique<engine::FixedPolicy>(cfg.base)));
    }
    // Round-robin admission, not least-tokens: a feedback-free balancer
    // is exactly the setting where a straggler silently accumulates a
    // backlog, which is what the lifecycle mitigations exist to fix.
    auto router = std::make_unique<engine::Router>(
        std::move(engines), engine::RoutingPolicy::kRoundRobin);
    router->set_trace(bench::trace());
    // The straggler window the mitigations react to. Armed identically in
    // every row; only the lifecycle options differ across strategies.
    router->set_faults(
        fault::parse_fault_spec("straggle:engine=0,at=10,until=110,slow=3"),
        {});
    router->set_overload(overload);
    return router;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner(
        "Extension (overload robustness)",
        "8x H200 DP under saturating load: deadlines, hedged retries, "
        "and circuit breakers vs a straggling replica (Qwen-32B, bursty)");

    struct Strategy
    {
        std::string name;
        bool deadline;
        double hedge_delay;  // 0 = no hedging
        bool breaker;
    };
    const std::vector<Strategy> strategies = {
        {"none", false, 0.0, false},
        {"deadline", true, 0.0, false},
        {"hedge", false, 2.0, false},
        {"breaker", false, 0.0, true},
    };
    const std::vector<double> factors = {1.0, 2.0, 4.0};

    // One workload + cancel stream per overload factor, shared across the
    // factor's four strategy rows so they answer the same question.
    struct Load
    {
        std::vector<engine::RequestSpec> plain;     // no deadlines
        std::vector<engine::RequestSpec> deadlined; // stamped deadlines
        std::vector<engine::CancelEvent> cancels;
    };
    std::vector<Load> loads;
    for (const double f : factors) {
        Rng rng(2026);
        workload::BurstyOptions wopts;
        wopts.duration = kDuration;
        wopts.base_rate = 1.0 * f;
        wopts.num_bursts = 3;
        wopts.burst_rate = 10.0 * f;
        wopts.burst_duration = 15.0;
        Load load;
        load.plain = workload::bursty_workload(rng, wopts);
        workload::LifecycleOptions lc;
        lc.cancel_rate = 0.05;
        lc.cancel_delay_mean = 5.0;
        lc.seed = 11;
        load.cancels = workload::cancel_stream(load.plain, lc);
        lc.deadline = 20.0;
        lc.deadline_per_token = 0.05;
        load.deadlined = load.plain;
        workload::apply_deadlines(&load.deadlined, lc);
        std::printf("workload x%g: %zu requests, %lld tokens\n", f,
                    load.plain.size(),
                    static_cast<long long>(
                        workload::total_tokens(load.plain)));
        loads.push_back(std::move(load));
    }

    const engine::SloSpec slo;  // interactive: TTFT 2 s, TPOT 50 ms

    Table table({"Overload", "Strategy", "Completed", "Expired",
                 "Cancelled", "Hedges", "Breaker opens", "p99 TTFT (s)",
                 "Goodput (tok/s)"});
    CsvWriter csv(bench::results_path("ext_overload.csv"),
                  {"overload_factor", "strategy", "submitted", "completed",
                   "expired", "cancelled", "lost", "shed", "hedges",
                   "hedge_wins", "hedge_losses", "breaker_opens",
                   "breaker_closes", "drained", "ttft_p99_s",
                   "goodput_tok_s", "slo_attainment"});

    const std::size_t n = factors.size() * strategies.size();
    bench::run_sweep(n, [&](std::size_t i) {
        const std::size_t fi = i / strategies.size();
        const Strategy& st = strategies[i % strategies.size()];
        const Load& load = loads[fi];
        const double f = factors[fi];
        bench::set_run_label("x" + Table::fmt(f, 0) + " " + st.name);

        engine::OverloadOptions overload;
        overload.hedge_delay = st.hedge_delay;
        overload.breaker.enabled = st.breaker;
        // Demand a longer, clearer signal than the defaults before
        // tripping: per-token service time legitimately spreads ~2x
        // across batch mixes, and a false open under round-robin costs a
        // healthy replica.
        overload.breaker.min_samples = 15;
        overload.breaker.trip_ratio = 2.5;
        overload.breaker.open_duration = 15.0;
        auto router = build_system(overload);
        router->set_cancellations(load.cancels);
        const auto& reqs = st.deadline ? load.deadlined : load.plain;
        const auto met = router->run_workload(reqs);

        const engine::OverloadStats os = router->overload_stats();
        const fault::FaultStats fs = router->fault_stats();
        const auto submitted = static_cast<std::int64_t>(reqs.size());
        // The lifecycle conservation invariant, re-checked at the bench
        // level on top of the router's internal assertion: every
        // submitted request lands in exactly one terminal bucket.
        SP_ASSERT(submitted == os.completed + os.expired + os.cancelled +
                                   fs.lost + fs.shed,
                  "request accounting leak: ", submitted, " submitted vs ",
                  os.completed, " completed + ", os.expired, " expired + ",
                  os.cancelled, " cancelled + ", fs.lost, " lost + ",
                  fs.shed, " shed");
        bench::record_run("x" + Table::fmt(f, 0) + " " + st.name, met);
        return bench::SweepCommit([&table, &csv, &st, f, met, os, fs,
                                   submitted, slo] {
            table.add_row(
                {"x" + Table::fmt(f, 0), st.name,
                 Table::fmt_count(os.completed),
                 Table::fmt_count(os.expired),
                 Table::fmt_count(os.cancelled),
                 Table::fmt_count(os.hedges),
                 Table::fmt_count(os.breaker_opens),
                 Table::fmt(met.ttft().percentile(99), 3),
                 Table::fmt(met.goodput(slo), 0)});
            csv.add_row(
                {Table::fmt(f, 0), st.name, std::to_string(submitted),
                 std::to_string(os.completed), std::to_string(os.expired),
                 std::to_string(os.cancelled), std::to_string(fs.lost),
                 std::to_string(fs.shed), std::to_string(os.hedges),
                 std::to_string(os.hedge_wins),
                 std::to_string(os.hedge_losses),
                 std::to_string(os.breaker_opens),
                 std::to_string(os.breaker_closes),
                 std::to_string(os.drained),
                 Table::fmt(met.ttft().percentile(99), 4),
                 Table::fmt(met.goodput(slo), 1),
                 Table::fmt(met.slo_attainment(slo), 4)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: each mitigation wins in its regime and none wins in\n"
        "all of them. With headroom (x1-x2) the breaker stops feeding the\n"
        "straggler and hedging rescues requests queued behind it, cutting\n"
        "p99 TTFT well below 'none'. Deadlines pay off as overload grows:\n"
        "evicting doomed requests converts their decode seconds into\n"
        "goodput. At deep saturation (x4) the tradeoffs invert honestly —\n"
        "hedging duplicates work a saturated cluster cannot absorb, and a\n"
        "breaker shrinks capacity exactly when all of it is needed; only\n"
        "deadlines keep helping.\n");
    return 0;
}
