/**
 * @file
 * Figure 10 + Figure 11(b): Mooncake conversation trace on Qwen-32B.
 *
 * The heavier of the two traces: a steady ~3 req/s of medium-input,
 * long-output conversations whose sustained token rate sits between the
 * TP-deployment's and the SP/Shift-deployment's capacity. The paper
 * additionally enables FP8 KV cache to fit the working set.
 *
 * Paper shape: DP and TP cannot keep up — wait times (and hence TTFT)
 * grow without bound across the trace — while SP and Shift sustain the
 * traffic with finite completion times.
 */

#include <algorithm>
#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/mooncake_trace.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 10 / Figure 11(b)",
                        "Mooncake conversation trace on Qwen-32B (FP8 KV), "
                        "8xH200");
    Rng rng(2026);
    workload::MooncakeTraceOptions opts;
    opts.duration = 900.0;
    opts.prompt_median = 14000.0;
    opts.output_median = 1000.0;
    const auto reqs = workload::mooncake_conversation_trace(rng, opts);
    std::printf("trace: %zu requests, %lld tokens (%.0f tok/s sustained)\n",
                reqs.size(),
                static_cast<long long>(workload::total_tokens(reqs)),
                static_cast<double>(workload::total_tokens(reqs)) /
                    opts.duration);

    model::ModelConfig m = model::qwen_32b();
    m.kv_dtype = model::DType::kFp8;  // Section 4.2.2's fix

    Table table({"Strategy", "Wait p50/p99 (s)", "TTFT p99 (s)",
                 "Completion p50/p99 (s)", "Wait growth (last/first third)",
                 "Makespan (s)"});
    CsvWriter stats(bench::results_path("fig11b_mooncake_stats.csv"),
                    {"strategy", "wait_p50_s", "wait_p99_s", "ttft_p99_s",
                     "completion_p50_s", "completion_p99_s",
                     "wait_growth"});
    CsvWriter series(bench::results_path("fig10_mooncake_series.csv"),
                     {"strategy", "request_index", "wait_s", "ttft_s",
                      "completion_s"});

    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t idx) {
        const parallel::Strategy s = strategies[idx];
        const auto run = bench::run_strategy(m, s, reqs);
        const auto& met = run.metrics;

        // Wait-time growth: mean wait in the last third of requests (by
        // arrival) over the first third — >> 1 means the deployment is
        // falling behind the traffic.
        auto recs = met.requests();
        std::sort(recs.begin(), recs.end(),
                  [](const auto& a, const auto& b) {
                      return a.arrival < b.arrival;
                  });
        const std::size_t third = recs.size() / 3;
        double first = 0.0;
        double last = 0.0;
        for (std::size_t i = 0; i < third; ++i) {
            first += recs[i].wait;
            last += recs[recs.size() - 1 - i].wait;
        }
        const double growth = last / std::max(first, 1e-9);

        return bench::SweepCommit([&, s, run, recs, growth] {
        const auto& met = run.metrics;
        table.add_row(
            {parallel::strategy_name(s),
             Table::fmt(met.wait().percentile(50), 2) + " / " +
                 Table::fmt(met.wait().percentile(99), 2),
             Table::fmt(met.ttft().percentile(99), 2),
             Table::fmt(met.completion().percentile(50), 2) + " / " +
                 Table::fmt(met.completion().percentile(99), 2),
             Table::fmt(growth, 1) + "x", Table::fmt(met.end_time(), 1)});
        stats.add_row({parallel::strategy_name(s),
                       Table::fmt(met.wait().percentile(50), 3),
                       Table::fmt(met.wait().percentile(99), 3),
                       Table::fmt(met.ttft().percentile(99), 3),
                       Table::fmt(met.completion().percentile(50), 3),
                       Table::fmt(met.completion().percentile(99), 3),
                       Table::fmt(growth, 2)});
        for (std::size_t i = 0; i < recs.size(); ++i) {
            series.add_row({parallel::strategy_name(s), std::to_string(i),
                            Table::fmt(recs[i].wait, 3),
                            Table::fmt(recs[i].ttft, 3),
                            Table::fmt(recs[i].completion, 3)});
        }
        });
    });
    table.print();
    std::printf(
        "\nPaper's Fig. 10/11(b): DP and TP cannot keep up — wait times\n"
        "grow indefinitely across the trace — while SP and Shift sustain\n"
        "the conversation traffic with finite completion times.\n");
    return 0;
}
