/**
 * @file
 * Figure 14: request completion time vs. arrival rate (8k input / 250
 * output, Llama-70B).
 *
 * Paper shape: TP (latency-oriented) wins at low rates, DP
 * (throughput-oriented) wins at high rates — the two curves cross at a few
 * req/s — while Shift Parallelism is at or below both across the entire
 * sweep.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 14",
                        "Completion time vs. arrival rate (Llama-70B, "
                        "8k in / 250 out)");
    const auto m = model::llama_70b();
    const std::vector<double> rates = {0.25, 0.5, 1.0, 2.0, 3.0,
                                       4.0,  5.0, 6.0};
    const double duration = 120.0;

    Table table({"Rate (req/s)", "DP (s)", "TP (s)", "SP (s)", "Shift (s)",
                 "Best static", "Shift <= best?"});
    CsvWriter csv(bench::results_path("fig14_arrival.csv"),
                  {"rate_req_s", "strategy", "mean_completion_s",
                   "p99_completion_s"});

    // Flattened rate x strategy sweep. Each point regenerates its rate's
    // workload from the same fixed seed, so the requests a point sees are
    // a function of the index alone (determinism across --jobs).
    const auto& strategies = bench::comparison_strategies();
    std::vector<std::string> row;
    double best_static = 1e300;
    double shift_val = 0.0;
    bench::run_sweep(
        rates.size() * strategies.size(), [&](std::size_t idx) {
            const double rate = rates[idx / strategies.size()];
            const parallel::Strategy s = strategies[idx % strategies.size()];
            Rng rng(1234);
            const auto reqs = workload::make_requests(
                workload::poisson_arrivals(rng, rate, duration), rng,
                workload::fixed_size(8192, 250));
            const auto run = bench::run_strategy(m, s, reqs);
            const double mean = run.metrics.completion().mean();
            const double p99 = run.metrics.completion().percentile(99);
            return bench::SweepCommit([&, rate, s, mean, p99] {
                if (row.empty()) {
                    row.push_back(Table::fmt(rate, 2));
                    best_static = 1e300;
                    shift_val = 0.0;
                }
                row.push_back(Table::fmt(mean, 2));
                if (s == parallel::Strategy::kShift)
                    shift_val = mean;
                else
                    best_static = std::min(best_static, mean);
                csv.add_row({Table::fmt(rate, 2), parallel::strategy_name(s),
                             Table::fmt(mean, 3), Table::fmt(p99, 3)});
                if (row.size() == strategies.size() + 1) {
                    row.push_back(Table::fmt(best_static, 2));
                    row.push_back(shift_val <= best_static * 1.02 ? "yes"
                                                                  : "NO");
                    table.add_row(row);
                    row.clear();
                }
            });
        });
    table.print();
    std::printf(
        "\nPaper's Fig. 14: TP and DP cross over at a few req/s; Shift is\n"
        "strictly at/below both across all arrival rates.\n");
    return 0;
}
