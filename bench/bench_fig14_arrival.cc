/**
 * @file
 * Figure 14: request completion time vs. arrival rate (8k input / 250
 * output, Llama-70B).
 *
 * Paper shape: TP (latency-oriented) wins at low rates, DP
 * (throughput-oriented) wins at high rates — the two curves cross at a few
 * req/s — while Shift Parallelism is at or below both across the entire
 * sweep.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 14",
                        "Completion time vs. arrival rate (Llama-70B, "
                        "8k in / 250 out)");
    const auto m = model::llama_70b();
    const std::vector<double> rates = {0.25, 0.5, 1.0, 2.0, 3.0,
                                       4.0,  5.0, 6.0};
    const double duration = 120.0;

    Table table({"Rate (req/s)", "DP (s)", "TP (s)", "SP (s)", "Shift (s)",
                 "Best static", "Shift <= best?"});
    CsvWriter csv(bench::results_path("fig14_arrival.csv"),
                  {"rate_req_s", "strategy", "mean_completion_s",
                   "p99_completion_s"});

    for (double rate : rates) {
        Rng rng(1234);
        const auto reqs = workload::make_requests(
            workload::poisson_arrivals(rng, rate, duration), rng,
            workload::fixed_size(8192, 250));
        std::vector<std::string> row = {Table::fmt(rate, 2)};
        double best_static = 1e300;
        double shift_val = 0.0;
        for (parallel::Strategy s : bench::comparison_strategies()) {
            const auto run = bench::run_strategy(m, s, reqs);
            const double mean = run.metrics.completion().mean();
            row.push_back(Table::fmt(mean, 2));
            if (s == parallel::Strategy::kShift)
                shift_val = mean;
            else
                best_static = std::min(best_static, mean);
            csv.add_row({Table::fmt(rate, 2), parallel::strategy_name(s),
                         Table::fmt(mean, 3),
                         Table::fmt(run.metrics.completion().percentile(99),
                                    3)});
        }
        row.push_back(Table::fmt(best_static, 2));
        row.push_back(shift_val <= best_static * 1.02 ? "yes" : "NO");
        table.add_row(row);
    }
    table.print();
    std::printf(
        "\nPaper's Fig. 14: TP and DP cross over at a few req/s; Shift is\n"
        "strictly at/below both across all arrival rates.\n");
    return 0;
}
