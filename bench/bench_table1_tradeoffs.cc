/**
 * @file
 * Table 1: qualitative performance tradeoffs of inference parallelisms.
 *
 * For each strategy we measure TTFT, TPOT (low-traffic single request) and
 * combined throughput (high-traffic saturation), then grade each metric
 * relative to the best/worst strategy — regenerating the paper's
 * Best / Nearly Best / Very Good / Near Worst / Worst matrix.
 */

#include <cstdio>
#include <map>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

namespace {

/** Grade `value` (lower better when `lower_better`) against the field. */
std::string
grade(double value, double best, double worst, bool lower_better)
{
    const double rel = lower_better
                           ? (value - best) / std::max(worst - best, 1e-12)
                           : (best - value) / std::max(best - worst, 1e-12);
    if (rel <= 0.02)
        return "Best";
    if (rel <= 0.15)
        return "Nearly Best";
    if (rel <= 0.55)
        return "Very Good";
    if (rel <= 0.9)
        return "Near Worst";
    return "Worst";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Table 1",
                        "Performance tradeoffs of inference parallelisms "
                        "(Llama-70B, 8xH200)");
    const auto m = model::llama_70b();

    std::map<std::string, double> ttft;
    std::map<std::string, double> tpot;
    std::map<std::string, double> thr;
    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t i) {
        const parallel::Strategy s = strategies[i];
        const auto lat = bench::min_latency(m, s, 4096, 250);
        const double t = bench::peak_throughput(m, s, 4096, 250, 512);
        return bench::SweepCommit([&, s, lat, t] {
            const auto name = parallel::strategy_name(s);
            ttft[name] = lat.ttft;
            tpot[name] = lat.tpot;
            thr[name] = t;
        });
    });

    const auto minmax = [](const std::map<std::string, double>& v) {
        double lo = 1e300;
        double hi = -1e300;
        for (const auto& [k, x] : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return std::pair{lo, hi};
    };
    const auto [ttft_lo, ttft_hi] = minmax(ttft);
    const auto [tpot_lo, tpot_hi] = minmax(tpot);
    const auto [thr_lo, thr_hi] = minmax(thr);

    Table table({"Parallelism Strategy", "TTFT (Latency)",
                 "Combined Throughput", "TPOT (Token Latency)"});
    CsvWriter csv(bench::results_path("table1_tradeoffs.csv"),
                  {"strategy", "ttft_ms", "tpot_ms", "throughput_tok_s"});
    for (parallel::Strategy s : bench::comparison_strategies()) {
        const auto name = parallel::strategy_name(s);
        table.add_row(
            {name, grade(ttft[name], ttft_lo, ttft_hi, true),
             grade(thr[name], thr_hi, thr_lo, false),
             grade(tpot[name], tpot_lo, tpot_hi, true)});
        csv.add_row({name, Table::fmt(to_ms(ttft[name]), 2),
                     Table::fmt(to_ms(tpot[name]), 2),
                     Table::fmt(thr[name], 0)});
    }
    table.print();
    std::printf(
        "\nPaper's Table 1: TP = {Nearly Best, Worst, Best}; DP = {Worst,\n"
        "Best, Near Worst}; SP = {Best, Very Good, Worst}; Shift = {Best,\n"
        "Very Good, Best}.\n");
    return 0;
}
