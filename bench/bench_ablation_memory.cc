/**
 * @file
 * Ablation (Section 3.3.2): separate-models vs. on-the-fly-slicing weight
 * handling for the shift configuration.
 *
 * Separate models pay Eq. (1)'s W/(SP*TP) extra memory (1/SP overhead) but
 * run shifted steps at full speed; slicing is memory-free but each shifted
 * step pays an FP8 transpose penalty. The paper adopts separate models.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Ablation (Sec. 3.3.2)",
                        "Separate models vs. on-the-fly slicing");
    const auto m = model::llama_70b();
    const std::vector<engine::RequestSpec> interactive = {
        {0.0, 1024, 256}};  // decode-heavy: shifted steps dominate

    Table table({"Weight strategy", "Weights/GPU (GB)", "KV pool (GB)",
                 "KV capacity (tok)", "TPOT (ms)"});
    CsvWriter csv(bench::results_path("ablation_memory.csv"),
                  {"strategy", "weights_gb", "kv_pool_gb", "kv_tokens",
                   "tpot_ms"});

    const std::vector<parallel::WeightStrategy> variants = {
        parallel::WeightStrategy::kSeparateModels,
        parallel::WeightStrategy::kOnTheFlySlicing};
    bench::run_sweep(variants.size(), [&](std::size_t i) {
        const parallel::WeightStrategy ws = variants[i];
        core::Deployment d;
        d.model = m;
        d.strategy = parallel::Strategy::kShift;
        d.weights = ws;
        const auto r = core::resolve(d);
        const char* name =
            ws == parallel::WeightStrategy::kSeparateModels
                ? "separate models (paper)"
                : "on-the-fly slicing";
        const auto met =
            bench::run_deployment_named(name, d, interactive).metrics;
        return bench::SweepCommit([&, r, name, met] {
            table.add_row({name, Table::fmt(to_gb(r.memory.weight_bytes())),
                           Table::fmt(to_gb(r.memory.kv_pool_bytes)),
                           Table::fmt_count(r.memory.kv_token_capacity),
                           Table::fmt(to_ms(met.tpot().mean()), 2)});
            csv.add_row({name,
                         Table::fmt(to_gb(r.memory.weight_bytes()), 2),
                         Table::fmt(to_gb(r.memory.kv_pool_bytes), 2),
                         std::to_string(r.memory.kv_token_capacity),
                         Table::fmt(to_ms(met.tpot().mean()), 3)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: slicing saves the 1/SP (12.5%% at SP=8) weight\n"
        "overhead, buying more KV capacity, but shifted decode steps pay\n"
        "the transpose penalty — a strictly worse TPOT. The paper chooses\n"
        "separate models.\n");
    return 0;
}
