/**
 * @file
 * Extension: SLO attainment and goodput vs. arrival rate.
 *
 * Figure 11's takeaway is that Shift Parallelism "helps to achieve
 * tighter service-level objectives (e.g., p50, p99)". This bench makes
 * that operational (DistServe-style): with an SLO of TTFT <= 0.5 s and
 * TPOT <= 15 ms, what fraction of requests meet it — and how much
 * SLO-satisfying goodput does the node deliver — as traffic grows?
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (SLO goodput)",
                        "SLO attainment vs. arrival rate (Llama-70B, "
                        "TTFT<=0.5s, TPOT<=15ms)");
    const engine::SloSpec slo{0.5, 0.015};
    const auto m = model::llama_70b();

    Table table({"Rate (req/s)", "DP", "TP", "SP", "Shift",
                 "Shift goodput (tok/s)"});
    CsvWriter csv(bench::results_path("ext_slo.csv"),
                  {"rate_req_s", "strategy", "attainment", "goodput_tok_s"});

    // Flattened rate x strategy sweep; each point regenerates its rate's
    // workload from the fixed seed so points depend only on their index.
    const std::vector<double> rates = {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    const auto& strategies = bench::comparison_strategies();
    std::vector<std::string> row;
    double shift_goodput = 0.0;
    bench::run_sweep(
        rates.size() * strategies.size(), [&](std::size_t idx) {
            const double rate = rates[idx / strategies.size()];
            const parallel::Strategy s = strategies[idx % strategies.size()];
            Rng rng(77);
            const auto reqs = workload::make_requests(
                workload::poisson_arrivals(rng, rate, 90.0), rng,
                workload::lognormal_size(4000.0, 0.6, 250.0, 0.4));
            const auto run = bench::run_strategy(m, s, reqs);
            const double att = run.metrics.slo_attainment(slo);
            const double good = run.metrics.goodput(slo);
            return bench::SweepCommit([&, rate, s, att, good] {
                if (row.empty()) {
                    row.push_back(Table::fmt(rate, 1));
                    shift_goodput = 0.0;
                }
                row.push_back(Table::fmt(100.0 * att, 0) + "%");
                if (s == parallel::Strategy::kShift)
                    shift_goodput = good;
                csv.add_row({Table::fmt(rate, 2),
                             parallel::strategy_name(s), Table::fmt(att, 4),
                             Table::fmt(good, 0)});
                if (row.size() == strategies.size() + 1) {
                    row.push_back(Table::fmt_count(
                        static_cast<long long>(shift_goodput)));
                    table.add_row(row);
                    row.clear();
                }
            });
        });
    table.print();
    std::printf(
        "\nExpected: Shift sustains near-100%% attainment to higher rates\n"
        "than any static strategy (SP violates TPOT, DP violates TTFT, TP\n"
        "saturates earliest), so its goodput keeps scaling after the\n"
        "others' attainment collapses — the operational form of Fig. 11.\n");
    return 0;
}
