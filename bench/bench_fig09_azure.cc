/**
 * @file
 * Figure 9 + Figure 11(a): Azure LLM Code trace replay on Llama-70B.
 *
 * Replays the synthetic Azure code trace under DP / TP / SP / Shift and
 * reports per-request TTFT / TPOT / completion series (Fig. 9) plus the
 * latency distribution statistics (Fig. 11(a)).
 *
 * Paper shape: the trace's three bursts spike TTFT and completion time;
 * DP handles bursts better than TP, TP has lower TPOT in quiet regions,
 * and Shift obtains the lowest TTFT, TPOT, and completion throughout,
 * tightening p50/p99 SLOs.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/azure_trace.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 9 / Figure 11(a)",
                        "Azure LLM Code trace on Llama-70B, 8xH200");
    Rng rng(2026);
    workload::AzureTraceOptions opts;
    opts.duration = 900.0;  // the paper replays 15 minutes
    const auto reqs = workload::azure_code_trace(rng, opts);
    std::printf("trace: %zu requests, %lld tokens\n", reqs.size(),
                static_cast<long long>(workload::total_tokens(reqs)));

    Table table({"Strategy", "TTFT p50/p99 (ms)", "TPOT p50/p99 (ms)",
                 "Completion p50/p99 (s)", "Makespan (s)"});
    CsvWriter stats(bench::results_path("fig11a_azure_stats.csv"),
                    {"strategy", "ttft_p50_ms", "ttft_p99_ms", "tpot_p50_ms",
                     "tpot_p99_ms", "completion_p50_s", "completion_p99_s"});
    CsvWriter series(bench::results_path("fig09_azure_series.csv"),
                     {"strategy", "request_index", "ttft_ms", "tpot_ms",
                      "completion_ms"});

    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t idx) {
        const parallel::Strategy s = strategies[idx];
        const auto run = bench::run_strategy(model::llama_70b(), s, reqs);
        return bench::SweepCommit([&, s, run] {
        const auto& met = run.metrics;
        table.add_row(
            {parallel::strategy_name(s),
             Table::fmt(to_ms(met.ttft().percentile(50))) + " / " +
                 Table::fmt(to_ms(met.ttft().percentile(99))),
             Table::fmt(to_ms(met.tpot().percentile(50))) + " / " +
                 Table::fmt(to_ms(met.tpot().percentile(99))),
             Table::fmt(met.completion().percentile(50), 2) + " / " +
                 Table::fmt(met.completion().percentile(99), 2),
             Table::fmt(met.end_time(), 1)});
        stats.add_row({parallel::strategy_name(s),
                       Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                       Table::fmt(to_ms(met.ttft().percentile(99)), 2),
                       Table::fmt(to_ms(met.tpot().percentile(50)), 2),
                       Table::fmt(to_ms(met.tpot().percentile(99)), 2),
                       Table::fmt(met.completion().percentile(50), 3),
                       Table::fmt(met.completion().percentile(99), 3)});
        // Per-request series in arrival order (Fig. 9's x axis).
        auto recs = met.requests();
        std::sort(recs.begin(), recs.end(),
                  [](const auto& a, const auto& b) {
                      return a.arrival < b.arrival;
                  });
        for (std::size_t i = 0; i < recs.size(); ++i) {
            series.add_row({parallel::strategy_name(s),
                            std::to_string(i),
                            Table::fmt(to_ms(recs[i].ttft), 1),
                            Table::fmt(to_ms(recs[i].tpot), 2),
                            Table::fmt(to_ms(recs[i].completion), 1)});
        }
        });
    });
    table.print();
    std::printf(
        "\nPaper's Fig. 9/11(a): three bursts spike TTFT/completion; Shift\n"
        "obtains the lowest TTFT, TPOT, and completion time and the\n"
        "tightest p50/p99 across the trace.\n");
    return 0;
}
