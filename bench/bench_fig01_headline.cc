/**
 * @file
 * Figure 1 — the paper's headline comparison: response speed
 * (input tokens / TTFT), generation rate (1 / TPOT), and combined
 * throughput, in low and high traffic, rendered as bar charts.
 *
 * Paper shape: "Shift Parallelism obtains a higher throughput than TP in
 * high traffic, and lower latency than TP and DP in low traffic" —
 * 1.5x TP's throughput, 1.5x faster response than TP, 2x faster
 * generation than DP, within ~17% of DP's throughput.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 1",
                        "Headline: response speed, generation rate, "
                        "throughput (Llama-70B)");
    constexpr std::int64_t kPrompt = 4096;
    constexpr std::int64_t kOutput = 250;

    std::vector<std::string> labels;
    std::vector<double> response;    // input tokens / TTFT
    std::vector<double> generation;  // 1 / TPOT
    std::vector<double> throughput;  // tokens/s at saturation
    CsvWriter csv(bench::results_path("fig01_headline.csv"),
                  {"strategy", "response_tok_per_s", "generation_tok_per_s",
                   "throughput_tok_per_s"});

    const auto m = model::llama_70b();
    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t i) {
        const parallel::Strategy s = strategies[i];
        const auto lat = bench::min_latency(m, s, kPrompt, kOutput);
        const double thr = bench::peak_throughput(m, s, kPrompt, kOutput);
        return bench::SweepCommit([&, s, lat, thr] {
            labels.push_back(parallel::strategy_name(s));
            response.push_back(static_cast<double>(kPrompt) / lat.ttft);
            generation.push_back(1.0 / lat.tpot);
            throughput.push_back(thr);
            csv.add_row({parallel::strategy_name(s),
                         Table::fmt(response.back(), 0),
                         Table::fmt(generation.back(), 1),
                         Table::fmt(thr, 0)});
        });
    });

    std::printf("\n%s\n",
                render_bar_chart(labels, response,
                                 "response speed, low traffic "
                                 "(#input tok. / TTFT)")
                    .c_str());
    std::printf("%s\n",
                render_bar_chart(labels, generation,
                                 "generation rate, low traffic (1 / TPOT, "
                                 "tok/s)")
                    .c_str());
    std::printf("%s",
                render_bar_chart(labels, throughput,
                                 "combined throughput, high traffic "
                                 "(tok/s)")
                    .c_str());

    const std::size_t tp = 1;
    const std::size_t dp = 0;
    const std::size_t shift = 3;
    std::printf(
        "\nheadline factors (paper): response %.2fx faster than TP "
        "(1.5x),\ngeneration %.2fx faster than DP (2x), throughput %.2fx "
        "TP's (1.5x)\nand %.0f%% of DP's (83%%).\n",
        response[shift] / response[tp], generation[shift] / generation[dp],
        throughput[shift] / throughput[tp],
        100.0 * throughput[shift] / throughput[dp]);
    return 0;
}
