/**
 * @file
 * Figure 13: performance variation across input context sizes (2k-128k,
 * 250 output tokens) for Llama-70B and Qwen-32B.
 *
 * Paper shape: Shift's TTFT advantage persists across the sweep (up to
 * 6.97x vs DP, 1.56x vs TP); TPOT grows with input size (KV reads) but TP
 * and Shift mitigate it by parallelizing the attention; peak throughput
 * drops at large contexts as attention time dominates.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 13",
                        "Latency and throughput vs. input context size");
    CsvWriter csv(bench::results_path("fig13_context.csv"),
                  {"model", "strategy", "input_tokens", "ttft_ms",
                   "tpot_ms", "throughput_tok_s"});

    for (const auto& m : {model::llama_70b(), model::qwen_32b()}) {
        std::printf("\n%s (min TTFT ms | min TPOT ms | peak tok/s)\n",
                    m.name.c_str());
        Table table({"Input", "DP", "TP", "SP", "Shift"});
        // 2k..128k (minus output); flattened input x strategy sweep.
        const std::vector<std::int64_t> inputs = {2048, 8192, 32768, 130816};
        const auto& strategies = bench::comparison_strategies();
        std::vector<std::string> row;
        bench::run_sweep(
            inputs.size() * strategies.size(), [&](std::size_t idx) {
                const std::int64_t input = inputs[idx / strategies.size()];
                const parallel::Strategy s =
                    strategies[idx % strategies.size()];
                // Saturation request count scaled down for huge contexts
                // to keep the run tractable; still >> node concurrency.
                const int nreq = input >= 32768 ? 64 : 256;
                const auto lat = bench::min_latency(m, s, input, 250);
                const double thr =
                    bench::peak_throughput(m, s, input, 250, nreq);
                return bench::SweepCommit([&, input, s, lat, thr] {
                    if (row.empty()) {
                        row.push_back(
                            Table::fmt_count(static_cast<long long>(input)));
                    }
                    row.push_back(Table::fmt(to_ms(lat.ttft), 0) + " | " +
                                  Table::fmt(to_ms(lat.tpot), 1) + " | " +
                                  Table::fmt_count(
                                      static_cast<long long>(thr)));
                    csv.add_row({m.name, parallel::strategy_name(s),
                                 std::to_string(input),
                                 Table::fmt(to_ms(lat.ttft), 2),
                                 Table::fmt(to_ms(lat.tpot), 3),
                                 Table::fmt(thr, 0)});
                    if (row.size() == strategies.size() + 1) {
                        table.add_row(row);
                        row.clear();
                    }
                });
            });
        table.print();
    }
    std::printf(
        "\nPaper's Fig. 13: Shift's TTFT stays lowest across the sweep;\n"
        "TPOT grows with context (KV-cache bandwidth) but TP/Shift\n"
        "mitigate it; throughput drops at large contexts as attention\n"
        "dominates.\n");
    return 0;
}
