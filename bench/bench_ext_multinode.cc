/**
 * @file
 * Extension: scale-out — Shift Parallelism composes with data parallelism
 * across nodes.
 *
 * The paper's artifact appendix notes experiments "can be easily done in
 * parallel across two nodes"; in production, multi-node deployments run
 * one engine group per node behind a router. This bench compares 2-node
 * deployments (16 GPUs): DP-of-TP (2 TP=8 replicas), DP-of-Shift (2 shift
 * replicas), and flat DP (16 single-GPU replicas), showing Shift's
 * single-node benefits carry through the router unchanged.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "core/shift_controller.h"
#include "engine/router.h"
#include "util/logging.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/bursty.h"

using namespace shiftpar;

namespace {

/** Build a 2-node deployment: one engine per node under `strategy`. */
std::unique_ptr<engine::Router>
two_nodes(parallel::Strategy strategy,
          engine::MigrationOptions migration = {})
{
    const auto m = model::llama_70b();
    const auto node = hw::h200_node();
    std::vector<std::unique_ptr<engine::Engine>> engines;

    const auto add_engine = [&](const parallel::ParallelConfig& base,
                                bool shift) {
        engine::EngineConfig cfg;
        cfg.base = base;
        cfg.with_shift_model = shift && base.sp > 1;
        if (obs::TraceSink* sink = bench::trace()) {
            obs::EngineMeta meta;
            meta.label = "node engine " + std::to_string(engines.size()) +
                         " " + base.to_string();
            meta.base = base;
            cfg.trace = sink;
            cfg.trace_id = sink->register_engine(meta);
        }
        std::unique_ptr<engine::ExecutionPolicy> policy;
        if (shift && base.sp > 1) {
            const parallel::PerfModel perf(node, m, cfg.perf);
            policy = std::make_unique<core::ShiftController>(
                base, core::ShiftController::auto_threshold(perf, base));
        } else {
            policy = std::make_unique<engine::FixedPolicy>(base);
        }
        engines.push_back(std::make_unique<engine::Engine>(
            node, m, cfg, std::move(policy)));
    };

    switch (strategy) {
      case parallel::Strategy::kDp:
        for (int i = 0; i < 16; ++i)
            add_engine({1, 1}, false);
        break;
      case parallel::Strategy::kTp:
        for (int i = 0; i < 2; ++i)
            add_engine({1, 8}, false);
        break;
      case parallel::Strategy::kShift:
        for (int i = 0; i < 2; ++i)
            add_engine({8, 1}, true);
        break;
      default:
        fatal("unsupported strategy for the multi-node bench");
    }
    auto router = std::make_unique<engine::Router>(
        std::move(engines), engine::RoutingPolicy::kLeastTokens, migration);
    router->set_trace(bench::trace());
    return router;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (multi-node)",
                        "2 nodes x 8 H200: DP-of-{Shift, TP} vs flat DP "
                        "(Llama-70B, bursty)");
    Rng rng(2026);
    workload::BurstyOptions opts;
    opts.duration = 300.0;
    opts.base_rate = 2.0;
    opts.burst_rate = 30.0;  // 2-node capacity regime
    const auto reqs = workload::bursty_workload(rng, opts);
    std::printf("workload: %zu requests, %lld tokens\n", reqs.size(),
                static_cast<long long>(workload::total_tokens(reqs)));

    Table table({"Deployment (16 GPUs)", "p50 TTFT (ms)", "p50 TPOT (ms)",
                 "p99 completion (s)", "Peak throughput (tok/s)"});
    CsvWriter csv(bench::results_path("ext_multinode.csv"),
                  {"deployment", "ttft_p50_ms", "tpot_p50_ms",
                   "completion_p99_s", "peak_throughput_tok_s"});

    struct System
    {
        std::string name;
        parallel::Strategy strategy;
        engine::MigrationOptions migration;
    };
    engine::MigrationOptions migrate;
    migrate.enabled = true;
    migrate.min_token_imbalance = 4096;
    const std::vector<System> systems = {
        {"flat DP (16x 1-GPU)", parallel::Strategy::kDp, {}},
        {"flat DP + migration (16x 1-GPU)", parallel::Strategy::kDp,
         migrate},
        {"DP of TP=8 (2 replicas)", parallel::Strategy::kTp, {}},
        {"DP of Shift (2 replicas)", parallel::Strategy::kShift, {}},
    };
    std::vector<std::int64_t> migrations(systems.size(), 0);
    bench::run_sweep(systems.size(), [&](std::size_t i) {
        const auto& [name, strategy, migration] = systems[i];
        bench::set_run_label(name);
        auto router = two_nodes(strategy, migration);
        const auto met = router->run_workload(reqs);
        migrations[i] = router->migration_count();
        bench::record_run(name, met);
        return bench::SweepCommit([&, &name = systems[i].name, met] {
            table.add_row({name,
                           Table::fmt(to_ms(met.ttft().percentile(50))),
                           Table::fmt(to_ms(met.tpot().percentile(50)), 2),
                           Table::fmt(met.completion().percentile(99), 2),
                           Table::fmt_count(static_cast<long long>(
                               met.throughput().peak_rate()))});
            csv.add_row({name,
                         Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                         Table::fmt(to_ms(met.tpot().percentile(50)), 3),
                         Table::fmt(met.completion().percentile(99), 3),
                         Table::fmt(met.throughput().peak_rate(), 0)});
        });
    });
    table.print();
    std::printf("\nmigrations: %lld (flat DP + migration row)\n",
                static_cast<long long>(migrations[1]));
    std::printf(
        "\nExpected: the single-node ordering survives scale-out — each\n"
        "Shift replica keeps SP-grade TTFT and TP-grade TPOT, so the\n"
        "2-replica Shift deployment dominates DP-of-TP while staying close\n"
        "to flat DP's burst throughput. Cross-replica migration re-routes\n"
        "queued stragglers that least-tokens routing could not foresee at\n"
        "arrival time, raising flat DP's burst throughput and median TPOT;\n"
        "the moved requests restart at the back of their new queue, so p99\n"
        "completion gives up about a percent in exchange.\n");
    return 0;
}
