/**
 * @file
 * Extension: QoS-class (priority) scheduling for mixed traffic.
 *
 * Section 2.1: "different requests [are] subject to different
 * quality-of-service metrics (latency versus throughput)". Beyond picking
 * the right parallelism per step (Shift), the scheduler can admit
 * latency-class requests ahead of batch-class requests. This bench mixes
 * a batch job with interactive traffic under Shift Parallelism and
 * compares flat FCFS against prioritized admission.
 *
 * Like every replay driver, this bench runs on the discrete-event cluster
 * core (`sim::Cluster`) underneath `run_deployment`: arrivals are posted
 * as events and the engine advances step by step on the shared timeline,
 * bit-identical to the historical lockstep replay.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (QoS priority)",
                        "Interactive-over-batch admission under Shift "
                        "(Qwen-32B)");
    Rng rng(2026);
    // 400 batch documents at t=0 plus interactive chat at 1 req/s.
    const auto interactive_sizes =
        workload::lognormal_size(800.0, 0.5, 200.0, 0.4);
    const auto batch_sizes =
        workload::lognormal_size(6000.0, 0.5, 100.0, 0.3);

    const auto build_workload = [&](int interactive_priority) {
        // Both priority variants must draw identical workloads, so the
        // same-stream fork is the point, not an accident.
        // shiftlint-allow(rng-discipline): deliberate same-stream fork
        Rng local = rng;
        auto reqs = workload::make_requests(std::vector<double>(400, 0.0),
                                            local, batch_sizes);
        auto chat = workload::make_requests(
            workload::poisson_arrivals(local, 1.0, 90.0), local,
            interactive_sizes);
        for (auto& r : chat)
            r.priority = interactive_priority;
        reqs.insert(reqs.end(), chat.begin(), chat.end());
        return reqs;
    };

    Table table({"Scheduler", "Chat p50 TTFT (ms)", "Chat p99 TTFT (ms)",
                 "Batch makespan (s)", "Throughput (tok/s)"});
    CsvWriter csv(bench::results_path("ext_priority.csv"),
                  {"mode", "chat_ttft_p50_ms", "chat_ttft_p99_ms",
                   "batch_makespan_s", "throughput_tok_s"});

    bench::run_sweep(2, [&](std::size_t i) {
        const int prio = static_cast<int>(i);
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kShift;
        const auto met =
            bench::run_deployment_named(prio ? "priority scheduling"
                                             : "FCFS",
                                        d, build_workload(prio))
                .metrics;

        // Batch documents all arrive at t = 0; chat arrivals are strictly
        // later (Poisson inter-arrival > 0).
        Summary chat_ttft;
        double batch_done = 0.0;
        for (const auto& r : met.requests()) {
            if (r.arrival == 0.0)
                batch_done = std::max(batch_done, r.completion);
            else
                chat_ttft.add(to_ms(r.ttft));
        }
        return bench::SweepCommit([&, prio, met, chat_ttft, batch_done] {
            const char* name = prio ? "prioritized (chat > batch)"
                                    : "flat FCFS";
            table.add_row({name, Table::fmt(chat_ttft.percentile(50)),
                           Table::fmt(chat_ttft.percentile(99)),
                           Table::fmt(batch_done, 1),
                           Table::fmt_count(static_cast<long long>(
                               met.mean_throughput()))});
            csv.add_row({name, Table::fmt(chat_ttft.percentile(50), 2),
                         Table::fmt(chat_ttft.percentile(99), 2),
                         Table::fmt(batch_done, 2),
                         Table::fmt(met.mean_throughput(), 0)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: prioritized admission collapses chat TTFT while the\n"
        "batch job's makespan and total throughput move only marginally —\n"
        "QoS classes compose with Shift Parallelism.\n");
    return 0;
}
