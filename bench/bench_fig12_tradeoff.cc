/**
 * @file
 * Figure 12 (and the headline Figure 1): latency vs. throughput tradeoff.
 *
 * Workload per the paper: uniform requests of 4k input / 250 output tokens.
 * Minimum latency = requests processed one at a time; peak throughput =
 * thousands of requests with enough concurrency to saturate.
 *
 * Paper shape to reproduce (Section 4.3.1):
 *  - Shift TTFT lowest: ~1.56x lower than TP, ~6x lower than DP (Llama).
 *  - Shift TPOT lowest: ~9.34 ms (Llama), ~8.68 ms (Qwen).
 *  - TP loses ~46% throughput vs DP; Shift only ~18-23%.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

namespace {

void
run_model(const model::ModelConfig& m, CsvWriter* csv)
{
    constexpr std::int64_t kPrompt = 4096;
    constexpr std::int64_t kOutput = 250;

    std::printf("\n%s, 4k input / 250 output\n", m.name.c_str());
    Table table({"Strategy", "min TTFT (ms)", "min TPOT (ms)",
                 "peak throughput (tok/s)", "vs DP"});

    // "vs DP" relies on the DP point committing first; run_sweep commits
    // in index order and DP is index 0, so the dependency holds.
    double dp_throughput = 0.0;
    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t i) {
        const parallel::Strategy s = strategies[i];
        const auto lat = bench::min_latency(m, s, kPrompt, kOutput);
        const double thr =
            bench::peak_throughput(m, s, kPrompt, kOutput, /*requests=*/768);
        return bench::SweepCommit([&, s, lat, thr] {
            if (s == parallel::Strategy::kDp)
                dp_throughput = thr;
            table.add_row({parallel::strategy_name(s),
                           Table::fmt(to_ms(lat.ttft)),
                           Table::fmt(to_ms(lat.tpot), 2),
                           Table::fmt_count(static_cast<long long>(thr)),
                           Table::fmt(thr / dp_throughput * 100.0) + "%"});
            if (csv) {
                csv->add_row({m.name, parallel::strategy_name(s),
                              Table::fmt(to_ms(lat.ttft), 3),
                              Table::fmt(to_ms(lat.tpot), 3),
                              Table::fmt(thr, 1)});
            }
        });
    });
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 12 / Figure 1",
                        "Latency vs. throughput tradeoff across parallelisms");
    CsvWriter csv(bench::results_path("fig12_tradeoff.csv"),
                  {"model", "strategy", "ttft_ms", "tpot_ms",
                   "throughput_tok_s"});
    run_model(model::llama_70b(), &csv);
    run_model(model::qwen_32b(), &csv);
    std::printf(
        "\nPaper shape: Shift matches SP's (lowest) TTFT and TP's (lowest)\n"
        "TPOT simultaneously; TP loses ~46%% of DP's peak throughput while\n"
        "Shift loses only ~18-23%%.\n");
    return 0;
}
