/**
 * @file
 * Ablation (Section 3.2.1): SP's inference-specific generalizations.
 *
 * (a) Small-batch padding: decode batches are padded to a multiple of SP,
 *     wasting up to (SP-1)/batch of the compute — the reason SP's TPOT is
 *     the worst and the shift threshold exists.
 * (b) KV cache replication: Qwen-30B-A3B has only 4 KV heads; running
 *     SP=8 requires 2x KV replication, inflating per-GPU cache traffic
 *     and capacity cost relative to an unreplicated SP=4.
 * (c) Shift threshold sensitivity: step-time crossover between the base
 *     and shift configurations as a function of batch size.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "core/shift_controller.h"
#include "model/presets.h"
#include "parallel/memory.h"
#include "parallel/perf_model.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Ablation (Sec. 3.2.1)",
                        "SP generalizations: padding, KV replication, "
                        "threshold");
    const auto node = hw::h200_node();

    // ---- (a) Padding efficiency ------------------------------------------
    {
        const parallel::PerfModel perf(node, model::llama_70b());
        std::printf("\n(a) SP=8 decode padding: per-token step efficiency\n");
        Table t({"Batch", "Padded to", "Step (ms)", "Efficiency"});
        CsvWriter csv(bench::results_path("ablation_sp_padding.csv"),
                      {"batch", "padded", "step_ms", "efficiency"});
        for (std::int64_t b : {1LL, 7LL, 8LL, 9LL, 15LL, 16LL, 64LL}) {
            const double step = perf.decode_step_time(b, 2048, {8, 1});
            const std::int64_t padded = round_up(b, 8);
            const double eff =
                static_cast<double>(b) / static_cast<double>(padded);
            t.add_row({std::to_string(b), std::to_string(padded),
                       Table::fmt(to_ms(step), 2),
                       Table::fmt(100.0 * eff, 0) + "%"});
            csv.add_row({std::to_string(b), std::to_string(padded),
                         Table::fmt(to_ms(step), 3), Table::fmt(eff, 3)});
        }
        t.print();
        std::printf("paper: batch 9 on SP=8 pads to 16 -> 50%%+ waste; the\n"
                    "padding is why SP decode needs the shift to TP.\n");
    }

    // ---- (b) KV replication on Qwen-30B-A3B --------------------------------
    {
        const auto m = model::qwen_30b_a3b();
        std::printf("\n(b) Qwen-30B-A3B (4 KV heads): replication cost\n");
        Table t({"Config", "KV repl.", "KV bytes/token/GPU",
                 "Node KV capacity (tok)"});
        CsvWriter csv(bench::results_path("ablation_sp_replication.csv"),
                      {"config", "replication", "bytes_per_token_gpu",
                       "capacity_tokens"});
        for (const parallel::ParallelConfig cfg :
             {parallel::ParallelConfig{4, 1}, parallel::ParallelConfig{8, 1},
              parallel::ParallelConfig{4, 2}}) {
            const auto plan =
                parallel::plan_memory(m, node.gpu, cfg, false);
            const int rep = parallel::kv_replication(m, cfg);
            t.add_row({cfg.to_string(), std::to_string(rep) + "x",
                       Table::fmt(plan.kv_bytes_per_token_per_gpu, 0) + " B",
                       Table::fmt_count(plan.kv_token_capacity)});
            csv.add_row({cfg.to_string(), std::to_string(rep),
                         Table::fmt(plan.kv_bytes_per_token_per_gpu, 1),
                         std::to_string(plan.kv_token_capacity)});
        }
        t.print();
        std::printf("8-way groups pay 2x replication: per-GPU KV cost equals\n"
                    "the 4-way sharding — scaling enables SP=8 compute but\n"
                    "not extra cache capacity per token.\n");
    }

    // ---- (c) Shift threshold crossover -------------------------------------
    {
        std::printf("\n(c) Step-time crossover (base vs shift config)\n");
        Table t({"Model", "Base", "Auto threshold (tok)",
                 "shift wins at", "base wins at"});
        CsvWriter csv(bench::results_path("ablation_sp_threshold.csv"),
                      {"model", "base", "threshold"});
        for (const auto& m : model::table4_models()) {
            core::Deployment d;
            d.model = m;
            d.strategy = parallel::Strategy::kShift;
            const auto r = core::resolve(d);
            const parallel::PerfModel perf(node, m);
            const std::int64_t th = r.shift_threshold;
            t.add_row({m.name, r.base.to_string(), std::to_string(th),
                       "batch " + std::to_string(std::max<std::int64_t>(
                           1, th / 2)),
                       "batch " + std::to_string(th * 2)});
            csv.add_row({m.name, r.base.to_string(), std::to_string(th)});
        }
        t.print();
        std::printf("the controller picks the smallest batch where the base\n"
                    "(SP) step is no slower than the shift (TP) step.\n");
    }
    return 0;
}
