/**
 * @file
 * Sensitivity study (artifact appendix A.3.2): "Optimal configurations,
 * and hence the results may look different [on] another type of
 * multi-GPU node, yet the conclusion should be the same."
 *
 * Repeats the Fig.-12 comparison (Qwen-32B, 4k in / 250 out) on three
 * alternative nodes — 8x H100/NVSwitch, 8x A100/NVSwitch, and 8x H200
 * over PCIe (ring collectives) — and checks the paper's qualitative
 * conclusions hold: Shift matches the lowest TTFT and TPOT simultaneously
 * and retains most of DP's throughput, on every node.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

namespace {

void
run_node(const char* label, const hw::Node& node, CsvWriter* csv)
{
    std::printf("\n%s\n", label);
    const auto m = model::qwen_32b();
    Table table({"Strategy", "min TTFT (ms)", "min TPOT (ms)",
                 "peak throughput (tok/s)"});
    const auto& strategies = bench::comparison_strategies();
    bench::run_sweep(strategies.size(), [&](std::size_t i) {
        const parallel::Strategy s = strategies[i];
        core::Deployment d;
        d.model = m;
        d.node = node;
        d.strategy = s;

        const std::vector<engine::RequestSpec> one = {{0.0, 4096, 250}};
        const std::string series =
            std::string(label) + " " + parallel::strategy_name(s);
        const auto lone =
            bench::run_deployment_named(series + " (latency)", d, one)
                .metrics;
        const auto sat = bench::run_deployment_named(
                             series + " (saturated)", d,
                             workload::uniform_batch(512, 4096, 250))
                             .metrics;

        return bench::SweepCommit([&, s, lone, sat] {
            table.add_row({parallel::strategy_name(s),
                           Table::fmt(to_ms(lone.ttft().mean())),
                           Table::fmt(to_ms(lone.tpot().mean()), 2),
                           Table::fmt_count(static_cast<long long>(
                               sat.mean_throughput()))});
            if (csv) {
                csv->add_row({label, parallel::strategy_name(s),
                              Table::fmt(to_ms(lone.ttft().mean()), 2),
                              Table::fmt(to_ms(lone.tpot().mean()), 3),
                              Table::fmt(sat.mean_throughput(), 0)});
            }
        });
    });
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Sensitivity (A.3.2)",
                        "Do the conclusions hold on other nodes? "
                        "(Qwen-32B, 4k/250)");
    CsvWriter csv(bench::results_path("sensitivity_hw.csv"),
                  {"node", "strategy", "ttft_ms", "tpot_ms",
                   "throughput_tok_s"});

    run_node("8x H200 + NVSwitch (paper testbed)", hw::h200_node(), &csv);

    hw::Node b200;
    b200.gpu = hw::b200();
    b200.link = hw::nvswitch();
    b200.num_gpus = 8;
    run_node("8x B200 + NVSwitch", b200, &csv);

    hw::Node h100;
    h100.gpu = hw::h100();
    h100.link = hw::nvswitch();
    h100.num_gpus = 8;
    run_node("8x H100 + NVSwitch", h100, &csv);

    hw::Node a100;
    a100.gpu = hw::a100();
    a100.link = hw::nvswitch();
    a100.num_gpus = 8;
    run_node("8x A100 + NVSwitch (no FP8 cores)", a100, &csv);

    hw::Node pcie;
    pcie.gpu = hw::h200();
    pcie.link = hw::pcie_gen5();
    pcie.num_gpus = 8;
    run_node("8x H200 + PCIe Gen5 (ring collectives)", pcie, &csv);

    std::printf(
        "\nExpected: absolute numbers shift with the node, but on every\n"
        "NVSwitch fabric Shift matches SP's TTFT and TP's TPOT while\n"
        "retaining most of DP's throughput. On the slow PCIe ring, full-TP\n"
        "steps never beat the SP base, so the auto-tuned threshold makes\n"
        "Shift degenerate to pure SP — the controller adapts to the\n"
        "fabric, which is itself the paper's conclusion.\n");
    return 0;
}
