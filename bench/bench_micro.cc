/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself.
 *
 * These track the library's own performance (how fast experiments run),
 * not the modeled system's. They guard the hot paths: the per-step
 * analytical perf model, head-layout construction, KV-cache block
 * operations, the scheduler loop, and end-to-end engine throughput in
 * simulated requests per wall-clock second.
 */

#include <benchmark/benchmark.h>

#include "core/deployment.h"
#include "engine/engine.h"
#include "hw/presets.h"
#include "kvcache/cache_manager.h"
#include "model/presets.h"
#include "parallel/layout.h"
#include "parallel/perf_model.h"
#include "workload/synthetic.h"

using namespace shiftpar;

namespace {

void
BM_PerfModelPrefillStep(benchmark::State& state)
{
    const parallel::PerfModel perf(hw::h200_node(), model::llama_70b());
    const auto work = parallel::BatchWork::prefill(8192);
    for (auto _ : state) {
        benchmark::DoNotOptimize(perf.step_time(work, {8, 1}));
    }
}
BENCHMARK(BM_PerfModelPrefillStep);

void
BM_PerfModelMixedStep(benchmark::State& state)
{
    const parallel::PerfModel perf(hw::h200_node(), model::llama_70b());
    parallel::BatchWork work;
    for (int i = 0; i < state.range(0); ++i)
        work.chunks.push_back({1, 2048 + i, false});
    work.chunks.push_back({4096, 0, true});
    for (auto _ : state) {
        benchmark::DoNotOptimize(perf.step_time(work, {4, 2}));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PerfModelMixedStep)->Range(8, 1024)->Complexity();

void
BM_HeadLayoutBase(benchmark::State& state)
{
    const auto m = model::llama_70b();
    for (auto _ : state) {
        benchmark::DoNotOptimize(parallel::HeadLayout::base(m, {4, 2}));
    }
}
BENCHMARK(BM_HeadLayoutBase);

void
BM_CacheAppendRelease(benchmark::State& state)
{
    const auto m = model::llama_70b();
    kvcache::CacheManager cache(1 << 22,
                                kvcache::KvLayout::base(m, {1, 8}), 16);
    std::int64_t id = 0;
    for (auto _ : state) {
        cache.try_append(id, 2048);
        cache.release(id);
        ++id;
    }
}
BENCHMARK(BM_CacheAppendRelease);

void
BM_EngineDecodeSteps(benchmark::State& state)
{
    // Simulated decode steps executed per wall-clock second with a full
    // running batch.
    for (auto _ : state) {
        state.PauseTiming();
        engine::EngineConfig cfg;
        cfg.base = {1, 8};
        engine::Engine e(hw::h200_node(), model::llama_70b(), cfg,
                         std::make_unique<engine::FixedPolicy>(cfg.base));
        for (int i = 0; i < 64; ++i)
            e.submit({0.0, 256, 64}, i);
        state.ResumeTiming();
        e.drain();
        benchmark::DoNotOptimize(e.metrics().total_tokens());
    }
}
BENCHMARK(BM_EngineDecodeSteps)->Unit(benchmark::kMillisecond);

void
BM_EndToEndSaturation(benchmark::State& state)
{
    // A full Fig.-12-style saturation run: requests simulated per second
    // of wall clock.
    const auto workload = workload::uniform_batch(
        static_cast<int>(state.range(0)), 4096, 250);
    for (auto _ : state) {
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = parallel::Strategy::kShift;
        benchmark::DoNotOptimize(core::run_deployment(d, workload));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndSaturation)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
