/**
 * @file
 * Extension: automatic prefix caching on the agentic workload.
 *
 * The paper's motivating agentic traffic (Section 2.1: "a coding agent
 * typically issues a small number of repeated requests in a closed loop")
 * re-sends an ever-growing shared context every turn. vLLM serves that
 * shared prefix from the KV cache (APC); this bench quantifies the effect
 * under Shift Parallelism: prompt tokens actually prefilled, TTFT, and
 * completion time with caching on vs. off.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/agentic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (APC)",
                        "Automatic prefix caching on agentic sessions "
                        "(Llama-70B, Shift)");
    Rng rng(2026);
    workload::AgenticOptions wopts;
    wopts.num_agents = 24;
    wopts.turns_per_agent = 8;
    const auto reqs = workload::agentic_sessions(rng, wopts);
    std::int64_t prompt_tokens = 0;
    for (const auto& r : reqs)
        prompt_tokens += r.prompt_tokens;
    std::printf("workload: %zu requests from %d agents, %lld prompt "
                "tokens submitted\n",
                reqs.size(), wopts.num_agents,
                static_cast<long long>(prompt_tokens));

    Table table({"Prefix caching", "Tokens prefilled", "p50 TTFT (ms)",
                 "p99 TTFT (ms)", "p50 completion (s)", "Makespan (s)"});
    CsvWriter csv(bench::results_path("ext_prefix_cache.csv"),
                  {"apc", "tokens_processed", "ttft_p50_ms", "ttft_p99_ms",
                   "completion_p50_s", "makespan_s"});

    bench::run_sweep(2, [&](std::size_t i) {
        const bool apc = i == 1;
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = parallel::Strategy::kShift;
        d.sched.enable_prefix_caching = apc;
        const auto met =
            bench::run_deployment_named(
                apc ? "prefix caching on" : "prefix caching off", d, reqs)
                .metrics;
        return bench::SweepCommit([&, apc, met] {
            table.add_row({apc ? "on" : "off",
                           Table::fmt_count(met.total_tokens()),
                           Table::fmt(to_ms(met.ttft().percentile(50))),
                           Table::fmt(to_ms(met.ttft().percentile(99))),
                           Table::fmt(met.completion().percentile(50), 2),
                           Table::fmt(met.end_time(), 1)});
            csv.add_row({apc ? "on" : "off",
                         std::to_string(met.total_tokens()),
                         Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                         Table::fmt(to_ms(met.ttft().percentile(99)), 2),
                         Table::fmt(met.completion().percentile(50), 3),
                         Table::fmt(met.end_time(), 2)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: with APC the shared per-agent context prefills once\n"
        "per session instead of once per turn — most prompt tokens are\n"
        "served from cache, collapsing TTFT for turns 2..N.\n");
    return 0;
}
