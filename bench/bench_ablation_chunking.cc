/**
 * @file
 * Ablation (Section 5 related work): chunked-prefill token budget.
 *
 * The paper's experiments all run with chunked prefill enabled (the
 * Sarathi-Serve / DeepSpeed-FastGen technique, default in vLLM). The
 * per-iteration token budget trades the two latencies: big budgets finish
 * prefills in fewer steps (better TTFT) but make every co-scheduled decode
 * token wait for the whole chunk (worse TPOT). Shift Parallelism operates
 * on top of whatever budget is chosen; this ablation maps the tradeoff.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Ablation (chunked prefill)",
                        "Token-budget sweep (Llama-70B, Shift, mixed "
                        "traffic)");
    Rng rng(2026);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 3.0, 90.0), rng,
        workload::lognormal_size(6000.0, 0.8, 300.0, 0.5));

    Table table({"Budget (tok/step)", "p50 TTFT (ms)", "p99 TTFT (ms)",
                 "p50 TPOT (ms)", "p99 TPOT (ms)", "Throughput (tok/s)"});
    CsvWriter csv(bench::results_path("ablation_chunking.csv"),
                  {"budget", "ttft_p50_ms", "ttft_p99_ms", "tpot_p50_ms",
                   "tpot_p99_ms", "throughput_tok_s"});

    const std::vector<std::int64_t> budgets = {1024,  2048,  4096,
                                               8192, 16384, 65536};
    bench::run_sweep(budgets.size(), [&](std::size_t i) {
        const std::int64_t budget = budgets[i];
        core::Deployment d;
        d.model = model::llama_70b();
        d.strategy = parallel::Strategy::kShift;
        d.sched.max_batched_tokens = budget;
        const auto met =
            bench::run_deployment_named("budget " + std::to_string(budget),
                                        d, reqs)
                .metrics;
        return bench::SweepCommit([&, budget, met] {
            table.add_row({Table::fmt_count(budget),
                           Table::fmt(to_ms(met.ttft().percentile(50))),
                           Table::fmt(to_ms(met.ttft().percentile(99))),
                           Table::fmt(to_ms(met.tpot().percentile(50)), 2),
                           Table::fmt(to_ms(met.tpot().percentile(99)), 2),
                           Table::fmt_count(static_cast<long long>(
                               met.mean_throughput()))});
            csv.add_row({std::to_string(budget),
                         Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                         Table::fmt(to_ms(met.ttft().percentile(99)), 2),
                         Table::fmt(to_ms(met.tpot().percentile(50)), 3),
                         Table::fmt(to_ms(met.tpot().percentile(99)), 3),
                         Table::fmt(met.mean_throughput(), 0)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: TTFT falls as the budget grows (fewer chunks per\n"
        "prefill); TPOT tails rise (decode tokens ride in heavier steps).\n"
        "The paper's configuration (8k budget) sits at the knee.\n");
    return 0;
}
