/**
 * @file
 * Shared driver utilities for the per-figure benchmark binaries.
 *
 * Every bench binary reproduces one table/figure of the paper: it builds
 * deployments via these helpers, replays the figure's workload, prints an
 * aligned table of the same rows/series the paper reports, and writes a CSV
 * into bench_results/ for external plotting.
 */

#pragma once

#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/framework.h"
#include "engine/metrics.h"
#include "obs/chrome_trace.h"
#include "obs/report_json.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace shiftpar::bench {

/**
 * Parse the standard observability flags and arm the shared sinks. Call
 * first in every bench `main`:
 *
 *   --trace <path>   write a Chrome-trace/Perfetto JSON covering every
 *                    run the binary performs (load in ui.perfetto.dev)
 *   --report <path>  JSON run-report path (default:
 *                    bench_results/<figure-slug>.report.json)
 *   --no-report      disable the JSON run report
 *   --jobs <n>       parallel sweep workers for `run_sweep` (default:
 *                    hardware concurrency; results are byte-identical for
 *                    any value — see common/sweep.h)
 *   --profile        attach the sim-core self-profiler to every
 *                    deployment run and fold its attribution into the
 *                    self-observability metrics (report `metrics`
 *                    section / --metrics-out)
 *   --metrics-out <path>  write the process's metrics registry as a
 *                    Prometheus-style text exposition at exit
 *   --cost-model <roofline|kernel>  step-cost model for every deployment
 *                    the binary runs (default: roofline, bit-identical to
 *                    the pre-interface engine)
 *   --kernel-coeffs <path>  load per-kernel coefficients from a
 *                    `tools/calibrate` report (implies --cost-model
 *                    kernel; default: derived from the node's hardware)
 *
 * All outputs are flushed at process exit. Tracing and profiling are off
 * unless their flags are given; simulation results are bit-identical
 * either way.
 */
void init(int argc, char** argv);

/** Shared trace sink (null when `--trace` was not given). */
obs::TraceSink* trace();

/** Parsed `--jobs` value (defaults to hardware concurrency). */
int jobs();

/** @return whether `--profile` was given. */
bool profile_enabled();

/**
 * Shared run report that `run_deployment_named` records into. On a sweep
 * worker thread this resolves to the point's private buffer (see
 * `detail::set_thread_report`), so records never interleave across
 * concurrently simulated points.
 */
obs::ReportJson& report();

/**
 * Record a run performed outside `run_deployment_named` (disaggregated
 * systems, hand-built engines) into the shared report.
 */
void record_run(const std::string& name, const engine::Metrics& metrics);

/**
 * Label the next run in the shared trace (engines registered afterwards
 * appear under "<label>/..." tracks). No-op without `--trace`.
 */
void set_run_label(const std::string& label);

/** The four strategies every comparison figure sweeps. */
const std::vector<parallel::Strategy>& comparison_strategies();

/** A standard 8xH200 deployment of `model` under `strategy`. */
core::Deployment standard_deployment(const model::ModelConfig& model,
                                     parallel::Strategy strategy);

/** Result of one strategy run. */
struct RunResult
{
    std::string name;
    core::ResolvedDeployment resolved;
    engine::Metrics metrics;
};

/** Build + replay `workload` under `strategy`; returns merged metrics. */
RunResult run_strategy(const model::ModelConfig& model,
                       parallel::Strategy strategy,
                       const std::vector<engine::RequestSpec>& workload);

/** As `run_strategy` but with a fully specified deployment. */
RunResult run_deployment_named(const std::string& name,
                               const core::Deployment& d,
                               const std::vector<engine::RequestSpec>& workload);

/** Single-request latency probe (the paper's "minimum latency" points). */
struct LatencyProbe
{
    double ttft = 0.0;       ///< seconds
    double tpot = 0.0;       ///< seconds
    double completion = 0.0; ///< seconds
};

/**
 * Measure minimum latency: one request processed alone (requests
 * sequentially, no queueing).
 */
LatencyProbe min_latency(const model::ModelConfig& model,
                         parallel::Strategy strategy, std::int64_t prompt,
                         std::int64_t output);

/**
 * Measure peak combined throughput: saturate with `num_requests` uniform
 * requests arriving at t=0 and divide total tokens by makespan.
 */
double peak_throughput(const model::ModelConfig& model,
                       parallel::Strategy strategy, std::int64_t prompt,
                       std::int64_t output, int num_requests = 512);

/** Print the standard figure banner. */
void print_banner(const std::string& figure, const std::string& title);

/** Path under bench_results/ for persisting a figure's CSV. */
std::string results_path(const std::string& filename);

namespace detail {

/**
 * Redirect this thread's report records (`report()`, `record_run`,
 * `run_deployment_named`) into `buffer`; null restores the shared report.
 * Used by the sweep runner to give each point a private buffer that is
 * merged into the shared report in point order.
 */
void set_thread_report(obs::ReportJson* buffer);

/** @return whether `--no-report` was NOT given. */
bool report_enabled();

/** Override the `--jobs` value programmatically (tests). */
void set_jobs(int jobs);

} // namespace detail

} // namespace shiftpar::bench
