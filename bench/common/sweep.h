/**
 * @file
 * Parallel sweep runner for the bench binaries.
 *
 * Every figure sweeps independent deployment points (strategy x model x
 * rate x ...), each a self-contained `core::run_deployment` simulation.
 * `run_sweep` executes those points on a `util::ThreadPool` sized by the
 * `--jobs` flag while keeping every output byte-identical to a sequential
 * (`--jobs 1`) run:
 *
 *  - a point function must depend only on its index (derive per-point RNG
 *    streams from fixed seeds; never thread one generator through points),
 *    so simulation results are the same on any worker;
 *  - a point returns a *commit* closure holding its side effects (table
 *    rows, CSV rows, prints); commits run on the calling thread in index
 *    order, exactly as a sequential loop would have emitted them;
 *  - report records made while a point computes (via `record_run` /
 *    `run_deployment_named`) land in a per-point buffer that is merged
 *    into the shared report in index order.
 *
 * Traced runs (`--trace`) are serialized onto the calling thread: the
 * trace buffer's event order depends on thread interleaving, so parallel
 * workers would produce a nondeterministic (although valid) trace.
 */

#pragma once

#include <cstddef>
#include <functional>

namespace shiftpar::bench {

/** A sweep point's deferred side effects; may be empty (no effects). */
using SweepCommit = std::function<void()>;

/**
 * A sweep point: simulate point `i` and return its commit closure. Runs
 * on a worker thread — only touch shared state through the returned
 * commit (or the report helpers, which are redirected per point).
 */
using SweepPointFn = std::function<SweepCommit(std::size_t)>;

/**
 * Execute `n` sweep points with up to `--jobs` workers and apply their
 * commits in index order. Blocks until every point has committed.
 */
void run_sweep(std::size_t n, const SweepPointFn& point);

/**
 * Worker count `run_sweep` will actually use for `n` points: `--jobs`
 * clamped to `n`, forced to 1 while tracing is enabled.
 */
int effective_jobs(std::size_t n);

} // namespace shiftpar::bench
