#include "common/sweep.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "common/bench_common.h"
#include "obs/metrics_registry.h"
#include "util/thread_pool.h"

namespace shiftpar::bench {

int
effective_jobs(std::size_t n)
{
    if (trace())
        return 1;  // keep the shared trace buffer's event order stable
    const std::size_t cap = std::max<std::size_t>(n, 1);
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs()), cap));
}

void
run_sweep(std::size_t n, const SweepPointFn& point)
{
    if (n == 0)
        return;
    // Points record self-observability metrics into per-point buffers
    // that fold into the caller's registry in index order — on BOTH
    // paths. Folding (not direct recording) is what keeps histogram
    // float sums byte-identical at any --jobs N: the sequential path
    // must perform the same merge operations in the same order as the
    // parallel one, or the two would differ in the last ulp.
    obs::MetricsRegistry& parent = obs::MetricsRegistry::current();
    if (effective_jobs(n) <= 1) {
        // Sequential reference path: compute and commit inline. The
        // parallel path below must be byte-identical to this one.
        for (std::size_t i = 0; i < n; ++i) {
            obs::MetricsRegistry buffer;
            obs::MetricsRegistry* prev =
                obs::MetricsRegistry::set_thread_override(&buffer);
            SweepCommit commit = point(i);
            obs::MetricsRegistry::set_thread_override(prev);
            parent.merge_from(buffer);
            if (commit)
                commit();
        }
        return;
    }

    struct Slot
    {
        obs::ReportJson buffer;           ///< point-local report records
        obs::MetricsRegistry metrics;     ///< point-local metric records
        SweepCommit commit;
        bool ready = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mutex;
    std::condition_variable done;

    util::ThreadPool pool(effective_jobs(n));
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            detail::set_thread_report(&slots[i].buffer);
            obs::MetricsRegistry* prev =
                obs::MetricsRegistry::set_thread_override(&slots[i].metrics);
            SweepCommit commit = point(i);
            obs::MetricsRegistry::set_thread_override(prev);
            detail::set_thread_report(nullptr);
            {
                std::lock_guard<std::mutex> lock(mutex);
                slots[i].commit = std::move(commit);
                slots[i].ready = true;
            }
            done.notify_all();
        });
    }

    // Reorder buffer: commit each point as soon as it and all of its
    // predecessors are done, giving progressive output in index order.
    for (std::size_t i = 0; i < n; ++i) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            done.wait(lock, [&] { return slots[i].ready; });
        }
        if (detail::report_enabled())
            report().merge_from(std::move(slots[i].buffer));
        parent.merge_from(slots[i].metrics);
        if (slots[i].commit)
            slots[i].commit();
    }
}

} // namespace shiftpar::bench
