#include "common/sweep.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "common/bench_common.h"
#include "util/thread_pool.h"

namespace shiftpar::bench {

int
effective_jobs(std::size_t n)
{
    if (trace())
        return 1;  // keep the shared trace buffer's event order stable
    const std::size_t cap = std::max<std::size_t>(n, 1);
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs()), cap));
}

void
run_sweep(std::size_t n, const SweepPointFn& point)
{
    if (n == 0)
        return;
    if (effective_jobs(n) <= 1) {
        // Sequential reference path: compute and commit inline. The
        // parallel path below must be byte-identical to this one.
        for (std::size_t i = 0; i < n; ++i) {
            if (SweepCommit commit = point(i))
                commit();
        }
        return;
    }

    struct Slot
    {
        obs::ReportJson buffer;  ///< point-local report records
        SweepCommit commit;
        bool ready = false;
    };
    std::vector<Slot> slots(n);
    std::mutex mutex;
    std::condition_variable done;

    util::ThreadPool pool(effective_jobs(n));
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            detail::set_thread_report(&slots[i].buffer);
            SweepCommit commit = point(i);
            detail::set_thread_report(nullptr);
            {
                std::lock_guard<std::mutex> lock(mutex);
                slots[i].commit = std::move(commit);
                slots[i].ready = true;
            }
            done.notify_all();
        });
    }

    // Reorder buffer: commit each point as soon as it and all of its
    // predecessors are done, giving progressive output in index order.
    for (std::size_t i = 0; i < n; ++i) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            done.wait(lock, [&] { return slots[i].ready; });
        }
        if (detail::report_enabled())
            report().merge_from(std::move(slots[i].buffer));
        if (slots[i].commit)
            slots[i].commit();
    }
}

} // namespace shiftpar::bench
