#include "common/bench_common.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "obs/metrics_registry.h"
#include "sim/profiler.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace shiftpar::bench {

namespace {

/** Process-wide observability state armed by `init`. */
struct ObsState
{
    std::unique_ptr<obs::ChromeTraceWriter> trace;
    std::string trace_path;
    obs::ReportJson report;
    std::string report_path;
    bool report_enabled = true;
    bool report_path_forced = false;
    int jobs = util::ThreadPool::default_concurrency();
    bool profile = false;
    std::string metrics_path;

    /** `--cost-model` / `--kernel-coeffs` selection; applied to every
     *  deployment the binary runs only when a flag was given, so default
     *  invocations construct deployments exactly as before. */
    parallel::CostModelSpec cost;
    bool cost_forced = false;
};

/** Per-thread report override installed by the sweep runner. */
thread_local obs::ReportJson* tls_report = nullptr;

ObsState&
obs_state()
{
    static ObsState state;
    return state;
}

/** "Figure 7 — Bursty workload" -> "figure_7". */
std::string
slugify(const std::string& s)
{
    std::string slug;
    for (const char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            slug.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!slug.empty() && slug.back() != '_') {
            slug.push_back('_');
        }
    }
    while (!slug.empty() && slug.back() == '_')
        slug.pop_back();
    return slug.empty() ? "report" : slug;
}

void
flush_outputs()
{
    ObsState& o = obs_state();
    if (o.trace && !o.trace_path.empty()) {
        o.trace->write_file(o.trace_path);
        std::printf("\ntrace: wrote %s (%zu events)\n", o.trace_path.c_str(),
                    o.trace->num_events());
    }
    // The self-observability registry rides along in the run report (and
    // the optional exposition file); an empty registry leaves both outputs
    // byte-identical to the pre-registry era.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    if (o.report_enabled && !registry.empty())
        o.report.set_metrics(registry.snapshot());
    if (o.report_enabled && o.report.num_runs() > 0 &&
        !o.report_path.empty()) {
        o.report.write_file(o.report_path);
        std::printf("report: wrote %s (%zu runs)\n", o.report_path.c_str(),
                    o.report.num_runs());
    }
    if (!o.metrics_path.empty()) {
        const auto parent =
            std::filesystem::path(o.metrics_path).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream os(o.metrics_path);
        if (!os) {
            fatal("cannot open metrics output file '" + o.metrics_path +
                  "'");
        }
        registry.write_prometheus(os);
        std::printf("metrics: wrote %s\n", o.metrics_path.c_str());
    }
}

/** Fold one run's cluster profile into this thread's metrics registry. */
void
record_profile(const sim::ClusterProfile& prof)
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
    reg.counter_add("shiftpar_sim_events_fired_total", prof.events_fired);
    for (const auto& [kind, s] : prof.components) {
        reg.counter_add("shiftpar_sim_component_advances_total", s.advances,
                        {{"kind", kind}});
        reg.counter_add("shiftpar_sim_component_stalls_total", s.stalls,
                        {{"kind", kind}});
        reg.observe("shiftpar_sim_component_wall_seconds", s.wall_s,
                    {{"kind", kind}});
    }
    reg.observe("shiftpar_sim_run_wall_seconds", prof.run_wall_s);
    reg.observe("shiftpar_sim_event_wall_seconds", prof.event_wall_s);
    reg.observe("shiftpar_sim_events_per_second", prof.events_per_sec());
    reg.gauge_max("shiftpar_sim_queue_depth_high_water",
                  static_cast<double>(prof.queue_high_water));
    reg.counter_add("shiftpar_sim_heap_ops_total", prof.heap_pushes,
                    {{"op", "push"}});
    reg.counter_add("shiftpar_sim_heap_ops_total", prof.heap_pops,
                    {{"op", "pop"}});
    reg.counter_add("shiftpar_sim_heap_ops_total", prof.heap_cancels,
                    {{"op", "cancel"}});
    reg.counter_add("shiftpar_sim_ready_ops_total", prof.ready_pushes,
                    {{"op", "push"}});
    reg.counter_add("shiftpar_sim_ready_ops_total", prof.ready_pops,
                    {{"op", "pop"}});
    reg.counter_add("shiftpar_sim_ready_ops_total", prof.ready_skips,
                    {{"op", "skip"}});
    reg.counter_add("shiftpar_sim_ready_ops_total", prof.ready_rebuilds,
                    {{"op", "rebuild"}});
    reg.gauge_max("shiftpar_process_peak_rss_bytes",
                  static_cast<double>(util::peak_rss_bytes()));
}

} // namespace

void
init(int argc, char** argv)
{
    ObsState& o = obs_state();
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
            o.trace = std::make_unique<obs::ChromeTraceWriter>();
            o.trace_path = argv[++i];
        } else if (std::strcmp(arg, "--report") == 0 && i + 1 < argc) {
            o.report_path = argv[++i];
            o.report_path_forced = true;
        } else if (std::strcmp(arg, "--no-report") == 0) {
            o.report_enabled = false;
        } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            o.jobs = std::atoi(argv[++i]);
            if (o.jobs < 1)
                fatal("--jobs requires a positive worker count");
        } else if (std::strcmp(arg, "--profile") == 0) {
            o.profile = true;
        } else if (std::strcmp(arg, "--metrics-out") == 0 && i + 1 < argc) {
            o.metrics_path = argv[++i];
        } else if (std::strcmp(arg, "--cost-model") == 0 && i + 1 < argc) {
            o.cost.kind = model::parse_cost_model_kind(argv[++i]);
            o.cost_forced = true;
        } else if (std::strcmp(arg, "--kernel-coeffs") == 0 &&
                   i + 1 < argc) {
            o.cost.coeffs = hw::load_calibrated_coeffs(argv[++i]);
            o.cost.kind = model::CostModelKind::kKernel;
            o.cost_forced = true;
        } else {
            fatal(std::string("unknown argument '") + arg +
                  "' (expected --trace <path>, --report <path>, "
                  "--no-report, --jobs <n>, --profile, "
                  "--metrics-out <path>, --cost-model <roofline|kernel>, "
                  "--kernel-coeffs <path>)");
        }
    }
    // Construct the global registry (and obs_state above) before
    // registering the atexit flush: statics are destroyed in reverse
    // construction/registration order, so anything flush_outputs touches
    // must already exist here or it would be torn down first.
    obs::MetricsRegistry::global();
    std::atexit(flush_outputs);
}

obs::TraceSink*
trace()
{
    return obs_state().trace.get();
}

int
jobs()
{
    return obs_state().jobs;
}

bool
profile_enabled()
{
    return obs_state().profile;
}

obs::ReportJson&
report()
{
    return tls_report ? *tls_report : obs_state().report;
}

void
record_run(const std::string& name, const engine::Metrics& metrics)
{
    if (obs_state().report_enabled)
        report().add_run(name, metrics);
}

void
set_run_label(const std::string& label)
{
    ObsState& o = obs_state();
    if (o.trace)
        o.trace->set_run_label(label);
}

const std::vector<parallel::Strategy>&
comparison_strategies()
{
    static const std::vector<parallel::Strategy> strategies = {
        parallel::Strategy::kDp,
        parallel::Strategy::kTp,
        parallel::Strategy::kSp,
        parallel::Strategy::kShift,
    };
    return strategies;
}

core::Deployment
standard_deployment(const model::ModelConfig& model,
                    parallel::Strategy strategy)
{
    core::Deployment d;
    d.model = model;
    d.node = hw::h200_node();
    d.strategy = strategy;
    const ObsState& o = obs_state();
    if (o.cost_forced)
        d.cost = o.cost;
    return d;
}

RunResult
run_strategy(const model::ModelConfig& model, parallel::Strategy strategy,
             const std::vector<engine::RequestSpec>& workload)
{
    return run_deployment_named(parallel::strategy_name(strategy),
                                standard_deployment(model, strategy),
                                workload);
}

RunResult
run_deployment_named(const std::string& name, const core::Deployment& d,
                     const std::vector<engine::RequestSpec>& workload)
{
    ObsState& o = obs_state();
    core::Deployment traced = d;
    if (o.cost_forced)
        traced.cost = o.cost;
    if (o.trace) {
        o.trace->set_run_label(name);
        traced.trace = o.trace.get();
    }
    sim::ClusterProfile prof;
    if (o.profile)
        traced.profile = &prof;
    RunResult result;
    result.name = name;
    result.resolved = core::resolve(traced);
    result.metrics =
        core::build(traced, result.resolved)->run_workload(workload);
    if (o.profile)
        record_profile(prof);
    if (o.report_enabled) {
        obs::RunDeploymentInfo info;
        info.description = result.resolved.describe();
        info.sp = result.resolved.base.sp;
        info.tp = result.resolved.base.tp;
        info.replicas = result.resolved.replicas;
        info.shift_threshold = result.resolved.shift_threshold;
        if (result.resolved.cost_kind != model::CostModelKind::kRoofline) {
            info.cost_model =
                model::cost_model_kind_name(result.resolved.cost_kind);
        }
        report().add_run(name, result.metrics, info);
    }
    return result;
}

LatencyProbe
min_latency(const model::ModelConfig& model, parallel::Strategy strategy,
            std::int64_t prompt, std::int64_t output)
{
    // One isolated request: no queueing, pure engine latency.
    const std::vector<engine::RequestSpec> one = {{0.0, prompt, output}};
    const RunResult run = run_strategy(model, strategy, one);
    SP_ASSERT(run.metrics.requests().size() == 1);
    const auto& rec = run.metrics.requests().front();
    return {rec.ttft, rec.tpot, rec.completion};
}

double
peak_throughput(const model::ModelConfig& model, parallel::Strategy strategy,
                std::int64_t prompt, std::int64_t output, int num_requests)
{
    const auto workload =
        workload::uniform_batch(num_requests, prompt, output);
    const RunResult run = run_strategy(model, strategy, workload);
    return run.metrics.mean_throughput();
}

void
print_banner(const std::string& figure, const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("================================================================\n");
    ObsState& o = obs_state();
    o.report.set_title(figure + " — " + title);
    if (!o.report_path_forced)
        o.report_path = results_path(slugify(figure) + ".report.json");
}

std::string
results_path(const std::string& filename)
{
    return "bench_results/" + filename;
}

namespace detail {

void
set_thread_report(obs::ReportJson* buffer)
{
    tls_report = buffer;
}

bool
report_enabled()
{
    return obs_state().report_enabled;
}

void
set_jobs(int jobs)
{
    SP_ASSERT(jobs >= 1);
    obs_state().jobs = jobs;
}

} // namespace detail

} // namespace shiftpar::bench
