#include "common/bench_common.h"

#include <cstdio>

#include "util/logging.h"

namespace shiftpar::bench {

const std::vector<parallel::Strategy>&
comparison_strategies()
{
    static const std::vector<parallel::Strategy> strategies = {
        parallel::Strategy::kDp,
        parallel::Strategy::kTp,
        parallel::Strategy::kSp,
        parallel::Strategy::kShift,
    };
    return strategies;
}

core::Deployment
standard_deployment(const model::ModelConfig& model,
                    parallel::Strategy strategy)
{
    core::Deployment d;
    d.model = model;
    d.node = hw::h200_node();
    d.strategy = strategy;
    return d;
}

RunResult
run_strategy(const model::ModelConfig& model, parallel::Strategy strategy,
             const std::vector<engine::RequestSpec>& workload)
{
    return run_deployment_named(parallel::strategy_name(strategy),
                                standard_deployment(model, strategy),
                                workload);
}

RunResult
run_deployment_named(const std::string& name, const core::Deployment& d,
                     const std::vector<engine::RequestSpec>& workload)
{
    RunResult result;
    result.name = name;
    result.resolved = core::resolve(d);
    result.metrics = core::run_deployment(d, workload);
    return result;
}

LatencyProbe
min_latency(const model::ModelConfig& model, parallel::Strategy strategy,
            std::int64_t prompt, std::int64_t output)
{
    // One isolated request: no queueing, pure engine latency.
    const std::vector<engine::RequestSpec> one = {{0.0, prompt, output}};
    const RunResult run = run_strategy(model, strategy, one);
    SP_ASSERT(run.metrics.requests().size() == 1);
    const auto& rec = run.metrics.requests().front();
    return {rec.ttft, rec.tpot, rec.completion};
}

double
peak_throughput(const model::ModelConfig& model, parallel::Strategy strategy,
                std::int64_t prompt, std::int64_t output, int num_requests)
{
    const auto workload =
        workload::uniform_batch(num_requests, prompt, output);
    const RunResult run = run_strategy(model, strategy, workload);
    return run.metrics.mean_throughput();
}

void
print_banner(const std::string& figure, const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("================================================================\n");
}

std::string
results_path(const std::string& filename)
{
    return "bench_results/" + filename;
}

} // namespace shiftpar::bench
