/**
 * @file
 * Figure 17: peak throughput and minimum latency across all four Table 4
 * models and input sequence lengths, including the MoE generalizations of
 * Section 4.6 (combined (SP=4, TP=2) base for Llama-17B-16E; KV cache
 * replication for Qwen-30B-A3B's 4 KV heads on 8 GPUs).
 *
 * Paper shape: sparse (MoE) models attain higher throughput and lower
 * latency than the dense models (fewer active parameters); Shift attains
 * up to 50% higher throughput than TP without increasing latency; the
 * smallest model's throughput is highest under DP (engine overhead
 * penalizes the single-engine strategies hardest on small models).
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 17",
                        "All models x sequence lengths x parallelisms");
    CsvWriter csv(bench::results_path("fig17_models.csv"),
                  {"model", "strategy", "input_tokens", "ttft_ms",
                   "tpot_ms", "throughput_tok_s"});

    for (const auto& m : model::table4_models()) {
        core::Deployment probe;
        probe.model = m;
        probe.strategy = parallel::Strategy::kShift;
        const auto resolved = core::resolve(probe);
        std::printf("\n%s — shift base %s (TTFT ms | TPOT ms | peak tok/s)\n",
                    m.name.c_str(), resolved.base.to_string().c_str());

        Table table({"Input", "DP", "TP", "SP", "Shift"});
        const std::vector<std::int64_t> inputs = {2048, 8192, 32768};
        const auto& strategies = bench::comparison_strategies();
        std::vector<std::string> row;
        bench::run_sweep(
            inputs.size() * strategies.size(), [&](std::size_t idx) {
                const std::int64_t input = inputs[idx / strategies.size()];
                const parallel::Strategy s =
                    strategies[idx % strategies.size()];
                const int nreq = input >= 32768 ? 64 : 256;
                const auto lat = bench::min_latency(m, s, input, 250);
                const double thr =
                    bench::peak_throughput(m, s, input, 250, nreq);
                return bench::SweepCommit([&, input, s, lat, thr] {
                    if (row.empty()) {
                        row.push_back(
                            Table::fmt_count(static_cast<long long>(input)));
                    }
                    row.push_back(Table::fmt(to_ms(lat.ttft), 0) + " | " +
                                  Table::fmt(to_ms(lat.tpot), 1) + " | " +
                                  Table::fmt_count(
                                      static_cast<long long>(thr)));
                    csv.add_row({m.name, parallel::strategy_name(s),
                                 std::to_string(input),
                                 Table::fmt(to_ms(lat.ttft), 2),
                                 Table::fmt(to_ms(lat.tpot), 3),
                                 Table::fmt(thr, 0)});
                    if (row.size() == strategies.size() + 1) {
                        table.add_row(row);
                        row.clear();
                    }
                });
            });
        table.print();
    }
    std::printf(
        "\nPaper's Fig. 17: MoE models are faster than dense (fewer active\n"
        "params); Shift gives up to 50%% more throughput than TP at equal\n"
        "latency; the smallest model (Qwen-30B-A3B) peaks under DP because\n"
        "engine overhead dominates the single-engine strategies.\n");
    return 0;
}
