/**
 * @file
 * Figure 16: the production stack vs. open-source frameworks, and the
 * compounding effect of Shift Parallelism + SwiftKV + speculative
 * decoding (Llama-70B, real-world-style mixed dataset).
 *
 * Paper shape: each framework's latency-optimized (TP) and
 * throughput-optimized (DP) deployments trade off against each other; the
 * combined production stack achieves simultaneously the highest
 * throughput and lowest completion time, with SwiftKV and speculative
 * decoding compounding on top of Shift Parallelism.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/mix.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Figure 16",
                        "Production stack vs. frameworks (Llama-70B, mixed "
                        "real-world dataset)");
    Rng rng(2026);
    workload::MixOptions mopts;
    mopts.num_requests = 700;
    mopts.rate = 6.0;
    const auto reqs = workload::production_mix(rng, mopts);
    const auto m = model::llama_70b();
    const auto node = hw::h200_node();

    Table table({"System", "Mean completion (s)", "p99 completion (s)",
                 "Throughput (tok/s)"});
    CsvWriter csv(bench::results_path("fig16_production.csv"),
                  {"system", "mean_completion_s", "p99_completion_s",
                   "throughput_tok_s"});

    // Materialize every deployment up front so the sweep points are a
    // pure function of their index.
    std::vector<std::pair<std::string, core::Deployment>> systems;

    // Out-of-the-box frameworks: latency (TP) and throughput (DP) configs.
    for (const auto& p : {core::vllm_baseline(), core::sglang(),
                          core::trt_llm()}) {
        systems.emplace_back(
            p.name + " (latency opt. TP)",
            core::make_deployment(p, m, node, parallel::Strategy::kTp));
        systems.emplace_back(
            p.name + " (throughput opt. DP)",
            core::make_deployment(p, m, node, parallel::Strategy::kDp));
    }

    // The compounding ladder of our stack.
    {
        core::Deployment d;
        d.model = m;
        d.node = node;
        d.strategy = parallel::Strategy::kShift;
        systems.emplace_back("Ours: Shift only", d);
        d.swiftkv = core::SwiftKv{};
        systems.emplace_back("Ours: Shift + SwiftKV", d);
        d.spec_decode = core::ours().spec_decode;
        systems.emplace_back("Ours: Shift + SwiftKV + Spec", d);
    }

    bench::run_sweep(systems.size(), [&](std::size_t i) {
        const std::string& name = systems[i].first;
        const auto run =
            bench::run_deployment_named(name, systems[i].second, reqs);
        const auto met = run.metrics;
        return bench::SweepCommit([&, &name = systems[i].first, met] {
            table.add_row({name, Table::fmt(met.completion().mean(), 2),
                           Table::fmt(met.completion().percentile(99), 2),
                           Table::fmt_count(static_cast<long long>(
                               met.mean_throughput()))});
            csv.add_row({name, Table::fmt(met.completion().mean(), 3),
                         Table::fmt(met.completion().percentile(99), 3),
                         Table::fmt(met.mean_throughput(), 0)});
        });
    });

    table.print();
    std::printf(
        "\nPaper's Fig. 16: the combined stack is simultaneously the\n"
        "fastest (3.4x lower completion than the best latency-optimized\n"
        "framework config) and the cheapest (1.06x higher throughput than\n"
        "the best throughput-optimized config), with SwiftKV and\n"
        "speculative decoding compounding.\n");
    return 0;
}
