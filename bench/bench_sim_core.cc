/**
 * @file
 * Sim-core microbenchmark: how fast does the discrete-event cluster loop
 * itself go?
 *
 * ROADMAP item 1 wants the core's events/sec tracked across PRs so loop
 * regressions are caught when they land, not when a figure bench gets
 * slow. This driver replays synthetic N-engine / M-request fleets built
 * from trivial components (fixed-cost work units, no perf model), so the
 * measured time is almost entirely `Cluster::run` + `EventQueue` — the
 * loop, not the payload. Results append to a trajectory file
 * (`bench_results/BENCH_simcore.json`, schema "shiftpar.bench_simcore")
 * keyed by `--label`; re-running a label replaces its entry. CI runs
 * `--short` and validates the schema (see tools/plot_results.py for the
 * trajectory plot).
 *
 * Flags:
 *   --out <path>    trajectory file (default bench_results/BENCH_simcore.json)
 *   --label <name>  entry label, e.g. a PR number or "dev" (default "dev")
 *   --short         one small fleet only, for CI smoke
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/profiler.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace {

using namespace shiftpar;

constexpr const char* kSchema = "shiftpar.bench_simcore";
constexpr int kSchemaVersion = 1;

/** Synthetic engine: drains queued work one fixed-cost step at a time. */
class ToyEngine final : public sim::Component
{
  public:
    explicit ToyEngine(double step_s) : step_s_(step_s) {}

    const char* kind() const override { return "toy_engine"; }

    double
    next_event_time() const override
    {
        return pending_ > 0 ? now_
                            : std::numeric_limits<double>::infinity();
    }

    bool
    advance_to(double t) override
    {
        now_ = std::max(now_, t) + step_s_;
        --pending_;
        return true;
    }

    void
    enqueue(int units)
    {
        pending_ += units;
        notify_ready_changed();  // mutated from an event closure
    }

  private:
    double now_ = 0.0;
    double step_s_;
    int pending_ = 0;
};

/** One fleet shape to measure. */
struct Config
{
    int engines = 0;
    int requests = 0;
};

/** One measured point of the trajectory. */
struct Sample
{
    std::int64_t engines = 0;
    std::int64_t requests = 0;
    std::int64_t events_fired = 0;
    std::int64_t component_advances = 0;
    double wall_s = 0.0;
    /** Units of progress (events + advances) per host second. */
    double events_per_sec = 0.0;
    std::int64_t peak_rss_bytes = 0;
    std::int64_t queue_high_water = 0;
    std::int64_t heap_pushes = 0;
    std::int64_t heap_pops = 0;
};

/** A labelled run of every config (one per PR/bench invocation). */
struct Entry
{
    std::string label;
    std::vector<Sample> samples;
};

/**
 * Replay one synthetic fleet under the self-profiler. Arrivals land
 * round-robin; every 16th request also posts a decoy future event that is
 * cancelled before the run, exercising the queue's lazy-cancellation path.
 */
sim::ClusterProfile
run_fleet(const Config& cfg)
{
    sim::Cluster cluster;
    sim::ClusterProfile prof;
    cluster.set_profile(&prof);

    std::vector<ToyEngine> fleet(static_cast<std::size_t>(cfg.engines),
                                 ToyEngine(50e-6));
    for (ToyEngine& e : fleet)
        cluster.add(&e);

    std::vector<sim::EventId> decoys;
    for (int i = 0; i < cfg.requests; ++i) {
        const double t = 1e-4 * i;
        ToyEngine& target =
            fleet[static_cast<std::size_t>(i % cfg.engines)];
        const int units = 2 + i % 6;
        cluster.post(t, [&target, units] { target.enqueue(units); });
        if (i % 16 == 0)
            decoys.push_back(cluster.post(t + 1.0, [] {}));
    }
    for (const sim::EventId id : decoys)
        cluster.cancel_event(id);

    cluster.run();
    return prof;
}

/** Best-of-N measurement of one config (counts are deterministic). */
Sample
measure(const Config& cfg)
{
    constexpr int kReps = 3;
    sim::ClusterProfile best;
    for (int rep = 0; rep < kReps; ++rep) {
        const sim::ClusterProfile prof = run_fleet(cfg);
        if (rep == 0 || prof.run_wall_s < best.run_wall_s)
            best = prof;
    }

    Sample s;
    s.engines = cfg.engines;
    s.requests = cfg.requests;
    s.events_fired = best.events_fired;
    for (const auto& [kind, k] : best.components)
        s.component_advances += k.advances;
    s.wall_s = best.run_wall_s;
    s.events_per_sec =
        best.run_wall_s > 0.0
            ? static_cast<double>(best.units()) / best.run_wall_s
            : 0.0;
    s.peak_rss_bytes =
        static_cast<std::int64_t>(util::peak_rss_bytes());
    s.queue_high_water = best.queue_high_water;
    s.heap_pushes = best.heap_pushes;
    s.heap_pops = best.heap_pops;
    return s;
}

std::int64_t
require_int(const util::JsonValue& v, const std::string& key)
{
    return static_cast<std::int64_t>(v.at(key).num());
}

/**
 * Load an existing trajectory file, dropping any entry named `skip_label`
 * (the caller is about to re-record it). Fatal on schema mismatch: a
 * trajectory that silently mixed schemas would poison every later plot.
 */
std::vector<Entry>
load_entries(const std::string& path, const std::string& skip_label)
{
    std::vector<Entry> entries;
    std::ifstream is(path);
    if (!is)
        return entries;
    std::ostringstream buf;
    buf << is.rdbuf();

    util::JsonValue root;
    try {
        root = util::parse_json(buf.str());
    } catch (const std::exception& e) {
        fatal("cannot parse existing trajectory '" + path +
              "': " + e.what());
    }
    if (!root.is_object() || !root.has("schema") ||
        root.at("schema").str() != kSchema ||
        static_cast<int>(root.at("version").num()) != kSchemaVersion) {
        fatal("'" + path + "' is not a " + kSchema + " v" +
              std::to_string(kSchemaVersion) + " trajectory file");
    }
    for (const util::JsonValue& e : root.at("entries").arr()) {
        Entry entry;
        entry.label = e.at("label").str();
        if (entry.label == skip_label)
            continue;
        for (const util::JsonValue& c : e.at("configs").arr()) {
            Sample s;
            s.engines = require_int(c, "engines");
            s.requests = require_int(c, "requests");
            s.events_fired = require_int(c, "events_fired");
            s.component_advances = require_int(c, "component_advances");
            s.wall_s = c.at("wall_s").num();
            s.events_per_sec = c.at("events_per_sec").num();
            s.peak_rss_bytes = require_int(c, "peak_rss_bytes");
            s.queue_high_water = require_int(c, "queue_high_water");
            s.heap_pushes = require_int(c, "heap_pushes");
            s.heap_pops = require_int(c, "heap_pops");
            entry.samples.push_back(s);
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

void
write_trajectory(const std::string& path, const std::vector<Entry>& entries)
{
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trajectory output '" + path + "'");

    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", kSchema);
    w.kv("version", kSchemaVersion);
    w.key("entries").begin_array();
    for (const Entry& e : entries) {
        w.begin_object();
        w.kv("label", e.label);
        w.key("configs").begin_array();
        for (const Sample& s : e.samples) {
            w.begin_object();
            w.kv("engines", s.engines);
            w.kv("requests", s.requests);
            w.kv("events_fired", s.events_fired);
            w.kv("component_advances", s.component_advances);
            w.kv("wall_s", s.wall_s);
            w.kv("events_per_sec", s.events_per_sec);
            w.kv("peak_rss_bytes", s.peak_rss_bytes);
            w.kv("queue_high_water", s.queue_high_water);
            w.kv("heap_pushes", s.heap_pushes);
            w.kv("heap_pops", s.heap_pops);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "bench_results/BENCH_simcore.json";
    std::string label = "dev";
    bool short_run = false;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(arg, "--label") == 0 && i + 1 < argc) {
            label = argv[++i];
        } else if (std::strcmp(arg, "--short") == 0) {
            short_run = true;
        } else {
            fatal(std::string("unknown argument '") + arg +
                  "' (expected --out <path>, --label <name>, --short)");
        }
    }

    // --short keeps the 64-engine point: it is the scaling-cliff config
    // the bench-smoke CI job gates on against the committed trajectory.
    const std::vector<Config> configs =
        short_run ? std::vector<Config>{{4, 2048}, {64, 16384}}
                  : std::vector<Config>{{8, 16384},
                                        {64, 16384},
                                        {8, 65536},
                                        {64, 65536},
                                        {256, 65536}};

    std::printf("sim-core microbench (label '%s')\n", label.c_str());
    std::printf("%8s %9s %13s %13s %10s %12s\n", "engines", "requests",
                "events", "advances", "wall_ms", "Munits/s");

    Entry entry;
    entry.label = label;
    for (const Config& cfg : configs) {
        const Sample s = measure(cfg);
        std::printf("%8lld %9lld %13lld %13lld %10.2f %12.2f\n",
                    static_cast<long long>(s.engines),
                    static_cast<long long>(s.requests),
                    static_cast<long long>(s.events_fired),
                    static_cast<long long>(s.component_advances),
                    s.wall_s * 1e3, s.events_per_sec / 1e6);
        entry.samples.push_back(s);
    }

    std::vector<Entry> entries = load_entries(out, label);
    entries.push_back(std::move(entry));
    write_trajectory(out, entries);
    std::printf("trajectory: wrote %s (%zu entries)\n", out.c_str(),
                entries.size());
    return 0;
}
