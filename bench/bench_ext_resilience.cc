/**
 * @file
 * Extension: resilience — serving strategies under fail-stop faults.
 *
 * Production clusters lose GPUs: XID errors, ECC faults, NVLink flaps.
 * The parallelization strategy decides the blast radius of each loss —
 * flat DP loses one replica's share of capacity, a Shift/SP group loses
 * one group, and a node-wide TP=8 engine loses everything until the rank
 * rejoins. This bench sweeps an MTBF grid over three 8-GPU deployments of
 * the same model and reports what the router's retry-with-reroute and
 * SLO-aware load shedding salvage: every submitted request must end up
 * exactly once in {completed, lost, shed} (asserted per row).
 *
 * Faults come from `fault::parse_fault_spec` mtbf clauses, so the replay
 * is seed-deterministic: the CSV is byte-identical across runs and
 * `--jobs` values, and the no-fault row is byte-identical to a build
 * without the fault subsystem at all.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "core/shift_controller.h"
#include "engine/router.h"
#include "fault/fault_schedule.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/units.h"
#include "workload/bursty.h"

using namespace shiftpar;

namespace {

constexpr double kDuration = 240.0;  // workload + fault-window length, s

/** Build an 8-GPU single-node deployment under `strategy`. */
std::unique_ptr<engine::Router>
build_system(parallel::Strategy strategy)
{
    const auto m = model::llama_70b();
    const auto node = hw::h200_node();
    std::vector<std::unique_ptr<engine::Engine>> engines;

    const auto add_engine = [&](const parallel::ParallelConfig& base,
                                bool shift) {
        engine::EngineConfig cfg;
        cfg.base = base;
        cfg.with_shift_model = shift && base.sp > 1;
        if (obs::TraceSink* sink = bench::trace()) {
            obs::EngineMeta meta;
            meta.label = "engine " + std::to_string(engines.size()) + " " +
                         base.to_string();
            meta.base = base;
            cfg.trace = sink;
            cfg.trace_id = sink->register_engine(meta);
        }
        std::unique_ptr<engine::ExecutionPolicy> policy;
        if (shift && base.sp > 1) {
            const parallel::PerfModel perf(node, m, cfg.perf);
            policy = std::make_unique<core::ShiftController>(
                base, core::ShiftController::auto_threshold(perf, base));
        } else {
            policy = std::make_unique<engine::FixedPolicy>(base);
        }
        engines.push_back(std::make_unique<engine::Engine>(
            node, m, cfg, std::move(policy)));
    };

    switch (strategy) {
      case parallel::Strategy::kDp:
        for (int i = 0; i < 8; ++i)
            add_engine({1, 1}, false);
        break;
      case parallel::Strategy::kShift:
        for (int i = 0; i < 2; ++i)
            add_engine({4, 1}, true);
        break;
      case parallel::Strategy::kTp:
        add_engine({1, 8}, false);
        break;
      default:
        fatal("unsupported strategy for the resilience bench");
    }
    auto router = std::make_unique<engine::Router>(std::move(engines));
    router->set_trace(bench::trace());
    return router;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner(
        "Extension (resilience)",
        "8x H200 under fail-stop faults: blast radius per strategy "
        "(Llama-70B, bursty, MTBF sweep)");

    Rng rng(2026);
    workload::BurstyOptions wopts;
    wopts.duration = kDuration;
    wopts.base_rate = 1.0;
    wopts.burst_rate = 12.0;
    const auto reqs = workload::bursty_workload(rng, wopts);
    const auto submitted = static_cast<std::int64_t>(reqs.size());
    std::printf("workload: %zu requests, %lld tokens\n", reqs.size(),
                static_cast<long long>(workload::total_tokens(reqs)));

    struct System
    {
        std::string name;
        parallel::Strategy strategy;
    };
    const std::vector<System> systems = {
        {"flat DP (8x 1-GPU)", parallel::Strategy::kDp},
        {"DP of Shift (2x SP=4)", parallel::Strategy::kShift},
        {"TP=8 (1 replica)", parallel::Strategy::kTp},
    };
    struct Scenario
    {
        std::string name;
        double mtbf;  // 0 = fault-free baseline
    };
    const std::vector<Scenario> scenarios = {
        {"none", 0.0}, {"120", 120.0}, {"60", 60.0}, {"30", 30.0}};

    // Retries must be able to outlive an 8 s outage of the only replica:
    // 0.25+0.5+1+2+4+4 = 11.75 s of capped backoff across 6 attempts.
    engine::ResilienceOptions resilience;
    resilience.max_retries = 6;
    resilience.shed_watermark = 0.99;  // shed logic armed whenever degraded
    resilience.shed_ttft_slo = 1.5;
    resilience.replica_tokens_per_s = 2000.0;

    Table table({"Deployment (8 GPUs)", "MTBF (s)", "Fails", "Dropped",
                 "Retries", "Lost", "Shed", "Completed", "p50 TTFT (ms)",
                 "p99 completion (s)"});
    CsvWriter csv(bench::results_path("ext_resilience.csv"),
                  {"deployment", "mtbf_s", "failures", "recoveries",
                   "dropped", "retries", "submitted", "completed", "lost",
                   "shed", "ttft_p50_ms", "completion_p99_s",
                   "mean_throughput_tok_s"});

    const std::size_t n = systems.size() * scenarios.size();
    bench::run_sweep(n, [&](std::size_t i) {
        const System& sys = systems[i / scenarios.size()];
        const Scenario& sc = scenarios[i % scenarios.size()];
        bench::set_run_label(sys.name + " mtbf=" + sc.name);

        auto router = build_system(sys.strategy);
        if (sc.mtbf > 0.0) {
            char spec[96];
            std::snprintf(spec, sizeof(spec),
                          "mtbf:mean=%g,mttr=8,duration=%g,seed=7",
                          sc.mtbf, kDuration);
            router->set_faults(fault::parse_fault_spec(spec), resilience);
        }
        const auto met = router->run_workload(reqs);
        const fault::FaultStats fs = router->fault_stats();
        const auto completed =
            static_cast<std::int64_t>(met.requests().size());
        // The accounting invariant the whole subsystem hangs on: every
        // submitted request ends up in exactly one terminal bucket.
        SP_ASSERT(submitted == completed + fs.lost + fs.shed,
                  "request accounting leak: ", submitted, " submitted vs ",
                  completed, " completed + ", fs.lost, " lost + ", fs.shed,
                  " shed");
        bench::record_run(sys.name + " mtbf=" + sc.name, met);
        return bench::SweepCommit([&, &sys = systems[i / scenarios.size()],
                                   &sc = scenarios[i % scenarios.size()],
                                   met, fs, completed] {
            table.add_row(
                {sys.name, sc.name, Table::fmt_count(fs.failures),
                 Table::fmt_count(fs.dropped), Table::fmt_count(fs.retries),
                 Table::fmt_count(fs.lost), Table::fmt_count(fs.shed),
                 Table::fmt_count(completed),
                 Table::fmt(to_ms(met.ttft().percentile(50))),
                 Table::fmt(met.completion().percentile(99), 2)});
            csv.add_row(
                {sys.name, sc.name, std::to_string(fs.failures),
                 std::to_string(fs.recoveries), std::to_string(fs.dropped),
                 std::to_string(fs.retries), std::to_string(submitted),
                 std::to_string(completed), std::to_string(fs.lost),
                 std::to_string(fs.shed),
                 Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                 Table::fmt(met.completion().percentile(99), 3),
                 Table::fmt(met.mean_throughput(), 0)});
        });
    });
    table.print();
    std::printf(
        "\nExpected: capacity lost per failure tracks the blast radius —\n"
        "flat DP sheds one GPU in eight, DP-of-Shift one SP group in two,\n"
        "and TP=8 goes dark until the rank rejoins. Retry-with-reroute\n"
        "keeps dropped requests alive across an outage when any replica\n"
        "survives; with a single TP=8 replica the backoff ladder must\n"
        "outlast the repair window, and the SLO guard sheds arrivals that\n"
        "would queue behind the backlog instead of blowing up TTFT.\n");
    return 0;
}
