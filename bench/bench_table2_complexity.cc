/**
 * @file
 * Table 2: per-GPU computational complexity of TP vs. SP.
 *
 * The paper's analytical claim: for a fixed problem, TP's per-GPU comm
 * volume is ~constant in degree (so comm/compute grows ~ TP), while SP's
 * comm volume scales ~1/SP (comm/compute ~ const). We evaluate the perf
 * model across degrees and print the measured memory, compute time, comm
 * volume, and comm/compute ratio per GPU.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "hw/interconnect.h"
#include "model/presets.h"
#include "parallel/memory.h"
#include "parallel/perf_model.h"
#include "util/csv.h"
#include "util/units.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Table 2",
                        "Per-GPU complexity of TP and SP "
                        "(Llama-70B, 8k-token prefill)");
    const auto m = model::llama_70b();
    const auto node = hw::h200_node();
    const parallel::PerfModel perf(node, m);
    const auto work = parallel::BatchWork::prefill(8192);

    Table table({"Config", "Memory/GPU (GB)", "Compute (ms)", "Comm (ms)",
                 "Comm/Compute"});
    CsvWriter csv(bench::results_path("table2_complexity.csv"),
                  {"config", "memory_gb", "compute_ms", "comm_ms", "ratio"});

    const auto row = [&](parallel::ParallelConfig cfg) {
        const auto t = perf.step_time(work, cfg);
        const auto plan = parallel::plan_memory(m, node.gpu, cfg, false);
        const double compute = t.gemm + t.attention;
        const double ratio = t.comm / compute;
        table.add_row({cfg.to_string(),
                       Table::fmt(to_gb(plan.base_weight_bytes)),
                       Table::fmt(to_ms(compute), 2),
                       Table::fmt(to_ms(t.comm), 2), Table::fmt(ratio, 3)});
        csv.add_row({cfg.to_string(), Table::fmt(to_gb(plan.base_weight_bytes), 2),
                     Table::fmt(to_ms(compute), 3), Table::fmt(to_ms(t.comm), 3),
                     Table::fmt(ratio, 4)});
    };

    std::printf("\nTP sweep (memory/TP, compute/TP, comm volume ~const):\n");
    for (int tp : {1, 2, 4, 8})
        row({1, tp});
    table.print();

    Table table2({"Config", "Memory/GPU (GB)", "Compute (ms)", "Comm (ms)",
                  "Comm/Compute"});
    std::printf("\nSP sweep (memory const, compute/SP, comm volume /SP):\n");
    for (int sp : {1, 2, 4, 8}) {
        const parallel::ParallelConfig cfg{sp, 1};
        const auto t = perf.step_time(work, cfg);
        const auto plan = parallel::plan_memory(m, node.gpu, cfg, false);
        const double compute = t.gemm + t.attention;
        table2.add_row({cfg.to_string(),
                        Table::fmt(to_gb(plan.base_weight_bytes)),
                        Table::fmt(to_ms(compute), 2),
                        Table::fmt(to_ms(t.comm), 2),
                        Table::fmt(t.comm / compute, 3)});
        csv.add_row({cfg.to_string(),
                     Table::fmt(to_gb(plan.base_weight_bytes), 2),
                     Table::fmt(to_ms(compute), 3),
                     Table::fmt(to_ms(t.comm), 3),
                     Table::fmt(t.comm / compute, 4)});
    }
    table2.print();
    std::printf(
        "\nPaper's Table 2: TP -> memory m/TP, compute f/TP, comm volume\n"
        "c(n,w) (degree-independent), ratio ~ TP x const. SP -> memory m\n"
        "(replicated), compute f/SP, comm volume c/SP, ratio ~ const.\n");
    return 0;
}
