/**
 * @file
 * Extension (Section 5 related work): disaggregated prefill/decode vs.
 * colocated chunked-prefill serving vs. Shift Parallelism.
 *
 * The paper argues that Shift Parallelism with chunked prefill "overlaps
 * prefill and decode, with decode tokens accessing the KV cache from
 * local memory, resulting in more efficient resource utilization and less
 * cost per token" than disaggregation, which dedicates resources per
 * phase and transfers each request's KV between pools. This bench
 * measures that comparison on a mixed workload across pool splits.
 */

#include <cstdio>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "core/disaggregated.h"
#include "model/presets.h"
#include "util/csv.h"
#include "util/units.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

using namespace shiftpar;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_banner("Extension (disaggregation)",
                        "Disaggregated prefill/decode vs. Shift "
                        "(Llama-70B, mixed traffic)");
    Rng rng(2026);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 3.0, 120.0), rng,
        workload::lognormal_size(4000.0, 0.7, 300.0, 0.5));

    Table table({"System", "p50 TTFT (ms)", "p50 TPOT (ms)",
                 "p50 completion (s)", "Throughput (tok/s)",
                 "Stalled adm.", "Stall (s)"});
    CsvWriter csv(bench::results_path("ext_disaggregated.csv"),
                  {"system", "ttft_p50_ms", "tpot_p50_ms",
                   "completion_p50_s", "throughput_tok_s",
                   "stalled_admissions", "stall_s"});

    // Colocated systems have no admission pipeline: their stall cells are
    // structurally zero, not measured zeros.
    const auto add = [&](const std::string& name,
                         const engine::Metrics& met,
                         const core::DisaggregatedStats* stats) {
        table.add_row({name, Table::fmt(to_ms(met.ttft().percentile(50))),
                       Table::fmt(to_ms(met.tpot().percentile(50)), 2),
                       Table::fmt(met.completion().percentile(50), 2),
                       Table::fmt_count(static_cast<long long>(
                           met.mean_throughput())),
                       stats ? Table::fmt_count(stats->stalled_admissions)
                             : "-",
                       stats ? Table::fmt(stats->stall_seconds, 2) : "-"});
        csv.add_row({name, Table::fmt(to_ms(met.ttft().percentile(50)), 2),
                     Table::fmt(to_ms(met.tpot().percentile(50)), 3),
                     Table::fmt(met.completion().percentile(50), 3),
                     Table::fmt(met.mean_throughput(), 0),
                     stats ? std::to_string(stats->stalled_admissions) : "",
                     stats ? Table::fmt(stats->stall_seconds, 3) : ""});
    };

    // Colocated baselines first, then the disaggregated pool splits.
    // Pool sizes must be valid TP degrees for the model's 64 heads.
    const std::vector<parallel::Strategy> colocated = {
        parallel::Strategy::kTp, parallel::Strategy::kShift};
    const std::vector<std::pair<int, int>> splits = {
        {2, 4}, {4, 4}, {4, 2}};
    struct Run
    {
        std::string name;
        engine::Metrics met;
        core::DisaggregatedStats stats;
        bool disagg = false;
    };
    bench::run_sweep(colocated.size() + splits.size(), [&](std::size_t i) {
        const Run run = [&]() -> Run {
            if (i < colocated.size()) {
                core::Deployment d;
                d.model = model::llama_70b();
                d.strategy = colocated[i];
                const std::string n =
                    "colocated " + parallel::strategy_name(colocated[i]);
                return {n, bench::run_deployment_named(n, d, reqs).metrics,
                        {}, false};
            }
            const auto [p, dn] = splits[i - colocated.size()];
            const std::string n = "disagg " + std::to_string(p) + "P+" +
                                  std::to_string(dn) + "D";
            core::DisaggregatedOptions opts;
            opts.prefill_gpus = p;
            opts.decode_gpus = dn;
            opts.trace = bench::trace();
            bench::set_run_label(n);
            core::DisaggregatedSystem sys(model::llama_70b(),
                                          hw::h200_node(), opts);
            const engine::Metrics m = sys.run_workload(reqs);
            bench::record_run(n, m);
            return {n, m, sys.stats(), true};
        }();
        return bench::SweepCommit([&, run = run] {
            add(run.name, run.met, run.disagg ? &run.stats : nullptr);
        });
    });
    table.print();
    std::printf(
        "\nExpected (paper Sec. 5): disaggregation isolates decode from\n"
        "prefill interference (smooth TPOT) but dedicates resources per\n"
        "phase and pays per-request KV transfers; colocated Shift matches\n"
        "its latency while using the whole node for both phases.\n");
    return 0;
}
