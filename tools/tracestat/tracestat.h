/**
 * @file
 * Trace-to-latency-breakdown analysis (the read side of the span chain).
 *
 * `ChromeTraceWriter` renders every request as an async span with causal
 * markers (submit → first_schedule → prefill chunks → first_token →
 * finish, plus preempt/migrate/retry/shed/lost detours) and every engine's
 * shift/unshift transitions as mode instants. This library rebuilds
 * per-request timelines from such a trace and derives the paper's fig. 15
 * style breakdown without rerunning the simulation:
 *
 *  - per-stage latency (queue / prefill / decode / total) distributions,
 *  - the queueing-vs-service split,
 *  - decode seconds spent in shift mode (mode-instant interval overlap),
 *  - disruption counts (preemptions, migrations, retries, sheds, losses),
 *  - lifecycle outcomes (deadline expiries, client cancellations) and
 *    hedge/drain marker totals,
 *  - p99 critical-path attribution: the stage shares of the requests at
 *    or above the p99 completion time.
 *
 * Split from the `tracestat` binary so tests can drive it over committed
 * golden traces.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/json_parse.h"

namespace shiftpar::tools {

/** One request's reconstructed lifecycle. */
struct RequestTimeline
{
    int process = 0;           ///< synthetic "requests" pid (one per run)
    std::int64_t request = 0;  ///< request id within the run

    /** Engine that produced the first token (-1 when none did). */
    int engine = -1;

    /** Stage boundary times, simulated seconds (-1 = never reached). */
    double submit = -1.0;
    double first_schedule = -1.0;
    double first_token = -1.0;
    double finish = -1.0;  ///< finish/cancel/lost close time

    std::int64_t prompt_tokens = 0;
    std::int64_t output_tokens = 0;

    int prefill_chunks = 0;
    int preempts = 0;
    int migrations = 0;
    int retries = 0;      ///< router re-routes after a replica failure
    int resubmits = 0;    ///< re-entries into an engine queue after a retry
    int hedges = 0;       ///< hedge clones launched for this request
    int hedge_wins = 0;   ///< completions that beat a live hedge copy
    int hedge_losses = 0; ///< hedge copies cancelled after losing the race
    int drains = 0;       ///< hand-backs from a gracefully draining engine

    bool finished = false;
    bool cancelled = false;
    bool expired = false;  ///< evicted past its completion deadline
    bool lost = false;
    bool shed = false;

    /** Decode seconds spent under the shifted (SP=1) config. */
    double decode_shift_s = 0.0;

    /** Waiting before the first chunk was scheduled (0 if never admitted). */
    double queue_s() const;

    /** First chunk scheduled → first output token (0 if never reached). */
    double prefill_s() const;

    /** First output token → completion (0 if never reached). */
    double decode_s() const;

    /** Submit → completion; < 0 when the request never completed. */
    double total_s() const;

    /** "finished" / "expired" / "cancelled" / "lost" / "shed" / "open". */
    const char* outcome() const;
};

/** Distribution of one stage across completed requests. */
struct StageStats
{
    std::string name;
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Everything `analyze_trace` derives from one trace document. */
struct TraceStats
{
    /** All requests, ordered by (process, request id). */
    std::vector<RequestTimeline> requests;

    std::size_t completed = 0;
    std::size_t expired = 0;
    std::size_t cancelled = 0;
    std::size_t lost = 0;
    std::size_t shed = 0;
    std::size_t open = 0;

    std::int64_t preempts = 0;
    std::int64_t migrations = 0;
    std::int64_t retries = 0;
    std::int64_t resubmits = 0;
    std::int64_t hedges = 0;
    std::int64_t hedge_wins = 0;
    std::int64_t hedge_losses = 0;
    std::int64_t drains = 0;

    /** queue / prefill / decode / total over completed requests. */
    std::vector<StageStats> stages;

    /** Mean queue share of total latency across completed requests. */
    double queueing_fraction = 0.0;

    /** Shift-mode share of all completed decode seconds. */
    double decode_shift_fraction = 0.0;

    /** p99 completion time and the critical-path stage shares of the
     *  requests at/above it. */
    double p99_total_s = 0.0;
    std::size_t p99_requests = 0;
    double p99_queue_share = 0.0;
    double p99_prefill_share = 0.0;
    double p99_decode_share = 0.0;
};

/**
 * Rebuild per-request timelines and the stage breakdown from a parsed
 * Chrome trace. Throws std::runtime_error when the document is not a
 * trace produced by `ChromeTraceWriter` (missing traceEvents, malformed
 * request ids).
 */
TraceStats analyze_trace(const util::JsonValue& root);

/** Read + parse + analyze; throws std::runtime_error on any failure. */
TraceStats analyze_trace_file(const std::string& path);

/** Human-readable report (aligned tables, one screen). */
void print_report(const TraceStats& stats, std::ostream& os);

/** Per-request CSV (one row per request, header first). */
void write_csv(const TraceStats& stats, std::ostream& os);

} // namespace shiftpar::tools
