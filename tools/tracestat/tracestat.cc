#include "tracestat.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/stats.h"

namespace shiftpar::tools {

namespace {

/** One shift/unshift transition on an engine's mode track. */
struct ModeFlip
{
    double t = 0.0;       ///< seconds
    bool to_shift = false;
};

/** Microsecond trace timestamps back to simulated seconds. */
double
seconds(const util::JsonValue& ev)
{
    return ev.at("ts").num() / 1e6;
}

std::int64_t
arg_int(const util::JsonValue& ev, const std::string& key,
        std::int64_t fallback)
{
    if (!ev.has("args"))
        return fallback;
    const util::JsonValue& args = ev.at("args");
    if (!args.has(key))
        return fallback;
    return static_cast<std::int64_t>(args.at(key).num());
}

bool
has_arg(const util::JsonValue& ev, const std::string& key)
{
    return ev.has("args") && ev.at("args").has(key);
}

/** Split a "pid:request" async id. */
std::pair<int, std::int64_t>
parse_request_id(const std::string& id)
{
    const std::size_t colon = id.find(':');
    if (colon == std::string::npos)
        throw std::runtime_error("malformed request id '" + id + "'");
    try {
        return {std::stoi(id.substr(0, colon)),
                std::stoll(id.substr(colon + 1))};
    } catch (const std::exception&) {
        throw std::runtime_error("malformed request id '" + id + "'");
    }
}

/** Seconds of [a, b] spent in shift mode given an engine's flip list. */
double
shift_overlap(const std::vector<ModeFlip>& flips, double a, double b)
{
    if (b <= a)
        return 0.0;
    double total = 0.0;
    bool shifted = false;  // engines start in the base config
    double prev = a;
    for (const ModeFlip& f : flips) {
        if (f.t <= a) {
            shifted = f.to_shift;
            continue;
        }
        if (f.t >= b)
            break;
        if (shifted)
            total += f.t - prev;
        prev = std::max(prev, f.t);
        shifted = f.to_shift;
    }
    if (shifted)
        total += b - prev;
    return total;
}

StageStats
summarize_stage(const std::string& name, const Summary& s)
{
    StageStats st;
    st.name = name;
    st.count = s.count();
    st.mean = s.mean();
    st.p50 = s.percentile(50.0);
    st.p90 = s.percentile(90.0);
    st.p99 = s.percentile(99.0);
    st.max = s.max();
    return st;
}

/** printf into an ostream (keeps the aligned-table code readable). */
void
emit(std::ostream& os, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
emit(std::ostream& os, const char* fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    os << buf;
}

} // namespace

double
RequestTimeline::queue_s() const
{
    if (submit < 0.0 || first_schedule < 0.0)
        return 0.0;
    return first_schedule - submit;
}

double
RequestTimeline::prefill_s() const
{
    if (first_schedule < 0.0 || first_token < 0.0)
        return 0.0;
    return first_token - first_schedule;
}

double
RequestTimeline::decode_s() const
{
    if (first_token < 0.0 || finish < 0.0)
        return 0.0;
    return finish - first_token;
}

double
RequestTimeline::total_s() const
{
    if (submit < 0.0 || finish < 0.0)
        return -1.0;
    return finish - submit;
}

const char*
RequestTimeline::outcome() const
{
    if (finished)
        return "finished";
    if (expired)
        return "expired";
    if (cancelled)
        return "cancelled";
    if (lost)
        return "lost";
    if (shed)
        return "shed";
    return "open";
}

TraceStats
analyze_trace(const util::JsonValue& root)
{
    if (!root.is_object() || !root.has("traceEvents"))
        throw std::runtime_error("not a Chrome trace: no traceEvents array");

    // Keyed containers keep the pass deterministic: requests sort by
    // (process, id), mode flips attach to engine pids.
    std::map<std::pair<int, std::int64_t>, RequestTimeline> requests;
    std::map<int, std::vector<ModeFlip>> mode_flips;

    for (const util::JsonValue& ev : root.at("traceEvents").arr()) {
        const std::string cat = ev.has("cat") ? ev.at("cat").str() : "";
        if (cat == "mode") {
            ModeFlip flip;
            flip.t = seconds(ev);
            flip.to_shift = ev.at("name").str() == "shift";
            mode_flips[static_cast<int>(ev.at("pid").num())].push_back(flip);
            continue;
        }
        if (cat != "request")
            continue;

        const auto key = parse_request_id(ev.at("id").str());
        RequestTimeline& r = requests[key];
        r.process = key.first;
        r.request = key.second;
        const double t = seconds(ev);
        const std::string ph = ev.at("ph").str();
        const std::string& name = ev.at("name").str();

        if (ph == "b") {
            if (r.submit < 0.0)
                r.submit = t;
            r.prompt_tokens = arg_int(ev, "prompt_tokens", r.prompt_tokens);
        } else if (ph == "e") {
            r.finish = t;
            if (has_arg(ev, "cancelled"))
                r.cancelled = true;
            else if (has_arg(ev, "expired"))
                r.expired = true;
            else if (has_arg(ev, "lost"))
                r.lost = true;
            else
                r.finished = true;
            r.output_tokens = arg_int(ev, "output_tokens", r.output_tokens);
        } else if (ph == "n") {
            if (name == "first_schedule") {
                if (r.first_schedule < 0.0)
                    r.first_schedule = t;
            } else if (name == "first_token") {
                if (r.first_token < 0.0) {
                    r.first_token = t;
                    r.engine =
                        static_cast<int>(arg_int(ev, "engine", r.engine));
                }
            } else if (name == "prefill_chunk") {
                ++r.prefill_chunks;
            } else if (name == "preempt") {
                ++r.preempts;
            } else if (name == "migrated") {
                ++r.migrations;
            } else if (name == "retried") {
                ++r.retries;
            } else if (name == "resubmit") {
                ++r.resubmits;
            } else if (name == "hedged") {
                ++r.hedges;
            } else if (name == "hedge_won") {
                ++r.hedge_wins;
            } else if (name == "hedge_lost") {
                ++r.hedge_losses;
            } else if (name == "drained") {
                ++r.drains;
            } else if (name == "shed") {
                r.shed = true;
                if (r.submit < 0.0)
                    r.submit = t;
            } else if (name == "lost") {
                r.lost = true;
            }
            // routed/resume and future markers carry no stage boundary.
        }
    }

    for (auto& [pid, flips] : mode_flips) {
        std::stable_sort(flips.begin(), flips.end(),
                         [](const ModeFlip& a, const ModeFlip& b) {
                             return a.t < b.t;
                         });
    }

    TraceStats stats;
    Summary queue, prefill, decode, total;
    double decode_sum = 0.0;
    double shift_sum = 0.0;
    double queue_sum = 0.0;
    double total_sum = 0.0;
    for (auto& [key, r] : requests) {
        if (r.finished && r.engine >= 0) {
            const auto it = mode_flips.find(r.engine);
            if (it != mode_flips.end()) {
                r.decode_shift_s =
                    shift_overlap(it->second, r.first_token, r.finish);
            }
        }
        if (r.finished) {
            ++stats.completed;
            queue.add(r.queue_s());
            prefill.add(r.prefill_s());
            decode.add(r.decode_s());
            total.add(r.total_s());
            queue_sum += r.queue_s();
            total_sum += r.total_s();
            decode_sum += r.decode_s();
            shift_sum += r.decode_shift_s;
        } else if (r.expired) {
            ++stats.expired;
        } else if (r.cancelled) {
            ++stats.cancelled;
        } else if (r.lost) {
            ++stats.lost;
        } else if (r.shed) {
            ++stats.shed;
        } else {
            ++stats.open;
        }
        stats.preempts += r.preempts;
        stats.migrations += r.migrations;
        stats.retries += r.retries;
        stats.resubmits += r.resubmits;
        stats.hedges += r.hedges;
        stats.hedge_wins += r.hedge_wins;
        stats.hedge_losses += r.hedge_losses;
        stats.drains += r.drains;
        stats.requests.push_back(r);
    }

    stats.stages.push_back(summarize_stage("queue", queue));
    stats.stages.push_back(summarize_stage("prefill", prefill));
    stats.stages.push_back(summarize_stage("decode", decode));
    stats.stages.push_back(summarize_stage("total", total));
    stats.queueing_fraction =
        total_sum > 0.0 ? queue_sum / total_sum : 0.0;
    stats.decode_shift_fraction =
        decode_sum > 0.0 ? shift_sum / decode_sum : 0.0;

    // p99 critical path: stage shares of the requests at/above the p99
    // completion time (ties included, so the set is never empty).
    stats.p99_total_s = total.percentile(99.0);
    double q = 0.0, p = 0.0, d = 0.0;
    for (const RequestTimeline& r : stats.requests) {
        if (!r.finished || r.total_s() < stats.p99_total_s)
            continue;
        ++stats.p99_requests;
        q += r.queue_s();
        p += r.prefill_s();
        d += r.decode_s();
    }
    const double crit = q + p + d;
    if (crit > 0.0) {
        stats.p99_queue_share = q / crit;
        stats.p99_prefill_share = p / crit;
        stats.p99_decode_share = d / crit;
    }
    return stats;
}

TraceStats
analyze_trace_file(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open trace file '" + path + "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    return analyze_trace(util::parse_json(buf.str()));
}

void
print_report(const TraceStats& stats, std::ostream& os)
{
    emit(os, "tracestat: %zu requests — %zu finished, %zu expired, "
             "%zu cancelled, %zu lost, %zu shed, %zu open\n",
         stats.requests.size(), stats.completed, stats.expired,
         stats.cancelled, stats.lost, stats.shed, stats.open);
    os << "\nstage latency over finished requests (seconds):\n";
    emit(os, "  %-8s %7s %10s %10s %10s %10s %10s\n", "stage", "count",
         "mean", "p50", "p90", "p99", "max");
    for (const StageStats& s : stats.stages) {
        emit(os, "  %-8s %7zu %10.6f %10.6f %10.6f %10.6f %10.6f\n",
             s.name.c_str(), s.count, s.mean, s.p50, s.p90, s.p99, s.max);
    }
    emit(os, "\nqueueing vs service: queue %.1f%% / service %.1f%% of "
             "aggregate latency\n",
         stats.queueing_fraction * 100.0,
         (1.0 - stats.queueing_fraction) * 100.0);
    emit(os, "decode shift share:  %.1f%% of decode seconds in shift "
             "mode\n",
         stats.decode_shift_fraction * 100.0);
    emit(os, "disruptions: %lld preempts, %lld migrations, %lld retries, "
             "%lld resubmits\n",
         static_cast<long long>(stats.preempts),
         static_cast<long long>(stats.migrations),
         static_cast<long long>(stats.retries),
         static_cast<long long>(stats.resubmits));
    emit(os, "lifecycle:   %lld hedges (%lld won, %lld lost), "
             "%lld drain hand-backs\n",
         static_cast<long long>(stats.hedges),
         static_cast<long long>(stats.hedge_wins),
         static_cast<long long>(stats.hedge_losses),
         static_cast<long long>(stats.drains));
    emit(os, "p99 critical path (%zu requests >= p99 total %.6fs): "
             "queue %.1f%% | prefill %.1f%% | decode %.1f%%\n",
         stats.p99_requests, stats.p99_total_s,
         stats.p99_queue_share * 100.0, stats.p99_prefill_share * 100.0,
         stats.p99_decode_share * 100.0);
}

void
write_csv(const TraceStats& stats, std::ostream& os)
{
    os << "process,request,engine,outcome,submit_s,queue_s,prefill_s,"
          "decode_s,total_s,decode_shift_s,prompt_tokens,output_tokens,"
          "prefill_chunks,preempts,migrations,retries,resubmits,hedges,"
          "hedge_wins,hedge_losses,drains\n";
    for (const RequestTimeline& r : stats.requests) {
        emit(os,
             "%d,%lld,%d,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%lld,%lld,%d,"
             "%d,%d,%d,%d,%d,%d,%d,%d\n",
             r.process, static_cast<long long>(r.request), r.engine,
             r.outcome(), r.submit, r.queue_s(), r.prefill_s(),
             r.decode_s(), r.total_s(), r.decode_shift_s,
             static_cast<long long>(r.prompt_tokens),
             static_cast<long long>(r.output_tokens), r.prefill_chunks,
             r.preempts, r.migrations, r.retries, r.resubmits, r.hedges,
             r.hedge_wins, r.hedge_losses, r.drains);
    }
}

} // namespace shiftpar::tools
