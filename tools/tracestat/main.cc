/**
 * @file
 * `tracestat <trace.json> [--csv <path>]` — per-request latency breakdown
 * from a Chrome trace written by the bench harness's `--trace` flag.
 *
 * Prints the stage table / queueing split / p99 critical-path report to
 * stdout; `--csv` additionally writes one row per request for external
 * plotting. Exits 1 on unreadable or non-trace input.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "tracestat.h"
#include "util/logging.h"

int
main(int argc, char** argv)
{
    using namespace shiftpar;

    std::string trace_path;
    std::string csv_path;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (arg[0] == '-') {
            fatal(std::string("unknown argument '") + arg +
                  "' (usage: tracestat <trace.json> [--csv <path>])");
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            fatal("more than one trace file given");
        }
    }
    if (trace_path.empty())
        fatal("usage: tracestat <trace.json> [--csv <path>]");

    tools::TraceStats stats;
    try {
        stats = tools::analyze_trace_file(trace_path);
    } catch (const std::exception& e) {
        fatal(e.what());
    }

    tools::print_report(stats, std::cout);
    if (!csv_path.empty()) {
        const auto parent = std::filesystem::path(csv_path).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream os(csv_path);
        if (!os)
            fatal("cannot open csv output '" + csv_path + "'");
        tools::write_csv(stats, os);
        std::printf("csv: wrote %s (%zu requests)\n", csv_path.c_str(),
                    stats.requests.size());
    }
    return 0;
}
