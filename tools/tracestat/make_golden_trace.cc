/**
 * @file
 * Regenerates the committed golden trace for the tracestat tests.
 *
 * Three deliberately small runs share one `ChromeTraceWriter`:
 *
 *  1. "shift": a Shift deployment under a burst, so the trace carries
 *     mode instants and decode windows overlapping shift intervals;
 *  2. "faulted-dp": a DP deployment with a fail/recover mid-replay, so
 *     it carries retries, resubmits, and dropped-then-retried spans;
 *  3. "overload-dp": a DP deployment swamped by a t=0 wave with
 *     deadlines, a client-cancel stream, hedged retries, and a graceful
 *     drain window, so it carries expired/cancelled closes and
 *     hedged/hedge_won/hedge_lost/drained markers.
 *
 * Usage: tracestat_make_golden <trace-out.json>
 *
 * After regenerating (only needed when the trace writer's format
 * changes), refresh the expected report/CSV next to it:
 *
 *   tracestat tests/data/tracestat_golden.trace.json \
 *       > tests/data/tracestat_golden.expected.txt
 *   tracestat tests/data/tracestat_golden.trace.json \
 *       --csv tests/data/tracestat_golden.expected.csv
 */

#include <cstdio>

#include "core/deployment.h"
#include "model/presets.h"
#include "obs/chrome_trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/lifecycle.h"
#include "workload/synthetic.h"

int
main(int argc, char** argv)
{
    using namespace shiftpar;
    if (argc != 2)
        fatal("usage: tracestat_make_golden <trace-out.json>");

    obs::ChromeTraceWriter trace;

    {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kShift;
        d.trace = &trace;
        trace.set_run_label("shift");
        Rng rng(41);
        // A burst dense enough to push the engine over its shift
        // threshold, then a quiet tail so it unshifts again.
        auto reqs = workload::make_requests(
            workload::poisson_arrivals(rng, 6.0, 2.0), rng,
            workload::lognormal_size(700.0, 0.5, 60.0, 0.4));
        for (int i = 0; i < 4; ++i)
            reqs.push_back({8.0 + 2.0 * i, 256, 32});
        core::run_deployment(d, reqs);
    }

    {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kDp;
        d.trace = &trace;
        d.faults.events.push_back(
            {fault::FaultKind::kFail, 0, -1, 0.5, 20.0, 1.0});
        trace.set_run_label("faulted-dp");
        // A t=0 batch keeps every replica busy past the fail point, so
        // the fail-stop is guaranteed to drop in-flight requests and the
        // trace carries retried/resubmit detours.
        auto reqs = workload::uniform_batch(6, 400, 120);
        Rng rng(43);
        const auto tail = workload::make_requests(
            workload::poisson_arrivals(rng, 1.5, 4.0), rng,
            workload::lognormal_size(600.0, 0.5, 50.0, 0.4));
        reqs.insert(reqs.end(), tail.begin(), tail.end());
        core::run_deployment(d, reqs);
    }

    {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kDp;
        d.trace = &trace;
        d.overload.hedge_delay = 0.5;
        // A tight per-replica admission cap keeps half the t=0 wave
        // waiting, so hedges find still-queued requests, deadlines
        // actually expire, and the drain has waiting work to hand back.
        d.sched.max_running_seqs = 4;
        d.faults.events.push_back(
            {fault::FaultKind::kDrain, 1, -1, 0.75, 8.0, 1.0});
        trace.set_run_label("overload-dp");
        auto reqs = workload::uniform_batch(64, 600, 160);
        Rng rng(47);
        const auto tail = workload::make_requests(
            workload::poisson_arrivals(rng, 4.0, 5.0), rng,
            workload::lognormal_size(500.0, 0.5, 80.0, 0.4));
        reqs.insert(reqs.end(), tail.begin(), tail.end());
        workload::LifecycleOptions lc;
        lc.cancel_rate = 0.2;
        lc.cancel_delay_mean = 1.5;
        lc.seed = 47;
        lc.deadline = 2.5;
        workload::apply_deadlines(&reqs, lc);
        d.cancellations = workload::cancel_stream(reqs, lc);
        core::run_deployment(d, reqs);
    }

    trace.write_file(argv[1]);
    std::printf("golden trace: wrote %s (%zu events)\n", argv[1],
                trace.num_events());
    return 0;
}
