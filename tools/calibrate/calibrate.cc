#include "calibrate.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "hw/presets.h"
#include "model/presets.h"
#include "parallel/kernel_cost_model.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace shiftpar::calibrate {

namespace {

constexpr const char* kCsvHeader = "kernel,class,count,flops,bytes,seconds";

std::string
format_double(double v)
{
    // %.17g round-trips doubles, so a written profile re-reads to the
    // exact samples (the round-trip tests rely on this).
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/**
 * Least squares for one class: solve (X^T X) c = X^T y over the features
 * (count, flops, bytes). Degenerate columns — all zero, or collinear to
 * numerical rank — are dropped (first offender per pass) and their
 * coefficients pinned to 0, so e.g. a collective class with no FLOP column
 * still fits exactly.
 */
std::array<double, 3>
solve_ols(const std::vector<const ProfileSample*>& rows)
{
    double a[3][3] = {{0.0}};
    double b[3] = {0.0};
    for (const ProfileSample* s : rows) {
        const double x[3] = {s->count, s->flops, s->bytes};
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j)
                a[i][j] += x[i] * x[j];
            b[i] += x[i] * s->seconds;
        }
    }

    std::vector<int> active;
    for (int j = 0; j < 3; ++j) {
        if (a[j][j] > 0.0)
            active.push_back(j);
    }

    std::array<double, 3> coef = {0.0, 0.0, 0.0};
    while (!active.empty()) {
        const int k = static_cast<int>(active.size());
        // Normalize each active column by its scale so the pivot tolerance
        // is meaningful across wildly different units (counts ~1e0, flops
        // ~1e12): solve for c'_j = c_j * scale_j, un-scale at the end.
        std::vector<double> scale(k);
        for (int j = 0; j < k; ++j)
            scale[j] = std::sqrt(a[active[j]][active[j]]);
        std::vector<std::vector<double>> m(k, std::vector<double>(k + 1));
        for (int i = 0; i < k; ++i) {
            for (int j = 0; j < k; ++j)
                m[i][j] = a[active[i]][active[j]] / (scale[i] * scale[j]);
            m[i][k] = b[active[i]] / scale[i];
        }

        int dropped = -1;
        for (int col = 0; col < k && dropped < 0; ++col) {
            int pivot = col;
            for (int r = col + 1; r < k; ++r) {
                if (std::abs(m[r][col]) > std::abs(m[pivot][col]))
                    pivot = r;
            }
            if (std::abs(m[pivot][col]) <= 1e-9) {
                dropped = active[col];
                break;
            }
            std::swap(m[col], m[pivot]);
            for (int r = col + 1; r < k; ++r) {
                const double f = m[r][col] / m[col][col];
                for (int j = col; j <= k; ++j)
                    m[r][j] -= f * m[col][j];
            }
        }
        if (dropped >= 0) {
            active.erase(std::find(active.begin(), active.end(), dropped));
            continue;
        }

        for (int i = k - 1; i >= 0; --i) {
            double v = m[i][k];
            for (int j = i + 1; j < k; ++j)
                v -= m[i][j] * coef[active[j]] * scale[j];
            coef[active[i]] = v / m[i][i] / scale[i];
        }
        break;
    }
    return coef;
}

double
predict(const std::array<double, 3>& coef, const ProfileSample& s)
{
    return coef[0] * s.count + coef[1] * s.flops + coef[2] * s.bytes;
}

} // namespace

std::vector<ProfileSample>
read_profile_csv(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open profile CSV '" + path + "'");
    std::string line;
    if (!std::getline(in, line) || line != kCsvHeader) {
        fatal("profile CSV '" + path + "' must start with header '" +
              kCsvHeader + "'");
    }
    std::vector<ProfileSample> samples;
    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> fields;
        std::stringstream ss(line);
        std::string field;
        while (std::getline(ss, field, ','))
            fields.push_back(field);
        if (fields.size() != 6) {
            fatal("profile CSV '" + path + "' line " +
                  std::to_string(lineno) + ": expected 6 fields, got " +
                  std::to_string(fields.size()));
        }
        ProfileSample s;
        s.kernel = fields[0];
        s.klass = fields[1];
        try {
            s.count = std::stod(fields[2]);
            s.flops = std::stod(fields[3]);
            s.bytes = std::stod(fields[4]);
            s.seconds = std::stod(fields[5]);
        } catch (const std::exception&) {
            fatal("profile CSV '" + path + "' line " +
                  std::to_string(lineno) + ": non-numeric feature field");
        }
        samples.push_back(std::move(s));
    }
    if (samples.empty())
        fatal("profile CSV '" + path + "' holds no samples");
    return samples;
}

void
write_profile_csv(const std::string& path,
                  const std::vector<ProfileSample>& samples)
{
    CsvWriter csv(path, {"kernel", "class", "count", "flops", "bytes",
                         "seconds"});
    if (!csv.ok())
        fatal("cannot open profile CSV '" + path + "' for writing");
    for (const ProfileSample& s : samples) {
        csv.add_row({s.kernel, s.klass, format_double(s.count),
                     format_double(s.flops), format_double(s.bytes),
                     format_double(s.seconds)});
    }
}

std::vector<ProfileSample>
synthesize_profile(const hw::KernelCoeffs& coeffs, double noise_frac,
                   std::uint64_t seed)
{
    SP_ASSERT(noise_frac >= 0.0 && noise_frac < 1.0,
              "noise fraction must be in [0, 1)");
    const hw::Node node = hw::h200_node();
    const model::ModelConfig m = model::llama_70b();
    const parallel::KernelCostModel cost(node, m, coeffs);

    // The deployment grid spans the regimes the fit must cover: pure TP,
    // pure SP, combined SP x TP, and the shift configuration's sliced
    // steps; batches span prefill, saturated decode, and mixed steps.
    const std::vector<parallel::ParallelConfig> configs = {
        {1, 1}, {1, 2}, {1, 8}, {2, 1}, {2, 4}, {4, 2}, {8, 1}};
    std::vector<model::BatchWork> batches;
    for (const std::int64_t prompt : {128, 512, 2048, 8192})
        batches.push_back(model::BatchWork::prefill(prompt));
    batches.push_back(model::BatchWork::decode(1, 512));
    batches.push_back(model::BatchWork::decode(8, 2048));
    batches.push_back(model::BatchWork::decode(64, 2048));
    batches.push_back(model::BatchWork::decode(256, 4096));
    model::BatchWork mixed;
    mixed.chunks.push_back({256, 0, true});
    for (int i = 0; i < 32; ++i)
        mixed.chunks.push_back({1, 1024 + 64 * i, false});
    batches.push_back(mixed);

    Rng rng(seed);
    std::vector<ProfileSample> samples;
    std::vector<model::KernelCost> breakdown;
    const auto record = [&](const parallel::ParallelConfig& cfg,
                            const model::BatchWork& work, bool sliced) {
        breakdown.clear();
        cost.evaluate(work, cfg, sliced, &breakdown);
        for (const model::KernelCost& k : breakdown) {
            ProfileSample s;
            s.kernel = k.kernel;
            s.klass = k.klass;
            s.count = k.count;
            s.flops = k.flops;
            s.bytes = k.bytes;
            s.seconds = k.seconds;
            if (noise_frac > 0.0) {
                s.seconds *=
                    rng.uniform(1.0 - noise_frac, 1.0 + noise_frac);
            }
            samples.push_back(std::move(s));
        }
    };
    for (const parallel::ParallelConfig& cfg : configs) {
        for (const model::BatchWork& work : batches)
            record(cfg, work, false);
    }
    // Sliced shift-config steps (on-the-fly slicing weight penalty).
    for (const model::BatchWork& work : batches)
        record({1, 8}, work, true);
    return samples;
}

CalibrationReport
fit_profile(const std::vector<ProfileSample>& samples,
            const std::string& hardware, const std::string& source)
{
    SP_ASSERT(!samples.empty(), "cannot fit an empty profile");

    // std::map: classes fit and reported in sorted order, so the emitted
    // document is deterministic for any input row order.
    std::map<std::string, std::vector<const ProfileSample*>> by_class;
    for (const ProfileSample& s : samples)
        by_class[s.klass].push_back(&s);

    CalibrationReport report;
    report.hardware = hardware;
    report.source = source;
    report.total_samples = static_cast<std::int64_t>(samples.size());

    double pooled_res = 0.0;
    double pooled_tot = 0.0;
    double global_mean = 0.0;
    for (const ProfileSample& s : samples)
        global_mean += s.seconds;
    global_mean /= static_cast<double>(samples.size());

    for (const auto& [klass, rows] : by_class) {
        const std::array<double, 3> coef = solve_ols(rows);

        KernelClassFit fit;
        fit.klass = klass;
        fit.samples = static_cast<std::int64_t>(rows.size());
        fit.alpha = coef[0];
        fit.beta = coef[1];
        fit.gamma = coef[2];

        double ss_res = 0.0;
        double ss_tot = 0.0;
        double mean = 0.0;
        for (const ProfileSample* s : rows)
            mean += s->seconds;
        mean /= static_cast<double>(rows.size());
        Summary resid;
        for (const ProfileSample* s : rows) {
            const double err = s->seconds - predict(coef, *s);
            ss_res += err * err;
            ss_tot += (s->seconds - mean) * (s->seconds - mean);
            pooled_res += err * err;
            pooled_tot += (s->seconds - global_mean) *
                          (s->seconds - global_mean);
            resid.add(std::abs(err) /
                      std::max(std::abs(s->seconds), 1e-30));
        }
        fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot
                              : (ss_res == 0.0 ? 1.0 : 0.0);
        fit.resid_p50 = resid.percentile(50.0);
        fit.resid_p90 = resid.percentile(90.0);
        fit.resid_p99 = resid.percentile(99.0);
        report.fits.push_back(std::move(fit));
    }
    report.overall_r2 = pooled_tot > 0.0
                            ? 1.0 - pooled_res / pooled_tot
                            : (pooled_res == 0.0 ? 1.0 : 0.0);
    return report;
}

void
write_calibration_report(const CalibrationReport& report, std::ostream& os)
{
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", "shiftpar.calibration");
    w.kv("version", 1);
    w.kv("hardware", report.hardware);
    w.kv("source", report.source);
    w.kv("total_samples", report.total_samples);
    w.kv("overall_r2", report.overall_r2);
    w.key("kernels").begin_array();
    for (const KernelClassFit& fit : report.fits) {
        w.begin_object();
        w.kv("class", fit.klass);
        w.kv("alpha", fit.alpha);
        w.kv("beta", fit.beta);
        w.kv("gamma", fit.gamma);
        w.kv("samples", fit.samples);
        w.kv("r2", fit.r2);
        w.key("residuals").begin_object();
        w.kv("p50", fit.resid_p50);
        w.kv("p90", fit.resid_p90);
        w.kv("p99", fit.resid_p99);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
}

} // namespace shiftpar::calibrate
