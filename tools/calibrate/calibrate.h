/**
 * @file
 * Kernel-coefficient calibration: fit the `KernelCostModel`'s per-class
 * linear coefficients to a profile of measured kernel times.
 *
 * The input is a CSV of per-kernel samples — `kernel,class,count,flops,
 * bytes,seconds` rows, the exact shape the cost model's own breakdowns
 * carry — from an external profiler (nsys/torch-profiler exports massaged
 * into this schema) or from `synthesize_profile` (a `KernelCostModel` with
 * known coefficients evaluated over a deployment grid, for testing the
 * fitter end to end). Per class, ordinary least squares over the features
 * `(count, flops, bytes)` recovers `(alpha, beta, gamma)` in
 * `t = alpha*count + beta*flops + gamma*bytes`; degenerate feature columns
 * (all zero, or collinear to numerical rank) are dropped and their
 * coefficients pinned to 0. The result is a schema-versioned JSON report
 * (`shiftpar.calibration` v1) that `hw::load_calibrated_coeffs` — and so
 * `--kernel-coeffs` — consumes directly.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hw/kernel_coeffs.h"

namespace shiftpar::calibrate {

/** One profiled kernel invocation (or fused row) with its features. */
struct ProfileSample
{
    std::string kernel;
    std::string klass;
    double count = 0.0;
    double flops = 0.0;
    double bytes = 0.0;
    double seconds = 0.0;
};

/** Parse a profile CSV; fatal() on a malformed header or row. */
std::vector<ProfileSample> read_profile_csv(const std::string& path);

/** Write samples as a profile CSV (creates the parent directory). */
void write_profile_csv(const std::string& path,
                       const std::vector<ProfileSample>& samples);

/**
 * Generate a synthetic profile: a `KernelCostModel` with `coeffs` is
 * evaluated over a fixed grid of (SP, TP) configurations and
 * prefill/decode/mixed batches, and every breakdown row becomes a sample.
 * With `noise_frac` > 0 each sample's seconds is scaled by a uniform
 * factor in [1-noise, 1+noise] drawn from `seed` (deterministic).
 */
std::vector<ProfileSample> synthesize_profile(const hw::KernelCoeffs& coeffs,
                                              double noise_frac,
                                              std::uint64_t seed);

/** Per-class least-squares result. */
struct KernelClassFit
{
    std::string klass;
    std::int64_t samples = 0;
    double alpha = 0.0;
    double beta = 0.0;
    double gamma = 0.0;

    /** Coefficient of determination of the class fit. */
    double r2 = 0.0;

    /** Relative |residual| percentiles across the class's samples. */
    double resid_p50 = 0.0;
    double resid_p90 = 0.0;
    double resid_p99 = 0.0;
};

/** The full calibration result (serialized as shiftpar.calibration v1). */
struct CalibrationReport
{
    /** Hardware label carried into `hw::KernelCoeffs::hardware`. */
    std::string hardware;

    /** Where the samples came from ("synthetic" or the CSV path). */
    std::string source;

    std::int64_t total_samples = 0;

    /** Pooled R² across every sample under its class fit. */
    double overall_r2 = 0.0;

    /** One fit per class present in the profile, in sorted class order. */
    std::vector<KernelClassFit> fits;
};

/** Fit every class present in `samples`; fatal() when `samples` is empty. */
CalibrationReport fit_profile(const std::vector<ProfileSample>& samples,
                              const std::string& hardware,
                              const std::string& source);

/**
 * Serialize as a `shiftpar.calibration` v1 JSON document — the format
 * `hw::load_calibrated_coeffs` and `tools/plot_results.py` validate.
 */
void write_calibration_report(const CalibrationReport& report,
                              std::ostream& os);

} // namespace shiftpar::calibrate
