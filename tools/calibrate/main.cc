/**
 * @file
 * `calibrate` driver: synthesize and/or fit kernel profiles.
 *
 * Typical flows:
 *
 *   # CI smoke: fit a synthetic profile from the h200 preset and verify
 *   # the fitter recovers it.
 *   calibrate --synthetic /tmp/prof.csv --out /tmp/cal.json --check-r2 0.99
 *
 *   # Fit an external profile and use it in a bench run.
 *   calibrate --fit profile.csv --hardware h100 --out cal.json
 *   bench_fig01_headline --kernel-coeffs cal.json
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "calibrate.h"
#include "hw/kernel_coeffs.h"
#include "util/argparse.h"
#include "util/logging.h"

int
main(int argc, char** argv)
{
    using namespace shiftpar;

    ArgParser args(
        "Fit KernelCostModel per-class coefficients to a kernel-profile "
        "CSV (kernel,class,count,flops,bytes,seconds rows), emitting a "
        "shiftpar.calibration v1 JSON report consumable by "
        "--kernel-coeffs.");
    args.add_string("synthetic", "",
                    "write a synthetic profile CSV here (generated from "
                    "the --hardware preset coefficients) and fit it");
    args.add_string("fit", "",
                    "profile CSV to fit (defaults to the --synthetic "
                    "path when that is given)");
    args.add_string("out", "", "calibration JSON output path");
    args.add_string("hardware", "h200",
                    "hardware preset for synthesis and report labeling "
                    "(h200|h100|b200|a100)");
    args.add_double("noise", 0.0,
                    "multiplicative noise amplitude on synthetic sample "
                    "times, in [0, 1)");
    args.add_int("seed", 42, "noise RNG seed");
    args.add_double("check-r2", 0.0,
                    "exit nonzero when the overall R² falls below this");
    if (!args.parse(argc, argv))
        return 0;

    const std::string synthetic = args.get_string("synthetic");
    std::string fit_path = args.get_string("fit");
    std::string source = fit_path;
    if (!synthetic.empty()) {
        const auto samples = calibrate::synthesize_profile(
            hw::kernel_coeffs_preset(args.get_string("hardware")),
            args.get_double("noise"),
            static_cast<std::uint64_t>(args.get_int("seed")));
        calibrate::write_profile_csv(synthetic, samples);
        std::printf("synthetic: wrote %s (%zu samples)\n",
                    synthetic.c_str(), samples.size());
        if (fit_path.empty()) {
            fit_path = synthetic;
            source = "synthetic";
        }
    }
    if (fit_path.empty())
        fatal("nothing to do: give --fit <csv> and/or --synthetic <csv>");

    const auto samples = calibrate::read_profile_csv(fit_path);
    const calibrate::CalibrationReport report =
        calibrate::fit_profile(samples, args.get_string("hardware"),
                               source);

    std::printf("fit: %lld samples from %s\n",
                static_cast<long long>(report.total_samples),
                fit_path.c_str());
    std::printf("%-12s %8s %14s %14s %14s %10s\n", "class", "samples",
                "alpha", "beta", "gamma", "r2");
    for (const calibrate::KernelClassFit& f : report.fits) {
        std::printf("%-12s %8lld %14.6e %14.6e %14.6e %10.6f\n",
                    f.klass.c_str(), static_cast<long long>(f.samples),
                    f.alpha, f.beta, f.gamma, f.r2);
    }
    std::printf("overall r2: %.6f\n", report.overall_r2);

    const std::string out = args.get_string("out");
    if (!out.empty()) {
        const auto parent = std::filesystem::path(out).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream os(out);
        if (!os)
            fatal("cannot open calibration output '" + out + "'");
        calibrate::write_calibration_report(report, os);
        std::printf("calibration: wrote %s\n", out.c_str());
    }

    const double min_r2 = args.get_double("check-r2");
    if (min_r2 > 0.0 && report.overall_r2 < min_r2) {
        std::fprintf(stderr,
                     "FAIL: overall r2 %.6f below required %.6f\n",
                     report.overall_r2, min_r2);
        return 1;
    }
    return 0;
}
