#!/usr/bin/env python3
"""Plot the CSVs the bench binaries write into bench_results/.

The paper's artifact ships a plot.py that turns raw benchmark output into
the paper's figures; this is the equivalent for this reproduction. Each
known CSV gets a dedicated figure; unknown CSVs get a generic per-column
line plot. Requires matplotlib; degrades to a summary listing without it.

Usage:
    tools/plot_results.py [--results bench_results] [--out plots]
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def group_by(rows, key):
    groups = defaultdict(list)
    for row in rows:
        groups[row[key]].append(row)
    return groups


def plot_fig09_style(plt, rows, value_key, title, ylabel, out):
    for strategy, series in group_by(rows, "strategy").items():
        xs = [int(r["request_index"]) for r in series]
        ys = [float(r[value_key]) for r in series]
        plt.plot(xs, ys, label=strategy, linewidth=0.8)
    plt.xlabel("request index (arrival order)")
    plt.ylabel(ylabel)
    plt.title(title)
    plt.legend()
    plt.yscale("log")
    plt.savefig(out, dpi=150, bbox_inches="tight")
    plt.clf()


def plot_rate_sweep(plt, rows, xkey, ykey, series_key, title, out,
                    logy=False):
    for name, series in group_by(rows, series_key).items():
        xs = [float(r[xkey]) for r in series]
        ys = [float(r[ykey]) for r in series]
        plt.plot(xs, ys, marker="o", label=name)
    plt.xlabel(xkey)
    plt.ylabel(ykey)
    plt.title(title)
    if logy:
        plt.yscale("log")
    plt.legend()
    plt.savefig(out, dpi=150, bbox_inches="tight")
    plt.clf()


KNOWN = {
    "fig09_azure_series.csv": lambda plt, rows, out: plot_fig09_style(
        plt, rows, "completion_ms", "Fig. 9: Azure code trace, Llama-70B",
        "completion (ms)", out),
    "fig10_mooncake_series.csv": lambda plt, rows, out: plot_fig09_style(
        plt, rows, "completion_s", "Fig. 10: Mooncake trace, Qwen-32B",
        "completion (s)", out),
    "fig14_arrival.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "rate_req_s", "mean_completion_s", "strategy",
        "Fig. 14: completion vs arrival rate", out, logy=True),
    "fig13_context.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "input_tokens", "ttft_ms", "strategy",
        "Fig. 13: TTFT vs context length", out, logy=True),
    "ext_slo.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "rate_req_s", "attainment", "strategy",
        "SLO attainment vs arrival rate", out),
    "fig07_timeline.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "t_s", "throughput_tok_s", "strategy",
        "Fig. 7: throughput timeline", out),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="bench_results")
    parser.add_argument("--out", default="plots")
    args = parser.parse_args()

    if not os.path.isdir(args.results):
        sys.exit(f"no results directory '{args.results}' — run the bench "
                 "binaries first")
    csvs = sorted(f for f in os.listdir(args.results) if f.endswith(".csv"))
    if not csvs:
        sys.exit(f"no CSVs in '{args.results}'")

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; listing results instead:")
        for name in csvs:
            rows = read_csv(os.path.join(args.results, name))
            print(f"  {name}: {len(rows)} rows, "
                  f"columns {list(rows[0].keys()) if rows else []}")
        return

    os.makedirs(args.out, exist_ok=True)
    for name in csvs:
        rows = read_csv(os.path.join(args.results, name))
        if not rows:
            continue
        out = os.path.join(args.out, name.replace(".csv", ".png"))
        plotter = KNOWN.get(name)
        if plotter is not None:
            plotter(plt, rows, out)
            print(f"wrote {out}")
    print("done")


if __name__ == "__main__":
    main()
