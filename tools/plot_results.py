#!/usr/bin/env python3
"""Plot the CSVs and JSON run reports the bench binaries write.

The paper's artifact ships a plot.py that turns raw benchmark output into
the paper's figures; this is the equivalent for this reproduction. Each
known CSV gets a dedicated figure; `*.report.json` documents (the
schema-versioned run reports every bench binary emits) get a per-report
latency/throughput summary chart. Requires matplotlib; degrades to a
summary listing without it.

Usage:
    tools/plot_results.py [--results bench_results] [--out plots]
"""

import argparse
import csv
import json
import os
import sys
from collections import defaultdict

REPORT_SCHEMA = "shiftpar.run_report"
REPORT_VERSION = 1
SIMCORE_SCHEMA = "shiftpar.bench_simcore"
SIMCORE_VERSION = 1
SIMCORE_FILE = "BENCH_simcore.json"
CALIB_SCHEMA = "shiftpar.calibration"
CALIB_VERSION = 1


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def read_report(path):
    """Load one schema-versioned run report.

    A schema or version mismatch is a hard error: silently skipping a
    report would let CI publish plots that are missing runs (or drawn
    from misread fields) without anyone noticing.
    """
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != REPORT_SCHEMA:
        sys.exit(f"error: {os.path.basename(path)}: unknown schema "
                 f"{doc.get('schema')!r} (expected {REPORT_SCHEMA!r}); "
                 f"refusing to guess at its layout")
    if doc.get("version", 0) > REPORT_VERSION:
        sys.exit(f"error: {os.path.basename(path)}: schema version "
                 f"{doc['version']} is newer than this tool "
                 f"(understands <= {REPORT_VERSION}); update "
                 f"tools/plot_results.py alongside the report writer")
    return doc


def read_simcore(path):
    """Load the sim-core throughput trajectory (bench_sim_core output).

    Same hard-fail policy as read_report: an unrecognized schema means the
    writer and this tool have drifted apart, and the fix is to update them
    together, not to plot whatever fields happen to parse.
    """
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SIMCORE_SCHEMA:
        sys.exit(f"error: {os.path.basename(path)}: unknown schema "
                 f"{doc.get('schema')!r} (expected {SIMCORE_SCHEMA!r}); "
                 f"refusing to guess at its layout")
    if doc.get("version", 0) > SIMCORE_VERSION:
        sys.exit(f"error: {os.path.basename(path)}: schema version "
                 f"{doc['version']} is newer than this tool "
                 f"(understands <= {SIMCORE_VERSION}); update "
                 f"tools/plot_results.py alongside bench_sim_core")
    return doc


def read_calibration(path):
    """Load and validate one tools/calibrate coefficient report.

    Same hard-fail policy as read_report: the calibrate binary and this
    tool must move together. A missing field means the writer changed
    shape without a version bump — fail loudly rather than plot garbage.
    """
    with open(path) as f:
        doc = json.load(f)
    name = os.path.basename(path)
    if doc.get("schema") != CALIB_SCHEMA:
        sys.exit(f"error: {name}: unknown schema {doc.get('schema')!r} "
                 f"(expected {CALIB_SCHEMA!r}); refusing to guess at "
                 "its layout")
    if doc.get("version", 0) > CALIB_VERSION:
        sys.exit(f"error: {name}: schema version {doc['version']} is "
                 f"newer than this tool (understands <= {CALIB_VERSION}); "
                 "update tools/plot_results.py alongside tools/calibrate")
    for field in ("hardware", "source", "total_samples", "overall_r2",
                  "kernels"):
        if field not in doc:
            sys.exit(f"error: {name}: calibration report is missing "
                     f"required field {field!r}")
    for fit in doc["kernels"]:
        for field in ("class", "alpha", "beta", "gamma", "samples", "r2",
                      "residuals"):
            if field not in fit:
                sys.exit(f"error: {name}: kernel fit entry is missing "
                         f"required field {field!r}")
        for pct in ("p50", "p90", "p99"):
            if pct not in fit["residuals"]:
                sys.exit(f"error: {name}: kernel fit "
                         f"{fit['class']!r} residuals missing {pct!r}")
    return doc


def find_calibrations(results_dir, names):
    """Return the subset of JSON files that are calibration reports.

    Stray JSON that doesn't carry a "schema" key (or carries a different
    one handled elsewhere) is skipped; anything that claims to be a
    calibration report gets the full validation in read_calibration.
    """
    found = []
    for name in names:
        path = os.path.join(results_dir, name)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict) and doc.get("schema") == CALIB_SCHEMA:
            found.append(name)
    return found


def summarize_calibration(doc):
    lines = [f"calibration: {doc['hardware']} ({doc['source']}, "
             f"{doc['total_samples']} samples, "
             f"overall r2={doc['overall_r2']:.6f})"]
    for fit in doc["kernels"]:
        res = fit["residuals"]
        lines.append(
            f"  {fit['class']}: alpha={fit['alpha']:.3e} "
            f"beta={fit['beta']:.3e} gamma={fit['gamma']:.3e} "
            f"r2={fit['r2']:.4f} resid p50={res['p50']:.1e} "
            f"p99={res['p99']:.1e} ({fit['samples']} samples)")
    return "\n".join(lines)


def plot_calibration(plt, doc, out):
    """Per-kernel-class fit quality: R^2 bars plus relative-residual
    percentiles on a twin log axis. A class whose bar dips below the
    0.99 line is the one to re-profile.
    """
    fits = doc["kernels"]
    if not fits:
        return False
    names = [f["class"] for f in fits]
    r2 = [f["r2"] for f in fits]
    p50 = [f["residuals"]["p50"] for f in fits]
    p99 = [f["residuals"]["p99"] for f in fits]
    xs = range(len(fits))

    fig, ax = plt.subplots(figsize=(max(6, 1.2 * len(fits)), 4))
    ax.bar(xs, r2, width=0.6, color="tab:blue", alpha=0.7, label="R^2")
    ax.axhline(0.99, color="tab:gray", linestyle=":", linewidth=0.8)
    ax.set_ylim(0.0, 1.05)
    ax.set_ylabel("fit R^2")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(names, rotation=30, ha="right", fontsize=8)
    if any(p99):
        ax2 = ax.twinx()
        ax2.plot(xs, p50, "o-", color="tab:orange", label="|resid| p50")
        ax2.plot(xs, p99, "s--", color="tab:red", label="|resid| p99")
        ax2.set_yscale("log")
        ax2.set_ylabel("relative residual")
        ax2.legend(loc="upper right", fontsize=8)
    ax.legend(loc="upper left", fontsize=8)
    ax.set_title(f"Kernel cost calibration: {doc['hardware']} "
                 f"({doc['source']})")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    plt.close(fig)
    return True


def summarize_simcore(doc):
    lines = ["sim-core trajectory:"]
    for entry in doc.get("entries", []):
        for cfg in entry.get("configs", []):
            lines.append(
                f"  {entry['label']}: {cfg['engines']} engines x "
                f"{cfg['requests']} requests -> "
                f"{cfg['events_per_sec'] / 1e6:.2f} Munits/s")
    return "\n".join(lines)


def plot_simcore(plt, doc, out):
    """Events-per-second trajectory: one line per (engines, requests)
    config, one x position per labelled entry, in file (= submission)
    order. This is the ROADMAP's "events/sec trajectory over PRs" chart.
    """
    entries = doc.get("entries", [])
    if not entries:
        return False
    labels = [e["label"] for e in entries]
    series = defaultdict(dict)  # (engines, requests) -> {entry idx: rate}
    for i, entry in enumerate(entries):
        for cfg in entry.get("configs", []):
            key = (cfg["engines"], cfg["requests"])
            series[key][i] = cfg["events_per_sec"] / 1e6
    for key in sorted(series):
        pts = series[key]
        xs = sorted(pts)
        plt.plot(xs, [pts[x] for x in xs], marker="o",
                 label=f"{key[0]} engines, {key[1]} reqs")
    plt.xticks(range(len(labels)), labels, rotation=30, ha="right")
    plt.xlabel("bench label (submission order)")
    plt.ylabel("sim-core throughput (M units/s)")
    plt.title("Sim-core event-loop throughput trajectory")
    plt.legend()
    plt.savefig(out, dpi=150, bbox_inches="tight")
    plt.clf()
    return True


def summarize_report(doc):
    lines = [f"report: {doc.get('title') or '(untitled)'}"]
    for run in doc.get("runs", []):
        met = run["metrics"]
        ttft = met["ttft_s"]
        parts = [f"{met['requests']} req",
                 f"{met['mean_throughput_tok_s']:.0f} tok/s"]
        if ttft["count"]:
            parts.append(f"ttft p50={ttft['p50'] * 1e3:.1f}ms "
                         f"p99={ttft['p99'] * 1e3:.1f}ms")
        slo = met.get("slo")
        if slo:
            parts.append(f"slo={slo['attainment'] * 100:.1f}% "
                         f"goodput={slo['goodput_tok_s']:.0f} tok/s")
        lines.append(f"  {run['name']}: " + ", ".join(parts))
    return "\n".join(lines)


def plot_report(plt, doc, out):
    """Bar chart: per-run throughput plus TTFT p50/p99 on a twin axis."""
    runs = doc.get("runs", [])
    if not runs:
        return False
    names = [r["name"] for r in runs]
    thru = [r["metrics"]["mean_throughput_tok_s"] for r in runs]
    p50 = [r["metrics"]["ttft_s"]["p50"] * 1e3 for r in runs]
    p99 = [r["metrics"]["ttft_s"]["p99"] * 1e3 for r in runs]
    xs = range(len(runs))

    fig, ax = plt.subplots(figsize=(max(6, 1.2 * len(runs)), 4))
    ax.bar(xs, thru, width=0.6, color="tab:blue", alpha=0.7,
           label="mean throughput")
    ax.set_ylabel("throughput (tok/s)")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(names, rotation=30, ha="right", fontsize=8)
    if any(p99):
        ax2 = ax.twinx()
        ax2.plot(xs, p50, "o-", color="tab:orange", label="TTFT p50")
        ax2.plot(xs, p99, "s--", color="tab:red", label="TTFT p99")
        ax2.set_ylabel("TTFT (ms)")
        ax2.legend(loc="upper right", fontsize=8)
    ax.legend(loc="upper left", fontsize=8)
    ax.set_title(doc.get("title") or "run report")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    plt.close(fig)
    return True


def group_by(rows, key):
    groups = defaultdict(list)
    for row in rows:
        groups[row[key]].append(row)
    return groups


def plot_fig09_style(plt, rows, value_key, title, ylabel, out):
    for strategy, series in group_by(rows, "strategy").items():
        xs = [int(r["request_index"]) for r in series]
        ys = [float(r[value_key]) for r in series]
        plt.plot(xs, ys, label=strategy, linewidth=0.8)
    plt.xlabel("request index (arrival order)")
    plt.ylabel(ylabel)
    plt.title(title)
    plt.legend()
    plt.yscale("log")
    plt.savefig(out, dpi=150, bbox_inches="tight")
    plt.clf()


def plot_rate_sweep(plt, rows, xkey, ykey, series_key, title, out,
                    logy=False):
    for name, series in group_by(rows, series_key).items():
        xs = [float(r[xkey]) for r in series]
        ys = [float(r[ykey]) for r in series]
        plt.plot(xs, ys, marker="o", label=name)
    plt.xlabel(xkey)
    plt.ylabel(ykey)
    plt.title(title)
    if logy:
        plt.yscale("log")
    plt.legend()
    plt.savefig(out, dpi=150, bbox_inches="tight")
    plt.clf()


KNOWN = {
    "fig09_azure_series.csv": lambda plt, rows, out: plot_fig09_style(
        plt, rows, "completion_ms", "Fig. 9: Azure code trace, Llama-70B",
        "completion (ms)", out),
    "fig10_mooncake_series.csv": lambda plt, rows, out: plot_fig09_style(
        plt, rows, "completion_s", "Fig. 10: Mooncake trace, Qwen-32B",
        "completion (s)", out),
    "fig14_arrival.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "rate_req_s", "mean_completion_s", "strategy",
        "Fig. 14: completion vs arrival rate", out, logy=True),
    "fig13_context.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "input_tokens", "ttft_ms", "strategy",
        "Fig. 13: TTFT vs context length", out, logy=True),
    "ext_slo.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "rate_req_s", "attainment", "strategy",
        "SLO attainment vs arrival rate", out),
    "fig07_timeline.csv": lambda plt, rows, out: plot_rate_sweep(
        plt, rows, "t_s", "throughput_tok_s", "strategy",
        "Fig. 7: throughput timeline", out),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="bench_results")
    parser.add_argument("--out", default="plots")
    args = parser.parse_args()

    if not os.path.isdir(args.results):
        sys.exit(f"no results directory '{args.results}' — run the bench "
                 "binaries first")
    csvs = sorted(f for f in os.listdir(args.results) if f.endswith(".csv"))
    reports = sorted(f for f in os.listdir(args.results)
                     if f.endswith(".report.json"))
    other_json = sorted(f for f in os.listdir(args.results)
                        if f.endswith(".json")
                        and not f.endswith(".report.json")
                        and f != SIMCORE_FILE)
    calibrations = find_calibrations(args.results, other_json)
    simcore_path = os.path.join(args.results, SIMCORE_FILE)
    simcore = read_simcore(simcore_path) \
        if os.path.exists(simcore_path) else None
    if not csvs and not reports and not calibrations and simcore is None:
        sys.exit(f"no CSVs or reports in '{args.results}'")

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; listing results instead:")
        for name in csvs:
            rows = read_csv(os.path.join(args.results, name))
            print(f"  {name}: {len(rows)} rows, "
                  f"columns {list(rows[0].keys()) if rows else []}")
        for name in reports:
            doc = read_report(os.path.join(args.results, name))
            if doc is not None:
                print(summarize_report(doc))
        for name in calibrations:
            print(summarize_calibration(
                read_calibration(os.path.join(args.results, name))))
        if simcore is not None:
            print(summarize_simcore(simcore))
        return

    os.makedirs(args.out, exist_ok=True)
    for name in csvs:
        rows = read_csv(os.path.join(args.results, name))
        if not rows:
            continue
        out = os.path.join(args.out, name.replace(".csv", ".png"))
        plotter = KNOWN.get(name)
        if plotter is not None:
            plotter(plt, rows, out)
            print(f"wrote {out}")
    for name in reports:
        doc = read_report(os.path.join(args.results, name))
        if doc is None:
            continue
        print(summarize_report(doc))
        out = os.path.join(args.out,
                           name.replace(".report.json", ".report.png"))
        if plot_report(plt, doc, out):
            print(f"wrote {out}")
    for name in calibrations:
        doc = read_calibration(os.path.join(args.results, name))
        print(summarize_calibration(doc))
        out = os.path.join(args.out, name.replace(".json", ".png"))
        if plot_calibration(plt, doc, out):
            print(f"wrote {out}")
    if simcore is not None:
        print(summarize_simcore(simcore))
        out = os.path.join(args.out, "BENCH_simcore.png")
        if plot_simcore(plt, simcore, out):
            print(f"wrote {out}")
    print("done")


if __name__ == "__main__":
    main()
