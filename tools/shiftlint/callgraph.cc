#include "callgraph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

namespace shiftpar::lint {

namespace {

/** Keywords whose `kw (` shape is control flow, never a call. */
const std::unordered_set<std::string> kNotCalls = {
    "if",       "for",      "while",    "switch",   "catch",
    "return",   "sizeof",   "alignof",  "decltype", "noexcept",
    "static_assert", "alignas", "assert", "defined",
};

} // namespace

CallGraph
CallGraph::build(const Corpus& corpus, const SymbolIndex& index)
{
    CallGraph g;
    const std::size_t n = corpus.functions.size();
    g.callees_.resize(n);
    g.callers_.resize(n);
    g.unresolved_.resize(n);

    for (std::size_t fi = 0; fi < n; ++fi) {
        const FunctionDef& fn = corpus.functions[fi];
        const auto& toks = fn.file->tokens;
        std::set<std::size_t> seen_callees;
        std::set<std::string> seen_unresolved;
        for (std::size_t k = fn.body_begin + 1;
             k + 1 < fn.body_end; ++k) {
            if (toks[k].kind != TokKind::kIdent || toks[k + 1].text != "(")
                continue;
            const std::string& name = toks[k].text;
            if (kNotCalls.count(name))
                continue;

            std::string qualifier;
            bool member = false;
            if (k > 0) {
                const std::string& prev = toks[k - 1].text;
                member = prev == "." || prev == "->";
                if (prev == "::" && k >= 2 &&
                    toks[k - 2].kind == TokKind::kIdent)
                    qualifier = toks[k - 2].text;
            }
            // A member call's receiver is not `this`: skip the own-class
            // preference and over-approximate across all definitions.
            const std::vector<std::size_t> targets = index.resolve(
                name, qualifier, member ? std::string() : fn.owner);
            if (targets.empty()) {
                if (seen_unresolved.insert(name).second) {
                    g.unresolved_[fi].push_back(name);
                    ++g.num_unresolved_;
                }
                continue;
            }
            for (const std::size_t t : targets) {
                if (t == fi || !seen_callees.insert(t).second)
                    continue;
                g.callees_[fi].push_back({t, k});
                ++g.num_edges_;
            }
        }
    }

    for (std::size_t fi = 0; fi < n; ++fi)
        for (const Edge& e : g.callees_[fi])
            g.callers_[e.callee].push_back(fi);
    for (auto& c : g.callers_)
        c.erase(std::unique(c.begin(), c.end()), c.end());
    return g;
}

std::vector<std::size_t>
CallGraph::find_path(std::size_t root,
                     const std::function<bool(std::size_t)>& pred,
                     int max_depth) const
{
    if (root >= callees_.size())
        return {};
    std::vector<std::size_t> parent(callees_.size(),
                                    callees_.size());  // "unvisited"
    std::deque<std::pair<std::size_t, int>> queue;
    queue.emplace_back(root, 0);
    parent[root] = root;
    while (!queue.empty()) {
        const auto [cur, depth] = queue.front();
        queue.pop_front();
        if (cur != root && pred(cur)) {
            std::vector<std::size_t> path;
            for (std::size_t at = cur; at != root; at = parent[at])
                path.push_back(at);
            path.push_back(root);
            std::reverse(path.begin(), path.end());
            return path;
        }
        if (depth >= max_depth)
            continue;
        for (const Edge& e : callees_[cur]) {
            if (parent[e.callee] != callees_.size())
                continue;
            parent[e.callee] = cur;
            queue.emplace_back(e.callee, depth + 1);
        }
    }
    return {};
}

bool
CallGraph::reaches(std::size_t root,
                   const std::function<bool(std::size_t)>& pred,
                   int max_depth) const
{
    if (root >= callees_.size())
        return false;
    if (pred(root))
        return true;
    return !find_path(root, pred, max_depth).empty();
}

} // namespace shiftpar::lint
