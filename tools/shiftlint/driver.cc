#include "driver.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/json.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace shiftpar::lint {

namespace {

namespace fs = std::filesystem;

bool
is_source(const fs::path& p)
{
    const auto ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" ||
           ext == ".cxx" || ext == ".hpp";
}

/** FNV-1a 64-bit, used for position-independent baseline keys. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    for (int i = 15; i >= 0; --i, v >>= 4)
        buf[i] = "0123456789abcdef"[v & 0xf];
    buf[16] = '\0';
    return buf;
}

/** Position-independent identity of a finding: the check, the file, and
 *  the trimmed text of the flagged line (survives reformat-above). */
std::string
baseline_key(const Corpus& corpus, const Finding& f)
{
    std::string line_text;
    for (const auto& file : corpus.files) {
        if (file.path == f.path) {
            line_text = file.line_text(f.line);
            break;
        }
    }
    return f.check + " " + f.path + " " +
           hex64(fnv1a(f.check + "|" + f.path + "|" + line_text));
}

std::set<std::string>
load_baseline(const std::string& path)
{
    std::set<std::string> keys;
    std::ifstream in(path);
    if (!in)
        fatal("cannot open baseline file '" + path + "'");
    std::string line;
    while (std::getline(in, line)) {
        const auto hash_pos = line.find('#');
        if (hash_pos != std::string::npos)
            line = line.substr(0, hash_pos);
        std::istringstream ls(line);
        std::string check, file, hash;
        if (ls >> check >> file >> hash)
            keys.insert(check + " " + file + " " + hash);
    }
    return keys;
}

void
apply_fixes(Corpus& corpus, std::vector<Finding>& findings,
            RunResult& result)
{
    std::map<std::string, std::vector<const FixEdit*>> by_file;
    for (const auto& f : findings)
        if (f.fix)
            by_file[f.path].push_back(&*f.fix);

    for (auto& [path, edits] : by_file) {
        SourceFile* file = nullptr;
        for (auto& sf : corpus.files)
            if (sf.path == path)
                file = &sf;
        if (file == nullptr)
            continue;
        // Apply back-to-front so earlier offsets stay valid; skip
        // overlapping edits (first one wins).
        std::sort(edits.begin(), edits.end(),
                  [](const FixEdit* a, const FixEdit* b) {
                      return a->begin > b->begin;
                  });
        std::size_t last_begin = file->text.size() + 1;
        for (const FixEdit* e : edits) {
            if (e->end > last_begin)
                continue;
            file->text.replace(e->begin, e->end - e->begin,
                               e->replacement);
            last_begin = e->begin;
            ++result.fixes_applied;
        }
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot rewrite '" + path + "' with fixes");
        out << file->text;
    }

    // Fixed findings are resolved, not actionable.
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& f) {
                                      return f.fix.has_value();
                                  }),
                   findings.end());
}

} // namespace

std::vector<std::string>
collect_sources(const std::vector<std::string>& paths)
{
    std::vector<std::string> out;
    for (const auto& p : paths) {
        if (fs::is_directory(p)) {
            for (const auto& e : fs::recursive_directory_iterator(p))
                if (e.is_regular_file() && is_source(e.path()))
                    out.push_back(e.path().generic_string());
        } else if (fs::is_regular_file(p)) {
            out.push_back(p);
        } else {
            fatal("no such file or directory: '" + p + "'");
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

Corpus
load_corpus(const std::vector<std::string>& paths, int jobs,
            double* lex_seconds)
{
    const util::Stopwatch watch;
    Corpus corpus;
    const auto read_and_lex = [](const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            fatal("cannot read '" + path + "'");
        std::ostringstream ss;
        ss << in.rdbuf();
        return lex_source(path, ss.str());
    };
    if (jobs == 1 || paths.size() < 2) {
        for (const auto& path : paths)
            corpus.files.push_back(read_and_lex(path));
    } else {
        // Same idiom as bench::run_sweep: workers fill pre-assigned
        // slots, so the corpus lands in path order at any job count.
        corpus.files.resize(paths.size());
        util::ThreadPool pool(jobs);
        for (std::size_t i = 0; i < paths.size(); ++i)
            pool.submit([&, i] { corpus.files[i] = read_and_lex(paths[i]); });
        pool.wait_idle();
    }
    corpus.build_index();
    if (lex_seconds != nullptr)
        *lex_seconds = watch.elapsed_s();
    return corpus;
}

RunResult
run_checks(Corpus& corpus, const Options& opts)
{
    const util::Stopwatch total_watch;
    RunResult result;
    result.stats.files = corpus.files.size();

    // Build the cross-TU layers once; checks share them read-only.
    const util::Stopwatch index_watch;
    const SymbolIndex symbols = SymbolIndex::build(corpus);
    const CallGraph callgraph = CallGraph::build(corpus, symbols);
    result.stats.index_s = index_watch.elapsed_s();
    result.stats.functions = corpus.functions.size();
    result.stats.structs = corpus.structs.size();
    result.stats.callgraph_edges = callgraph.num_edges();
    result.stats.unresolved_calls = callgraph.num_unresolved();
    const LintContext ctx{corpus, symbols, callgraph};

    std::vector<const Check*> selected;
    for (const auto& check : check_registry()) {
        if (!opts.checks.empty() &&
            std::find(opts.checks.begin(), opts.checks.end(),
                      check->name()) == opts.checks.end())
            continue;
        selected.push_back(check.get());
    }

    // Run checks (in parallel with --jobs: each writes a private
    // vector), then concatenate in registration order — the exact
    // append order of a sequential run, so output never depends on
    // worker count.
    std::vector<std::vector<Finding>> per_check(selected.size());
    std::vector<double> per_check_s(selected.size(), 0.0);
    const auto run_one = [&](std::size_t i) {
        const util::Stopwatch watch;
        selected[i]->run(ctx, per_check[i]);
        per_check_s[i] = watch.elapsed_s();
    };
    if (opts.jobs != 1 && selected.size() > 1) {
        util::ThreadPool pool(opts.jobs);
        for (std::size_t i = 0; i < selected.size(); ++i)
            pool.submit([&, i] { run_one(i); });
        pool.wait_idle();
    } else {
        for (std::size_t i = 0; i < selected.size(); ++i)
            run_one(i);
    }

    std::vector<Finding> raw;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        result.stats.checks.push_back({selected[i]->name(),
                                       per_check_s[i],
                                       per_check[i].size()});
        raw.insert(raw.end(),
                   std::make_move_iterator(per_check[i].begin()),
                   std::make_move_iterator(per_check[i].end()));
    }

    // Malformed allow-comments are findings themselves: a suppression
    // without a reason hides a violation with no audit trail. Malformed
    // guarded-field comments likewise: an annotation that fails to
    // parse silently unguards the field.
    for (const auto& file : corpus.files) {
        for (const int line : file.malformed_suppressions) {
            Finding f;
            f.check = "bad-suppression";
            f.path = file.path;
            f.line = line;
            f.col = 1;
            f.message =
                "malformed shiftlint-allow comment: expected "
                "`// shiftlint-allow(<check>): <reason>`";
            raw.push_back(std::move(f));
        }
        for (const int line : file.malformed_guards) {
            Finding f;
            f.check = "bad-annotation";
            f.path = file.path;
            f.line = line;
            f.col = 1;
            f.message =
                "malformed shiftlint-guarded comment: expected "
                "`// shiftlint-guarded(<mutex-member>)`";
            raw.push_back(std::move(f));
        }
    }

    const std::set<std::string> baseline =
        opts.baseline_path.empty() ? std::set<std::string>{}
                                   : load_baseline(opts.baseline_path);

    for (auto& f : raw) {
        const Suppression* matched = nullptr;
        for (const auto& file : corpus.files) {
            if (file.path != f.path)
                continue;
            for (const auto& s : file.suppressions) {
                if ((s.line == f.line || s.line == f.line - 1) &&
                    (s.check == f.check || s.check == "*")) {
                    matched = &s;
                    break;
                }
            }
        }
        if (matched != nullptr) {
            matched->used = true;
            result.suppressed.push_back(std::move(f));
        } else if (!baseline.empty() &&
                   baseline.count(baseline_key(corpus, f))) {
            result.baselined.push_back(std::move(f));
        } else {
            result.findings.push_back(std::move(f));
        }
    }

    for (const auto& file : corpus.files)
        for (const auto& s : file.suppressions)
            if (!s.used)
                result.stale_suppressions.push_back(
                    file.path + ":" + std::to_string(s.line) +
                    ": unused shiftlint-allow(" + s.check + ")");

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.path, a.line, a.col, a.check) <
                         std::tie(b.path, b.line, b.col, b.check);
              });

    if (opts.apply_fixes)
        apply_fixes(corpus, result.findings, result);

    result.stats.total_s = total_watch.elapsed_s();
    return result;
}

void
write_human(std::ostream& os, const RunResult& result)
{
    for (const auto& f : result.findings) {
        os << f.path << ":" << f.line << ":" << f.col << ": [" << f.check
           << "] " << f.message;
        if (f.fix)
            os << " (fixable with --fix)";
        os << "\n";
    }
    for (const auto& s : result.stale_suppressions)
        os << "warning: " << s << "\n";
    os << "shiftlint: " << result.findings.size() << " finding(s), "
       << result.suppressed.size() << " suppressed, "
       << result.baselined.size() << " baselined";
    if (result.fixes_applied > 0)
        os << ", " << result.fixes_applied << " fix(es) applied";
    os << "\n";
}

void
write_stats(std::ostream& os, const RunResult& result)
{
    const LintStats& s = result.stats;
    const auto fmt_s = [](double v) {
        std::ostringstream ss;
        ss.setf(std::ios::fixed);
        ss.precision(3);
        ss << v << "s";
        return ss.str();
    };
    os << "shiftlint stats:\n"
       << "  corpus:    " << s.files << " files, " << s.functions
       << " functions, " << s.structs << " structs\n"
       << "  callgraph: " << s.callgraph_edges << " edges, "
       << s.unresolved_calls << " unresolved call sites (fail-open)\n"
       << "  lex+parse: " << fmt_s(s.lex_s);
    if (s.lex_s > 0.0) {
        os << " (";
        os.setf(std::ios::fixed);
        os.precision(0);
        os << static_cast<double>(s.files) / s.lex_s << " files/s)";
        os.unsetf(std::ios::fixed);
    }
    os << "\n"
       << "  index:     " << fmt_s(s.index_s) << "\n"
       << "  checks:    " << fmt_s(s.total_s) << " total\n";
    for (const auto& c : s.checks)
        os << "    " << c.check << ": " << fmt_s(c.seconds) << ", "
           << c.findings << " raw finding(s)\n";
}

void
write_sarif(std::ostream& os, const RunResult& result)
{
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("$schema",
         "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json");
    w.kv("version", "2.1.0");
    w.key("runs").begin_array();
    w.begin_object();
    w.key("tool").begin_object();
    w.key("driver").begin_object();
    w.kv("name", "shiftlint");
    w.kv("informationUri",
         "https://github.com/shiftpar/shiftpar/tree/main/tools/shiftlint");
    w.key("rules").begin_array();
    for (const auto& check : check_registry()) {
        w.begin_object();
        w.kv("id", check->name());
        w.key("shortDescription").begin_object();
        w.kv("text", check->description());
        w.end_object();
        w.end_object();
    }
    w.end_array();  // rules
    w.end_object(); // driver
    w.end_object(); // tool
    w.key("results").begin_array();
    for (const auto& f : result.findings) {
        w.begin_object();
        w.kv("ruleId", f.check);
        w.kv("level", "error");
        w.key("message").begin_object();
        w.kv("text", f.message);
        w.end_object();
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.kv("uri", f.path);
        w.end_object();
        w.key("region").begin_object();
        w.kv("startLine", f.line);
        w.kv("startColumn", f.col);
        w.end_object();
        w.end_object();  // physicalLocation
        w.end_object();  // location
        w.end_array();   // locations
        w.end_object();  // result
    }
    w.end_array();  // results
    w.end_object(); // run
    w.end_array();  // runs
    w.end_object();
    os << "\n";
}

void
write_baseline(std::ostream& os, const Corpus& corpus,
               const RunResult& result)
{
    os << "# shiftlint baseline — accepted findings, one per line:\n"
       << "# <check> <path> <line-content-hash>  # <flagged line>\n"
       << "# Regenerate with `shiftlint --write-baseline <file>`; every\n"
       << "# entry needs a justification in the PR that adds it.\n";
    std::vector<std::string> lines;
    for (const auto& f : result.findings) {
        std::string text;
        for (const auto& file : corpus.files)
            if (file.path == f.path)
                text = file.line_text(f.line);
        if (text.size() > 60)
            text = text.substr(0, 57) + "...";
        lines.push_back(baseline_key(corpus, f) + "  # " + text);
    }
    // Also keep already-baselined findings: regeneration must not drop
    // entries that still fire.
    for (const auto& f : result.baselined) {
        std::string text;
        for (const auto& file : corpus.files)
            if (file.path == f.path)
                text = file.line_text(f.line);
        if (text.size() > 60)
            text = text.substr(0, 57) + "...";
        lines.push_back(baseline_key(corpus, f) + "  # " + text);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (const auto& l : lines)
        os << l << "\n";
}

} // namespace shiftpar::lint
