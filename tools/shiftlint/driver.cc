#include "driver.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/json.h"
#include "util/logging.h"

namespace shiftpar::lint {

namespace {

namespace fs = std::filesystem;

bool
is_source(const fs::path& p)
{
    const auto ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" ||
           ext == ".cxx" || ext == ".hpp";
}

/** FNV-1a 64-bit, used for position-independent baseline keys. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    for (int i = 15; i >= 0; --i, v >>= 4)
        buf[i] = "0123456789abcdef"[v & 0xf];
    buf[16] = '\0';
    return buf;
}

/** Position-independent identity of a finding: the check, the file, and
 *  the trimmed text of the flagged line (survives reformat-above). */
std::string
baseline_key(const Corpus& corpus, const Finding& f)
{
    std::string line_text;
    for (const auto& file : corpus.files) {
        if (file.path == f.path) {
            line_text = file.line_text(f.line);
            break;
        }
    }
    return f.check + " " + f.path + " " +
           hex64(fnv1a(f.check + "|" + f.path + "|" + line_text));
}

std::set<std::string>
load_baseline(const std::string& path)
{
    std::set<std::string> keys;
    std::ifstream in(path);
    if (!in)
        fatal("cannot open baseline file '" + path + "'");
    std::string line;
    while (std::getline(in, line)) {
        const auto hash_pos = line.find('#');
        if (hash_pos != std::string::npos)
            line = line.substr(0, hash_pos);
        std::istringstream ls(line);
        std::string check, file, hash;
        if (ls >> check >> file >> hash)
            keys.insert(check + " " + file + " " + hash);
    }
    return keys;
}

void
apply_fixes(Corpus& corpus, std::vector<Finding>& findings,
            RunResult& result)
{
    std::map<std::string, std::vector<const FixEdit*>> by_file;
    for (const auto& f : findings)
        if (f.fix)
            by_file[f.path].push_back(&*f.fix);

    for (auto& [path, edits] : by_file) {
        SourceFile* file = nullptr;
        for (auto& sf : corpus.files)
            if (sf.path == path)
                file = &sf;
        if (file == nullptr)
            continue;
        // Apply back-to-front so earlier offsets stay valid; skip
        // overlapping edits (first one wins).
        std::sort(edits.begin(), edits.end(),
                  [](const FixEdit* a, const FixEdit* b) {
                      return a->begin > b->begin;
                  });
        std::size_t last_begin = file->text.size() + 1;
        for (const FixEdit* e : edits) {
            if (e->end > last_begin)
                continue;
            file->text.replace(e->begin, e->end - e->begin,
                               e->replacement);
            last_begin = e->begin;
            ++result.fixes_applied;
        }
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot rewrite '" + path + "' with fixes");
        out << file->text;
    }

    // Fixed findings are resolved, not actionable.
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& f) {
                                      return f.fix.has_value();
                                  }),
                   findings.end());
}

} // namespace

std::vector<std::string>
collect_sources(const std::vector<std::string>& paths)
{
    std::vector<std::string> out;
    for (const auto& p : paths) {
        if (fs::is_directory(p)) {
            for (const auto& e : fs::recursive_directory_iterator(p))
                if (e.is_regular_file() && is_source(e.path()))
                    out.push_back(e.path().generic_string());
        } else if (fs::is_regular_file(p)) {
            out.push_back(p);
        } else {
            fatal("no such file or directory: '" + p + "'");
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

Corpus
load_corpus(const std::vector<std::string>& paths)
{
    Corpus corpus;
    for (const auto& path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            fatal("cannot read '" + path + "'");
        std::ostringstream ss;
        ss << in.rdbuf();
        corpus.files.push_back(lex_source(path, ss.str()));
    }
    corpus.build_index();
    return corpus;
}

RunResult
run_checks(Corpus& corpus, const Options& opts)
{
    RunResult result;

    std::vector<Finding> raw;
    for (const auto& check : check_registry()) {
        if (!opts.checks.empty() &&
            std::find(opts.checks.begin(), opts.checks.end(),
                      check->name()) == opts.checks.end())
            continue;
        check->run(corpus, raw);
    }

    // Malformed allow-comments are findings themselves: a suppression
    // without a reason hides a violation with no audit trail.
    for (const auto& file : corpus.files) {
        for (const int line : file.malformed_suppressions) {
            Finding f;
            f.check = "bad-suppression";
            f.path = file.path;
            f.line = line;
            f.col = 1;
            f.message =
                "malformed shiftlint-allow comment: expected "
                "`// shiftlint-allow(<check>): <reason>`";
            raw.push_back(std::move(f));
        }
    }

    const std::set<std::string> baseline =
        opts.baseline_path.empty() ? std::set<std::string>{}
                                   : load_baseline(opts.baseline_path);

    for (auto& f : raw) {
        const Suppression* matched = nullptr;
        for (const auto& file : corpus.files) {
            if (file.path != f.path)
                continue;
            for (const auto& s : file.suppressions) {
                if ((s.line == f.line || s.line == f.line - 1) &&
                    (s.check == f.check || s.check == "*")) {
                    matched = &s;
                    break;
                }
            }
        }
        if (matched != nullptr) {
            matched->used = true;
            result.suppressed.push_back(std::move(f));
        } else if (!baseline.empty() &&
                   baseline.count(baseline_key(corpus, f))) {
            result.baselined.push_back(std::move(f));
        } else {
            result.findings.push_back(std::move(f));
        }
    }

    for (const auto& file : corpus.files)
        for (const auto& s : file.suppressions)
            if (!s.used)
                result.stale_suppressions.push_back(
                    file.path + ":" + std::to_string(s.line) +
                    ": unused shiftlint-allow(" + s.check + ")");

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.path, a.line, a.col, a.check) <
                         std::tie(b.path, b.line, b.col, b.check);
              });

    if (opts.apply_fixes)
        apply_fixes(corpus, result.findings, result);

    return result;
}

void
write_human(std::ostream& os, const RunResult& result)
{
    for (const auto& f : result.findings) {
        os << f.path << ":" << f.line << ":" << f.col << ": [" << f.check
           << "] " << f.message;
        if (f.fix)
            os << " (fixable with --fix)";
        os << "\n";
    }
    for (const auto& s : result.stale_suppressions)
        os << "warning: " << s << "\n";
    os << "shiftlint: " << result.findings.size() << " finding(s), "
       << result.suppressed.size() << " suppressed, "
       << result.baselined.size() << " baselined";
    if (result.fixes_applied > 0)
        os << ", " << result.fixes_applied << " fix(es) applied";
    os << "\n";
}

void
write_sarif(std::ostream& os, const RunResult& result)
{
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("$schema",
         "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json");
    w.kv("version", "2.1.0");
    w.key("runs").begin_array();
    w.begin_object();
    w.key("tool").begin_object();
    w.key("driver").begin_object();
    w.kv("name", "shiftlint");
    w.kv("informationUri",
         "https://github.com/shiftpar/shiftpar/tree/main/tools/shiftlint");
    w.key("rules").begin_array();
    for (const auto& check : check_registry()) {
        w.begin_object();
        w.kv("id", check->name());
        w.key("shortDescription").begin_object();
        w.kv("text", check->description());
        w.end_object();
        w.end_object();
    }
    w.end_array();  // rules
    w.end_object(); // driver
    w.end_object(); // tool
    w.key("results").begin_array();
    for (const auto& f : result.findings) {
        w.begin_object();
        w.kv("ruleId", f.check);
        w.kv("level", "error");
        w.key("message").begin_object();
        w.kv("text", f.message);
        w.end_object();
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.kv("uri", f.path);
        w.end_object();
        w.key("region").begin_object();
        w.kv("startLine", f.line);
        w.kv("startColumn", f.col);
        w.end_object();
        w.end_object();  // physicalLocation
        w.end_object();  // location
        w.end_array();   // locations
        w.end_object();  // result
    }
    w.end_array();  // results
    w.end_object(); // run
    w.end_array();  // runs
    w.end_object();
    os << "\n";
}

void
write_baseline(std::ostream& os, const Corpus& corpus,
               const RunResult& result)
{
    os << "# shiftlint baseline — accepted findings, one per line:\n"
       << "# <check> <path> <line-content-hash>  # <flagged line>\n"
       << "# Regenerate with `shiftlint --write-baseline <file>`; every\n"
       << "# entry needs a justification in the PR that adds it.\n";
    std::vector<std::string> lines;
    for (const auto& f : result.findings) {
        std::string text;
        for (const auto& file : corpus.files)
            if (file.path == f.path)
                text = file.line_text(f.line);
        if (text.size() > 60)
            text = text.substr(0, 57) + "...";
        lines.push_back(baseline_key(corpus, f) + "  # " + text);
    }
    // Also keep already-baselined findings: regeneration must not drop
    // entries that still fire.
    for (const auto& f : result.baselined) {
        std::string text;
        for (const auto& file : corpus.files)
            if (file.path == f.path)
                text = file.line_text(f.line);
        if (text.size() > 60)
            text = text.substr(0, 57) + "...";
        lines.push_back(baseline_key(corpus, f) + "  # " + text);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (const auto& l : lines)
        os << l << "\n";
}

} // namespace shiftpar::lint
