#include "index.h"

namespace shiftpar::lint {

SymbolIndex
SymbolIndex::build(const Corpus& corpus)
{
    SymbolIndex idx;
    for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
        const FunctionDef& fn = corpus.functions[i];
        idx.by_name[fn.name].push_back(i);
        if (fn.qualified != fn.name)
            idx.by_qualified[fn.qualified].push_back(i);
    }
    for (std::size_t i = 0; i < corpus.structs.size(); ++i)
        idx.struct_by_name[corpus.structs[i].name].push_back(i);

    // Bind guarded annotations to the field declared on the annotation's
    // line or the next line (annotation above the declaration), inside
    // the innermost struct spanning that line.
    for (const auto& f : corpus.files) {
        for (const auto& g : f.guards) {
            bool bound = false;
            const StructDef* best = nullptr;
            std::size_t best_index = 0;
            for (std::size_t si = 0; si < corpus.structs.size(); ++si) {
                const StructDef& sd = corpus.structs[si];
                if (sd.file != &f)
                    continue;
                const int body_end_line =
                    sd.body_end < f.tokens.size()
                        ? f.tokens[sd.body_end].line
                        : g.line;
                if (g.line < sd.line || g.line > body_end_line)
                    continue;
                if (best == nullptr || sd.line > best->line) {
                    best = &sd;
                    best_index = si;
                }
            }
            if (best != nullptr) {
                for (std::size_t fi = 0; fi < best->fields.size(); ++fi) {
                    const int fl = best->field_lines[fi];
                    if (fl == g.line || fl == g.line + 1) {
                        GuardedField gf;
                        gf.struct_index = best_index;
                        gf.struct_name = best->name;
                        gf.field = best->fields[fi];
                        gf.mutex = g.mutex;
                        gf.file = &f;
                        gf.line = g.line;
                        idx.guarded_fields.push_back(std::move(gf));
                        bound = true;
                        break;
                    }
                }
            }
            if (!bound)
                idx.unresolved_guards.push_back({&f, g.line, g.mutex});
        }
    }
    return idx;
}

std::vector<std::size_t>
SymbolIndex::resolve(const std::string& name, const std::string& qualifier,
                     const std::string& caller_owner) const
{
    if (!qualifier.empty()) {
        const auto it = by_qualified.find(qualifier + "::" + name);
        if (it != by_qualified.end())
            return it->second;
        // A qualifier we know nothing about (std::, util::...) stays
        // unresolved rather than falling back to every same-named
        // definition: `std::min` must not resolve to a local `min`.
        return {};
    }
    if (!caller_owner.empty()) {
        const auto it = by_qualified.find(caller_owner + "::" + name);
        if (it != by_qualified.end())
            return it->second;
    }
    const auto it = by_name.find(name);
    return it != by_name.end() ? it->second : std::vector<std::size_t>{};
}

} // namespace shiftpar::lint
