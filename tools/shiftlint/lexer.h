/**
 * @file
 * Token-level C++ lexer for shiftlint.
 *
 * Deliberately not a compiler front end: shiftlint's checks operate on
 * token streams plus a little shape recognition (function bodies, struct
 * fields, declarations), which is enough to enforce the repo's determinism
 * conventions without a libclang dependency. The lexer understands
 * comments (collected separately, so suppression annotations can be
 * matched to findings), string/char literals including raw strings (their
 * contents are opaque — banned identifiers inside a string are not
 * findings), and preprocessor directives (skipped wholesale, so `#include
 * <unordered_map>` never looks like a declaration).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shiftpar::lint {

/** Lexical class of one token. */
enum class TokKind
{
    kIdent,   ///< identifier or keyword
    kNumber,  ///< numeric literal
    kString,  ///< string literal (text is the full lexeme, quotes included)
    kChar,    ///< character literal
    kPunct,   ///< operator/punctuation (multi-char ops are one token)
};

/** One lexed token with its source position. */
struct Token
{
    TokKind kind = TokKind::kPunct;
    std::string text;
    int line = 0;            ///< 1-based
    int col = 0;             ///< 1-based
    std::size_t offset = 0;  ///< byte offset of the first character
};

/**
 * A suppression comment: `shiftlint-allow` followed by `(<check>): reason`.
 * Suppresses findings of `check` on the same line or the next line.
 * `check` may be `*`.
 */
struct Suppression
{
    int line = 0;
    std::string check;
    std::string reason;
    mutable bool used = false;  ///< set when a finding matched it
};

/**
 * A guarded-field comment: `shiftlint-guarded` followed by `(<mutex>)`.
 * Declares that the data member declared on the same line (or the next
 * line) must only be touched while `mutex` is held; the guarded-by check
 * enforces it corpus-wide through the call graph.
 */
struct GuardAnnotation
{
    int line = 0;
    std::string mutex;
};

/** A lexed source file (from disk or an in-memory fixture). */
struct SourceFile
{
    std::string path;  ///< as given by the caller (repo-relative in CI)
    std::string text;
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
    std::vector<GuardAnnotation> guards;

    /** Lines of `shiftlint-allow` comments missing the `: reason` part. */
    std::vector<int> malformed_suppressions;

    /** Lines of `shiftlint-guarded` comments with an empty/unclosed name. */
    std::vector<int> malformed_guards;

    /** @return the trimmed source text of 1-based line `line`. */
    std::string line_text(int line) const;
};

/** Lex `text` into tokens and suppression annotations. */
SourceFile lex_source(std::string path, std::string text);

} // namespace shiftpar::lint
