/**
 * @file
 * Conservative whole-corpus call graph for shiftlint.
 *
 * Nodes are the `FunctionDef`s recognized by the AST-lite layer; edges are
 * `name(`-shaped call sites inside a body, resolved through the
 * `SymbolIndex`. Resolution is deliberately conservative in both
 * directions:
 *
 *  - a bare call inside a member function resolves within its own class
 *    first (`step()` in `Engine::advance_to` means `Engine::step`, not a
 *    test fixture's `step`), then to every definition of the name;
 *  - member-access calls (`x.f(`, `x->f(`) resolve to every definition of
 *    `f` — without types we over-approximate rather than guess;
 *  - calls through an unknown qualifier (`std::min`), function-valued
 *    members (`on_finish_(...)`), and anything else that resolves to no
 *    in-corpus definition become *unresolved* edges: they are counted but
 *    produce no graph edge, so every check built on the graph fails open
 *    across them — an invisible callee never creates a finding.
 *
 * Determinism: nodes are corpus indexes, edges are collected in token
 * order and deduplicated keeping the earliest call site, and the reverse
 * (caller) lists are built by one in-order sweep — the same corpus always
 * produces the identical graph.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "index.h"

namespace shiftpar::lint {

/** Call graph over `Corpus::functions`. */
class CallGraph
{
  public:
    /** One resolved call: target function + call-site token in the
     *  caller's file (for finding locations). */
    struct Edge
    {
        std::size_t callee = 0;  ///< into Corpus::functions
        std::size_t site = 0;    ///< token index in the caller's file
    };

    /** Build the graph (corpus and index must outlive the result). */
    static CallGraph build(const Corpus& corpus, const SymbolIndex& index);

    /** Out-edges of `fn`, earliest call site first, one per callee. */
    const std::vector<Edge>& callees(std::size_t fn) const
    {
        return callees_[fn];
    }

    /** Functions with an edge into `fn`, ascending corpus index. */
    const std::vector<std::size_t>& callers(std::size_t fn) const
    {
        return callers_[fn];
    }

    /** Call names in `fn` that resolved to no definition (fail-open). */
    const std::vector<std::string>& unresolved(std::size_t fn) const
    {
        return unresolved_[fn];
    }

    std::size_t num_nodes() const { return callees_.size(); }
    std::size_t num_edges() const { return num_edges_; }
    std::size_t num_unresolved() const { return num_unresolved_; }

    /**
     * Breadth-first search from `root` over callee edges, bounded by
     * `max_depth` hops. @return the first path `root, ..., target` (by
     * BFS order, which is deterministic) whose `target` satisfies `pred`,
     * excluding `root` itself from the predicate; empty when none.
     */
    std::vector<std::size_t> find_path(
        std::size_t root,
        const std::function<bool(std::size_t)>& pred,
        int max_depth) const;

    /** @return true when `pred` holds for `root` or any function
     *  reachable from it within `max_depth` hops. */
    bool reaches(std::size_t root,
                 const std::function<bool(std::size_t)>& pred,
                 int max_depth) const;

  private:
    std::vector<std::vector<Edge>> callees_;
    std::vector<std::vector<std::size_t>> callers_;
    std::vector<std::vector<std::string>> unresolved_;
    std::size_t num_edges_ = 0;
    std::size_t num_unresolved_ = 0;
};

} // namespace shiftpar::lint
