#include "lexer.h"

#include <cctype>

namespace shiftpar::lint {

namespace {

bool
ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuation, longest first within each head. */
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "##",
};

/** Parse a suppression annotation out of a comment body. */
void
parse_suppression(const std::string& comment, int line, SourceFile& out)
{
    const std::string tag = "shiftlint-allow(";
    const auto pos = comment.find(tag);
    if (pos == std::string::npos)
        return;
    const auto open = pos + tag.size();
    const auto close = comment.find(')', open);
    if (close == std::string::npos) {
        out.malformed_suppressions.push_back(line);
        return;
    }
    Suppression s;
    s.line = line;
    s.check = comment.substr(open, close - open);
    // Trim the check name.
    while (!s.check.empty() && std::isspace(
               static_cast<unsigned char>(s.check.front())))
        s.check.erase(s.check.begin());
    while (!s.check.empty() && std::isspace(
               static_cast<unsigned char>(s.check.back())))
        s.check.pop_back();
    // A reason is mandatory: "): reason".
    auto rest = comment.substr(close + 1);
    const auto colon = rest.find(':');
    std::string reason =
        colon == std::string::npos ? "" : rest.substr(colon + 1);
    while (!reason.empty() &&
           std::isspace(static_cast<unsigned char>(reason.front())))
        reason.erase(reason.begin());
    if (s.check.empty() || reason.empty()) {
        out.malformed_suppressions.push_back(line);
        return;
    }
    s.reason = reason;
    out.suppressions.push_back(std::move(s));
}

/** Parse a guarded-field annotation out of a comment body. */
void
parse_guard(const std::string& comment, int line, SourceFile& out)
{
    const std::string tag = "shiftlint-guarded(";
    const auto pos = comment.find(tag);
    if (pos == std::string::npos)
        return;
    const auto open = pos + tag.size();
    const auto close = comment.find(')', open);
    if (close == std::string::npos) {
        out.malformed_guards.push_back(line);
        return;
    }
    GuardAnnotation g;
    g.line = line;
    g.mutex = comment.substr(open, close - open);
    while (!g.mutex.empty() && std::isspace(
               static_cast<unsigned char>(g.mutex.front())))
        g.mutex.erase(g.mutex.begin());
    while (!g.mutex.empty() && std::isspace(
               static_cast<unsigned char>(g.mutex.back())))
        g.mutex.pop_back();
    if (g.mutex.empty()) {
        out.malformed_guards.push_back(line);
        return;
    }
    out.guards.push_back(std::move(g));
}

} // namespace

std::string
SourceFile::line_text(int line) const
{
    int cur = 1;
    std::size_t start = 0;
    while (cur < line) {
        const auto nl = text.find('\n', start);
        if (nl == std::string::npos)
            return "";
        start = nl + 1;
        ++cur;
    }
    auto end = text.find('\n', start);
    if (end == std::string::npos)
        end = text.size();
    auto s = text.substr(start, end - start);
    const auto a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    const auto b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

SourceFile
lex_source(std::string path, std::string text)
{
    SourceFile out;
    out.path = std::move(path);
    out.text = std::move(text);
    const std::string& s = out.text;

    std::size_t i = 0;
    int line = 1;
    int col = 1;
    bool line_has_token = false;

    const auto advance = [&](std::size_t n) {
        for (std::size_t k = 0; k < n && i < s.size(); ++k, ++i) {
            if (s[i] == '\n') {
                ++line;
                col = 1;
                line_has_token = false;
            } else {
                ++col;
            }
        }
    };

    while (i < s.size()) {
        const char c = s[i];

        // Whitespace.
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Line comment (suppression annotations live here).
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            auto end = s.find('\n', i);
            if (end == std::string::npos)
                end = s.size();
            parse_suppression(s.substr(i, end - i), line, out);
            parse_guard(s.substr(i, end - i), line, out);
            advance(end - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            const int start_line = line;
            auto end = s.find("*/", i + 2);
            if (end == std::string::npos)
                end = s.size();
            else
                end += 2;
            parse_suppression(s.substr(i, end - i), start_line, out);
            parse_guard(s.substr(i, end - i), start_line, out);
            advance(end - i);
            continue;
        }

        // Preprocessor directive: skip to end of line, honoring
        // backslash continuations (only when '#' starts the line).
        if (c == '#' && !line_has_token) {
            std::size_t j = i;
            while (j < s.size()) {
                const auto nl = s.find('\n', j);
                if (nl == std::string::npos) {
                    j = s.size();
                    break;
                }
                // Continued line?
                std::size_t back = nl;
                while (back > j && (s[back - 1] == '\r'))
                    --back;
                if (back > j && s[back - 1] == '\\') {
                    j = nl + 1;
                    continue;
                }
                j = nl;
                break;
            }
            advance(j - i);
            continue;
        }

        Token tok;
        tok.line = line;
        tok.col = col;
        tok.offset = i;
        line_has_token = true;

        // Raw string literal.
        if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"') {
            const auto paren = s.find('(', i + 2);
            if (paren != std::string::npos) {
                const std::string delim = s.substr(i + 2, paren - (i + 2));
                const std::string closer = ")" + delim + "\"";
                auto end = s.find(closer, paren + 1);
                end = end == std::string::npos ? s.size()
                                               : end + closer.size();
                tok.kind = TokKind::kString;
                tok.text = s.substr(i, end - i);
                out.tokens.push_back(tok);
                advance(end - i);
                continue;
            }
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            std::size_t j = i + 1;
            while (j < s.size() && s[j] != c) {
                if (s[j] == '\\')
                    ++j;
                if (j < s.size())
                    ++j;
            }
            if (j < s.size())
                ++j;  // closing quote
            tok.kind = c == '"' ? TokKind::kString : TokKind::kChar;
            tok.text = s.substr(i, j - i);
            out.tokens.push_back(tok);
            advance(j - i);
            continue;
        }

        // Identifier / keyword.
        if (ident_start(c)) {
            std::size_t j = i + 1;
            while (j < s.size() && ident_char(s[j]))
                ++j;
            tok.kind = TokKind::kIdent;
            tok.text = s.substr(i, j - i);
            out.tokens.push_back(tok);
            advance(j - i);
            continue;
        }

        // Number (incl. hex, separators, float exponents).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < s.size() &&
                   (ident_char(s[j]) || s[j] == '.' || s[j] == '\'' ||
                    ((s[j] == '+' || s[j] == '-') &&
                     (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                      s[j - 1] == 'p' || s[j - 1] == 'P'))))
                ++j;
            tok.kind = TokKind::kNumber;
            tok.text = s.substr(i, j - i);
            out.tokens.push_back(tok);
            advance(j - i);
            continue;
        }

        // Punctuation: longest known multi-char operator, else one char.
        tok.kind = TokKind::kPunct;
        tok.text = std::string(1, c);
        for (const char* p : kPuncts) {
            const std::size_t n = std::string(p).size();
            if (s.compare(i, n, p) == 0) {
                tok.text = p;
                break;
            }
        }
        out.tokens.push_back(tok);
        advance(tok.text.size());
    }
    return out;
}

} // namespace shiftpar::lint
