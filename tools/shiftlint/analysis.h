/**
 * @file
 * AST-lite source model shared by the shiftlint checks.
 *
 * `Corpus` owns every lexed file plus three derived indexes built by
 * shape recognition over the token streams:
 *
 *  - function definitions (qualified name + body token range), found by
 *    the `name ( ... ) ... {` pattern with control-flow keywords excluded;
 *  - struct/class definitions with their *data member* names (methods,
 *    nested types, and access labels are skipped) — the raw material of
 *    the struct/serializer drift check;
 *  - the set of identifiers declared anywhere in the corpus with an
 *    `unordered_map`/`unordered_set` type, so iteration sites in a .cc can
 *    be matched against members declared in the class header.
 *
 * The recognizers are heuristics, tuned to this repo's style; they fail
 * *open* (an unrecognized construct produces no findings, never a crash).
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace shiftpar::lint {

/** One recognized function definition. */
struct FunctionDef
{
    const SourceFile* file = nullptr;
    std::string name;       ///< unqualified ("merge")
    std::string qualified;  ///< "Metrics::merge" when defined out-of-line
    std::string owner;      ///< enclosing/qualifying class name, or ""
    std::size_t params_begin = 0;  ///< token index of the opening '('
    std::size_t params_end = 0;    ///< token index of the matching ')'
    std::size_t body_begin = 0;  ///< token index of the opening '{'
    std::size_t body_end = 0;    ///< token index of the matching '}'
    int line = 0;
};

/** One recognized struct/class definition with its data members. */
struct StructDef
{
    const SourceFile* file = nullptr;
    std::string name;
    std::vector<std::string> fields;  ///< declaration order
    std::vector<int> field_lines;     ///< parallel to `fields`
    std::size_t body_begin = 0;  ///< token index of the opening '{'
    std::size_t body_end = 0;    ///< token index of the matching '}'
    int line = 0;
};

/** Every file under analysis plus the derived indexes. */
struct Corpus
{
    std::vector<SourceFile> files;

    std::vector<FunctionDef> functions;
    std::vector<StructDef> structs;

    /** Identifiers declared with an unordered container type anywhere. */
    std::set<std::string> unordered_names;

    /** Build the derived indexes; call once after `files` is final. */
    void build_index();

    /** @return every definition of a function named `name` (unqualified
     *  match) or with exactly this qualified name. */
    std::vector<const FunctionDef*> find_functions(
        const std::string& name) const;

    /** @return the first definition of struct `name`, or nullptr. */
    const StructDef* find_struct(const std::string& name) const;
};

/** @return the token index of the brace matching `open` (a '{'), or
 *  `tokens.size()` when unbalanced. */
std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open);

/** @return true when token `i` of `f` lies inside `fn`'s body. */
bool contains_token(const FunctionDef& fn, std::size_t i);

} // namespace shiftpar::lint
