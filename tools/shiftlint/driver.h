/**
 * @file
 * The shiftlint driver: file collection, check execution, suppression and
 * baseline filtering, fix application, and output rendering.
 *
 * Split from `main.cc` so the fixture tests (tests/tools) can run checks
 * over in-memory snippets and assert on the classified results without
 * spawning the binary.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "check.h"

namespace shiftpar::lint {

/** Driver configuration (mirrors the CLI flags). */
struct Options
{
    /** Check names to run; empty = all registered checks. */
    std::vector<std::string> checks;

    /** Baseline file to filter against; empty = no baseline. */
    std::string baseline_path;

    /** Apply mechanical fixes in place. */
    bool apply_fixes = false;
};

/** Classified results of one lint run. */
struct RunResult
{
    std::vector<Finding> findings;    ///< actionable (fail the run)
    std::vector<Finding> suppressed;  ///< matched an inline allow-comment
    std::vector<Finding> baselined;   ///< matched the baseline file

    /** Inline allow-comments that matched no finding (stale). */
    std::vector<std::string> stale_suppressions;

    /** Number of fix edits applied (when Options::apply_fixes). */
    int fixes_applied = 0;

    bool clean() const { return findings.empty(); }
};

/**
 * Recursively collect `.cc`/`.h` files under each path (a path may also
 * name a single file). Results are sorted for deterministic output.
 */
std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/** Lex `paths` from disk into a corpus. fatal() on unreadable files. */
Corpus load_corpus(const std::vector<std::string>& paths);

/** Run the selected checks and classify findings. Fix application edits
 *  the *in-memory* corpus text and rewrites the on-disk files. */
RunResult run_checks(Corpus& corpus, const Options& opts);

/** Render human-readable findings (one line each) plus a summary. */
void write_human(std::ostream& os, const RunResult& result);

/** Render SARIF 2.1.0 for CI code-scanning upload. */
void write_sarif(std::ostream& os, const RunResult& result);

/** Serialize `result`'s actionable findings as baseline entries. */
void write_baseline(std::ostream& os, const Corpus& corpus,
                    const RunResult& result);

} // namespace shiftpar::lint
