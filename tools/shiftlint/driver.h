/**
 * @file
 * The shiftlint driver: file collection, check execution, suppression and
 * baseline filtering, fix application, and output rendering.
 *
 * Split from `main.cc` so the fixture tests (tests/tools) can run checks
 * over in-memory snippets and assert on the classified results without
 * spawning the binary.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "check.h"

namespace shiftpar::lint {

/** Driver configuration (mirrors the CLI flags). */
struct Options
{
    /** Check names to run; empty = all registered checks. */
    std::vector<std::string> checks;

    /** Baseline file to filter against; empty = no baseline. */
    std::string baseline_path;

    /** Apply mechanical fixes in place. */
    bool apply_fixes = false;

    /**
     * Worker threads for lexing and check execution (0 = hardware
     * concurrency). Results are committed in path / registration order,
     * so output is byte-identical at any job count.
     */
    int jobs = 1;
};

/** Cost breakdown of one lint run (printed by --stats, to stderr). */
struct LintStats
{
    std::size_t files = 0;
    std::size_t functions = 0;   ///< symbol-index size
    std::size_t structs = 0;
    std::size_t callgraph_edges = 0;
    std::size_t unresolved_calls = 0;  ///< fail-open call sites
    double lex_s = 0.0;    ///< read + lex + per-file index
    double index_s = 0.0;  ///< symbol index + call graph build
    double total_s = 0.0;  ///< run_checks wall time

    /** Per-check (name, seconds, raw finding count), registry order. */
    struct CheckCost
    {
        std::string check;
        double seconds = 0.0;
        std::size_t findings = 0;
    };
    std::vector<CheckCost> checks;
};

/** Classified results of one lint run. */
struct RunResult
{
    std::vector<Finding> findings;    ///< actionable (fail the run)
    std::vector<Finding> suppressed;  ///< matched an inline allow-comment
    std::vector<Finding> baselined;   ///< matched the baseline file

    /** Inline allow-comments that matched no finding (stale). */
    std::vector<std::string> stale_suppressions;

    /** Number of fix edits applied (when Options::apply_fixes). */
    int fixes_applied = 0;

    /** Cost breakdown (check timings; index sizes). */
    LintStats stats;

    bool clean() const { return findings.empty(); }
};

/**
 * Recursively collect `.cc`/`.h` files under each path (a path may also
 * name a single file). Results are sorted for deterministic output.
 */
std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/** Lex `paths` from disk into a corpus. fatal() on unreadable files.
 *  `jobs` > 1 lexes in parallel; files land in path order regardless. */
Corpus load_corpus(const std::vector<std::string>& paths, int jobs = 1,
                   double* lex_seconds = nullptr);

/** Run the selected checks and classify findings. Fix application edits
 *  the *in-memory* corpus text and rewrites the on-disk files. */
RunResult run_checks(Corpus& corpus, const Options& opts);

/** Render human-readable findings (one line each) plus a summary. */
void write_human(std::ostream& os, const RunResult& result);

/** Render the --stats cost breakdown (per-check timing, files/sec,
 *  index size). Timings are host-wall-clock and go to stderr in the
 *  CLI, keeping stdout byte-identical across runs and job counts. */
void write_stats(std::ostream& os, const RunResult& result);

/** Render SARIF 2.1.0 for CI code-scanning upload. */
void write_sarif(std::ostream& os, const RunResult& result);

/** Serialize `result`'s actionable findings as baseline entries. */
void write_baseline(std::ostream& os, const Corpus& corpus,
                    const RunResult& result);

} // namespace shiftpar::lint
