/**
 * @file
 * The shiftlint check registry: findings, fixes, and the check interface.
 *
 * Each check enforces one determinism or accounting invariant of the
 * simulator (see DESIGN.md §8). Checks run over a whole `Corpus` (not one
 * file at a time) because several invariants are cross-file: an
 * `unordered_map` member is declared in a header but iterated in the .cc,
 * and struct/serializer drift pairs a struct definition with a writer
 * function in another TU.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis.h"
#include "callgraph.h"
#include "index.h"

namespace shiftpar::lint {

/** A mechanical source edit attached to a finding (applied by --fix). */
struct FixEdit
{
    std::size_t begin = 0;  ///< byte offset in the file text
    std::size_t end = 0;    ///< one past the last replaced byte
    std::string replacement;
};

/** One rule violation at one source location. */
struct Finding
{
    std::string check;
    std::string path;
    int line = 0;
    int col = 0;
    std::string message;
    std::optional<FixEdit> fix;
};

/**
 * Everything a check may consult: the lexed corpus plus the cross-TU
 * symbol index and call graph derived from it (built once per run and
 * shared read-only across checks, so `--jobs` can run checks in
 * parallel).
 */
struct LintContext
{
    const Corpus& corpus;
    const SymbolIndex& symbols;
    const CallGraph& callgraph;
};

/** One registered rule. */
class Check
{
  public:
    virtual ~Check() = default;

    /** Stable kebab-case rule id (used in suppressions and baselines). */
    virtual const char* name() const = 0;

    /** One-line description (shown by --list-checks and in SARIF). */
    virtual const char* description() const = 0;

    virtual void run(const LintContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

/** @return the built-in checks, in registration order. */
const std::vector<std::unique_ptr<Check>>& check_registry();

} // namespace shiftpar::lint
