#include "analysis.h"

#include <unordered_set>

namespace shiftpar::lint {

namespace {

const std::unordered_set<std::string> kControlKeywords = {
    "if",     "for",    "while",  "switch",        "catch",
    "return", "sizeof", "alignof", "decltype",     "noexcept",
    "else",   "do",     "new",    "static_assert", "alignas",
};

const std::unordered_set<std::string> kNonFieldKeywords = {
    "public",   "private", "protected", "using",  "typedef",
    "friend",   "template", "static",   "const",  "constexpr",
    "mutable",  "virtual",  "override", "final",  "struct",
    "class",    "enum",     "operator", "return", "true",
    "false",    "nullptr",  "default",  "delete", "void",
    "bool",     "int",      "double",   "float",  "char",
    "long",     "short",    "unsigned", "signed", "auto",
};

const std::unordered_set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/** Skip a balanced <...> starting at `i` (tokens[i] == "<").
 *  @return index one past the closing '>', or size() when unbalanced. */
std::size_t
skip_angles(const std::vector<Token>& toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const std::string& t = toks[i].text;
        if (t == "<")
            ++depth;
        else if (t == "<<")
            depth += 2;
        else if (t == ">")
            --depth;
        else if (t == ">>")
            depth -= 2;
        else if (t == ";" || t == "{")
            return toks.size();  // not a template argument list after all
        if (depth <= 0)
            return i + 1;
    }
    return toks.size();
}

/** Skip a balanced (...) starting at `i` (tokens[i] == "(").
 *  @return index one past the closing ')', or size() when unbalanced. */
std::size_t
skip_parens(const std::vector<Token>& toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")")
            --depth;
        if (depth == 0)
            return i + 1;
    }
    return toks.size();
}

void
scan_functions(SourceFile& f, std::vector<FunctionDef>& out)
{
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent || toks[i + 1].text != "(")
            continue;
        const std::string& name = toks[i].text;
        if (kControlKeywords.count(name) || name == "operator")
            continue;
        // Member calls (`x.f(`, `x->f(`) are never definitions.
        if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
            continue;

        const std::size_t after_params = skip_parens(toks, i + 1);
        if (after_params >= toks.size())
            continue;

        // Walk from the parameter list to the body '{', skipping
        // cv-qualifiers, noexcept(...), trailing return types, and
        // constructor initializer lists. Hitting ';', '=', or '}' first
        // means declaration/expression, not a definition.
        std::size_t j = after_params;
        bool is_def = false;
        while (j < toks.size()) {
            const std::string& t = toks[j].text;
            if (t == "{") {
                is_def = true;
                break;
            }
            // A bare ')' here means the "call" was nested inside an
            // enclosing paren expression — `if (x && f(y)) {` — and the
            // '{' ahead is the statement body, not a function body.
            if (t == ";" || t == "=" || t == "}" || t == ")")
                break;
            if (t == "(") {
                j = skip_parens(toks, j);
                continue;
            }
            ++j;
        }
        if (!is_def)
            continue;

        const std::size_t close = match_brace(toks, j);
        if (close >= toks.size())
            continue;

        FunctionDef fn;
        fn.file = &f;
        fn.name = name;
        fn.qualified = name;
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == TokKind::kIdent) {
            fn.qualified = toks[i - 2].text + "::" + name;
            fn.owner = toks[i - 2].text;
        } else if (i >= 3 && toks[i - 1].text == "~" &&
                   toks[i - 2].text == "::" &&
                   toks[i - 3].kind == TokKind::kIdent) {
            // Out-of-line destructor: `S::~S(...)`.
            fn.qualified = toks[i - 3].text + "::~" + name;
            fn.owner = toks[i - 3].text;
        }
        fn.params_begin = i + 1;
        fn.params_end = after_params - 1;
        fn.body_begin = j;
        fn.body_end = close;
        fn.line = toks[i].line;
        out.push_back(std::move(fn));
        // Continue scanning inside the body: nested/member definitions
        // are recognized by the same pattern.
    }
}

void
scan_structs(SourceFile& f, std::vector<StructDef>& out)
{
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const std::string& kw = toks[i].text;
        if (kw != "struct" && kw != "class")
            continue;
        if (i > 0 && toks[i - 1].text == "enum")
            continue;  // enum class
        if (toks[i + 1].kind != TokKind::kIdent)
            continue;
        const std::string& name = toks[i + 1].text;

        // Find the body '{' (skipping "final" and base clauses); a ';'
        // first means forward declaration.
        std::size_t j = i + 2;
        bool has_body = false;
        while (j < toks.size()) {
            const std::string& t = toks[j].text;
            if (t == "{") {
                has_body = true;
                break;
            }
            if (t == ";" || t == ")" || t == "}" || t == "=")
                break;
            if (t == "<") {  // template base like Base<T>
                j = skip_angles(toks, j);
                continue;
            }
            ++j;
        }
        if (!has_body)
            continue;
        const std::size_t close = match_brace(toks, j);
        if (close >= toks.size())
            continue;

        StructDef sd;
        sd.file = &f;
        sd.name = name;
        sd.body_begin = j;
        sd.body_end = close;
        sd.line = toks[i].line;

        // Collect data members: walk depth-1 declaration chunks
        // (';'-terminated), skipping nested braces (method bodies,
        // nested types, brace initializers).
        std::size_t k = j + 1;
        std::vector<std::size_t> chunk;  // token indices at depth 1
        bool chunk_is_callable = false;
        int angle = 0;
        int paren = 0;
        while (k < close) {
            const std::string& t = toks[k].text;
            if (t == "{") {
                k = match_brace(toks, k) + 1;
                // A brace at declarator level is a method body or nested
                // type; drop the pending chunk (no trailing ';' for
                // function bodies).
                continue;
            }
            if (t == "(" && angle == 0)
                chunk_is_callable = true;
            if (t == "<")
                ++angle;
            else if (t == ">")
                angle = angle > 0 ? angle - 1 : 0;
            else if (t == ">>")
                angle = angle > 1 ? angle - 2 : 0;
            else if (t == "(")
                ++paren;
            else if (t == ")")
                paren = paren > 0 ? paren - 1 : 0;
            if (t == ";" && angle == 0 && paren == 0) {
                if (!chunk_is_callable) {
                    // Identifiers directly followed by ';' '=' ',' '[':
                    // the declarators of this member declaration.
                    for (std::size_t c = 0; c < chunk.size(); ++c) {
                        const Token& id = toks[chunk[c]];
                        if (id.kind != TokKind::kIdent ||
                            kNonFieldKeywords.count(id.text))
                            continue;
                        const std::string& next = toks[chunk[c] + 1].text;
                        if (next == ";" || next == "=" || next == "," ||
                            next == "[") {
                            sd.fields.push_back(id.text);
                            sd.field_lines.push_back(id.line);
                        }
                    }
                }
                chunk.clear();
                chunk_is_callable = false;
                ++k;
                continue;
            }
            if (angle == 0 && paren == 0)
                chunk.push_back(k);
            ++k;
        }
        out.push_back(std::move(sd));
    }
}

void
scan_unordered_decls(const SourceFile& f, std::set<std::string>& names)
{
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent ||
            !kUnorderedTypes.count(toks[i].text))
            continue;
        if (toks[i + 1].text != "<")
            continue;
        std::size_t j = skip_angles(toks, i + 1);
        // Skip ref/pointer/cv tokens between the type and the name.
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
            !kNonFieldKeywords.count(toks[j].text))
            names.insert(toks[j].text);
    }
}

} // namespace

std::size_t
match_brace(const std::vector<Token>& tokens, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == "{")
            ++depth;
        else if (tokens[i].text == "}")
            --depth;
        if (depth == 0)
            return i;
    }
    return tokens.size();
}

bool
contains_token(const FunctionDef& fn, std::size_t i)
{
    return i > fn.body_begin && i < fn.body_end;
}

void
Corpus::build_index()
{
    functions.clear();
    structs.clear();
    unordered_names.clear();
    for (auto& f : files) {
        scan_functions(f, functions);
        scan_structs(f, structs);
        scan_unordered_decls(f, unordered_names);
    }
    // Attribute in-class definitions to their enclosing struct: the
    // innermost struct body (same file) containing the function body.
    for (auto& fn : functions) {
        if (!fn.owner.empty())
            continue;
        const StructDef* best = nullptr;
        for (const auto& sd : structs) {
            if (sd.file != fn.file || fn.body_begin <= sd.body_begin ||
                fn.body_end >= sd.body_end)
                continue;
            if (best == nullptr ||
                sd.body_begin > best->body_begin)  // innermost wins
                best = &sd;
        }
        if (best != nullptr) {
            fn.owner = best->name;
            fn.qualified = best->name + "::" + fn.name;
        }
    }
}

std::vector<const FunctionDef*>
Corpus::find_functions(const std::string& name) const
{
    std::vector<const FunctionDef*> out;
    for (const auto& fn : functions)
        if (fn.name == name || fn.qualified == name)
            out.push_back(&fn);
    return out;
}

const StructDef*
Corpus::find_struct(const std::string& name) const
{
    for (const auto& sd : structs)
        if (sd.name == name)
            return &sd;
    return nullptr;
}

} // namespace shiftpar::lint
