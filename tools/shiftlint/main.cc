/**
 * @file
 * shiftlint CLI — the determinism & invariant static-analysis pass.
 *
 * Usage:
 *   shiftlint [options] [paths...]          (default paths: src bench tests)
 *
 * Options:
 *   --fix                  apply mechanical fixes in place
 *   --format human|sarif   output format (default human)
 *   --baseline FILE        filter findings against a committed baseline
 *   --write-baseline FILE  write the current findings as a new baseline
 *   --check NAME           run only NAME (repeatable)
 *   --list-checks          print the registry and exit
 *   --jobs N               lex files and run checks on N threads
 *                          (0 = hardware concurrency; default 1).
 *                          Output is byte-identical at any job count.
 *   --stats                print a cost breakdown (per-check timing,
 *                          files/sec, index size) to stderr
 *
 * Exit status: 0 clean (or everything suppressed/baselined), 1 findings,
 * 2 usage error. Run from the repository root so baseline paths match.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver.h"
#include "util/logging.h"

namespace {

int
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--fix] [--format human|sarif] [--baseline FILE]\n"
                 "       [--write-baseline FILE] [--check NAME]... "
                 "[--list-checks]\n"
                 "       [--jobs N] [--stats] [paths...]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace shiftpar::lint;

    Options opts;
    std::string format = "human";
    std::string write_baseline_path;
    bool print_stats = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                shiftpar::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--fix") {
            opts.apply_fixes = true;
        } else if (arg == "--format") {
            format = next();
            if (format != "human" && format != "sarif")
                return usage(argv[0]);
        } else if (arg == "--baseline") {
            opts.baseline_path = next();
        } else if (arg == "--write-baseline") {
            write_baseline_path = next();
        } else if (arg == "--check") {
            opts.checks.push_back(next());
        } else if (arg == "--jobs") {
            try {
                opts.jobs = std::stoi(next());
            } catch (const std::exception&) {
                return usage(argv[0]);
            }
            if (opts.jobs < 0)
                return usage(argv[0]);
        } else if (arg == "--stats") {
            print_stats = true;
        } else if (arg == "--list-checks") {
            for (const auto& c : check_registry())
                std::cout << c->name() << ": " << c->description()
                          << "\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    double lex_s = 0.0;
    Corpus corpus = load_corpus(collect_sources(paths), opts.jobs, &lex_s);
    RunResult result = run_checks(corpus, opts);
    result.stats.lex_s = lex_s;

    // Stats go to stderr: stdout stays byte-identical across runs and
    // job counts (timings are wall-clock and never reproducible).
    if (print_stats)
        write_stats(std::cerr, result);

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path, std::ios::trunc);
        if (!out)
            shiftpar::fatal("cannot write baseline '" +
                            write_baseline_path + "'");
        write_baseline(out, corpus, result);
        std::cout << "wrote " << write_baseline_path << " ("
                  << result.findings.size() + result.baselined.size()
                  << " entries)\n";
        return 0;
    }

    if (format == "sarif")
        write_sarif(std::cout, result);
    else
        write_human(std::cout, result);
    return result.clean() ? 0 : 1;
}
