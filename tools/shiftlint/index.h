/**
 * @file
 * Cross-TU symbol index for shiftlint.
 *
 * The per-file AST-lite layer (`analysis.{h,cc}`) recognizes function and
 * struct definitions one file at a time; the symbol index folds them into
 * whole-corpus lookup tables so checks can resolve a call in `router.cc`
 * to a definition in `scheduler.cc`. Everything here is deterministic by
 * construction: symbols are keyed through `std::map` (sorted names) and
 * values are corpus indexes, which follow the sorted file order produced
 * by `collect_sources` — the same corpus always yields the same index,
 * bit for bit, regardless of thread count or hash seeds.
 *
 * The index also resolves `shiftlint-guarded` annotations to the struct
 * field they sit on (same line or the line above the declaration), giving
 * the guarded-by check its work list. An annotation that matches no data
 * member is surfaced via `unresolved_guards` — an annotation the author
 * wrote but the tool cannot bind is an error, not a silent no-op.
 */

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis.h"

namespace shiftpar::lint {

/** A guarded-field annotation resolved to its struct and member. */
struct GuardedField
{
    std::size_t struct_index = 0;  ///< into Corpus::structs
    std::string struct_name;
    std::string field;
    std::string mutex;
    const SourceFile* file = nullptr;
    int line = 0;  ///< line of the annotation comment
};

/** A guarded annotation that matched no data member (author error). */
struct UnresolvedGuard
{
    const SourceFile* file = nullptr;
    int line = 0;
    std::string mutex;
};

/** Whole-corpus symbol tables (sorted, position-independent). */
struct SymbolIndex
{
    /** Function indexes (into Corpus::functions) by unqualified name. */
    std::map<std::string, std::vector<std::size_t>> by_name;

    /** Function indexes by qualified name ("Engine::step"). */
    std::map<std::string, std::vector<std::size_t>> by_qualified;

    /** Struct indexes (into Corpus::structs) by name. */
    std::map<std::string, std::vector<std::size_t>> struct_by_name;

    /** Every resolved guarded-field annotation, in corpus order. */
    std::vector<GuardedField> guarded_fields;

    /** Guarded annotations that bound to no field, in corpus order. */
    std::vector<UnresolvedGuard> unresolved_guards;

    /** Build the index over `corpus` (after `Corpus::build_index`). */
    static SymbolIndex build(const Corpus& corpus);

    /**
     * Resolve a callee name to function indexes. Order of preference:
     * an explicit `Class::name` qualification, then `caller_owner::name`
     * (a bare call inside a member resolves within its own class first),
     * then every definition of the unqualified name. Empty result means
     * the call is unresolvable in this corpus (fail open).
     */
    std::vector<std::size_t> resolve(const std::string& name,
                                     const std::string& qualifier,
                                     const std::string& caller_owner) const;
};

} // namespace shiftpar::lint
