/**
 * @file
 * The built-in shiftlint checks. Each corresponds to a bug class that has
 * either occurred in this repo or would silently break the determinism
 * guard (byte-identical regenerated CSVs) or the accounting invariant
 * (submitted == completed + lost + shed) if introduced.
 */

#include "check.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

namespace shiftpar::lint {

namespace {

Finding
make_finding(const char* check, const SourceFile& f, const Token& tok,
             std::string message)
{
    Finding out;
    out.check = check;
    out.path = f.path;
    out.line = tok.line;
    out.col = tok.col;
    out.message = std::move(message);
    return out;
}

bool
is_member_access(const std::vector<Token>& toks, std::size_t i)
{
    return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

bool
path_contains(const std::string& path, const std::string& part)
{
    return path.find(part) != std::string::npos;
}

/**
 * Check 1: nondeterminism sources.
 *
 * The simulator's claims rest on replays being a pure function of
 * (config, seed). Wall clocks, the libc RNG, environment lookups outside
 * `util/`, and containers ordered by pointer value all leak host state
 * into results. `system_clock`/`high_resolution_clock` get a mechanical
 * --fix to `steady_clock` (the monotonic clock is fine for measuring
 * host-side durations; it never feeds simulated time).
 */
class NondetSourceCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "nondet-source";
    }

    const char*
    description() const override
    {
        return "bans rand()/random_device/wall clocks/getenv (outside "
               "util/) and pointer-keyed map/set keys";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        for (const auto& f : corpus.files) {
            const auto& toks = f.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                if (toks[i].kind != TokKind::kIdent)
                    continue;
                const std::string& t = toks[i].text;
                const bool call_next =
                    i + 1 < toks.size() && toks[i + 1].text == "(";

                if ((t == "rand" || t == "srand") && call_next &&
                    !is_member_access(toks, i)) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        t + "() draws from global libc state; use a "
                            "seeded util::Rng stream instead"));
                } else if (t == "random_device") {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        "std::random_device is host entropy; derive "
                        "streams from the run seed (util::Rng) instead"));
                } else if (t == "system_clock" ||
                           t == "high_resolution_clock") {
                    auto fd = make_finding(
                        name(), f, toks[i],
                        "std::chrono::" + t +
                            " reads the wall clock; use steady_clock for "
                            "host-side durations (simulated time comes "
                            "from the cluster clock)");
                    fd.fix = FixEdit{toks[i].offset,
                                     toks[i].offset + t.size(),
                                     "steady_clock"};
                    out.push_back(std::move(fd));
                } else if ((t == "time" || t == "clock" ||
                            t == "localtime" || t == "gmtime") &&
                           call_next && !is_member_access(toks, i)) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        t + "() reads host time; results must be a pure "
                            "function of (config, seed)"));
                } else if (t == "getenv" &&
                           !path_contains(f.path, "util/")) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        "getenv outside util/ lets the environment alter "
                        "results; route host knobs through util (e.g. "
                        "logging) or argparse"));
                } else if ((t == "map" || t == "set" || t == "multimap" ||
                            t == "multiset") &&
                           i > 0 && toks[i - 1].text == "::" &&
                           i + 1 < toks.size() &&
                           toks[i + 1].text == "<") {
                    if (pointer_key(toks, i + 1)) {
                        out.push_back(make_finding(
                            name(), f, toks[i],
                            "std::" + t +
                                " keyed on a pointer iterates in "
                                "address order, which differs per run; "
                                "key on a stable id instead"));
                    }
                }
            }
        }
    }

  private:
    /** @return true when the first template argument after `open`
     *  (tokens[open] == "<") contains a '*' at argument depth. */
    static bool
    pointer_key(const std::vector<Token>& toks, std::size_t open)
    {
        int depth = 0;
        for (std::size_t i = open; i < toks.size(); ++i) {
            const std::string& t = toks[i].text;
            if (t == "<")
                ++depth;
            else if (t == ">")
                --depth;
            else if (t == ">>")
                depth -= 2;
            else if (t == ";" || t == "{")
                return false;
            if (depth <= 0)
                return false;  // template list closed: single argument
            if (depth == 1 && t == ",")
                return false;  // end of the key argument
            if (t == "*")
                return true;
        }
        return false;
    }
};

/**
 * Check 2: iteration-order leaks into emitters.
 *
 * Iterating an unordered container is fine for order-independent
 * reductions, but inside a function that also writes to a TraceSink,
 * ReportJson, CSV, or histogram the iteration order can reach a committed
 * artifact. This is the bug class the determinism guard exists to catch —
 * shiftlint catches it before a sweep runs. Order-independent uses carry
 * an `unordered-emit` allow-comment stating why the order cannot leak.
 */
class UnorderedEmitCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "unordered-emit";
    }

    const char*
    description() const override
    {
        return "flags unordered_map/set iteration inside functions that "
               "emit to trace/report/CSV/histogram sinks";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        static const std::unordered_set<std::string> kEmitIdents = {
            "on_request",      "on_step",        "on_mode_switch",
            "on_gauge",        "on_fault",       "on_instant",
            "add_run",         "add_row",        "CsvWriter",
            "JsonWriter",      "counter_add",    "gauge_set",
            "gauge_max",       "observe",        "write_prometheus",
            "publish_request", "set_metrics",    "count_outcome",
        };

        for (const auto& fn : corpus.functions) {
            const auto& toks = fn.file->tokens;

            bool emits = false;
            for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i)
                if (toks[i].kind == TokKind::kIdent &&
                    kEmitIdents.count(toks[i].text)) {
                    emits = true;
                    break;
                }
            if (!emits)
                continue;

            // Range-fors over a known-unordered range expression.
            for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
                if (toks[i].text != "for" || toks[i + 1].text != "(")
                    continue;
                // Locate the ':' separating declaration from range.
                int depth = 0;
                std::size_t colon = 0, close = 0;
                for (std::size_t j = i + 1; j <= fn.body_end; ++j) {
                    if (toks[j].text == "(")
                        ++depth;
                    else if (toks[j].text == ")" && --depth == 0) {
                        close = j;
                        break;
                    } else if (toks[j].text == ":" && depth == 1 &&
                               colon == 0) {
                        colon = j;
                    }
                }
                if (colon == 0 || close == 0)
                    continue;  // classic for loop
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (toks[j].kind != TokKind::kIdent)
                        continue;
                    if (corpus.unordered_names.count(toks[j].text) ||
                        toks[j].text.rfind("unordered_", 0) == 0) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "function '" + fn.qualified +
                                "' iterates unordered container '" +
                                toks[j].text +
                                "' and emits to a sink; hash order can "
                                "leak into reported output — iterate a "
                                "sorted view or make the use provably "
                                "order-independent"));
                        break;
                    }
                }
            }
        }
    }
};

/**
 * Check 3: trace-span balance (whole-corpus).
 *
 * Paired trace emissions (straggle start/end, link degrade/restore, and
 * any kBeginX/kEndX convention) must both be emitted *somewhere in the
 * linted corpus* — a begin whose end exists nowhere renders as an
 * unterminated span and breaks span-based analysis. Pairing is resolved
 * corpus-wide, not per TU: a span legitimately opened in `router.cc` and
 * closed in `scheduler.cc` (the drain pair's shape) is checked, not
 * flagged. (kFail/kRecover is deliberately not a pair: permanent
 * fail-stop is a legal final state.)
 */
class TraceSpanBalanceCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "trace-span-balance";
    }

    const char*
    description() const override
    {
        return "paired trace emissions (k*Start/k*End, kBegin*/kEnd*) "
               "must both appear somewhere in the corpus (cross-TU "
               "pairs resolve)";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        static const std::pair<const char*, const char*> kPairs[] = {
            {"kStraggleStart", "kStraggleEnd"},
            {"kLinkDegrade", "kLinkRestore"},
            {"kDrainStart", "kDrainEnd"},
        };

        const auto is_impl = [](const std::string& path) {
            // Headers declare the enumerators (both halves, next to each
            // other) without emitting.
            for (const char* suffix : {".cc", ".cpp", ".cxx"}) {
                const std::string s = suffix;
                if (path.size() >= s.size() &&
                    path.compare(path.size() - s.size(), s.size(), s) ==
                        0)
                    return true;
            }
            return false;
        };

        // Pass 1: every identifier emitted by any implementation file —
        // the corpus-wide resolution set for span ends.
        std::set<std::string> corpus_present;
        for (const auto& f : corpus.files) {
            if (!is_impl(f.path))
                continue;
            for (const auto& tok : f.tokens)
                if (tok.kind == TokKind::kIdent)
                    corpus_present.insert(tok.text);
        }

        // Pass 2: report each TU's first use of a begin whose end exists
        // nowhere in the corpus.
        for (const auto& f : corpus.files) {
            if (!is_impl(f.path))
                continue;

            std::map<std::string, const Token*> first_use;
            std::set<std::string> present;
            for (const auto& tok : f.tokens) {
                if (tok.kind != TokKind::kIdent)
                    continue;
                if (present.insert(tok.text).second)
                    first_use[tok.text] = &tok;
            }

            const auto require = [&](const std::string& begin,
                                     const std::string& end) {
                if (present.count(begin) && !corpus_present.count(end)) {
                    out.push_back(make_finding(
                        name(), f, *first_use[begin],
                        "emits '" + begin + "' but '" + end +
                            "' is never emitted anywhere in the linted "
                            "corpus; a begin without its end leaves an "
                            "unterminated trace span on some control "
                            "path"));
                }
            };

            for (const auto& [b, e] : kPairs)
                require(b, e);
            // Generic convention: kBeginX pairs with kEndX.
            for (const auto& id : present) {
                if (id.rfind("kBegin", 0) == 0 && id.size() > 6)
                    require(id, "kEnd" + id.substr(6));
            }
        }
    }
};

/**
 * Check 4: struct/serializer drift.
 *
 * The accounting structs are only trustworthy if every field survives
 * both aggregation and serialization: a counter added to `FaultStats`
 * but not to the report writer silently vanishes from every downstream
 * analysis. Each watched struct's fields must appear in each of its
 * coverage functions (one level of same-file call delegation is
 * followed, so `Metrics::merge` delegating to `add_record`/`on_step`
 * counts).
 */
class StructSerializerDriftCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "struct-serializer-drift";
    }

    const char*
    description() const override
    {
        return "every field of the accounting structs must appear in "
               "their merge and serializer functions";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        struct Watch
        {
            const char* struct_name;
            const char* file_hint;  ///< path substring of the definition
            std::vector<const char*> functions;
            bool underscore_fields_only;  ///< classes: data members only
        };
        static const Watch kWatched[] = {
            {"FaultStats", "fault/fault_schedule.h",
             {"ReportJson::write"}, false},
            {"OverloadStats", "engine/overload.h",
             {"ReportJson::write"}, false},
            {"Run", "obs/report_json.h", {"ReportJson::write"}, false},
            {"LatencySummary", "obs/report_json.h",
             {"ReportJson::write"}, false},
            {"Metrics", "engine/metrics.h", {"Metrics::merge"}, true},
            {"KernelClassFit", "calibrate/calibrate.h",
             {"write_calibration_report"}, false},
            {"CalibrationReport", "calibrate/calibrate.h",
             {"write_calibration_report"}, false},
        };

        for (const auto& w : kWatched) {
            const StructDef* sd = nullptr;
            for (const auto& cand : corpus.structs) {
                if (cand.name == w.struct_name &&
                    cand.file->path.find(w.file_hint) !=
                        std::string::npos) {
                    sd = &cand;
                    break;
                }
            }
            if (sd == nullptr)
                continue;  // struct not in the scanned set
            for (const char* fname : w.functions) {
                const auto fns = corpus.find_functions(fname);
                if (fns.empty())
                    continue;  // writer not in the scanned set
                std::set<std::string> covered;
                for (const auto* fn : fns)
                    collect_idents(corpus, *fn, covered, 1);
                for (const auto& field : sd->fields) {
                    if (w.underscore_fields_only &&
                        (field.empty() || field.back() != '_'))
                        continue;
                    if (covered.count(field))
                        continue;
                    Finding fd;
                    fd.check = name();
                    fd.path = sd->file->path;
                    fd.line = sd->line;
                    fd.col = 1;
                    fd.message = "field '" + field + "' of " +
                                 w.struct_name +
                                 " never appears in " + fname +
                                 " (or its direct callees): the field "
                                 "is dropped on " +
                                 (std::string(fname).find("merge") !=
                                          std::string::npos
                                      ? "aggregation"
                                      : "serialization");
                    out.push_back(std::move(fd));
                }
            }
        }
    }

  private:
    /** Collect identifiers in `fn`'s body, following same-file calls
     *  `depth` more levels (handles merge-by-delegation). */
    static void
    collect_idents(const Corpus& corpus, const FunctionDef& fn,
                   std::set<std::string>& out, int depth)
    {
        const auto& toks = fn.file->tokens;
        for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
            if (toks[i].kind != TokKind::kIdent)
                continue;
            out.insert(toks[i].text);
            if (depth > 0 && i + 1 <= fn.body_end &&
                toks[i + 1].text == "(") {
                for (const auto& callee : corpus.functions) {
                    if (callee.file == fn.file &&
                        callee.name == toks[i].text &&
                        callee.body_begin != fn.body_begin)
                        collect_idents(corpus, callee, out, depth - 1);
                }
            }
        }
    }
};

/**
 * Check 5: sim-core contract.
 *
 * (a) `Component::advance_to` runs *inside* the cluster loop; mutating
 * the cluster from there (posting/cancelling events, registering
 * components, installing hooks, or poking the ready index via
 * `notify_ready` / `notify_ready_changed`) re-enters the queue
 * mid-decision and breaks determinism rule 4. State changes belong in
 * posted events or the progress hook; the loop republishes the advanced
 * component's ready time itself.
 *
 * (b) Closures given to `post()` fire after arbitrary intervening
 * mutation; a captured container iterator is invalidated by then.
 * Capture keys/ids and re-look-up at fire time.
 */
class SimContractCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "sim-contract";
    }

    const char*
    description() const override
    {
        return "advance_to must not mutate the Cluster; post() closures "
               "must not capture container iterators";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        static const std::unordered_set<std::string> kClusterMutators = {
            "post", "cancel_event",   "add",
            "run",  "set_progress_hook", "notify_ready",
        };
        static const std::unordered_set<std::string> kIterSources = {
            "begin", "end",  "rbegin", "rend",        "cbegin",
            "cend",  "find", "lower_bound", "upper_bound",
        };

        for (const auto& fn : corpus.functions) {
            const auto& toks = fn.file->tokens;

            // (a) Cluster mutation from advance_to.
            if (fn.name == "advance_to") {
                for (std::size_t i = fn.body_begin; i + 2 < fn.body_end;
                     ++i) {
                    const std::string& t = toks[i].text;
                    if (toks[i].kind != TokKind::kIdent)
                        continue;
                    // Self-notification from inside the grant: the loop
                    // republishes the component's new time itself after
                    // advance_to returns; notifying mid-grant re-enters
                    // the ready index while its entry is detached.
                    if (t == "notify_ready_changed" &&
                        toks[i + 1].text == "(" &&
                        (i == fn.body_begin ||
                         (toks[i - 1].text != "." &&
                          toks[i - 1].text != "->" &&
                          toks[i - 1].text != "::"))) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "'" + fn.qualified + "' calls "
                            "notify_ready_changed() during advance_to: "
                            "the cluster republishes the component's "
                            "ready time after the grant returns"));
                        continue;
                    }
                    const bool cluster_ref = t == "cluster" ||
                                             t == "cluster_";
                    if (!cluster_ref)
                        continue;
                    if (toks[i + 1].text != "." &&
                        toks[i + 1].text != "->")
                        continue;
                    if (kClusterMutators.count(toks[i + 2].text)) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "'" + fn.qualified + "' calls " + t +
                                (toks[i + 1].text == "." ? "." : "->") +
                                toks[i + 2].text +
                                "() during advance_to: components must "
                                "not mutate the cluster mid-grant (post "
                                "from an event or the progress hook)"));
                    }
                }
            }

            // (b) Iterators captured by post() closures.
            std::set<std::string> iter_vars;
            for (std::size_t i = fn.body_begin; i + 2 < fn.body_end;
                 ++i) {
                // `<ident> = ... .find( | .begin( | ...` before the next
                // ';' marks <ident> as an iterator variable.
                if (toks[i].kind != TokKind::kIdent ||
                    toks[i + 1].text != "=")
                    continue;
                for (std::size_t j = i + 2;
                     j + 1 < fn.body_end && toks[j].text != ";"; ++j) {
                    if ((toks[j].text == "." || toks[j].text == "->") &&
                        toks[j + 1].kind == TokKind::kIdent &&
                        kIterSources.count(toks[j + 1].text) &&
                        j + 2 < fn.body_end &&
                        toks[j + 2].text == "(") {
                        iter_vars.insert(toks[i].text);
                        break;
                    }
                }
            }
            if (iter_vars.empty())
                continue;
            for (std::size_t i = fn.body_begin; i + 1 < fn.body_end;
                 ++i) {
                if (toks[i].kind != TokKind::kIdent ||
                    toks[i].text != "post" || toks[i + 1].text != "(")
                    continue;
                // Scan the argument list for lambdas; flag iterator
                // variables inside their capture list or body.
                int depth = 0;
                std::size_t j = i + 1;
                for (; j <= fn.body_end; ++j) {
                    if (toks[j].text == "(")
                        ++depth;
                    else if (toks[j].text == ")" && --depth == 0)
                        break;
                    else if (toks[j].text == "[" && depth >= 1) {
                        const std::size_t lam_end =
                            lambda_extent(toks, j, fn.body_end);
                        for (std::size_t k = j; k < lam_end; ++k) {
                            if (toks[k].kind == TokKind::kIdent &&
                                iter_vars.count(toks[k].text)) {
                                out.push_back(make_finding(
                                    name(), *fn.file, toks[k],
                                    "closure passed to post() uses "
                                    "iterator '" + toks[k].text +
                                        "'; the event fires after "
                                        "arbitrary mutation — capture a "
                                        "key/id and re-look-up at fire "
                                        "time"));
                            }
                        }
                        j = lam_end;
                    }
                }
            }
        }
    }

  private:
    /** @return one past the end of a lambda starting at `open` ('['). */
    static std::size_t
    lambda_extent(const std::vector<Token>& toks, std::size_t open,
                  std::size_t limit)
    {
        // capture list [...]
        std::size_t j = open;
        int sq = 0;
        for (; j <= limit; ++j) {
            if (toks[j].text == "[")
                ++sq;
            else if (toks[j].text == "]" && --sq == 0)
                break;
        }
        ++j;
        if (j <= limit && toks[j].text == "(") {  // parameter list
            int p = 0;
            for (; j <= limit; ++j) {
                if (toks[j].text == "(")
                    ++p;
                else if (toks[j].text == ")" && --p == 0)
                    break;
            }
            ++j;
        }
        while (j <= limit && toks[j].text != "{" && toks[j].text != ")" &&
               toks[j].text != ",")
            ++j;  // mutable / noexcept / -> type
        if (j <= limit && toks[j].text == "{") {
            const std::size_t close = match_brace(toks, j);
            return close >= limit ? limit : close + 1;
        }
        return j;  // not a lambda body after all (e.g. subscript)
    }
};

/**
 * Check 6: sim-core contract, interprocedural.
 *
 * The direct sim-contract check only sees mutation written inside
 * `advance_to` itself; this one walks the call graph so an `advance_to`
 * that calls `step()` which calls `expire_now()` which pokes the ready
 * index is flagged too. Resolution fails open: a call through a
 * `std::function` member or any name with no in-corpus definition
 * produces no edge and therefore no finding.
 */
class SimContractInterprocCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "sim-contract-interproc";
    }

    const char*
    description() const override
    {
        return "advance_to must not reach cluster mutation or ready "
               "notification through its callees (call-graph "
               "transitive)";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        constexpr int kMaxDepth = 8;

        // Memoized "does this function mutate the cluster" predicate.
        std::vector<int> memo(corpus.functions.size(), -1);
        const auto mutates = [&](std::size_t fi) {
            if (memo[fi] < 0)
                memo[fi] = mutator_site(corpus.functions[fi]).first
                               ? 1
                               : 0;
            return memo[fi] == 1;
        };

        for (std::size_t fi = 0; fi < corpus.functions.size(); ++fi) {
            const FunctionDef& fn = corpus.functions[fi];
            if (fn.name != "advance_to")
                continue;
            const std::vector<std::size_t> path =
                ctx.callgraph.find_path(fi, mutates, kMaxDepth);
            if (path.empty())
                continue;

            // Locate the first hop's call site for the finding location.
            const Token* site = nullptr;
            for (const auto& e : ctx.callgraph.callees(fi)) {
                if (e.callee == path[1]) {
                    site = &fn.file->tokens[e.site];
                    break;
                }
            }
            if (site == nullptr)
                continue;  // should not happen; fail open

            std::string chain;
            for (std::size_t k = 1; k < path.size(); ++k) {
                if (k > 1)
                    chain += " -> ";
                chain += "'" + corpus.functions[path[k]].qualified + "'";
            }
            const auto what =
                mutator_site(corpus.functions[path.back()]).second;
            out.push_back(make_finding(
                name(), *fn.file, *site,
                "'" + fn.qualified + "' reaches " + what + " via " +
                    chain +
                    ": components must not mutate the cluster "
                    "mid-grant, even transitively (post from an event "
                    "or the progress hook; the loop republishes the "
                    "ready time itself)"));
        }
    }

  private:
    /** @return {true, what} when `fn`'s body directly notifies the ready
     *  index or calls a mutating member on a cluster-ish receiver. */
    static std::pair<bool, std::string>
    mutator_site(const FunctionDef& fn)
    {
        static const std::unordered_set<std::string> kClusterMutators = {
            "post", "cancel_event",      "add",
            "run",  "set_progress_hook", "notify_ready",
        };
        const auto& toks = fn.file->tokens;
        for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
            if (toks[i].kind != TokKind::kIdent)
                continue;
            const std::string& t = toks[i].text;
            if (t == "notify_ready_changed" && toks[i + 1].text == "(" &&
                (i == fn.body_begin || (toks[i - 1].text != "." &&
                                        toks[i - 1].text != "->" &&
                                        toks[i - 1].text != "::")))
                return {true, "notify_ready_changed()"};
            const bool cluster_ref =
                t == "cluster" ||
                (t.size() >= 8 &&
                 t.compare(t.size() - 8, 8, "cluster_") == 0);
            if (!cluster_ref)
                continue;
            if (toks[i + 1].text != "." && toks[i + 1].text != "->")
                continue;
            if (kClusterMutators.count(toks[i + 2].text))
                return {true,
                        t + toks[i + 1].text + toks[i + 2].text + "()"};
        }
        return {false, ""};
    }
};

/**
 * Check 7: guarded-by discipline.
 *
 * Fields carrying a guarded-field comment (`shiftlint-guarded` naming a
 * mutex member) must only be touched inside member functions of the
 * owning class that lock that mutex — directly (lock_guard / unique_lock
 * / scoped_lock / shared_lock naming it, or an explicit `.lock()`), or
 * via *every* call-graph path from a locking caller. Constructors and
 * destructors are exempt (no sharing before/after lifetime). A function
 * with no in-corpus callers and no lock of its own is part of the public
 * surface and is flagged — that is exactly the `set_title` bug class.
 */
class GuardedByCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "guarded-by";
    }

    const char*
    description() const override
    {
        return "annotated fields must only be touched while their "
               "declared mutex is held (directly or on every caller "
               "path)";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        constexpr int kCallerDepth = 4;

        for (const auto& ug : ctx.symbols.unresolved_guards) {
            Finding fd;
            fd.check = name();
            fd.path = ug.file->path;
            fd.line = ug.line;
            fd.col = 1;
            fd.message =
                "guarded-field annotation names mutex '" + ug.mutex +
                "' but binds to no data member declared on this line or "
                "the next; move it onto the field declaration";
            out.push_back(std::move(fd));
        }

        for (const auto& gf : ctx.symbols.guarded_fields) {
            for (std::size_t fi = 0; fi < corpus.functions.size();
                 ++fi) {
                const FunctionDef& fn = corpus.functions[fi];
                if (fn.owner != gf.struct_name)
                    continue;
                if (fn.name == gf.struct_name)
                    continue;  // constructor/destructor: not shared yet
                const auto& toks = fn.file->tokens;
                const Token* touch = nullptr;
                for (std::size_t i = fn.body_begin + 1; i < fn.body_end;
                     ++i) {
                    if (toks[i].kind == TokKind::kIdent &&
                        toks[i].text == gf.field) {
                        touch = &toks[i];
                        break;
                    }
                }
                if (touch == nullptr)
                    continue;
                if (locks(corpus.functions[fi], gf.mutex))
                    continue;
                std::set<std::size_t> visiting;
                if (callers_all_lock(ctx, fi, gf.mutex, kCallerDepth,
                                     visiting))
                    continue;
                out.push_back(make_finding(
                    name(), *fn.file, *touch,
                    "field '" + gf.field + "' of " + gf.struct_name +
                        " is guarded by '" + gf.mutex + "' but '" +
                        fn.qualified +
                        "' touches it without locking it, and no "
                        "locking caller covers every path here"));
            }
        }
    }

  private:
    /** @return true when `fn`'s body locks `mutex` (RAII guard naming
     *  it, or an explicit `.lock()` on it). */
    static bool
    locks(const FunctionDef& fn, const std::string& mutex)
    {
        static const std::unordered_set<std::string> kGuards = {
            "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        };
        const auto& toks = fn.file->tokens;
        for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end;
             ++i) {
            if (toks[i].kind != TokKind::kIdent)
                continue;
            if (toks[i].text == mutex && toks[i + 1].text == "." &&
                i + 2 < fn.body_end && toks[i + 2].text == "lock")
                return true;
            if (!kGuards.count(toks[i].text))
                continue;
            // Find the constructor's argument list: the first '(' within
            // a few tokens (skipping the template argument list and the
            // variable name), then scan it for the mutex name.
            std::size_t j = i + 1;
            for (int hops = 0;
                 j < fn.body_end && toks[j].text != "(" &&
                 toks[j].text != ";" && hops < 12;
                 ++j, ++hops) {
            }
            if (j >= fn.body_end || toks[j].text != "(")
                continue;
            int depth = 0;
            for (; j < fn.body_end; ++j) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")" && --depth == 0)
                    break;
                else if (toks[j].kind == TokKind::kIdent &&
                         toks[j].text == mutex)
                    return true;
            }
        }
        return false;
    }

    /** @return true when every call-graph path into `fi` goes through a
     *  function that locks `mutex` within `depth` hops. No callers means
     *  unprotected public surface: false. Cycles resolve to false
     *  (cannot prove the lock). */
    static bool
    callers_all_lock(const LintContext& ctx, std::size_t fi,
                     const std::string& mutex, int depth,
                     std::set<std::size_t>& visiting)
    {
        const auto& callers = ctx.callgraph.callers(fi);
        if (callers.empty())
            return false;
        if (!visiting.insert(fi).second)
            return false;
        bool ok = true;
        for (const std::size_t c : callers) {
            if (locks(ctx.corpus.functions[c], mutex))
                continue;
            if (depth <= 0 ||
                !callers_all_lock(ctx, c, mutex, depth - 1, visiting)) {
                ok = false;
                break;
            }
        }
        visiting.erase(fi);
        return ok;
    }
};

/**
 * Check 8: outcome conservation.
 *
 * The router's accounting identity (submitted = completed + expired +
 * cancelled + lost + shed) only holds if every terminal flight-outcome
 * transition also increments the `shiftpar_request_outcome_total`
 * counter (via `count_outcome`) and the matching stats field. The chaos
 * soak finds violations dynamically; this check finds them at lint time,
 * in both directions: a terminal `FlightOutcome` assignment must reach
 * the counter and the stats update through the call graph, and a
 * terminal `count_outcome` call must have a matching flight-table
 * transition in reach.
 */
class OutcomeConservationCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "outcome-conservation";
    }

    const char*
    description() const override
    {
        return "terminal flight-outcome transitions, the outcome "
               "counter, and the stats update must travel together";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        constexpr int kDepth = 3;

        struct Terminal
        {
            const char* enumerator;
            const char* label;  ///< count_outcome string & stats field
        };
        static const Terminal kTerminals[] = {
            {"kCompleted", "completed"}, {"kExpired", "expired"},
            {"kCancelled", "cancelled"}, {"kLost", "lost"},
            {"kShed", "shed"},
        };

        const auto counts_outcome = [&](std::size_t fi) {
            const FunctionDef& fn = corpus.functions[fi];
            const auto& toks = fn.file->tokens;
            for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end;
                 ++i)
                if (toks[i].kind == TokKind::kIdent &&
                    toks[i].text == "count_outcome" &&
                    toks[i + 1].text == "(")
                    return true;
            return false;
        };
        const auto updates_stats = [&](std::size_t fi,
                                       const std::string& field) {
            const FunctionDef& fn = corpus.functions[fi];
            const auto& toks = fn.file->tokens;
            for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end;
                 ++i)
                if (toks[i].kind == TokKind::kIdent &&
                    (toks[i].text == "overload_stats_" ||
                     toks[i].text == "fault_stats_") &&
                    toks[i + 1].text == "." &&
                    toks[i + 2].text == field)
                    return true;
            return false;
        };
        const auto assigns = [&](std::size_t fi,
                                 const std::string& enumerator) {
            const FunctionDef& fn = corpus.functions[fi];
            const auto& toks = fn.file->tokens;
            for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end;
                 ++i)
                if (toks[i].text == "FlightOutcome" && i > 0 &&
                    toks[i - 1].text == "=" &&
                    toks[i + 1].text == "::" &&
                    toks[i + 2].text == enumerator)
                    return true;
            return false;
        };

        for (std::size_t fi = 0; fi < corpus.functions.size(); ++fi) {
            const FunctionDef& fn = corpus.functions[fi];
            const auto& toks = fn.file->tokens;
            for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end;
                 ++i) {
                // Forward direction: `... = FlightOutcome::kTerminal`.
                if (toks[i].text == "FlightOutcome" &&
                    toks[i - 1].text == "=" &&
                    toks[i + 1].text == "::") {
                    for (const Terminal& term : kTerminals) {
                        if (toks[i + 2].text != term.enumerator)
                            continue;
                        if (!ctx.callgraph.reaches(fi, counts_outcome,
                                                   kDepth)) {
                            out.push_back(make_finding(
                                name(), *fn.file, toks[i],
                                "'" + fn.qualified +
                                    "' assigns FlightOutcome::" +
                                    term.enumerator +
                                    " but never reaches count_outcome("
                                    ") — the conservation identity "
                                    "loses this request"));
                        }
                        const std::string field = term.label;
                        if (!ctx.callgraph.reaches(
                                fi,
                                [&](std::size_t g) {
                                    return updates_stats(g, field);
                                },
                                kDepth)) {
                            out.push_back(make_finding(
                                name(), *fn.file, toks[i],
                                "'" + fn.qualified +
                                    "' assigns FlightOutcome::" +
                                    term.enumerator +
                                    " but never reaches the '" + field +
                                    "' stats update — reports drift "
                                    "from the flight table"));
                        }
                    }
                }
                // Reverse direction: count_outcome("<terminal>") with no
                // matching flight-table transition in reach.
                if (toks[i].kind == TokKind::kIdent &&
                    toks[i].text == "count_outcome" &&
                    toks[i + 1].text == "(" &&
                    toks[i + 2].kind == TokKind::kString) {
                    for (const Terminal& term : kTerminals) {
                        const std::string quoted =
                            std::string("\"") + term.label + "\"";
                        if (toks[i + 2].text != quoted)
                            continue;
                        const std::string enumerator = term.enumerator;
                        const auto assigns_term = [&](std::size_t g) {
                            return assigns(g, enumerator);
                        };
                        // The transition may sit below (a callee does
                        // the bookkeeping) or above (this IS the
                        // bookkeeping helper, called from the
                        // transition site) — accept either.
                        if (!ctx.callgraph.reaches(fi, assigns_term,
                                                   kDepth) &&
                            !reached_from_assigner(ctx, fi,
                                                   assigns_term,
                                                   kDepth)) {
                            out.push_back(make_finding(
                                name(), *fn.file, toks[i],
                                "'" + fn.qualified + "' counts outcome "
                                "'" + term.label +
                                    "' without a matching FlightOutcome"
                                    "::" + enumerator +
                                    " flight-table transition in reach "
                                    "— the counter can double-book"));
                        }
                    }
                }
            }
        }
    }

  private:
    /** BFS up the caller edges: does any transitive caller within
     *  `depth` hops satisfy `pred`? */
    static bool
    reached_from_assigner(const LintContext& ctx, std::size_t fi,
                          const std::function<bool(std::size_t)>& pred,
                          int depth)
    {
        std::set<std::size_t> seen{fi};
        std::deque<std::pair<std::size_t, int>> queue;
        queue.emplace_back(fi, 0);
        while (!queue.empty()) {
            const auto [cur, d] = queue.front();
            queue.pop_front();
            if (cur != fi && pred(cur))
                return true;
            if (d >= depth)
                continue;
            for (const std::size_t c : ctx.callgraph.callers(cur))
                if (seen.insert(c).second)
                    queue.emplace_back(c, d + 1);
        }
        return false;
    }
};

/**
 * Check 9: RNG discipline.
 *
 * Replay determinism requires one owner per RNG stream. A by-value RNG
 * parameter or a copy-initialized RNG local silently forks the stream:
 * the copy replays the original's future draws while the original never
 * advances — two call sites then see correlated "randomness" and a
 * replay with a reordered call sequence diverges. Streams must flow by
 * reference/pointer; deliberate decorrelated children come from
 * `split()`.
 */
class RngDisciplineCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "rng-discipline";
    }

    const char*
    description() const override
    {
        return "seeded RNG state must flow by reference: by-value "
               "parameters and copy-init fork the stream";
    }

    void
    run(const LintContext& ctx, std::vector<Finding>& out) const override
    {
        const Corpus& corpus = ctx.corpus;
        static const std::unordered_set<std::string> kRngTypes = {
            "Rng",          "mt19937",       "mt19937_64",
            "minstd_rand",  "minstd_rand0",  "default_random_engine",
            "knuth_b",      "ranlux24",      "ranlux48",
            "ranlux24_base", "ranlux48_base",
        };

        // Macro invocations with braced bodies — TEST(Rng, Seed) { .. }
        // — parse as definitions, but their "parameters" are macro
        // arguments: an RNG type name there is a test-suite label, not
        // a by-value parameter. ALL_CAPS names are macros by project
        // convention.
        const auto macro_like = [](const std::string& n) {
            for (const char c : n)
                if (c != '_' && !(c >= 'A' && c <= 'Z') &&
                    !(c >= '0' && c <= '9'))
                    return false;
            return !n.empty();
        };

        // (a) By-value RNG parameters in function definitions.
        for (const auto& fn : corpus.functions) {
            if (macro_like(fn.name))
                continue;
            const auto& toks = fn.file->tokens;
            for (std::size_t i = fn.params_begin + 1; i < fn.params_end;
                 ++i) {
                if (toks[i].kind != TokKind::kIdent ||
                    !kRngTypes.count(toks[i].text))
                    continue;
                // Scan this parameter (to the next ',' or the closing
                // ')' at top level) for a '&' or '*' declarator.
                bool by_ref = false;
                int depth = 0;
                std::size_t j = i + 1;
                for (; j < fn.params_end; ++j) {
                    const std::string& t = toks[j].text;
                    if (t == "(" || t == "<")
                        ++depth;
                    else if (t == ")" || t == ">")
                        --depth;
                    else if (t == "," && depth == 0)
                        break;
                    else if ((t == "&" || t == "*" || t == "&&") &&
                             depth == 0)
                        by_ref = true;
                }
                if (by_ref)
                    continue;
                out.push_back(make_finding(
                    name(), *fn.file, toks[i],
                    "'" + fn.qualified + "' takes RNG type '" +
                        toks[i].text +
                        "' by value: the callee advances a private "
                        "copy and the caller's stream never moves — "
                        "pass by reference, or hand the callee its own "
                        "split() child"));
                i = j;
            }
        }

        // (b) Copy-initialization from another RNG object:
        //     `<RngType> <name> = <ident> ;`
        for (const auto& f : corpus.files) {
            const auto& toks = f.tokens;
            for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
                if (toks[i].kind != TokKind::kIdent ||
                    !kRngTypes.count(toks[i].text))
                    continue;
                if (toks[i + 1].kind != TokKind::kIdent ||
                    toks[i + 2].text != "=" ||
                    toks[i + 3].kind != TokKind::kIdent ||
                    toks[i + 4].text != ";")
                    continue;
                out.push_back(make_finding(
                    name(), f, toks[i],
                    "'" + toks[i].text + " " + toks[i + 1].text + " = " +
                        toks[i + 3].text +
                        ";' copy-initializes RNG state: both objects "
                        "replay the same stream from here (a silent "
                        "fork) — bind a reference, or derive a "
                        "decorrelated child with split()"));
            }
        }
    }
};

} // namespace

const std::vector<std::unique_ptr<Check>>&
check_registry()
{
    static const auto* checks = [] {
        auto* v = new std::vector<std::unique_ptr<Check>>();
        v->push_back(std::make_unique<NondetSourceCheck>());
        v->push_back(std::make_unique<UnorderedEmitCheck>());
        v->push_back(std::make_unique<TraceSpanBalanceCheck>());
        v->push_back(std::make_unique<StructSerializerDriftCheck>());
        v->push_back(std::make_unique<SimContractCheck>());
        v->push_back(std::make_unique<SimContractInterprocCheck>());
        v->push_back(std::make_unique<GuardedByCheck>());
        v->push_back(std::make_unique<OutcomeConservationCheck>());
        v->push_back(std::make_unique<RngDisciplineCheck>());
        return v;
    }();
    return *checks;
}

} // namespace shiftpar::lint
