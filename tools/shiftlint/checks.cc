/**
 * @file
 * The built-in shiftlint checks. Each corresponds to a bug class that has
 * either occurred in this repo or would silently break the determinism
 * guard (byte-identical regenerated CSVs) or the accounting invariant
 * (submitted == completed + lost + shed) if introduced.
 */

#include "check.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace shiftpar::lint {

namespace {

Finding
make_finding(const char* check, const SourceFile& f, const Token& tok,
             std::string message)
{
    Finding out;
    out.check = check;
    out.path = f.path;
    out.line = tok.line;
    out.col = tok.col;
    out.message = std::move(message);
    return out;
}

bool
is_member_access(const std::vector<Token>& toks, std::size_t i)
{
    return i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

bool
path_contains(const std::string& path, const std::string& part)
{
    return path.find(part) != std::string::npos;
}

/**
 * Check 1: nondeterminism sources.
 *
 * The simulator's claims rest on replays being a pure function of
 * (config, seed). Wall clocks, the libc RNG, environment lookups outside
 * `util/`, and containers ordered by pointer value all leak host state
 * into results. `system_clock`/`high_resolution_clock` get a mechanical
 * --fix to `steady_clock` (the monotonic clock is fine for measuring
 * host-side durations; it never feeds simulated time).
 */
class NondetSourceCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "nondet-source";
    }

    const char*
    description() const override
    {
        return "bans rand()/random_device/wall clocks/getenv (outside "
               "util/) and pointer-keyed map/set keys";
    }

    void
    run(const Corpus& corpus, std::vector<Finding>& out) const override
    {
        for (const auto& f : corpus.files) {
            const auto& toks = f.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                if (toks[i].kind != TokKind::kIdent)
                    continue;
                const std::string& t = toks[i].text;
                const bool call_next =
                    i + 1 < toks.size() && toks[i + 1].text == "(";

                if ((t == "rand" || t == "srand") && call_next &&
                    !is_member_access(toks, i)) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        t + "() draws from global libc state; use a "
                            "seeded util::Rng stream instead"));
                } else if (t == "random_device") {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        "std::random_device is host entropy; derive "
                        "streams from the run seed (util::Rng) instead"));
                } else if (t == "system_clock" ||
                           t == "high_resolution_clock") {
                    auto fd = make_finding(
                        name(), f, toks[i],
                        "std::chrono::" + t +
                            " reads the wall clock; use steady_clock for "
                            "host-side durations (simulated time comes "
                            "from the cluster clock)");
                    fd.fix = FixEdit{toks[i].offset,
                                     toks[i].offset + t.size(),
                                     "steady_clock"};
                    out.push_back(std::move(fd));
                } else if ((t == "time" || t == "clock" ||
                            t == "localtime" || t == "gmtime") &&
                           call_next && !is_member_access(toks, i)) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        t + "() reads host time; results must be a pure "
                            "function of (config, seed)"));
                } else if (t == "getenv" &&
                           !path_contains(f.path, "util/")) {
                    out.push_back(make_finding(
                        name(), f, toks[i],
                        "getenv outside util/ lets the environment alter "
                        "results; route host knobs through util (e.g. "
                        "logging) or argparse"));
                } else if ((t == "map" || t == "set" || t == "multimap" ||
                            t == "multiset") &&
                           i > 0 && toks[i - 1].text == "::" &&
                           i + 1 < toks.size() &&
                           toks[i + 1].text == "<") {
                    if (pointer_key(toks, i + 1)) {
                        out.push_back(make_finding(
                            name(), f, toks[i],
                            "std::" + t +
                                " keyed on a pointer iterates in "
                                "address order, which differs per run; "
                                "key on a stable id instead"));
                    }
                }
            }
        }
    }

  private:
    /** @return true when the first template argument after `open`
     *  (tokens[open] == "<") contains a '*' at argument depth. */
    static bool
    pointer_key(const std::vector<Token>& toks, std::size_t open)
    {
        int depth = 0;
        for (std::size_t i = open; i < toks.size(); ++i) {
            const std::string& t = toks[i].text;
            if (t == "<")
                ++depth;
            else if (t == ">")
                --depth;
            else if (t == ">>")
                depth -= 2;
            else if (t == ";" || t == "{")
                return false;
            if (depth <= 0)
                return false;  // template list closed: single argument
            if (depth == 1 && t == ",")
                return false;  // end of the key argument
            if (t == "*")
                return true;
        }
        return false;
    }
};

/**
 * Check 2: iteration-order leaks into emitters.
 *
 * Iterating an unordered container is fine for order-independent
 * reductions, but inside a function that also writes to a TraceSink,
 * ReportJson, CSV, or histogram the iteration order can reach a committed
 * artifact. This is the bug class the determinism guard exists to catch —
 * shiftlint catches it before a sweep runs. Order-independent uses are
 * annotated with `// shiftlint-allow(unordered-emit): <why>`.
 */
class UnorderedEmitCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "unordered-emit";
    }

    const char*
    description() const override
    {
        return "flags unordered_map/set iteration inside functions that "
               "emit to trace/report/CSV/histogram sinks";
    }

    void
    run(const Corpus& corpus, std::vector<Finding>& out) const override
    {
        static const std::unordered_set<std::string> kEmitIdents = {
            "on_request",      "on_step",        "on_mode_switch",
            "on_gauge",        "on_fault",       "on_instant",
            "add_run",         "add_row",        "CsvWriter",
            "JsonWriter",      "counter_add",    "gauge_set",
            "gauge_max",       "observe",        "write_prometheus",
            "publish_request", "set_metrics",    "count_outcome",
        };

        for (const auto& fn : corpus.functions) {
            const auto& toks = fn.file->tokens;

            bool emits = false;
            for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i)
                if (toks[i].kind == TokKind::kIdent &&
                    kEmitIdents.count(toks[i].text)) {
                    emits = true;
                    break;
                }
            if (!emits)
                continue;

            // Range-fors over a known-unordered range expression.
            for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
                if (toks[i].text != "for" || toks[i + 1].text != "(")
                    continue;
                // Locate the ':' separating declaration from range.
                int depth = 0;
                std::size_t colon = 0, close = 0;
                for (std::size_t j = i + 1; j <= fn.body_end; ++j) {
                    if (toks[j].text == "(")
                        ++depth;
                    else if (toks[j].text == ")" && --depth == 0) {
                        close = j;
                        break;
                    } else if (toks[j].text == ":" && depth == 1 &&
                               colon == 0) {
                        colon = j;
                    }
                }
                if (colon == 0 || close == 0)
                    continue;  // classic for loop
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (toks[j].kind != TokKind::kIdent)
                        continue;
                    if (corpus.unordered_names.count(toks[j].text) ||
                        toks[j].text.rfind("unordered_", 0) == 0) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "function '" + fn.qualified +
                                "' iterates unordered container '" +
                                toks[j].text +
                                "' and emits to a sink; hash order can "
                                "leak into reported output — iterate a "
                                "sorted view or make the use provably "
                                "order-independent"));
                        break;
                    }
                }
            }
        }
    }
};

/**
 * Check 3: trace-span balance.
 *
 * Paired trace emissions (straggle start/end, link degrade/restore, and
 * any kBeginX/kEndX convention) must both be reachable in a TU that emits
 * either one — a begin without its end renders as an unterminated span
 * and breaks span-based analysis. (kFail/kRecover is deliberately not a
 * pair: permanent fail-stop is a legal final state.)
 */
class TraceSpanBalanceCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "trace-span-balance";
    }

    const char*
    description() const override
    {
        return "paired trace emissions (k*Start/k*End, kBegin*/kEnd*) "
               "must both appear in any TU emitting one of them";
    }

    void
    run(const Corpus& corpus, std::vector<Finding>& out) const override
    {
        static const std::pair<const char*, const char*> kPairs[] = {
            {"kStraggleStart", "kStraggleEnd"},
            {"kLinkDegrade", "kLinkRestore"},
            {"kDrainStart", "kDrainEnd"},
        };

        for (const auto& f : corpus.files) {
            // Only implementation files: headers declare the enumerators
            // (both halves, next to each other) without emitting.
            const auto ends_with = [&](const char* suffix) {
                const std::string s = suffix;
                return f.path.size() >= s.size() &&
                       f.path.compare(f.path.size() - s.size(), s.size(),
                                      s) == 0;
            };
            if (!ends_with(".cc") && !ends_with(".cpp") &&
                !ends_with(".cxx"))
                continue;

            std::map<std::string, const Token*> first_use;
            std::set<std::string> present;
            for (const auto& tok : f.tokens) {
                if (tok.kind != TokKind::kIdent)
                    continue;
                if (present.insert(tok.text).second)
                    first_use[tok.text] = &tok;
            }

            const auto require = [&](const std::string& begin,
                                     const std::string& end) {
                if (present.count(begin) && !present.count(end)) {
                    out.push_back(make_finding(
                        name(), f, *first_use[begin],
                        "emits '" + begin + "' but never '" + end +
                            "' in this TU; a begin without its end "
                            "leaves an unterminated trace span on some "
                            "control path"));
                }
            };

            for (const auto& [b, e] : kPairs)
                require(b, e);
            // Generic convention: kBeginX pairs with kEndX.
            for (const auto& id : present) {
                if (id.rfind("kBegin", 0) == 0 && id.size() > 6)
                    require(id, "kEnd" + id.substr(6));
            }
        }
    }
};

/**
 * Check 4: struct/serializer drift.
 *
 * The accounting structs are only trustworthy if every field survives
 * both aggregation and serialization: a counter added to `FaultStats`
 * but not to the report writer silently vanishes from every downstream
 * analysis. Each watched struct's fields must appear in each of its
 * coverage functions (one level of same-file call delegation is
 * followed, so `Metrics::merge` delegating to `add_record`/`on_step`
 * counts).
 */
class StructSerializerDriftCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "struct-serializer-drift";
    }

    const char*
    description() const override
    {
        return "every field of the accounting structs must appear in "
               "their merge and serializer functions";
    }

    void
    run(const Corpus& corpus, std::vector<Finding>& out) const override
    {
        struct Watch
        {
            const char* struct_name;
            const char* file_hint;  ///< path substring of the definition
            std::vector<const char*> functions;
            bool underscore_fields_only;  ///< classes: data members only
        };
        static const Watch kWatched[] = {
            {"FaultStats", "fault/fault_schedule.h",
             {"ReportJson::write"}, false},
            {"OverloadStats", "engine/overload.h",
             {"ReportJson::write"}, false},
            {"Run", "obs/report_json.h", {"ReportJson::write"}, false},
            {"LatencySummary", "obs/report_json.h",
             {"ReportJson::write"}, false},
            {"Metrics", "engine/metrics.h", {"Metrics::merge"}, true},
            {"KernelClassFit", "calibrate/calibrate.h",
             {"write_calibration_report"}, false},
            {"CalibrationReport", "calibrate/calibrate.h",
             {"write_calibration_report"}, false},
        };

        for (const auto& w : kWatched) {
            const StructDef* sd = nullptr;
            for (const auto& cand : corpus.structs) {
                if (cand.name == w.struct_name &&
                    cand.file->path.find(w.file_hint) !=
                        std::string::npos) {
                    sd = &cand;
                    break;
                }
            }
            if (sd == nullptr)
                continue;  // struct not in the scanned set
            for (const char* fname : w.functions) {
                const auto fns = corpus.find_functions(fname);
                if (fns.empty())
                    continue;  // writer not in the scanned set
                std::set<std::string> covered;
                for (const auto* fn : fns)
                    collect_idents(corpus, *fn, covered, 1);
                for (const auto& field : sd->fields) {
                    if (w.underscore_fields_only &&
                        (field.empty() || field.back() != '_'))
                        continue;
                    if (covered.count(field))
                        continue;
                    Finding fd;
                    fd.check = name();
                    fd.path = sd->file->path;
                    fd.line = sd->line;
                    fd.col = 1;
                    fd.message = "field '" + field + "' of " +
                                 w.struct_name +
                                 " never appears in " + fname +
                                 " (or its direct callees): the field "
                                 "is dropped on " +
                                 (std::string(fname).find("merge") !=
                                          std::string::npos
                                      ? "aggregation"
                                      : "serialization");
                    out.push_back(std::move(fd));
                }
            }
        }
    }

  private:
    /** Collect identifiers in `fn`'s body, following same-file calls
     *  `depth` more levels (handles merge-by-delegation). */
    static void
    collect_idents(const Corpus& corpus, const FunctionDef& fn,
                   std::set<std::string>& out, int depth)
    {
        const auto& toks = fn.file->tokens;
        for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
            if (toks[i].kind != TokKind::kIdent)
                continue;
            out.insert(toks[i].text);
            if (depth > 0 && i + 1 <= fn.body_end &&
                toks[i + 1].text == "(") {
                for (const auto& callee : corpus.functions) {
                    if (callee.file == fn.file &&
                        callee.name == toks[i].text &&
                        callee.body_begin != fn.body_begin)
                        collect_idents(corpus, callee, out, depth - 1);
                }
            }
        }
    }
};

/**
 * Check 5: sim-core contract.
 *
 * (a) `Component::advance_to` runs *inside* the cluster loop; mutating
 * the cluster from there (posting/cancelling events, registering
 * components, installing hooks, or poking the ready index via
 * `notify_ready` / `notify_ready_changed`) re-enters the queue
 * mid-decision and breaks determinism rule 4. State changes belong in
 * posted events or the progress hook; the loop republishes the advanced
 * component's ready time itself.
 *
 * (b) Closures given to `post()` fire after arbitrary intervening
 * mutation; a captured container iterator is invalidated by then.
 * Capture keys/ids and re-look-up at fire time.
 */
class SimContractCheck final : public Check
{
  public:
    const char*
    name() const override
    {
        return "sim-contract";
    }

    const char*
    description() const override
    {
        return "advance_to must not mutate the Cluster; post() closures "
               "must not capture container iterators";
    }

    void
    run(const Corpus& corpus, std::vector<Finding>& out) const override
    {
        static const std::unordered_set<std::string> kClusterMutators = {
            "post", "cancel_event",   "add",
            "run",  "set_progress_hook", "notify_ready",
        };
        static const std::unordered_set<std::string> kIterSources = {
            "begin", "end",  "rbegin", "rend",        "cbegin",
            "cend",  "find", "lower_bound", "upper_bound",
        };

        for (const auto& fn : corpus.functions) {
            const auto& toks = fn.file->tokens;

            // (a) Cluster mutation from advance_to.
            if (fn.name == "advance_to") {
                for (std::size_t i = fn.body_begin; i + 2 < fn.body_end;
                     ++i) {
                    const std::string& t = toks[i].text;
                    if (toks[i].kind != TokKind::kIdent)
                        continue;
                    // Self-notification from inside the grant: the loop
                    // republishes the component's new time itself after
                    // advance_to returns; notifying mid-grant re-enters
                    // the ready index while its entry is detached.
                    if (t == "notify_ready_changed" &&
                        toks[i + 1].text == "(" &&
                        (i == fn.body_begin ||
                         (toks[i - 1].text != "." &&
                          toks[i - 1].text != "->" &&
                          toks[i - 1].text != "::"))) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "'" + fn.qualified + "' calls "
                            "notify_ready_changed() during advance_to: "
                            "the cluster republishes the component's "
                            "ready time after the grant returns"));
                        continue;
                    }
                    const bool cluster_ref = t == "cluster" ||
                                             t == "cluster_";
                    if (!cluster_ref)
                        continue;
                    if (toks[i + 1].text != "." &&
                        toks[i + 1].text != "->")
                        continue;
                    if (kClusterMutators.count(toks[i + 2].text)) {
                        out.push_back(make_finding(
                            name(), *fn.file, toks[i],
                            "'" + fn.qualified + "' calls " + t +
                                (toks[i + 1].text == "." ? "." : "->") +
                                toks[i + 2].text +
                                "() during advance_to: components must "
                                "not mutate the cluster mid-grant (post "
                                "from an event or the progress hook)"));
                    }
                }
            }

            // (b) Iterators captured by post() closures.
            std::set<std::string> iter_vars;
            for (std::size_t i = fn.body_begin; i + 2 < fn.body_end;
                 ++i) {
                // `<ident> = ... .find( | .begin( | ...` before the next
                // ';' marks <ident> as an iterator variable.
                if (toks[i].kind != TokKind::kIdent ||
                    toks[i + 1].text != "=")
                    continue;
                for (std::size_t j = i + 2;
                     j + 1 < fn.body_end && toks[j].text != ";"; ++j) {
                    if ((toks[j].text == "." || toks[j].text == "->") &&
                        toks[j + 1].kind == TokKind::kIdent &&
                        kIterSources.count(toks[j + 1].text) &&
                        j + 2 < fn.body_end &&
                        toks[j + 2].text == "(") {
                        iter_vars.insert(toks[i].text);
                        break;
                    }
                }
            }
            if (iter_vars.empty())
                continue;
            for (std::size_t i = fn.body_begin; i + 1 < fn.body_end;
                 ++i) {
                if (toks[i].kind != TokKind::kIdent ||
                    toks[i].text != "post" || toks[i + 1].text != "(")
                    continue;
                // Scan the argument list for lambdas; flag iterator
                // variables inside their capture list or body.
                int depth = 0;
                std::size_t j = i + 1;
                for (; j <= fn.body_end; ++j) {
                    if (toks[j].text == "(")
                        ++depth;
                    else if (toks[j].text == ")" && --depth == 0)
                        break;
                    else if (toks[j].text == "[" && depth >= 1) {
                        const std::size_t lam_end =
                            lambda_extent(toks, j, fn.body_end);
                        for (std::size_t k = j; k < lam_end; ++k) {
                            if (toks[k].kind == TokKind::kIdent &&
                                iter_vars.count(toks[k].text)) {
                                out.push_back(make_finding(
                                    name(), *fn.file, toks[k],
                                    "closure passed to post() uses "
                                    "iterator '" + toks[k].text +
                                        "'; the event fires after "
                                        "arbitrary mutation — capture a "
                                        "key/id and re-look-up at fire "
                                        "time"));
                            }
                        }
                        j = lam_end;
                    }
                }
            }
        }
    }

  private:
    /** @return one past the end of a lambda starting at `open` ('['). */
    static std::size_t
    lambda_extent(const std::vector<Token>& toks, std::size_t open,
                  std::size_t limit)
    {
        // capture list [...]
        std::size_t j = open;
        int sq = 0;
        for (; j <= limit; ++j) {
            if (toks[j].text == "[")
                ++sq;
            else if (toks[j].text == "]" && --sq == 0)
                break;
        }
        ++j;
        if (j <= limit && toks[j].text == "(") {  // parameter list
            int p = 0;
            for (; j <= limit; ++j) {
                if (toks[j].text == "(")
                    ++p;
                else if (toks[j].text == ")" && --p == 0)
                    break;
            }
            ++j;
        }
        while (j <= limit && toks[j].text != "{" && toks[j].text != ")" &&
               toks[j].text != ",")
            ++j;  // mutable / noexcept / -> type
        if (j <= limit && toks[j].text == "{") {
            const std::size_t close = match_brace(toks, j);
            return close >= limit ? limit : close + 1;
        }
        return j;  // not a lambda body after all (e.g. subscript)
    }
};

} // namespace

const std::vector<std::unique_ptr<Check>>&
check_registry()
{
    static const auto* checks = [] {
        auto* v = new std::vector<std::unique_ptr<Check>>();
        v->push_back(std::make_unique<NondetSourceCheck>());
        v->push_back(std::make_unique<UnorderedEmitCheck>());
        v->push_back(std::make_unique<TraceSpanBalanceCheck>());
        v->push_back(std::make_unique<StructSerializerDriftCheck>());
        v->push_back(std::make_unique<SimContractCheck>());
        return v;
    }();
    return *checks;
}

} // namespace shiftpar::lint
