/**
 * @file
 * Tests for the analytical performance model: the Table 1 / Table 2
 * orderings must hold as structural properties of the model, not just at
 * calibrated operating points.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "model/presets.h"
#include "parallel/perf_model.h"

namespace shiftpar::parallel {
namespace {

class PerfModelTest : public ::testing::Test
{
  protected:
    hw::Node node_ = hw::h200_node();
    model::ModelConfig llama_ = model::llama_70b();
    PerfModel perf_{node_, llama_};
};

TEST_F(PerfModelTest, EmptyBatchCostsOnlyOverhead)
{
    const StepTiming t = perf_.step_time(BatchWork{}, {1, 8});
    EXPECT_DOUBLE_EQ(t.gemm, 0.0);
    EXPECT_DOUBLE_EQ(t.attention, 0.0);
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
    EXPECT_GT(t.overhead, 0.0);
}

TEST_F(PerfModelTest, ComponentsNonNegativeAndSumToTotal)
{
    const auto work = BatchWork::prefill(4096);
    const StepTiming t = perf_.step_time(work, {4, 2});
    EXPECT_GE(t.gemm, 0.0);
    EXPECT_GE(t.attention, 0.0);
    EXPECT_GE(t.comm, 0.0);
    EXPECT_GE(t.overhead, 0.0);
    EXPECT_DOUBLE_EQ(t.total(), t.gemm + t.attention + t.comm + t.overhead);
}

TEST_F(PerfModelTest, SingleGpuHasNoComm)
{
    const StepTiming t = perf_.step_time(BatchWork::prefill(2048), {1, 1});
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
}

TEST_F(PerfModelTest, TpPrefillParallelizesCompute)
{
    const double t1 = perf_.prefill_time(4096, {1, 1});
    const double t8 = perf_.prefill_time(4096, {1, 8});
    EXPECT_GT(t1, 4.0 * t8);  // near-linear minus comm/overhead
}

TEST_F(PerfModelTest, SpPrefillBeatsTpPrefill)
{
    // Table 1: SP has the best TTFT — same compute sharding, cheaper
    // collectives (all-to-all of 1/SP vs all-reduce of the full embedding).
    const double tp = perf_.prefill_time(4096, {1, 8});
    const double sp = perf_.prefill_time(4096, {8, 1});
    EXPECT_LT(sp, tp);
}

TEST_F(PerfModelTest, SpPrefillCommSmallerThanTp)
{
    const auto work = BatchWork::prefill(8192);
    const StepTiming tp = perf_.step_time(work, {1, 8});
    const StepTiming sp = perf_.step_time(work, {8, 1});
    EXPECT_LT(sp.comm, tp.comm / 2.0);
}

TEST_F(PerfModelTest, TpDecodeBeatsSpDecode)
{
    // Table 1: SP has the worst TPOT — decode streams the full weight
    // shard (weights replicated across SP), TP streams 1/8 of it.
    const double tp = perf_.decode_step_time(1, 4096, {1, 8});
    const double sp = perf_.decode_step_time(1, 4096, {8, 1});
    EXPECT_LT(tp, sp);
    EXPECT_GT(sp / tp, 1.5);
}

TEST_F(PerfModelTest, DpDecodeNearWorst)
{
    // DP decode = single GPU: full weight stream, like SP but without the
    // all-to-all latency.
    const double dp = perf_.decode_step_time(1, 4096, {1, 1});
    const double tp = perf_.decode_step_time(1, 4096, {1, 8});
    const double sp = perf_.decode_step_time(1, 4096, {8, 1});
    EXPECT_GT(dp, tp);
    EXPECT_LT(dp, sp);
}

TEST_F(PerfModelTest, LargeBatchDecodeFavorsSp)
{
    // Algorithm 2's premise: beyond a crossover batch size the base (SP)
    // configuration is faster than full TP.
    const double tp = perf_.decode_step_time(4096, 2048, {1, 8});
    const double sp = perf_.decode_step_time(4096, 2048, {8, 1});
    EXPECT_LT(sp, tp);
}

TEST_F(PerfModelTest, SpPaddingPenalizesSmallBatches)
{
    // Section 3.2.1: batch 9 on SP=8 pads to 16 — same cost as batch 16.
    const auto t9 = perf_.step_time(BatchWork::decode(9, 1024), {8, 1});
    const auto t16 = perf_.step_time(BatchWork::decode(16, 1024), {8, 1});
    // GEMM time identical because padded tokens compute too.
    EXPECT_DOUBLE_EQ(t9.gemm, t16.gemm);
}

TEST_F(PerfModelTest, CommVolumeIndependentOfTpDegree)
{
    // Table 2: TP's per-rank comm volume does not shrink with degree, so
    // comm per layer stays ~flat while compute shrinks.
    const auto work = BatchWork::prefill(8192);
    const auto t2 = perf_.step_time(work, {1, 2});
    const auto t8 = perf_.step_time(work, {1, 8});
    EXPECT_GT(t8.comm, 0.8 * t2.comm);
    // Comm-to-compute ratio grows with TP degree.
    EXPECT_GT(t8.comm / t8.gemm, t2.comm / t2.gemm);
}

TEST_F(PerfModelTest, SpCommRatioGrowsMuchSlowerThanTp)
{
    // Table 2: SP's per-rank comm volume scales ~1/SP so its
    // comm-to-compute ratio is near-constant (it grows only by the
    // (P-1)/P wire factor), while TP's ratio grows linearly in degree.
    const auto work = BatchWork::prefill(8192);
    const auto s2 = perf_.step_time(work, {2, 1});
    const auto s8 = perf_.step_time(work, {8, 1});
    const auto t2 = perf_.step_time(work, {1, 2});
    const auto t8 = perf_.step_time(work, {1, 8});
    EXPECT_LT(s8.comm, s2.comm);  // SP comm volume shrinks with degree
    EXPECT_GT(t8.comm, 0.8 * t2.comm);  // TP comm volume does not
    const double sp_growth = (s8.comm / s8.gemm) / (s2.comm / s2.gemm);
    const double tp_growth = (t8.comm / t8.gemm) / (t2.comm / t2.gemm);
    // Ideal values: SP -> (7/8)/(1/2) = 1.75, TP -> 4x2(7/8)/(1/2) ~ 7.
    EXPECT_LT(sp_growth, 2.5);
    EXPECT_GT(tp_growth, 2.0 * sp_growth);
}

TEST_F(PerfModelTest, OverheadGrowsWithGroupSize)
{
    const auto w = BatchWork::decode(1, 128);
    EXPECT_LT(perf_.step_time(w, {1, 1}).overhead,
              perf_.step_time(w, {1, 8}).overhead);
}

TEST_F(PerfModelTest, SlicedShiftStepIsSlower)
{
    // Section 3.3.2: on-the-fly slicing pays a transpose penalty.
    const auto w = BatchWork::decode(4, 2048);
    const double plain = perf_.step_time(w, {1, 8}, false).total();
    const double sliced = perf_.step_time(w, {1, 8}, true).total();
    EXPECT_GT(sliced, plain);
}

TEST_F(PerfModelTest, AttentionGrowsWithContext)
{
    const double short_ctx = perf_.decode_step_time(64, 1024, {1, 8});
    const double long_ctx = perf_.decode_step_time(64, 65536, {1, 8});
    EXPECT_GT(long_ctx, 2.0 * short_ctx);
}

TEST_F(PerfModelTest, SwiftKvReducesPrefillOnly)
{
    PerfOptions opts;
    opts.swiftkv_prefill_factor = 0.55;
    const PerfModel fast(node_, llama_, opts);
    EXPECT_LT(fast.prefill_time(8192, {8, 1}),
              perf_.prefill_time(8192, {8, 1}));
    // Decode steps are untouched.
    EXPECT_DOUBLE_EQ(fast.decode_step_time(8, 2048, {1, 8}),
                     perf_.decode_step_time(8, 2048, {1, 8}));
}

TEST_F(PerfModelTest, DecodeInflationSlowsLargeDecodeBatches)
{
    PerfOptions opts;
    opts.decode_compute_inflation = 2.0;
    const PerfModel spec(node_, llama_, opts);
    // At large batch (compute-bound) the inflation must show up.
    EXPECT_GT(spec.decode_step_time(4096, 2048, {8, 1}),
              perf_.decode_step_time(4096, 2048, {8, 1}));
}

TEST_F(PerfModelTest, MoeActiveParamsMakeStepsCheaper)
{
    const model::ModelConfig moe = model::qwen_30b_a3b();
    const model::ModelConfig dense = model::qwen_32b();
    const PerfModel pm_moe(node_, moe);
    const PerfModel pm_dense(node_, dense);
    // 3B active vs 32B dense: prefill far cheaper.
    EXPECT_LT(pm_moe.prefill_time(8192, {8, 1}),
              pm_dense.prefill_time(8192, {8, 1}) / 2.0);
}

TEST_F(PerfModelTest, KvReplicationInflatesAttentionTraffic)
{
    const model::ModelConfig q30 = model::qwen_30b_a3b();  // 4 KV heads
    const PerfModel pm(node_, q30);
    // 8-way group replicates KV 2x vs a 4-way group: per-GPU attention
    // traffic per step should not improve 2x going 4 -> 8 ranks.
    const auto w = BatchWork::decode(64, 8192);
    const double t4 = pm.step_time(w, {4, 1}).attention;
    const double t8 = pm.step_time(w, {8, 1}).attention;
    EXPECT_GT(t8, t4 * 0.8);  // replication cancels the extra sharding
}

TEST_F(PerfModelTest, ConfigLargerThanNodeRejected)
{
    EXPECT_DEATH(perf_.prefill_time(128, {8, 2}), "exceeds node");
}

TEST(BatchWork, Helpers)
{
    const auto p = BatchWork::prefill(100);
    ASSERT_EQ(p.chunks.size(), 1u);
    EXPECT_TRUE(p.chunks[0].is_prefill);
    EXPECT_EQ(p.total_new_tokens(), 100);

    const auto d = BatchWork::decode(5, 300);
    EXPECT_EQ(d.num_seqs(), 5);
    EXPECT_EQ(d.total_new_tokens(), 5);
    EXPECT_FALSE(d.chunks[0].is_prefill);
    EXPECT_EQ(d.chunks[0].past, 300);
}

TEST(StepTiming, PlusEquals)
{
    StepTiming a{1.0, 2.0, 3.0, 4.0};
    const StepTiming b{0.5, 0.5, 0.5, 0.5};
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
    EXPECT_DOUBLE_EQ(a.gemm, 1.5);
}

} // namespace
} // namespace shiftpar::parallel
