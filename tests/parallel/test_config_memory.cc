/** @file Tests for parallel config validation and memory planning (Eq. 1). */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "model/presets.h"
#include "parallel/memory.h"
#include "parallel/strategy.h"
#include "util/units.h"

namespace shiftpar::parallel {
namespace {

TEST(Strategy, NamesRoundTrip)
{
    for (Strategy s : {Strategy::kDp, Strategy::kTp, Strategy::kSp,
                       Strategy::kSpTp, Strategy::kShift}) {
        EXPECT_EQ(parse_strategy(strategy_name(s)), s);
    }
    EXPECT_EQ(parse_strategy("shift"), Strategy::kShift);
    EXPECT_EQ(parse_strategy("SPTP"), Strategy::kSpTp);
    EXPECT_DEATH(parse_strategy("bogus"), "unknown");
}

TEST(Config, WorldAndShift)
{
    const ParallelConfig c{4, 2};
    EXPECT_EQ(c.world(), 8);
    EXPECT_EQ(c.shift_config(), (ParallelConfig{1, 8}));
    EXPECT_FALSE(c.is_full_tp());
    EXPECT_TRUE(c.shift_config().is_full_tp());
    EXPECT_EQ(c.to_string(), "(SP=4,TP=2)");
}

TEST(Config, KvReplicationFactor)
{
    const auto l70 = model::llama_70b();    // 8 kv heads
    const auto q30 = model::qwen_30b_a3b(); // 4 kv heads
    EXPECT_EQ(kv_replication(l70, {8, 1}), 1);
    EXPECT_EQ(kv_replication(l70, {4, 4}), 2);
    EXPECT_EQ(kv_replication(q30, {8, 1}), 2);
    EXPECT_EQ(kv_replication(q30, {2, 2}), 1);
}

TEST(Config, ValidationErrors)
{
    const auto m = model::llama_70b();
    EXPECT_TRUE(validate_config(m, {8, 1}).empty());
    EXPECT_TRUE(validate_config(m, {4, 2}).empty());
    // 64 q heads across 128 ranks is impossible.
    EXPECT_FALSE(validate_config(m, {16, 8}).empty());
    // Degrees must be positive.
    EXPECT_FALSE(validate_config(m, {0, 8}).empty());
}

TEST(Config, ValidationRejectsUnevenKvSplit)
{
    model::ModelConfig m = model::llama_70b();
    m.q_heads = 48;
    m.kv_heads = 6;
    m.params_total_override = 1e9;
    // 6 kv heads on 4 ranks: neither divisible nor replicable.
    EXPECT_FALSE(validate_config(m, {4, 1}).empty());
    EXPECT_TRUE(validate_config(m, {3, 1}).empty());
    EXPECT_TRUE(validate_config(m, {12, 1}).empty());  // replicate 2x
}

TEST(Memory, Eq1ShiftOverheadIsOneOverSp)
{
    const auto m = model::llama_70b();
    const auto gpu = hw::h200();
    const auto plan = plan_memory(m, gpu, {8, 1}, /*with_shift_model=*/true);
    // Paper: "when SP = 8, the shift model's memory overhead is 12.5%".
    EXPECT_NEAR(plan.shift_overhead_frac(), 0.125, 1e-9);
    EXPECT_DOUBLE_EQ(plan.base_weight_bytes, m.weight_bytes());
    EXPECT_DOUBLE_EQ(plan.shift_weight_bytes, m.weight_bytes() / 8.0);
}

TEST(Memory, Eq1WithCombinedBase)
{
    const auto m = model::llama_70b();
    const auto plan =
        plan_memory(m, hw::h200(), {4, 2}, /*with_shift_model=*/true);
    EXPECT_DOUBLE_EQ(plan.base_weight_bytes, m.weight_bytes() / 2.0);
    EXPECT_DOUBLE_EQ(plan.shift_weight_bytes, m.weight_bytes() / 8.0);
    EXPECT_NEAR(plan.shift_overhead_frac(), 0.25, 1e-9);  // 1/SP
}

TEST(Memory, SlicingHasNoWeightOverhead)
{
    const auto m = model::llama_70b();
    const auto plan = plan_memory(m, hw::h200(), {8, 1}, true,
                                  WeightStrategy::kOnTheFlySlicing);
    EXPECT_DOUBLE_EQ(plan.shift_weight_bytes, 0.0);
}

TEST(Memory, FullTpBaseNeedsNoShiftModel)
{
    const auto m = model::llama_70b();
    const auto plan = plan_memory(m, hw::h200(), {1, 8}, true);
    EXPECT_DOUBLE_EQ(plan.shift_weight_bytes, 0.0);
}

TEST(Memory, KvCapacityAccounting)
{
    const auto m = model::llama_70b();
    const auto gpu = hw::h200();
    const auto plan = plan_memory(m, gpu, {1, 8}, false);
    // Pool = util*HBM - W/8 - workspace.
    const double expected_pool =
        gpu.hbm_bytes * 0.92 - m.weight_bytes() / 8.0 - 4.0e9;
    EXPECT_NEAR(plan.kv_pool_bytes, expected_pool, 1.0);
    // Per-token per-GPU: heads sharded 8 ways, no replication.
    EXPECT_DOUBLE_EQ(plan.kv_bytes_per_token_per_gpu,
                     m.kv_bytes_per_token() / 8.0);
    EXPECT_EQ(plan.kv_token_capacity,
              static_cast<std::int64_t>(expected_pool /
                                        (m.kv_bytes_per_token() / 8.0)));
}

TEST(Memory, ReplicationInflatesPerTokenBytes)
{
    const auto m = model::qwen_30b_a3b();  // 4 kv heads
    const auto p8 = plan_memory(m, hw::h200(), {8, 1}, false);
    const auto p4 = plan_memory(m, hw::h200(), {4, 1}, false);
    // 8 ranks replicate KV 2x: per-GPU per-token bytes match the 4-rank
    // sharding instead of improving.
    EXPECT_DOUBLE_EQ(p8.kv_bytes_per_token_per_gpu,
                     p4.kv_bytes_per_token_per_gpu);
}

TEST(Memory, MoeBarelyFitsAtSp8)
{
    // Section 4.6: Llama-17B-16E (109 GB FP8) "barely fits into a single
    // GPU and when SP=8 is used, there is no memory left in the KV cache".
    const auto m = model::llama_17b_16e();
    const auto plan = plan_memory(m, hw::h200(), {8, 1}, true);
    EXPECT_LT(plan.kv_pool_bytes, 0.05 * hw::h200().hbm_bytes);
    // With TP=2 there is healthy KV room (the paper's base (SP=4, TP=2)).
    const auto plan2 = plan_memory(m, hw::h200(), {4, 2}, true);
    EXPECT_GT(plan2.kv_pool_bytes, 0.25 * hw::h200().hbm_bytes);
}

TEST(Memory, DetectsDoesNotFit)
{
    // The same MoE at FP16 (218 GB) cannot fit one GPU at all.
    model::ModelConfig m = model::llama_17b_16e();
    m.weight_dtype = model::DType::kFp16;
    const auto plan = plan_memory(m, hw::h200(), {8, 1}, true);
    EXPECT_FALSE(plan.fits());
    EXPECT_EQ(plan.kv_token_capacity, 0);
}

TEST(Memory, DescribeMentionsFit)
{
    model::ModelConfig big = model::llama_17b_16e();
    big.weight_dtype = model::DType::kFp16;
    EXPECT_NE(describe(plan_memory(big, hw::h200(), {8, 1}, true))
                  .find("DOES NOT FIT"),
              std::string::npos);
    EXPECT_NE(describe(plan_memory(model::llama_17b_16e(), hw::h200(),
                                   {4, 2}, true))
                  .find("KV pool"),
              std::string::npos);
}

} // namespace
} // namespace shiftpar::parallel
