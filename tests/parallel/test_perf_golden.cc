/**
 * @file
 * Golden-number tests: the perf model's outputs are re-derived by hand
 * from the roofline/alpha-beta formulas for simple cases and compared
 * exactly. Any unintentional change to the cost accounting fails here.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "model/flops.h"
#include "parallel/perf_model.h"

namespace shiftpar::parallel {
namespace {

/** A hand-analyzable model: one layer, MHA, small dims. */
model::ModelConfig
golden_model()
{
    model::ModelConfig m;
    m.name = "golden";
    m.num_layers = 1;
    m.hidden_size = 1024;
    m.q_heads = 8;
    m.kv_heads = 8;
    m.head_dim = 128;
    m.intermediate_size = 2048;
    m.vocab_size = 1000;
    m.weight_dtype = model::DType::kFp8;
    m.validate();
    return m;
}

class GoldenPerf : public ::testing::Test
{
  protected:
    hw::Node node_ = hw::h200_node();
    model::ModelConfig m_ = golden_model();
    PerfOptions opts_;
    // Exact derating constants from the presets.
    double gemm_rate_ = node_.gpu.effective_gemm_flops(1.0);
    double attn_rate_ = node_.gpu.effective_attn_flops(2.0);
    double hbm_ = node_.gpu.effective_bw();
    double link_bw_ = node_.link.bw * node_.link.efficiency;
};

TEST_F(GoldenPerf, SingleGpuPrefillMatchesClosedForm)
{
    const PerfModel perf(node_, m_, opts_);
    const double n = 4096.0;
    const auto t = perf.step_time(BatchWork::prefill(4096), {1, 1});

    // GEMM region: compute-bound at this size.
    const double gemm_flops = model::layer_gemm_flops(m_, n);
    const double lm_flops = model::lm_head_flops(m_, 1.0);
    const double gemm_bytes = model::layer_weight_read_bytes(m_, n) +
                              model::layer_activation_bytes(m_, n);
    const double lm_bytes =
        static_cast<double>(m_.vocab_size) * m_.hidden_size;
    const double expect_gemm =
        std::max(gemm_flops / gemm_rate_, gemm_bytes / hbm_) +
        node_.gpu.kernel_overhead +
        std::max(lm_flops / gemm_rate_, lm_bytes / hbm_) +
        node_.gpu.kernel_overhead;
    EXPECT_NEAR(t.gemm, expect_gemm, expect_gemm * 1e-12);

    // Attention region.
    const double attn_flops = model::attn_flops(m_, n, 0.0);
    const double kv_bytes = model::kv_read_bytes(m_, n, 0.0) +
                            model::kv_write_bytes(m_, n);
    const double expect_attn =
        std::max(attn_flops / attn_rate_, kv_bytes / hbm_) +
        node_.gpu.kernel_overhead;
    EXPECT_NEAR(t.attention, expect_attn, expect_attn * 1e-12);

    // No comm on one GPU; overhead is the base constant.
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
    EXPECT_DOUBLE_EQ(t.overhead, opts_.step_overhead_base);
}

TEST_F(GoldenPerf, Tp2AllReduceMatchesAlphaBeta)
{
    const PerfModel perf(node_, m_, opts_);
    const double n = 1000.0;
    const auto t = perf.step_time(BatchWork::prefill(1000), {1, 2});

    // Per layer: two all-reduces of n*d*act_bytes across 2 ranks.
    const double bytes = n * m_.hidden_size * opts_.act_bytes;
    const double vol = 2.0 * (2.0 - 1.0) / 2.0 * bytes;  // 2(P-1)/P
    const double one_ar = vol / link_bw_ + 2.0 * node_.link.latency;
    EXPECT_NEAR(t.comm, 2.0 * one_ar, 1e-15);
}

TEST_F(GoldenPerf, Sp2AllToAllMatchesAlphaBeta)
{
    const PerfModel perf(node_, m_, opts_);
    const double n = 1000.0;
    const auto t = perf.step_time(BatchWork::prefill(1000), {2, 1});

    const double rows = n / 2.0;
    const double qkv_cols =
        (m_.q_heads + 2.0 * m_.kv_heads) * m_.head_dim;  // no replication
    const double o_cols = static_cast<double>(m_.q_heads) * m_.head_dim;
    const auto a2a = [&](double buffer) {
        return (2.0 - 1.0) / 2.0 * buffer / link_bw_ + node_.link.latency;
    };
    const double per_layer = a2a(rows * qkv_cols * opts_.act_bytes) +
                             a2a(rows * o_cols * opts_.act_bytes);
    // Plus the final sequence all-gather of n*d*act_bytes.
    const double ag = (2.0 - 1.0) / 2.0 * n * m_.hidden_size *
                          opts_.act_bytes / link_bw_ +
                      node_.link.latency;
    EXPECT_NEAR(t.comm, per_layer + ag, 1e-15);
}

TEST_F(GoldenPerf, DecodeWeightStreamIsTheSpBottleneck)
{
    // Pure SP decode of batch 8 (one row per rank): the GEMM region must
    // be exactly the full-layer weight stream (memory-bound).
    const PerfModel perf(node_, m_, opts_);
    const auto t = perf.step_time(BatchWork::decode(8, 512), {8, 1});
    const double bytes = model::layer_weight_read_bytes(m_, 8.0) +
                         model::layer_activation_bytes(m_, 8.0) / 8.0;
    const double lm_bytes =
        static_cast<double>(m_.vocab_size) * m_.hidden_size / 8.0;
    const double expect = bytes / hbm_ + node_.gpu.kernel_overhead +
                          lm_bytes / hbm_ + node_.gpu.kernel_overhead;
    EXPECT_NEAR(t.gemm, expect, expect * 1e-9);
}

TEST_F(GoldenPerf, PaddingRoundsRowsUp)
{
    // Batch 9 on SP=8 pads to 16: identical GEMM cost to batch 16 and
    // strictly more than unpadded batch 9 on TP.
    const PerfModel perf(node_, m_, opts_);
    const auto t9 = perf.step_time(BatchWork::decode(9, 256), {8, 1});
    const auto t16 = perf.step_time(BatchWork::decode(16, 256), {8, 1});
    EXPECT_DOUBLE_EQ(t9.gemm, t16.gemm);
}

TEST_F(GoldenPerf, OverheadFormula)
{
    const PerfModel perf(node_, m_, opts_);
    for (int g : {1, 2, 4, 8}) {
        const ParallelConfig cfg{1, g};
        const auto t = perf.step_time(BatchWork::decode(1, 16), cfg);
        EXPECT_DOUBLE_EQ(t.overhead,
                         opts_.step_overhead_base +
                             opts_.step_overhead_per_rank * (g - 1));
    }
}

TEST_F(GoldenPerf, SwiftKvScalesGemmExactly)
{
    PerfOptions swift = opts_;
    swift.swiftkv_prefill_factor = 0.5;
    const PerfModel plain(node_, m_, opts_);
    const PerfModel fast(node_, m_, swift);
    const double n = 100000.0;  // deep in the compute-bound regime
    const auto tp = plain.step_time(BatchWork::prefill(100000), {1, 1});
    const auto tf = fast.step_time(BatchWork::prefill(100000), {1, 1});
    // Compute-bound: gemm time halves up to the fixed kernel overheads
    // and weight-stream floor.
    EXPECT_NEAR(tf.gemm / tp.gemm, 0.5, 0.02);
    (void)n;
}

} // namespace
} // namespace shiftpar::parallel
