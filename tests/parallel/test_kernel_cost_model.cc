/**
 * @file
 * Tests for the kernel-decomposed cost model: the breakdown must account
 * for every second of the reported step, the collective rows must carry
 * exactly the Table 2 wire volumes, and the structural orderings the
 * roofline model guarantees (monotonicity, SP padding, degenerate batches)
 * must survive the change of pricing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "hw/presets.h"
#include "model/presets.h"
#include "parallel/kernel_cost_model.h"

namespace shiftpar::parallel {
namespace {

class KernelCostModelTest : public ::testing::Test
{
  protected:
    hw::Node node_ = hw::h200_node();
    model::ModelConfig llama_ = model::llama_70b();
    hw::KernelCoeffs coeffs_ =
        hw::derive_kernel_coeffs(node_.gpu, node_.link);
    KernelCostModel kernel_{node_, llama_, coeffs_};

    const KernelCost* find(const std::vector<KernelCost>& rows,
                           const std::string& name) const
    {
        for (const auto& r : rows)
            if (r.kernel == name)
                return &r;
        return nullptr;
    }

    double sum_seconds(const std::vector<KernelCost>& rows) const
    {
        double s = 0.0;
        for (const auto& r : rows)
            s += r.seconds;
        return s;
    }
};

TEST_F(KernelCostModelTest, BreakdownSumsToReportedTotal)
{
    const ParallelConfig cfgs[] = {{1, 1}, {1, 8}, {8, 1}, {4, 2}, {2, 2}};
    const BatchWork works[] = {BatchWork::prefill(4096),
                               BatchWork::decode(64, 2048),
                               BatchWork::decode(1, 512)};
    for (const auto& cfg : cfgs) {
        for (const auto& work : works) {
            std::vector<KernelCost> rows;
            const StepTiming t = kernel_.evaluate(work, cfg, false, &rows);
            ASSERT_FALSE(rows.empty());
            EXPECT_NEAR(sum_seconds(rows), t.total(),
                        1e-12 * t.total() + 1e-15)
                << cfg.to_string();
        }
    }
}

TEST_F(KernelCostModelTest, BreakdownMatchesComponentBuckets)
{
    // Each row's class maps onto exactly one Fig. 15 component; summing
    // rows by destination bucket must reproduce the StepTiming fields.
    std::vector<KernelCost> rows;
    const StepTiming t =
        kernel_.evaluate(BatchWork::prefill(8192), {4, 2}, false, &rows);
    double comm = 0.0, attn = 0.0, overhead = 0.0, gemm = 0.0;
    for (const auto& r : rows) {
        if (r.klass == "collective")
            comm += r.seconds;
        else if (r.klass == "attention")
            attn += r.seconds;
        else if (r.klass == "overhead")
            overhead += r.seconds;
        else
            gemm += r.seconds;
    }
    EXPECT_NEAR(comm, t.comm, 1e-12 * t.total());
    EXPECT_NEAR(attn, t.attention, 1e-12 * t.total());
    EXPECT_NEAR(overhead, t.overhead, 1e-12 * t.total());
    EXPECT_NEAR(gemm, t.gemm, 1e-12 * t.total());
}

TEST_F(KernelCostModelTest, EmptyBatchReportsOnlyEngineOverhead)
{
    std::vector<KernelCost> rows;
    const StepTiming t = kernel_.evaluate(BatchWork{}, {1, 8}, false, &rows);
    EXPECT_DOUBLE_EQ(t.gemm, 0.0);
    EXPECT_DOUBLE_EQ(t.attention, 0.0);
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
    EXPECT_GT(t.overhead, 0.0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].kernel, "engine_overhead");
    EXPECT_DOUBLE_EQ(rows[0].seconds, t.total());
}

TEST_F(KernelCostModelTest, EveryRowHasAKnownCoefficientClass)
{
    const std::set<std::string> known = {"gemm", "attention", "norm",
                                         "collective", "overhead"};
    std::vector<KernelCost> rows;
    kernel_.evaluate(BatchWork::prefill(2048), {8, 1}, false, &rows);
    for (const auto& r : rows) {
        EXPECT_TRUE(known.count(r.klass))
            << r.kernel << " priced under unknown class " << r.klass;
        EXPECT_GE(r.seconds, 0.0) << r.kernel;
        EXPECT_GT(r.count, 0.0) << r.kernel;
    }
}

TEST_F(KernelCostModelTest, PrefillTimeMonotonicInPromptTokens)
{
    const double t1 = kernel_.prefill_time(1024, {4, 2});
    const double t2 = kernel_.prefill_time(2048, {4, 2});
    const double t3 = kernel_.prefill_time(8192, {4, 2});
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
}

TEST_F(KernelCostModelTest, DecodeTimeMonotonicInBatchAndContext)
{
    const double base = kernel_.decode_step_time(8, 1024, {1, 8});
    EXPECT_LT(base, kernel_.decode_step_time(64, 1024, {1, 8}));
    EXPECT_LT(base, kernel_.decode_step_time(8, 16384, {1, 8}));
}

TEST_F(KernelCostModelTest, SingleGpuHasNoCollectiveRows)
{
    std::vector<KernelCost> rows;
    const StepTiming t =
        kernel_.evaluate(BatchWork::prefill(2048), {1, 1}, false, &rows);
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
    for (const auto& r : rows)
        EXPECT_NE(r.klass, "collective") << r.kernel;
}

TEST_F(KernelCostModelTest, TpAllReduceCarriesTable2WireVolume)
{
    // TP pays two all-reduces of the full embed[n, d] per layer; the
    // breakdown row must carry exactly 2L * the per-rank ring volume.
    const std::int64_t n = 4096;
    std::vector<KernelCost> rows;
    kernel_.evaluate(BatchWork::prefill(n), {1, 8}, false, &rows);
    const KernelCost* ar = find(rows, "tp_allreduce");
    ASSERT_NE(ar, nullptr);
    const double act_b = kernel_.options().act_bytes;
    const double tensor =
        static_cast<double>(n) * llama_.hidden_size * act_b;
    EXPECT_DOUBLE_EQ(
        ar->bytes, 2.0 * llama_.num_layers *
                       hw::CollectiveModel::all_reduce_volume(tensor, 8));
    EXPECT_EQ(find(rows, "sp_a2a_qkv"), nullptr);
    EXPECT_EQ(find(rows, "sp_allgather"), nullptr);
}

TEST_F(KernelCostModelTest, SpAllToAllCarriesTable2WireVolume)
{
    // SP moves only the head activations through two all-to-alls of
    // rows = n/SP tokens each — 1/SP of TP's per-rank volume class.
    const std::int64_t n = 4096;
    const int sp = 8;
    std::vector<KernelCost> rows;
    kernel_.evaluate(BatchWork::prefill(n), {sp, 1}, false, &rows);
    const double act_b = kernel_.options().act_bytes;
    const double rows_pg = static_cast<double>(n) / sp;
    const int rep = kv_replication(llama_, {sp, 1});

    const KernelCost* qkv = find(rows, "sp_a2a_qkv");
    ASSERT_NE(qkv, nullptr);
    const double qkv_cols =
        (llama_.q_heads + 2.0 * llama_.kv_heads * rep) * llama_.head_dim;
    EXPECT_DOUBLE_EQ(qkv->bytes,
                     llama_.num_layers *
                         hw::CollectiveModel::all_to_all_volume(
                             rows_pg * qkv_cols * act_b, sp));

    const KernelCost* o = find(rows, "sp_a2a_o");
    ASSERT_NE(o, nullptr);
    const double o_cols =
        static_cast<double>(llama_.q_heads) * llama_.head_dim;
    EXPECT_DOUBLE_EQ(o->bytes, llama_.num_layers *
                                   hw::CollectiveModel::all_to_all_volume(
                                       rows_pg * o_cols * act_b, sp));

    const KernelCost* ag = find(rows, "sp_allgather");
    ASSERT_NE(ag, nullptr);
    EXPECT_DOUBLE_EQ(ag->bytes,
                     hw::CollectiveModel::all_gather_volume(
                         static_cast<double>(n) * llama_.hidden_size * act_b,
                         sp));
    EXPECT_EQ(find(rows, "tp_allreduce"), nullptr);
}

TEST_F(KernelCostModelTest, SpMovesFewerWireBytesThanTpAtEqualWorld)
{
    // The Table 2 headline: per-rank comm volume under SP=8 is a small
    // fraction of TP=8's for the same prefill.
    const auto wire = [&](const ParallelConfig& cfg) {
        std::vector<KernelCost> rows;
        kernel_.evaluate(BatchWork::prefill(4096), cfg, false, &rows);
        double bytes = 0.0;
        for (const auto& r : rows)
            if (r.klass == "collective")
                bytes += r.bytes;
        return bytes;
    };
    EXPECT_LT(wire({8, 1}), wire({1, 8}) / 2.0);
}

TEST_F(KernelCostModelTest, PrefillAndDecodeAttentionRowsAreSeparate)
{
    std::vector<KernelCost> rows;
    kernel_.evaluate(BatchWork::prefill(2048), {1, 8}, false, &rows);
    EXPECT_NE(find(rows, "attn_prefill"), nullptr);
    EXPECT_EQ(find(rows, "attn_decode"), nullptr);

    rows.clear();
    kernel_.evaluate(BatchWork::decode(16, 2048), {1, 8}, false, &rows);
    EXPECT_EQ(find(rows, "attn_prefill"), nullptr);
    EXPECT_NE(find(rows, "attn_decode"), nullptr);

    BatchWork mixed;
    mixed.chunks.push_back({512, 0, true});
    mixed.chunks.push_back({1, 1024, false});
    rows.clear();
    kernel_.evaluate(mixed, {1, 8}, false, &rows);
    EXPECT_NE(find(rows, "attn_prefill"), nullptr);
    EXPECT_NE(find(rows, "attn_decode"), nullptr);
}

TEST_F(KernelCostModelTest, SpPaddingEqualizesGemmWork)
{
    // Section 3.2.1: a 1-token batch under SP=8 is padded to 8 rows, so
    // the GEMM rows carry the same FLOPs as a real 8-token batch.
    std::vector<KernelCost> one, eight;
    kernel_.evaluate(BatchWork::decode(1, 1024), {8, 1}, false, &one);
    kernel_.evaluate(BatchWork::decode(8, 1024), {8, 1}, false, &eight);
    const KernelCost* q1 = find(one, "qkv_gemm");
    const KernelCost* q8 = find(eight, "qkv_gemm");
    ASSERT_NE(q1, nullptr);
    ASSERT_NE(q8, nullptr);
    EXPECT_DOUBLE_EQ(q1->flops, q8->flops);
}

TEST_F(KernelCostModelTest, SlicedWeightsCostMore)
{
    const auto work = BatchWork::decode(8, 2048);
    const double plain = kernel_.evaluate(work, {1, 8}, false).total();
    const double sliced = kernel_.evaluate(work, {1, 8}, true).total();
    EXPECT_GT(sliced, plain);
}

TEST_F(KernelCostModelTest, MoeEpAllToAllRowAppears)
{
    const model::ModelConfig moe = model::llama_17b_16e();
    KernelCostModel km(node_, moe,
                       hw::derive_kernel_coeffs(node_.gpu, node_.link));
    std::vector<KernelCost> rows;
    const StepTiming ep8 =
        km.evaluate(BatchWork::prefill(2048), {4, 2, 8}, false, &rows);
    EXPECT_NE(find(rows, "ep_a2a"), nullptr);
    const StepTiming ep1 = km.evaluate(BatchWork::prefill(2048), {4, 2, 1});
    EXPECT_GT(ep8.comm, ep1.comm);
}

TEST_F(KernelCostModelTest, CoefficientsScaleReportedCost)
{
    hw::KernelCoeffs doubled = coeffs_;
    doubled.gemm.beta *= 2.0;
    doubled.gemm.gamma *= 2.0;
    doubled.attention.gamma *= 2.0;
    KernelCostModel slower(node_, llama_, doubled);
    const auto work = BatchWork::decode(32, 4096);
    EXPECT_GT(slower.evaluate(work, {1, 8}).total(),
              kernel_.evaluate(work, {1, 8}).total());
}

TEST_F(KernelCostModelTest, ComponentRemovalKnobsZeroTheirRows)
{
    PerfOptions opts;
    opts.comm_scale = 0.0;
    opts.attention_scale = 0.0;
    opts.engine_overhead = false;
    KernelCostModel stripped(node_, llama_, coeffs_, opts);
    std::vector<KernelCost> rows;
    const StepTiming t =
        stripped.evaluate(BatchWork::prefill(4096), {4, 2}, false, &rows);
    EXPECT_DOUBLE_EQ(t.comm, 0.0);
    EXPECT_DOUBLE_EQ(t.attention, 0.0);
    EXPECT_DOUBLE_EQ(t.overhead, 0.0);
    EXPECT_GT(t.gemm, 0.0);
    EXPECT_NEAR(sum_seconds(rows), t.total(), 1e-12 * t.total());
}

} // namespace
} // namespace shiftpar::parallel
