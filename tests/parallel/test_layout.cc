/**
 * @file
 * Tests for the Section 3.3.1 head-to-rank mapping and KV-cache invariance
 * — the correctness core of Shift Parallelism.
 */

#include <gtest/gtest.h>

#include <set>

#include "model/presets.h"
#include "parallel/layout.h"

namespace shiftpar::parallel {
namespace {

/** A 6-head toy model matching the paper's Figure 6 example. */
model::ModelConfig
six_head_model()
{
    model::ModelConfig m;
    m.name = "toy-6h";
    m.num_layers = 2;
    m.hidden_size = 768;
    m.q_heads = 6;
    m.kv_heads = 6;  // MHA so q and kv layouts coincide
    m.head_dim = 128;
    m.intermediate_size = 3072;
    m.vocab_size = 1000;
    m.validate();
    return m;
}

TEST(HeadLayout, PaperFigure6Example)
{
    // (SP=3, TP=2): the paper shows head k served by rank (0,2,4,1,3,5).
    const auto layout = HeadLayout::base(six_head_model(), {3, 2});
    EXPECT_EQ(layout.rank_of_q_head(), (std::vector<int>{0, 2, 4, 1, 3, 5}));
}

TEST(HeadLayout, PureSpMatchesRankOrder)
{
    // With TP=1 the all-to-all distributes heads in plain rank order, so
    // the base layout coincides with naive TP.
    const auto m = six_head_model();
    const auto base = HeadLayout::base(m, {6, 1});
    const auto naive = HeadLayout::naive_tp(m, 6);
    EXPECT_TRUE(base.invariant_with(naive));
}

TEST(HeadLayout, PureTpMatchesRankOrder)
{
    const auto m = six_head_model();
    const auto base = HeadLayout::base(m, {1, 6});
    const auto naive = HeadLayout::naive_tp(m, 6);
    EXPECT_TRUE(base.invariant_with(naive));
}

TEST(HeadLayout, MixedConfigBreaksNaiveInvariance)
{
    // The central claim of Section 3.3.1: for a combined (SP, TP) base,
    // naive rank-order TP sharding is NOT cache compatible...
    const auto m = six_head_model();
    const auto base = HeadLayout::base(m, {3, 2});
    const auto naive = HeadLayout::naive_tp(m, 6);
    EXPECT_FALSE(base.invariant_with(naive));
}

TEST(HeadLayout, SpTpOrderedShiftRestoresInvariance)
{
    // ...but the SP_TP-ordered shift configuration is invariant.
    const auto m = six_head_model();
    const auto base = HeadLayout::base(m, {3, 2});
    const auto shift = HeadLayout::shift(m, {3, 2});
    EXPECT_TRUE(base.invariant_with(shift));
}

/** Property test over every (SP, TP) decomposition of the real models. */
class InvarianceProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>>
{
  protected:
    static model::ModelConfig
    model_by_name(const std::string& name)
    {
        for (const auto& m : model::table4_models())
            if (m.name == name)
                return m;
        ADD_FAILURE() << "unknown model " << name;
        return model::llama_70b();
    }
};

TEST_P(InvarianceProperty, ShiftConfigAlwaysInvariantWithBase)
{
    const auto [name, sp, tp] = GetParam();
    const auto m = model_by_name(name);
    const ParallelConfig cfg{sp, tp};
    if (!validate_config(m, cfg).empty())
        GTEST_SKIP() << "config invalid for this model";
    const auto base = HeadLayout::base(m, cfg);
    const auto shift = HeadLayout::shift(m, cfg);
    EXPECT_TRUE(base.invariant_with(shift))
        << "invariance failed for " << name << " " << cfg.to_string();
}

TEST_P(InvarianceProperty, EveryQueryHeadPlacedExactlyOnce)
{
    const auto [name, sp, tp] = GetParam();
    const auto m = model_by_name(name);
    const ParallelConfig cfg{sp, tp};
    if (!validate_config(m, cfg).empty())
        GTEST_SKIP();
    const auto owner = HeadLayout::base(m, cfg).rank_of_q_head();
    ASSERT_EQ(owner.size(), static_cast<std::size_t>(m.q_heads));
    for (int r : owner) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, sp * tp);
    }
}

TEST_P(InvarianceProperty, KvReplicationCountIsExact)
{
    const auto [name, sp, tp] = GetParam();
    const auto m = model_by_name(name);
    const ParallelConfig cfg{sp, tp};
    if (!validate_config(m, cfg).empty())
        GTEST_SKIP();
    const auto layout = HeadLayout::base(m, cfg);
    // Count how many ranks host each KV head.
    std::vector<int> hosts(static_cast<std::size_t>(m.kv_heads), 0);
    for (int r = 0; r < layout.world(); ++r)
        for (int kv : layout.rank(r).kv)
            ++hosts[static_cast<std::size_t>(kv)];
    const int expected = std::max(1, sp * tp / m.kv_heads);
    EXPECT_EQ(layout.kv_replication(), expected);
    for (int h : hosts)
        EXPECT_EQ(h, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllConfigs, InvarianceProperty,
    ::testing::Combine(
        ::testing::Values("Llama-70B", "Qwen-32B", "Llama-17B-16E",
                          "Qwen-30B-A3B"),
        ::testing::Values(1, 2, 4, 8),   // SP
        ::testing::Values(1, 2, 4, 8)),  // TP
    [](const auto& info) {
        auto name = std::get<0>(info.param);
        for (auto& c : name)
            if (c == '-')
                c = '_';
        return name + "_sp" + std::to_string(std::get<1>(info.param)) +
               "_tp" + std::to_string(std::get<2>(info.param));
    });

TEST(HeadLayout, KvHeadsFollowQueryHeads)
{
    // GQA: a rank's KV heads must be exactly the groups of its Q heads.
    const auto m = model::llama_70b();  // 64 q / 8 kv -> groups of 8
    const auto layout = HeadLayout::base(m, {4, 2});
    for (int r = 0; r < layout.world(); ++r) {
        const auto& rh = layout.rank(r);
        std::set<int> expected;
        for (int q : rh.q)
            expected.insert(q / 8);
        std::set<int> actual(rh.kv.begin(), rh.kv.end());
        EXPECT_EQ(actual, expected) << "rank " << r;
    }
}

TEST(HeadLayout, ReplicationCaseSharesKvHeads)
{
    // Qwen-30B-A3B: 4 KV heads on 8 ranks -> each KV head on 2 ranks
    // (Section 3.2.1 KV cache replication).
    const auto m = model::qwen_30b_a3b();
    const auto layout = HeadLayout::base(m, {8, 1});
    EXPECT_EQ(layout.kv_replication(), 2);
}

TEST(HeadLayout, RankAccessorBoundsChecked)
{
    const auto layout = HeadLayout::base(six_head_model(), {3, 2});
    EXPECT_EQ(layout.world(), 6);
    EXPECT_DEATH(layout.rank(6), "");
}

} // namespace
} // namespace shiftpar::parallel
