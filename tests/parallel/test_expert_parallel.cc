/** @file Tests for the expert-parallelism extension (Section 4.6). */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "kvcache/layout.h"
#include "model/presets.h"
#include "parallel/memory.h"
#include "parallel/perf_model.h"

namespace shiftpar::parallel {
namespace {

TEST(ExpertParallel, ValidationRules)
{
    const auto moe = model::qwen_30b_a3b();   // 128 experts
    const auto dense = model::llama_70b();
    EXPECT_TRUE(validate_config(moe, {8, 1, 4}).empty());
    // EP on a dense model is rejected.
    EXPECT_FALSE(validate_config(dense, {8, 1, 2}).empty());
    // EP must divide the group.
    EXPECT_FALSE(validate_config(moe, {4, 1, 3}).empty());
    // EP must divide the expert count (16 experts, EP 32 impossible
    // anyway by group, use a 16-expert model with ep 5 via group 20... use
    // llama_17b_16e: 16 experts, group (8,1): ep 8 ok).
    const auto l17 = model::llama_17b_16e();
    EXPECT_TRUE(validate_config(l17, {4, 2, 8}).empty());
}

TEST(ExpertParallel, ToStringIncludesEp)
{
    EXPECT_EQ((ParallelConfig{4, 2, 8}).to_string(), "(SP=4,TP=2,EP=8)");
    EXPECT_EQ((ParallelConfig{4, 2, 1}).to_string(), "(SP=4,TP=2)");
}

TEST(ExpertParallel, ShiftConfigPreservesEp)
{
    const ParallelConfig base{4, 2, 8};
    EXPECT_EQ(base.shift_config(), (ParallelConfig{1, 8, 8}));
}

TEST(ExpertParallel, MemoryShardsExpertsOnly)
{
    const auto m = model::qwen_30b_a3b();
    const auto gpu = hw::h200();
    const auto ep1 = plan_memory(m, gpu, {8, 1, 1}, false);
    const auto ep8 = plan_memory(m, gpu, {8, 1, 8}, false);
    // Expert weights dominate this model; EP=8 should cut per-GPU weights
    // by nearly 8x but never below the dense share.
    EXPECT_LT(ep8.base_weight_bytes, ep1.base_weight_bytes / 4.0);
    const double dense_share =
        m.weight_bytes() * (1.0 - m.expert_weight_fraction());
    EXPECT_GE(ep8.base_weight_bytes, dense_share * 0.999);
    // Freed memory grows the KV pool.
    EXPECT_GT(ep8.kv_pool_bytes, ep1.kv_pool_bytes);
}

TEST(ExpertParallel, DenseModelUnaffected)
{
    const auto m = model::llama_70b();
    EXPECT_DOUBLE_EQ(m.expert_weight_fraction(), 0.0);
    const auto p1 = plan_memory(m, hw::h200(), {8, 1, 1}, false);
    EXPECT_DOUBLE_EQ(p1.base_weight_bytes, m.weight_bytes());
}

TEST(ExpertParallel, ExpertFractionIsLargeForMoe)
{
    EXPECT_GT(model::qwen_30b_a3b().expert_weight_fraction(), 0.8);
    EXPECT_GT(model::llama_17b_16e().expert_weight_fraction(), 0.5);
}

TEST(ExpertParallel, RoutingCommAppearsOnlyWithEp)
{
    const auto m = model::qwen_30b_a3b();
    const PerfModel perf(hw::h200_node(), m);
    const auto work = BatchWork::prefill(8192);
    const auto ep1 = perf.step_time(work, {8, 1, 1});
    const auto ep8 = perf.step_time(work, {8, 1, 8});
    EXPECT_GT(ep8.comm, ep1.comm);
}

TEST(ExpertParallel, KvLayoutUntouchedByEp)
{
    // EP never moves attention state: the Shift invariance holds with any
    // EP degree.
    const auto m = model::qwen_30b_a3b();
    const auto base = kvcache::KvLayout::base(m, {8, 1, 8});
    const auto base_noep = kvcache::KvLayout::base(m, {8, 1, 1});
    EXPECT_TRUE(base.invariant_with(base_noep));
    EXPECT_TRUE(base.invariant_with(kvcache::KvLayout::shift(m, {8, 1, 8})));
}

TEST(ExpertParallel, LargeBatchWeightStreamingDropsWithEp)
{
    // At moderate batch the MoE streams many experts; EP divides that
    // traffic so memory-bound steps get faster even with routing comm.
    const auto m = model::qwen_30b_a3b();
    const PerfModel perf(hw::h200_node(), m);
    const auto ep1 = perf.step_time(BatchWork::decode(256, 2048), {8, 1, 1});
    const auto ep8 = perf.step_time(BatchWork::decode(256, 2048), {8, 1, 8});
    EXPECT_LT(ep8.gemm, ep1.gemm);
}

} // namespace
} // namespace shiftpar::parallel
