/** @file Parameterized closed-form checks for the collective cost models. */

#include <gtest/gtest.h>

#include "hw/interconnect.h"
#include "hw/presets.h"

namespace shiftpar::hw {
namespace {

class CollectiveSweep : public ::testing::TestWithParam<int>
{
  protected:
    LinkSpec switch_ = nvswitch();
    LinkSpec ring_ = pcie_gen5();
};

TEST_P(CollectiveSweep, SwitchAllReduceClosedForm)
{
    const int p = GetParam();
    const CollectiveModel c(switch_);
    const double bytes = 64e6;
    const double expect =
        2.0 * (p - 1.0) / p * bytes / (switch_.bw * switch_.efficiency) +
        2.0 * switch_.latency;
    EXPECT_DOUBLE_EQ(c.all_reduce(bytes, p), expect);
}

TEST_P(CollectiveSweep, RingAllReduceClosedForm)
{
    const int p = GetParam();
    const CollectiveModel c(ring_);
    const double bytes = 64e6;
    const double expect =
        2.0 * (p - 1.0) / p * bytes / (ring_.bw * ring_.efficiency) +
        2.0 * (p - 1.0) * ring_.latency;
    EXPECT_DOUBLE_EQ(c.all_reduce(bytes, p), expect);
}

TEST_P(CollectiveSweep, AllToAllClosedForm)
{
    const int p = GetParam();
    const CollectiveModel c(switch_);
    const double bytes = 16e6;
    const double expect =
        (p - 1.0) / p * bytes / (switch_.bw * switch_.efficiency) +
        switch_.latency;
    EXPECT_DOUBLE_EQ(c.all_to_all(bytes, p), expect);
}

TEST_P(CollectiveSweep, GatherScatterSymmetry)
{
    const int p = GetParam();
    const CollectiveModel c(switch_);
    EXPECT_DOUBLE_EQ(c.all_gather(32e6, p), c.reduce_scatter(32e6, p));
}

TEST_P(CollectiveSweep, AllReduceEqualsScatterPlusGatherOnSwitch)
{
    // The two-phase decomposition the switch model encodes.
    const int p = GetParam();
    const CollectiveModel c(switch_);
    const double bytes = 48e6;
    EXPECT_NEAR(c.all_reduce(bytes, p),
                c.reduce_scatter(bytes, p) + c.all_gather(bytes, p), 1e-12);
}

TEST_P(CollectiveSweep, VolumeGrowsTowardAsymptote)
{
    // Per-rank wire volume approaches 2x (all-reduce) / 1x (all-to-all) of
    // the buffer as P grows, monotonically.
    const int p = GetParam();
    if (p < 3)
        GTEST_SKIP();
    EXPECT_GT(CollectiveModel::all_reduce_volume(1e6, p),
              CollectiveModel::all_reduce_volume(1e6, p - 1));
    EXPECT_LT(CollectiveModel::all_reduce_volume(1e6, p), 2e6);
    EXPECT_LT(CollectiveModel::all_to_all_volume(1e6, p), 1e6);
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 16));

} // namespace
} // namespace shiftpar::hw
