/** @file Unit tests for the GPU roofline, collectives, and topology. */

#include <gtest/gtest.h>

#include "hw/interconnect.h"
#include "hw/presets.h"
#include "hw/topology.h"
#include "util/units.h"

namespace shiftpar::hw {
namespace {

TEST(GpuSpec, EffectiveRatesApplyEfficiency)
{
    const GpuSpec g = h200();
    EXPECT_DOUBLE_EQ(g.effective_gemm_flops(1.0),
                     g.peak_fp8_flops * g.gemm_efficiency);
    EXPECT_DOUBLE_EQ(g.effective_gemm_flops(2.0),
                     g.peak_fp16_flops * g.gemm_efficiency);
    EXPECT_DOUBLE_EQ(g.effective_bw(), g.hbm_bw * g.mem_efficiency);
}

TEST(GpuSpec, KernelTimeComputeBound)
{
    GpuSpec g = h200();
    g.kernel_overhead = 0.0;
    // Huge FLOPs, tiny bytes: compute bound.
    const double t = g.kernel_time(1e15, 1.0, g.effective_gemm_flops(1.0));
    EXPECT_NEAR(t, 1e15 / g.effective_gemm_flops(1.0), 1e-9);
}

TEST(GpuSpec, KernelTimeMemoryBound)
{
    GpuSpec g = h200();
    g.kernel_overhead = 0.0;
    const double t = g.kernel_time(1.0, 1e12, g.effective_gemm_flops(1.0));
    EXPECT_NEAR(t, 1e12 / g.effective_bw(), 1e-9);
}

TEST(GpuSpec, KernelOverheadAdds)
{
    GpuSpec g = h200();
    const double t0 = g.kernel_time(0.0, 0.0, g.effective_gemm_flops(1.0));
    EXPECT_DOUBLE_EQ(t0, g.kernel_overhead);
}

TEST(Collectives, SingleRankIsFree)
{
    const CollectiveModel c(nvswitch());
    EXPECT_DOUBLE_EQ(c.all_reduce(1e9, 1), 0.0);
    EXPECT_DOUBLE_EQ(c.all_gather(1e9, 1), 0.0);
    EXPECT_DOUBLE_EQ(c.all_to_all(1e9, 1), 0.0);
}

TEST(Collectives, VolumesMatchAlphaBetaFormulas)
{
    // Table 2 accounting: ring all-reduce moves 2(P-1)/P of the tensor per
    // rank; all-to-all and all-gather move (P-1)/P.
    EXPECT_DOUBLE_EQ(CollectiveModel::all_reduce_volume(8e6, 8),
                     2.0 * 7.0 / 8.0 * 8e6);
    EXPECT_DOUBLE_EQ(CollectiveModel::all_to_all_volume(8e6, 8),
                     7.0 / 8.0 * 8e6);
    EXPECT_DOUBLE_EQ(CollectiveModel::all_gather_volume(8e6, 8),
                     7.0 / 8.0 * 8e6);
    EXPECT_DOUBLE_EQ(CollectiveModel::all_reduce_volume(8e6, 1), 0.0);
}

TEST(Collectives, AllReduceCostsMoreThanAllToAllAtEqualBytes)
{
    // The core Table 2 asymmetry: for the same per-rank buffer, all-reduce
    // moves ~2x the bytes of an all-to-all.
    const CollectiveModel c(nvswitch());
    EXPECT_GT(c.all_reduce(64e6, 8), c.all_to_all(64e6, 8));
}

TEST(Collectives, RingPaysMoreLatencySteps)
{
    LinkSpec ring = nvswitch();
    ring.kind = FabricKind::kRing;
    const CollectiveModel cr(ring);
    const CollectiveModel cs(nvswitch());
    // Same volume, more latency steps on the ring.
    EXPECT_GT(cr.all_reduce(1.0, 8), cs.all_reduce(1.0, 8));
}

TEST(Collectives, MonotoneInBytes)
{
    const CollectiveModel c(nvswitch());
    EXPECT_LT(c.all_reduce(1e6, 8), c.all_reduce(2e6, 8));
    EXPECT_LT(c.all_to_all(1e6, 8), c.all_to_all(2e6, 8));
}

TEST(Topology, PaperExampleGroups)
{
    // Section 3.3.2 example for (SP=3, TP=2):
    //   TP: [[0,1],[2,3],[4,5]]  SP: [[0,2,4],[1,3,5]]  SP_TP: [[0,2,4,1,3,5]]
    const auto tp = tp_groups(3, 2);
    ASSERT_EQ(tp.size(), 3u);
    EXPECT_EQ(tp[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(tp[1], (std::vector<int>{2, 3}));
    EXPECT_EQ(tp[2], (std::vector<int>{4, 5}));

    const auto sp = sp_groups(3, 2);
    ASSERT_EQ(sp.size(), 2u);
    EXPECT_EQ(sp[0], (std::vector<int>{0, 2, 4}));
    EXPECT_EQ(sp[1], (std::vector<int>{1, 3, 5}));

    EXPECT_EQ(sp_tp_group(3, 2), (std::vector<int>{0, 2, 4, 1, 3, 5}));
}

class SpTpPermutation : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SpTpPermutation, IsAPermutationOfAllRanks)
{
    const auto [sp, tp] = GetParam();
    const auto order = sp_tp_group(sp, tp);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(sp * tp));
    std::vector<bool> seen(order.size(), false);
    for (int r : order) {
        ASSERT_GE(r, 0);
        ASSERT_LT(r, sp * tp);
        EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
        seen[static_cast<std::size_t>(r)] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecompositions, SpTpPermutation,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 8}, std::pair{8, 1},
                      std::pair{2, 4}, std::pair{4, 2}, std::pair{3, 2},
                      std::pair{2, 3}, std::pair{16, 4}));

TEST(Topology, DegenerateGroups)
{
    EXPECT_EQ(sp_tp_group(1, 1), (std::vector<int>{0}));
    EXPECT_EQ(sp_tp_group(1, 4), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sp_tp_group(4, 1), (std::vector<int>{0, 1, 2, 3}));
}

TEST(Presets, H200NodeMatchesPaperTestbed)
{
    const Node n = h200_node();
    EXPECT_EQ(n.num_gpus, 8);
    EXPECT_DOUBLE_EQ(n.gpu.hbm_bytes, gb(141.0));
    EXPECT_DOUBLE_EQ(n.gpu.hbm_bw, tb(4.8));
    EXPECT_DOUBLE_EQ(n.gpu.peak_fp8_flops, tflops(1979.0));
    EXPECT_DOUBLE_EQ(n.link.bw, gb(900.0));
    EXPECT_DOUBLE_EQ(n.total_hbm(), 8 * gb(141.0));
}

} // namespace
} // namespace shiftpar::hw
