/** @file Tests for the FIFO link-occupancy model (`hw::LinkChannel`). */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/interconnect.h"

namespace shiftpar::hw {
namespace {

LinkSpec
test_link()
{
    LinkSpec link;
    link.name = "test-fabric";
    link.bw = 100.0;  // bytes/s, tiny numbers keep windows readable
    link.latency = 0.5;
    link.efficiency = 0.8;
    return link;
}

TEST(LinkChannel, OccupancyIsBandwidthPlusLatency)
{
    LinkChannel ch(test_link());
    // 80 bytes at 100 B/s * 0.8 efficiency = 1 s, plus 0.5 s latency.
    EXPECT_DOUBLE_EQ(ch.occupancy(80.0), 1.5);
}

TEST(LinkChannel, IdleLinkStartsAtRequestTime)
{
    LinkChannel ch(test_link());
    const auto w = ch.reserve(0, 10.0, 80.0);
    EXPECT_DOUBLE_EQ(w.start, 10.0);
    EXPECT_DOUBLE_EQ(w.end, 11.5);
    EXPECT_DOUBLE_EQ(ch.busy_until(), 11.5);
}

TEST(LinkChannel, OverlappingTransfersSerializeFifo)
{
    LinkChannel ch(test_link());
    const auto a = ch.reserve(0, 0.0, 80.0);   // [0, 1.5]
    const auto b = ch.reserve(1, 1.0, 80.0);   // queues: [1.5, 3.0]
    const auto c = ch.reserve(2, 10.0, 80.0);  // idle gap: [10, 11.5]
    EXPECT_DOUBLE_EQ(a.end, 1.5);
    EXPECT_DOUBLE_EQ(b.start, 1.5);
    EXPECT_DOUBLE_EQ(b.end, 3.0);
    EXPECT_DOUBLE_EQ(c.start, 10.0);
}

TEST(LinkChannel, CancelBeforeStartPullsQueuedTransfersEarlier)
{
    LinkChannel ch(test_link());
    ch.reserve(0, 0.0, 80.0);  // [0, 1.5]
    ch.reserve(1, 0.0, 80.0);  // [1.5, 3.0]
    ch.reserve(2, 0.0, 80.0);  // [3.0, 4.5]
    // Cancel #1 while it is still queued (t inside #0's window).
    const auto moved = ch.cancel(1, 1.0);
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0], 2);
    const auto w2 = ch.window(2);
    EXPECT_DOUBLE_EQ(w2.start, 1.5);
    EXPECT_DOUBLE_EQ(w2.end, 3.0);
    // The cancelled reservation is gone.
    EXPECT_TRUE(std::isnan(ch.window(1).start));
}

TEST(LinkChannel, CancelInFlightHoldsTheLinkUntilTheAbort)
{
    LinkChannel ch(test_link());
    ch.reserve(0, 0.0, 80.0);  // [0, 1.5]
    ch.reserve(1, 0.0, 80.0);  // [1.5, 3.0]
    // Abort #0 mid-transfer: the bytes already sent kept the link busy
    // until 1.0, so #1 starts there instead of 1.5.
    const auto moved = ch.cancel(0, 1.0);
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0], 1);
    const auto w1 = ch.window(1);
    EXPECT_DOUBLE_EQ(w1.start, 1.0);
    EXPECT_DOUBLE_EQ(w1.end, 2.5);
    EXPECT_DOUBLE_EQ(ch.busy_until(), 2.5);
}

TEST(LinkChannel, CancelAfterDeliveryIsANoOp)
{
    LinkChannel ch(test_link());
    ch.reserve(0, 0.0, 80.0);  // [0, 1.5]
    EXPECT_TRUE(ch.cancel(0, 2.0).empty());
    EXPECT_DOUBLE_EQ(ch.window(0).end, 1.5);
}

TEST(LinkChannel, CancelOfUnknownIdIsANoOp)
{
    LinkChannel ch(test_link());
    ch.reserve(0, 0.0, 80.0);
    EXPECT_TRUE(ch.cancel(7, 0.5).empty());
}

TEST(LinkChannel, UnshiftedTransfersAreNotReported)
{
    LinkChannel ch(test_link());
    ch.reserve(0, 0.0, 80.0);   // [0, 1.5]
    ch.reserve(1, 0.0, 80.0);   // [1.5, 3.0]
    ch.reserve(2, 5.0, 80.0);   // idle gap: [5.0, 6.5], unaffected below
    const auto moved = ch.cancel(0, 0.5);
    // #1 shifts to [0.5, 2.0]; #2 still starts at its request time 5.0.
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0], 1);
    EXPECT_DOUBLE_EQ(ch.window(2).start, 5.0);
}

TEST(LinkChannel, WindowOfUnknownIdIsNaN)
{
    LinkChannel ch(test_link());
    EXPECT_TRUE(std::isnan(ch.window(42).start));
    EXPECT_TRUE(std::isnan(ch.window(42).end));
}

TEST(LinkChannel, RateMultiplierStretchesTheBandwidthTermOnly)
{
    LinkChannel ch(test_link());
    ch.set_rate_multiplier(2.0);
    // 80 bytes: the 1 s bandwidth term doubles; the 0.5 s latency does not.
    EXPECT_DOUBLE_EQ(ch.occupancy(80.0), 2.5);
    const auto w = ch.reserve(0, 0.0, 80.0);
    EXPECT_DOUBLE_EQ(w.end, 2.5);
    // Restoring the link affects only future reservations.
    ch.set_rate_multiplier(1.0);
    EXPECT_DOUBLE_EQ(ch.occupancy(80.0), 1.5);
    const auto w1 = ch.reserve(1, 0.0, 80.0);
    EXPECT_DOUBLE_EQ(w1.start, 2.5);
    EXPECT_DOUBLE_EQ(w1.end, 4.0);
}

TEST(LinkChannel, RateMultiplierBelowOneIsFatal)
{
    LinkChannel ch(test_link());
    EXPECT_DEATH(ch.set_rate_multiplier(0.5), "cannot speed the link up");
}

} // namespace
} // namespace shiftpar::hw
