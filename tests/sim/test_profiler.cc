/**
 * @file
 * Tests for the sim-core self-profiler: attribution counters are exact on
 * a synthetic cluster, heap stats fold without double-counting, merge
 * composes runs, and — the contract that matters — profiling never
 * changes simulation results: a profiled deployment replay is
 * bit-identical to an unprofiled one.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "model/presets.h"
#include "sim/cluster.h"
#include "sim/profiler.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Fixed-cost work consumer (mirrors bench_sim_core's synthetic engine). */
class ToyEngine final : public sim::Component
{
  public:
    const char* kind() const override { return "toy_engine"; }

    double
    next_event_time() const override
    {
        return pending_ > 0 ? now_ : kInf;
    }

    bool
    advance_to(double t) override
    {
        now_ = std::max(now_, t) + 1e-3;
        --pending_;
        ++advances;
        return true;
    }

    void
    enqueue(int units)
    {
        pending_ += units;
        notify_ready_changed();  // mutated from an event closure
    }

    int advances = 0;

  private:
    double now_ = 0.0;
    int pending_ = 0;
};

TEST(ClusterProfiler, CountsEventsAdvancesAndHeapOps)
{
    sim::Cluster cluster;
    sim::ClusterProfile prof;
    cluster.set_profile(&prof);

    ToyEngine a, b;
    cluster.add(&a);
    cluster.add(&b);

    for (int i = 0; i < 10; ++i) {
        cluster.post(0.01 * i, [&a] { a.enqueue(2); });
        cluster.post(0.01 * i, [&b] { b.enqueue(1); });
    }
    const sim::EventId decoy = cluster.post(99.0, [] {});
    cluster.cancel_event(decoy);

    EXPECT_TRUE(cluster.run());

    EXPECT_EQ(prof.events_fired, 20);
    ASSERT_EQ(prof.components.count("toy_engine"), 1u);
    const auto& k = prof.components.at("toy_engine");
    EXPECT_EQ(k.advances, 30);  // 10 * (2 + 1)
    EXPECT_EQ(k.advances, a.advances + b.advances);
    EXPECT_EQ(k.stalls, 0);
    EXPECT_EQ(prof.units(), 50);

    EXPECT_EQ(prof.heap_pushes, 21);   // 20 fired + 1 cancelled
    EXPECT_EQ(prof.heap_pops, 21);
    EXPECT_EQ(prof.heap_cancels, 1);
    EXPECT_GT(prof.queue_high_water, 0);
    EXPECT_GE(prof.run_wall_s, 0.0);
    EXPECT_GE(prof.event_wall_s, 0.0);
}

TEST(ClusterProfiler, SecondRunDoesNotDoubleCountHeapOps)
{
    sim::Cluster cluster;
    sim::ClusterProfile prof;
    cluster.set_profile(&prof);
    ToyEngine a;
    cluster.add(&a);

    cluster.post(0.0, [&a] { a.enqueue(1); });
    cluster.run();
    EXPECT_EQ(prof.heap_pushes, 1);

    cluster.post(cluster.now(), [&a] { a.enqueue(1); });
    cluster.run();
    EXPECT_EQ(prof.heap_pushes, 2);  // +1, not re-counting run 1's push
    EXPECT_EQ(prof.events_fired, 2);
}

TEST(ClusterProfiler, MergeSumsCountsAndMaxesHighWater)
{
    sim::ClusterProfile a, b;
    a.events_fired = 3;
    a.queue_high_water = 5;
    a.components["engine"].advances = 2;
    a.run_wall_s = 0.25;
    b.events_fired = 4;
    b.queue_high_water = 2;
    b.components["engine"].advances = 1;
    b.components["link"].stalls = 6;
    b.run_wall_s = 0.75;

    a.merge(b);
    EXPECT_EQ(a.events_fired, 7);
    EXPECT_EQ(a.queue_high_water, 5);
    EXPECT_EQ(a.components["engine"].advances, 3);
    EXPECT_EQ(a.components["link"].stalls, 6);
    EXPECT_DOUBLE_EQ(a.run_wall_s, 1.0);
    EXPECT_EQ(a.units(), 10);
    EXPECT_DOUBLE_EQ(a.events_per_sec(), 7.0);
}

/** Full-precision fingerprint of a replay (any drift flips a byte). */
std::string
fingerprint(const engine::Metrics& met)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%lld|%zu",
                  met.completion().sum(), met.ttft().percentile(99),
                  met.tpot().mean(),
                  static_cast<long long>(met.total_tokens()),
                  met.requests().size());
    return buf;
}

TEST(ClusterProfiler, ProfiledReplayIsBitIdenticalToUnprofiled)
{
    const auto replay = [](sim::ClusterProfile* prof) {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kShift;
        d.profile = prof;
        Rng rng(2024);
        const auto reqs = workload::make_requests(
            workload::poisson_arrivals(rng, 3.0, 10.0), rng,
            workload::lognormal_size(1200.0, 0.5, 100.0, 0.4));
        return fingerprint(core::run_deployment(d, reqs));
    };

    sim::ClusterProfile prof;
    const std::string with_profile = replay(&prof);
    const std::string without_profile = replay(nullptr);
    EXPECT_EQ(with_profile, without_profile);

    // And the profile actually observed the replay.
    EXPECT_GT(prof.events_fired, 0);
    ASSERT_EQ(prof.components.count("engine"), 1u);
    EXPECT_GT(prof.components.at("engine").advances, 0);
    EXPECT_GT(prof.heap_pushes, 0);
    EXPECT_GT(prof.queue_high_water, 0);
}

} // namespace
} // namespace shiftpar
