/**
 * @file
 * Tests for the sim-core scaling structures: the calendar event queue
 * (differential against a reference (time, seq) binary heap, arena
 * reallocation safety under self-posting closures) and the indexed ready
 * heap (notify contract, targeted wake, compaction, Debug stale-cache
 * detection, cluster detach on destruction).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/profiler.h"
#include "util/rng.h"

namespace shiftpar::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

TEST(CalendarQueue, SelfPostingClosureSurvivesArenaReallocation)
{
    // The firing closure posts enough events to force the node arena and
    // both bands to reallocate while the original event is mid-fire. The
    // queue must detach the closure and retire its node *before* running
    // it — keeping a reference into the storage would be a use-after-free
    // the ASan job catches.
    EventQueue q;
    int fired = 0;
    q.post(0.0, [&] {
        for (int i = 0; i < 4096; ++i)
            q.post(1.0 + 1e-6 * i, [&] { ++fired; });
    });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(fired, 4096);
}

TEST(CalendarQueue, CascadedSelfPostingKeepsFifoOrder)
{
    // Each fired event posts the next at the same instant: FIFO
    // tie-breaking must hold even while the bands are being repopulated
    // from inside fire_next().
    EventQueue q;
    std::vector<int> order;
    std::function<void(int)> chain = [&](int depth) {
        order.push_back(depth);
        if (depth < 100)
            q.post(1.0, [&chain, depth] { chain(depth + 1); });
    };
    q.post(1.0, [&chain] { chain(0); });
    while (!q.empty())
        q.fire_next();
    ASSERT_EQ(order.size(), 101u);
    for (int i = 0; i <= 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

/**
 * The retired implementation, kept as the differential oracle: a binary
 * heap of (time, seq) with a pending-id set and lazy purge at the heap
 * top. Semantically authoritative for fire order and for every Stats
 * counter.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    post(double t, int label)
    {
        const std::uint64_t id = next_seq_++;
        heap_.push({t, id, label});
        pending_.insert(id);
        ++stats_.pushes;
        const auto depth = static_cast<std::int64_t>(pending_.size());
        if (depth > stats_.high_water)
            stats_.high_water = depth;
        return id;
    }

    bool
    cancel(std::uint64_t id)
    {
        const bool cancelled = pending_.erase(id) > 0;
        if (cancelled)
            ++stats_.cancels;
        return cancelled;
    }

    bool empty() const { return pending_.empty(); }

    std::size_t size() const { return pending_.size(); }

    double
    next_time()
    {
        purge();
        return heap_.empty() ? kInf : heap_.top().t;
    }

    int
    fire_next()
    {
        purge();
        const int label = heap_.top().label;
        pending_.erase(heap_.top().seq);
        heap_.pop();
        ++stats_.pops;
        return label;
    }

    const EventQueue::Stats& stats() const { return stats_; }

  private:
    struct Event
    {
        double t;
        std::uint64_t seq;
        int label;
    };
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.t != b.t)
                return a.t > b.t;
            return a.seq > b.seq;
        }
    };

    void
    purge()
    {
        while (!heap_.empty() && !pending_.count(heap_.top().seq)) {
            heap_.pop();
            ++stats_.pops;
        }
    }

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_;
    std::uint64_t next_seq_ = 0;
    EventQueue::Stats stats_;
};

/**
 * Seeded interleaving of post/cancel/fire against the reference heap:
 * identical fire order, identical next_time at every step, identical
 * Stats at the end. Times are quantized so ties are common, and never
 * precede the last fired instant (posting into the fired past is a
 * separate Debug invariant with its own death test).
 */
void
run_differential(std::uint64_t seed, int ops)
{
    Rng rng(seed);
    EventQueue q;
    ReferenceQueue ref;
    std::vector<int> order_new, order_ref;
    std::vector<std::pair<EventId, std::uint64_t>> handles;
    double floor_t = 0.0;
    int next_label = 0;

    const auto post_one = [&] {
        const double t =
            floor_t + 0.25 * static_cast<double>(rng.uniform_int(0, 7));
        const int label = next_label++;
        const EventId id =
            q.post(t, [&order_new, label] { order_new.push_back(label); });
        handles.emplace_back(id, ref.post(t, label));
    };

    for (int op = 0; op < ops; ++op) {
        const double r = rng.uniform();
        if (r < 0.45 || q.empty()) {
            post_one();
        } else if (r < 0.65 && !handles.empty()) {
            // Cancel a random handle — possibly one that already fired or
            // was already cancelled; the outcomes must agree either way.
            const auto pick = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(handles.size()) - 1));
            EXPECT_EQ(q.cancel(handles[pick].first),
                      ref.cancel(handles[pick].second));
        } else if (!q.empty()) {
            ASSERT_DOUBLE_EQ(q.next_time(), ref.next_time());
            floor_t = q.next_time();
            q.fire_next();
            order_ref.push_back(ref.fire_next());
        }
        ASSERT_EQ(q.size(), ref.size());
        ASSERT_EQ(q.empty(), ref.empty());
    }
    while (!q.empty()) {
        ASSERT_DOUBLE_EQ(q.next_time(), ref.next_time());
        q.fire_next();
        order_ref.push_back(ref.fire_next());
    }
    // A final query purges every cancelled straggler from both, making
    // the pop totals exact: every push is eventually popped or purged.
    EXPECT_DOUBLE_EQ(q.next_time(), ref.next_time());

    EXPECT_EQ(order_new, order_ref);
    const EventQueue::Stats& a = q.stats();
    const EventQueue::Stats& b = ref.stats();
    EXPECT_EQ(a.pushes, b.pushes);
    EXPECT_EQ(a.pops, b.pops);
    EXPECT_EQ(a.cancels, b.cancels);
    EXPECT_EQ(a.high_water, b.high_water);
    EXPECT_EQ(a.pops, a.pushes);  // drained: nothing left un-accounted
}

TEST(CalendarQueue, DifferentialAgainstReferenceHeap)
{
    // Several seeds, enough ops to cross multiple chunk pulls and band
    // compactions at every mix of ties, cancels, and replays.
    for (const std::uint64_t seed : {11ull, 2026ull, 987654321ull})
        run_differential(seed, 20000);
}

TEST(CalendarQueue, DifferentialWithHeavyCancellation)
{
    // Mostly-cancelled workload: long cancelled runs must purge in the
    // same places (and count the same pops) as the reference heap.
    Rng rng(77);
    EventQueue q;
    ReferenceQueue ref;
    std::vector<int> order_new, order_ref;
    std::vector<std::pair<EventId, std::uint64_t>> handles;
    for (int i = 0; i < 5000; ++i) {
        const double t = 0.5 * static_cast<double>(rng.uniform_int(0, 99));
        handles.emplace_back(
            q.post(t, [&order_new, i] { order_new.push_back(i); }),
            ref.post(t, i));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
        if (i % 10 != 3) {  // cancel 90%
            EXPECT_EQ(q.cancel(handles[i].first),
                      ref.cancel(handles[i].second));
        }
    }
    while (!q.empty()) {
        ASSERT_DOUBLE_EQ(q.next_time(), ref.next_time());
        q.fire_next();
        order_ref.push_back(ref.fire_next());
    }
    EXPECT_DOUBLE_EQ(q.next_time(), ref.next_time());
    EXPECT_EQ(order_new, order_ref);
    EXPECT_EQ(q.stats().pops, ref.stats().pops);
    EXPECT_EQ(q.stats().high_water, ref.stats().high_water);
}

// ---------------------------------------------------------------------------
// Ready heap
// ---------------------------------------------------------------------------

/** Work whose ready time is set externally (with or without notifying). */
class SettableComponent final : public Component
{
  public:
    const char* kind() const override { return "settable"; }

    double next_event_time() const override { return ready_; }

    bool
    advance_to(double t) override
    {
        ran_at_.push_back(t);
        ready_ = kInf;
        return true;
    }

    void
    set_ready(double t)
    {
        ready_ = t;
        notify_ready_changed();
    }

    /** The contract violation the Debug oracle must catch. */
    void set_ready_silently(double t) { ready_ = t; }

    const std::vector<double>& ran_at() const { return ran_at_; }

  private:
    double ready_ = kInf;
    std::vector<double> ran_at_;
};

TEST(ReadyHeap, NotifyFromEventClosureSchedulesWork)
{
    Cluster cluster;
    SettableComponent s;
    cluster.add(&s);
    cluster.post(1.0, [&] { s.set_ready(3.0); });
    EXPECT_TRUE(cluster.run());
    ASSERT_EQ(s.ran_at().size(), 1u);
    EXPECT_DOUBLE_EQ(s.ran_at()[0], 3.0);
    EXPECT_DOUBLE_EQ(cluster.now(), 3.0);
}

TEST(ReadyHeap, RepeatedNotifiesKeepOnlyTheLastTime)
{
    // A notify storm (many republished times between advances) must leave
    // exactly one effective entry and still run the component once, at
    // the final time — with the heap compacted, not grown without bound.
    Cluster cluster;
    ClusterProfile prof;
    cluster.set_profile(&prof);
    SettableComponent s;
    cluster.add(&s);
    cluster.post(1.0, [&] {
        for (int k = 0; k < 10000; ++k)
            s.set_ready(2.0 + 1e-4 * k);
    });
    EXPECT_TRUE(cluster.run());
    ASSERT_EQ(s.ran_at().size(), 1u);
    EXPECT_DOUBLE_EQ(s.ran_at()[0], 2.0 + 1e-4 * 9999);
    EXPECT_GE(prof.ready_pushes, 10000);
    // Initial rebuild plus at least one compaction of the stale storm.
    EXPECT_GE(prof.ready_rebuilds, 2);
    EXPECT_GT(prof.ready_skips + prof.ready_rebuilds, 1);
}

TEST(ReadyHeap, NotifyWithUnchangedTimeIsCheapNoOp)
{
    Cluster cluster;
    ClusterProfile prof;
    cluster.set_profile(&prof);
    SettableComponent s;
    cluster.add(&s);
    cluster.post(1.0, [&] {
        s.set_ready(5.0);
        for (int k = 0; k < 1000; ++k)
            s.set_ready(5.0);  // published time already right
    });
    EXPECT_TRUE(cluster.run());
    ASSERT_EQ(s.ran_at().size(), 1u);
    // One entry from the first set_ready; the republished duplicates
    // early-out (1 initial rebuild, no compactions, no skipped entries).
    EXPECT_LE(prof.ready_pushes, 2);
    EXPECT_EQ(prof.ready_rebuilds, 1);
}

TEST(ReadyHeap, DestroyedClusterDetachesComponents)
{
    SettableComponent s;
    {
        Cluster dying;
        dying.add(&s);
    }
    s.set_ready(1.0);  // cluster gone: must be a safe no-op
    Cluster cluster;
    cluster.add(&s);  // re-register: notifications route here now
    cluster.post(1.5, [&] { s.set_ready(2.0); });
    EXPECT_TRUE(cluster.run());
    ASSERT_EQ(s.ran_at().size(), 2u);  // the pre-registered 1.0, then 2.0
    EXPECT_DOUBLE_EQ(s.ran_at()[0], 1.0);
    EXPECT_DOUBLE_EQ(s.ran_at()[1], 2.0);
}

TEST(ReadyHeap, ReregistrationRoutesNotifiesToTheNewCluster)
{
    SettableComponent s;
    Cluster first;
    first.add(&s);
    Cluster second;
    second.add(&s);  // ownership moves; `first` must not see notifies
    s.set_ready(4.0);
    EXPECT_TRUE(first.run());   // no components it still owns are ready
    EXPECT_TRUE(second.run());  // runs the work
    ASSERT_EQ(s.ran_at().size(), 1u);
    EXPECT_DOUBLE_EQ(s.ran_at()[0], 4.0);
}

/** Stalls until opened, tracking how often it was polled. */
class CountingGate final : public Component
{
  public:
    const char* kind() const override { return "gate"; }

    double next_event_time() const override { return done_ ? kInf : 0.0; }

    bool
    advance_to(double) override
    {
        ++attempts_;
        if (!open_)
            return false;
        done_ = true;
        return true;
    }

    void
    open()
    {
        open_ = true;
        notify_ready_changed();
    }

    int attempts() const { return attempts_; }

  private:
    bool open_ = false;
    bool done_ = false;
    int attempts_ = 0;
};

TEST(ReadyHeap, ParkedComponentIsNotRepolledPerEvent)
{
    // Rule 4 says a stalled component is re-polled after any event; the
    // targeted wake keeps that contract (one attempt per event) without
    // rescanning the fleet. The gate parks once, then each of the three
    // events wakes it for exactly one more attempt; the opening notify
    // lets the last attempt succeed.
    Cluster cluster;
    CountingGate gate;
    cluster.add(&gate);
    cluster.post(1.0, [] {});
    cluster.post(2.0, [] {});
    cluster.post(3.0, [&] { gate.open(); });
    EXPECT_TRUE(cluster.run());
    // initial park + wake after events 1 and 2 (park again) + the
    // post-open attempt that succeeds.
    EXPECT_EQ(gate.attempts(), 4);
}

#ifndef NDEBUG

// Debug builds re-poll the whole fleet each iteration (the old O(n) scan,
// demoted to an oracle) and abort when the indexed cache diverges — the
// failure mode of a mutation that skipped notify_ready_changed().

TEST(ReadyHeapDebugInvariants, DetectsSilentReadyTimeChange)
{
    Cluster cluster;
    SettableComponent s;
    cluster.add(&s);
    cluster.post(0.5, [&] { s.set_ready(5.0); });  // published: 5.0
    cluster.post(1.0, [&] { s.set_ready_silently(2.0); });  // the bug
    EXPECT_DEATH(cluster.run(), "ready cache stale");
}

TEST(ReadyHeapDebugInvariants, DetectsSilentWakeFromIdle)
{
    Cluster cluster;
    SettableComponent s;  // idle: published as no entry
    cluster.add(&s);
    cluster.post(1.0, [&] { s.set_ready_silently(2.0); });  // the bug
    EXPECT_DEATH(cluster.run(), "ready cache stale");
}

#endif  // !NDEBUG

} // namespace
} // namespace shiftpar::sim
