/** @file Tests for the discrete-event cluster core (queue + component loop). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/event_queue.h"

namespace shiftpar::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.post(3.0, [&] { order.push_back(3); });
    q.post(1.0, [&] { order.push_back(1); });
    q.post(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInPostingOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.post(5.0, [&, i] { order.push_back(i); });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, NextTimeOfEmptyQueueIsInfinite)
{
    EventQueue q;
    EXPECT_TRUE(std::isinf(q.next_time()));
    q.post(2.5, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, FiringMayPostNewEvents)
{
    EventQueue q;
    std::vector<double> fired;
    q.post(1.0, [&] {
        fired.push_back(1.0);
        q.post(2.0, [&] { fired.push_back(2.0); });
    });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, CancelledEventNeverFires)
{
    EventQueue q;
    std::vector<int> order;
    q.post(1.0, [&] { order.push_back(1); });
    const EventId dead = q.post(2.0, [&] { order.push_back(2); });
    q.post(3.0, [&] { order.push_back(3); });
    EXPECT_TRUE(q.cancel(dead));
    EXPECT_EQ(q.size(), 2u);
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancellationPreservesTieBreakOrder)
{
    // Events at one instant fire in posting order; cancelling one of them
    // must not re-rank the survivors, and events posted *after* the
    // cancellation still fire behind every earlier-posted survivor.
    EventQueue q;
    std::vector<int> order;
    q.post(5.0, [&] { order.push_back(0); });
    const EventId dead = q.post(5.0, [&] { order.push_back(1); });
    q.post(5.0, [&] { order.push_back(2); });
    EXPECT_TRUE(q.cancel(dead));
    q.post(5.0, [&] { order.push_back(3); });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

TEST(EventQueue, CancelOfFiredOrUnknownIdIsNoOp)
{
    EventQueue q;
    int fired = 0;
    const EventId id = q.post(1.0, [&] { ++fired; });
    q.fire_next();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.cancel(id));       // already fired
    EXPECT_FALSE(q.cancel(id + 99));  // never posted
    const EventId dead = q.post(2.0, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(dead));
    EXPECT_FALSE(q.cancel(dead));     // double cancel
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead)
{
    EventQueue q;
    const EventId dead = q.post(1.0, [] {});
    q.post(4.0, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
    EXPECT_TRUE(q.cancel(dead));
    EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelInsideAFiringClosure)
{
    EventQueue q;
    std::vector<int> order;
    EventId later{};
    q.post(1.0, [&] {
        order.push_back(1);
        q.cancel(later);
    });
    later = q.post(2.0, [&] { order.push_back(2); });
    q.post(3.0, [&] { order.push_back(3); });
    while (!q.empty())
        q.fire_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Cluster, CancelEventForwardsToQueue)
{
    Cluster c;
    std::vector<int> order;
    c.post(1.0, [&] { order.push_back(1); });
    const EventId dead = c.post(2.0, [&] { order.push_back(2); });
    EXPECT_TRUE(c.cancel_event(dead));
    EXPECT_FALSE(c.cancel_event(dead));
    EXPECT_TRUE(c.run());
    EXPECT_EQ(order, (std::vector<int>{1}));
}

/** A component that makes fixed-duration units of progress. */
class TickingComponent : public Component
{
  public:
    TickingComponent(double start, double quantum, int units,
                     std::vector<std::string>* log, std::string name)
        : t_(start), quantum_(quantum), left_(units), log_(log),
          name_(std::move(name))
    {
    }

    double next_event_time() const override
    {
        return left_ > 0 ? t_ : std::numeric_limits<double>::infinity();
    }

    bool advance_to(double) override
    {
        if (left_ <= 0)
            return false;
        t_ += quantum_;
        --left_;
        log_->push_back(name_ + "@" + std::to_string(t_));
        return true;
    }

    double t() const { return t_; }

  private:
    double t_;
    double quantum_;
    int left_;
    std::vector<std::string>* log_;
    std::string name_;
};

TEST(Cluster, InterleavesComponentsInGlobalTimeOrder)
{
    std::vector<std::string> log;
    TickingComponent a(0.0, 2.0, 3, &log, "a");  // acts at 0, 2, 4
    TickingComponent b(1.0, 2.0, 3, &log, "b");  // acts at 1, 3, 5
    Cluster cluster;
    cluster.add(&a);
    cluster.add(&b);
    EXPECT_TRUE(cluster.run());
    EXPECT_EQ(log, (std::vector<std::string>{
                       "a@2.000000", "b@3.000000", "a@4.000000",
                       "b@5.000000", "a@6.000000", "b@7.000000"}));
}

TEST(Cluster, RegistrationOrderBreaksComponentTies)
{
    std::vector<std::string> log;
    TickingComponent a(0.0, 1.0, 2, &log, "a");
    TickingComponent b(0.0, 1.0, 2, &log, "b");
    Cluster cluster;
    cluster.add(&a);
    cluster.add(&b);
    EXPECT_TRUE(cluster.run());
    EXPECT_EQ(log[0].substr(0, 1), "a");
    EXPECT_EQ(log[1].substr(0, 1), "b");
}

TEST(Cluster, EventAtTFiresBeforeComponentUnitStartingAtT)
{
    std::vector<std::string> log;
    TickingComponent a(1.0, 1.0, 1, &log, "a");
    Cluster cluster;
    cluster.add(&a);
    cluster.post(1.0, [&] { log.push_back("event@1"); });
    EXPECT_TRUE(cluster.run());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], "event@1");
}

/** A component that is blocked until an external flag flips. */
class GatedComponent : public Component
{
  public:
    explicit GatedComponent(std::vector<std::string>* log) : log_(log) {}

    double next_event_time() const override
    {
        return done_ ? std::numeric_limits<double>::infinity() : 0.0;
    }

    bool advance_to(double) override
    {
        if (done_ || !open_)
            return false;  // stalled until someone opens the gate
        done_ = true;
        log_->push_back("gated-ran");
        return true;
    }

    void open() { open_ = true; }

  private:
    std::vector<std::string>* log_;
    bool open_ = false;
    bool done_ = false;
};

TEST(Cluster, EventUnblocksAStalledComponent)
{
    std::vector<std::string> log;
    GatedComponent g(&log);
    Cluster cluster;
    cluster.add(&g);
    cluster.post(4.0, [&] {
        log.push_back("open@4");
        g.open();
    });
    EXPECT_TRUE(cluster.run());
    EXPECT_EQ(log, (std::vector<std::string>{"open@4", "gated-ran"}));
}

TEST(Cluster, ReportsPermanentlyStalledComponents)
{
    std::vector<std::string> log;
    GatedComponent g(&log);  // never opened
    Cluster cluster;
    cluster.add(&g);
    EXPECT_FALSE(cluster.run());
    EXPECT_TRUE(log.empty());
}

TEST(Cluster, ProgressHookFiresAfterEveryEventAndUnit)
{
    std::vector<std::string> log;
    TickingComponent a(0.0, 1.0, 2, &log, "a");
    Cluster cluster;
    cluster.add(&a);
    cluster.post(0.5, [] {});
    int hook_calls = 0;
    cluster.set_progress_hook([&](double) { ++hook_calls; });
    EXPECT_TRUE(cluster.run());
    EXPECT_EQ(hook_calls, 3);  // one event + two component units
}

TEST(Cluster, ClockIsMonotoneAcrossEventsAndComponents)
{
    std::vector<std::string> log;
    TickingComponent a(0.0, 3.0, 2, &log, "a");
    Cluster cluster;
    cluster.add(&a);
    double last = -1.0;
    bool monotone = true;
    cluster.set_progress_hook([&](double t) {
        if (t < last)
            monotone = false;
        last = t;
    });
    cluster.post(1.0, [] {});
    cluster.post(4.0, [] {});
    EXPECT_TRUE(cluster.run());
    EXPECT_TRUE(monotone);
}

#ifndef NDEBUG

// The debug-build invariants (SP_DEBUG_ASSERT) are compiled out under
// NDEBUG, so these death tests only exist in Debug builds — which is the
// configuration the sanitizer CI job runs.

TEST(EventQueueDebugInvariants, RejectsNonFiniteOrNegativeTime)
{
    EventQueue q;
    EXPECT_DEATH(q.post(-1.0, [] {}), "finite and non-negative");
    EXPECT_DEATH(q.post(std::nan(""), [] {}), "finite and non-negative");
    EXPECT_DEATH(q.post(std::numeric_limits<double>::infinity(), [] {}),
                 "finite and non-negative");
}

TEST(EventQueueDebugInvariants, DetectsFireOrderRegression)
{
    // Posting behind an already-fired time is the only way pops can
    // regress (seq is monotone); the next fire must trip the invariant.
    EventQueue q;
    q.post(5.0, [] {});
    q.fire_next();
    q.post(3.0, [] {});
    EXPECT_DEATH(q.fire_next(), "fire order regressed");
}

TEST(ClusterDebugInvariants, RejectsPostIntoThePast)
{
    Cluster cluster;
    cluster.post(2.0, [&] {
        EXPECT_DEATH(cluster.post(1.0, [] {}), "posted into the past");
    });
    cluster.run();
}

#endif  // !NDEBUG

} // namespace
} // namespace shiftpar::sim
