/** @file Tests for fault injection and failure recovery on the cluster core. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "fault/fault_schedule.h"
#include "obs/trace.h"

namespace shiftpar::fault {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;

// ---------------------------------------------------------------- parsing

TEST(FaultSpec, EmptySpecIsEmptySchedule)
{
    EXPECT_TRUE(parse_fault_spec("").empty());
}

TEST(FaultSpec, ParsesFailWithRecovery)
{
    const auto s = parse_fault_spec("fail:engine=1,at=10,recover=25");
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kFail);
    EXPECT_EQ(s.events[0].engine, 1);
    EXPECT_EQ(s.events[0].rank, -1);
    EXPECT_DOUBLE_EQ(s.events[0].at, 10.0);
    EXPECT_DOUBLE_EQ(s.events[0].recover_at, 25.0);
}

TEST(FaultSpec, PermanentFailByRankNeverRecovers)
{
    const auto s = parse_fault_spec("fail:rank=3,at=10");
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_EQ(s.events[0].engine, -1);
    EXPECT_EQ(s.events[0].rank, 3);
    EXPECT_TRUE(std::isinf(s.events[0].recover_at));
}

TEST(FaultSpec, ParsesStraggleAndUntargetedDegrade)
{
    const auto s = parse_fault_spec(
        "straggle:engine=0,at=5,until=15,slow=2.5;"
        "degrade:at=5,until=20,factor=4");
    ASSERT_EQ(s.events.size(), 2u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kStraggle);
    EXPECT_DOUBLE_EQ(s.events[0].factor, 2.5);
    EXPECT_DOUBLE_EQ(s.events[0].recover_at, 15.0);
    EXPECT_EQ(s.events[1].kind, FaultKind::kDegrade);
    EXPECT_EQ(s.events[1].engine, -1);  // all engines
    EXPECT_DOUBLE_EQ(s.events[1].factor, 4.0);
}

TEST(FaultSpec, ParsesMtbfClause)
{
    const auto s = parse_fault_spec("mtbf:mean=60,mttr=5,duration=300,seed=9");
    ASSERT_EQ(s.mtbf.size(), 1u);
    EXPECT_DOUBLE_EQ(s.mtbf[0].mean, 60.0);
    EXPECT_DOUBLE_EQ(s.mtbf[0].mttr, 5.0);
    EXPECT_DOUBLE_EQ(s.mtbf[0].duration, 300.0);
    EXPECT_EQ(s.mtbf[0].seed, 9u);
}

TEST(FaultSpec, ParsesDrainClause)
{
    const auto s = parse_fault_spec("drain:engine=1,at=10,resume=30");
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kDrain);
    EXPECT_EQ(s.events[0].engine, 1);
    EXPECT_DOUBLE_EQ(s.events[0].at, 10.0);
    EXPECT_DOUBLE_EQ(s.events[0].recover_at, 30.0);

    // Without resume= the drain is permanent.
    const auto p = parse_fault_spec("drain:engine=0,at=5");
    ASSERT_EQ(p.events.size(), 1u);
    EXPECT_TRUE(std::isinf(p.events[0].recover_at));
}

TEST(FaultSpec, BlankClausesAreTolerated)
{
    // Trailing/doubled separators and whitespace-only clauses are
    // skipped, not errors — specs built by string concatenation stay
    // valid.
    const auto s = parse_fault_spec(
        ";fail:engine=0,at=1;;straggle:engine=1,at=2,until=3,slow=2; ;");
    ASSERT_EQ(s.events.size(), 2u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kFail);
    EXPECT_EQ(s.events[1].kind, FaultKind::kStraggle);
}

TEST(FaultSpecDeath, ErrorsNameTheClauseByIndexAndText)
{
    // Blank clauses still count toward the position, so the error in
    // "a;;b" points at clause 3 — the label a user can find in a long
    // spec — and quotes the offending text verbatim.
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=1;;flood:at=2"),
                 "clause 3 \\('flood:at=2'\\)");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=1;fail:rank=9"),
                 "clause 2 \\('fail:rank=9'\\)");
}

TEST(FaultSpecDeath, DrainErrorsAreFatal)
{
    EXPECT_DEATH(parse_fault_spec("drain:at=5"),
                 "needs an engine= or rank= target");
    EXPECT_DEATH(parse_fault_spec("drain:engine=0,at=10,resume=10"),
                 "resume= must be after at=");
}

TEST(FaultSpecDeath, MalformedSpecsNameTheOffendingToken)
{
    EXPECT_DEATH(parse_fault_spec("flood:at=1"), "unknown clause kind");
    EXPECT_DEATH(parse_fault_spec("fail:at=5"),
                 "needs an engine= or rank= target");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,rank=1,at=5"), "not both");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=5,at=6"),
                 "duplicate key 'at'");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=5,color=red"),
                 "unknown key 'color'");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=abc"),
                 "expects a number");
    EXPECT_DEATH(parse_fault_spec("fail:engine=0,at=10,recover=5"),
                 "recover= must be after at=");
    EXPECT_DEATH(parse_fault_spec("straggle:engine=0,at=5,until=15,slow=1"),
                 "factor must be > 1");
    EXPECT_DEATH(parse_fault_spec("mtbf:mean=0,mttr=5,duration=10"),
                 "positive mean");
}

// ----------------------------------------------------------- materialize

TEST(FaultSchedule, RankResolvesToTheOwningEngine)
{
    // Ranks 0-3 belong to engine 0, ranks 4-7 to engine 1: losing any one
    // rank of a group takes the whole group down (the TP blast radius).
    const auto s = parse_fault_spec("fail:rank=5,at=1");
    const auto events = s.materialize({4, 4});
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].engine, 1);
}

TEST(FaultScheduleDeath, OutOfRangeAddressesAreFatal)
{
    EXPECT_DEATH(parse_fault_spec("fail:rank=8,at=1").materialize({4, 4}),
                 "rank 8");
    EXPECT_DEATH(parse_fault_spec("fail:engine=2,at=1").materialize({4, 4}),
                 "engine 2");
}

TEST(FaultSchedule, MtbfExpansionIsSeedDeterministic)
{
    const auto spec = "mtbf:mean=20,mttr=3,duration=200,seed=11";
    const auto a = parse_fault_spec(spec).materialize({1, 1, 1});
    const auto b = parse_fault_spec(spec).materialize({1, 1, 1});
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].engine, b[i].engine);
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_DOUBLE_EQ(a[i].recover_at, b[i].recover_at);
    }
    for (std::size_t i = 0; i + 1 < a.size(); ++i)
        EXPECT_LE(a[i].at, a[i + 1].at);  // sorted by time
    for (const auto& ev : a) {
        EXPECT_GE(ev.at, 0.0);
        EXPECT_LT(ev.at, 200.0);
        EXPECT_DOUBLE_EQ(ev.recover_at, ev.at + 3.0);
    }
    // A different seed replays different times (engine streams decorrelate).
    const auto c = parse_fault_spec("mtbf:mean=20,mttr=3,duration=200,seed=12")
                       .materialize({1, 1, 1});
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].at != c[i].at || a[i].engine != c[i].engine;
    EXPECT_TRUE(differs);
}

// ------------------------------------------------------ engine lifecycle

TEST(EngineFault, FailDropsInFlightWorkAndStopsTheClock)
{
    engine::EngineConfig cfg;
    cfg.base = {1, 4};
    auto e = make_engine(tiny_model(), cfg);
    e->submit({0.0, 512, 16}, 0);
    e->submit({0.0, 256, 8}, 1);
    e->advance_to(e->next_event_time());  // make some progress

    const auto dropped = e->fail(0.5);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_TRUE(e->failed());
    EXPECT_FALSE(e->has_work());
    EXPECT_TRUE(std::isinf(e->next_event_time()));

    e->recover(1.5);
    EXPECT_FALSE(e->failed());
    e->submit({1.5, 512, 16}, 2);  // a recovered engine accepts work again
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 1u);
}

// --------------------------------------------------------- cluster replay

std::vector<std::unique_ptr<engine::Engine>>
replicas(int n, obs::TraceSink* sink = nullptr)
{
    std::vector<std::unique_ptr<engine::Engine>> engines;
    for (int i = 0; i < n; ++i) {
        engine::EngineConfig cfg;
        cfg.base = {1, 4};
        if (sink) {
            obs::EngineMeta meta;
            meta.label = "replica " + std::to_string(i);
            meta.base = cfg.base;
            cfg.trace = sink;
            cfg.trace_id = sink->register_engine(meta);
        }
        engines.push_back(make_engine(tiny_model(), cfg));
    }
    return engines;
}

std::vector<engine::RequestSpec>
steady_arrivals(int n, double spacing = 0.01)
{
    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < n; ++i)
        reqs.push_back({spacing * i, 512, 32});
    return reqs;
}

/** Counts fault/lifecycle events published to the bus. */
class FaultSink : public obs::TraceSink
{
  public:
    void on_fault(const obs::FaultEvent& ev) override
    {
        if (ev.kind == obs::FaultKind::kFail)
            ++fails_;
        if (ev.kind == obs::FaultKind::kRecover)
            ++recovers_;
    }
    void on_request(const obs::RequestEvent& ev) override
    {
        if (ev.phase == obs::RequestPhase::kRetried)
            ++retried_;
        if (ev.phase == obs::RequestPhase::kLost)
            ++lost_;
        if (ev.phase == obs::RequestPhase::kShed)
            ++shed_;
    }
    int fails_ = 0, recovers_ = 0, retried_ = 0, lost_ = 0, shed_ = 0;
};

TEST(FaultReplay, FailedReplicaRequestsRerouteAndAllComplete)
{
    FaultSink sink;
    // Engine-level transitions (kFail/kRecover) publish through each
    // engine's own trace attachment; router-level lifecycle (kRetried,
    // kLost, kShed) through the router's.
    engine::Router router(replicas(2, &sink));
    router.set_trace(&sink);
    router.set_faults(parse_fault_spec("fail:engine=0,at=0.2,recover=2.0"));

    const auto reqs = steady_arrivals(40);
    const auto met = router.run_workload(reqs);
    const FaultStats& fs = router.fault_stats();

    EXPECT_EQ(fs.failures, 1);
    EXPECT_EQ(fs.recoveries, 1);
    EXPECT_GT(fs.dropped, 0);
    EXPECT_GE(fs.retries, fs.dropped);
    EXPECT_EQ(fs.lost, 0);
    EXPECT_EQ(fs.shed, 0);
    // Accounting invariant: every submitted request completed exactly once.
    ASSERT_EQ(met.requests().size(), reqs.size());
    std::set<engine::RequestId> ids;
    for (const auto& rec : met.requests())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), reqs.size());
    // Everything is on the bus: transitions and per-request retries.
    EXPECT_EQ(sink.fails_, 1);
    EXPECT_EQ(sink.recovers_, 1);
    EXPECT_EQ(sink.retried_, fs.retries);
}

TEST(FaultReplay, PermanentFailureOfTheOnlyReplicaLosesRequests)
{
    engine::Router router(replicas(1));
    FaultSink sink;
    router.set_trace(&sink);
    router.set_faults(parse_fault_spec("fail:engine=0,at=0.05"));

    const auto reqs = steady_arrivals(20);
    const auto met = router.run_workload(reqs);
    const FaultStats& fs = router.fault_stats();

    EXPECT_EQ(fs.failures, 1);
    EXPECT_EQ(fs.recoveries, 0);
    EXPECT_GT(fs.lost, 0);
    EXPECT_GT(fs.retries, 0);  // the backoff ladder ran before giving up
    const auto completed = static_cast<std::int64_t>(met.requests().size());
    EXPECT_EQ(completed + fs.lost + fs.shed,
              static_cast<std::int64_t>(reqs.size()));
    EXPECT_EQ(sink.lost_, fs.lost);
}

TEST(FaultReplay, WatermarkShedsEveryArrivalWhileDegraded)
{
    engine::Router router(replicas(2));
    engine::ResilienceOptions res;
    res.shed_watermark = 0.99;  // any lost GPU puts the router in shed mode
    res.shed_ttft_slo = 0.0;    // and 0 sheds unconditionally while there
    router.set_faults(parse_fault_spec("fail:engine=0,at=0.001"), res);

    const auto reqs = steady_arrivals(20, /*spacing=*/0.01);
    const auto met = router.run_workload(reqs);
    const FaultStats& fs = router.fault_stats();

    EXPECT_GT(fs.shed, 0);
    const auto completed = static_cast<std::int64_t>(met.requests().size());
    EXPECT_EQ(completed + fs.lost + fs.shed,
              static_cast<std::int64_t>(reqs.size()));
}

TEST(FaultReplay, SloAwareSheddingAdmitsWithinTheBound)
{
    engine::Router router(replicas(2));
    engine::ResilienceOptions res;
    res.shed_watermark = 0.99;
    res.shed_ttft_slo = 1e9;  // any backlog clears in time: admit everything
    res.replica_tokens_per_s = 1000.0;
    router.set_faults(parse_fault_spec("fail:engine=0,at=0.2,recover=1.0"),
                      res);

    const auto reqs = steady_arrivals(30);
    const auto met = router.run_workload(reqs);
    EXPECT_EQ(router.fault_stats().shed, 0);
    EXPECT_EQ(met.requests().size(), reqs.size());
}

TEST(FaultReplay, StraggleWindowSlowsCompletion)
{
    const auto reqs = steady_arrivals(10);
    engine::Router healthy(replicas(1));
    const double baseline = healthy.run_workload(reqs).end_time();

    engine::Router straggling(replicas(1));
    straggling.set_faults(
        parse_fault_spec("straggle:engine=0,at=0,until=1000,slow=3"));
    const auto met = straggling.run_workload(reqs);

    EXPECT_EQ(straggling.fault_stats().straggles, 1);
    EXPECT_GT(met.end_time(), baseline * 1.5);
    EXPECT_EQ(met.requests().size(), reqs.size());  // slow, but no losses
}

TEST(FaultReplay, DegradeSlowsCommBoundEngines)
{
    const auto reqs = steady_arrivals(10);
    engine::Router healthy(replicas(1));  // TP=4: every step all-reduces
    const double baseline = healthy.run_workload(reqs).end_time();

    engine::Router degraded(replicas(1));
    degraded.set_faults(
        parse_fault_spec("degrade:at=0,until=1000,factor=8"));
    const auto met = degraded.run_workload(reqs);

    EXPECT_EQ(degraded.fault_stats().degrades, 1);
    EXPECT_GT(met.end_time(), baseline);
    EXPECT_EQ(met.requests().size(), reqs.size());
}

TEST(FaultReplay, SameSpecAndSeedReplaysByteIdentical)
{
    const auto reqs = steady_arrivals(60);
    const auto run = [&] {
        engine::Router router(replicas(3));
        router.set_faults(
            parse_fault_spec("mtbf:mean=1.0,mttr=0.3,duration=5,seed=4"));
        return router.run_workload(reqs);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].id, b.requests()[i].id);
        EXPECT_DOUBLE_EQ(a.requests()[i].ttft, b.requests()[i].ttft);
        EXPECT_DOUBLE_EQ(a.requests()[i].completion,
                         b.requests()[i].completion);
    }
    EXPECT_DOUBLE_EQ(a.end_time(), b.end_time());
    EXPECT_EQ(a.total_tokens(), b.total_tokens());
}

TEST(FaultReplay, EmptyScheduleIsBitIdenticalToNoFaultMachinery)
{
    const auto reqs = steady_arrivals(40);
    engine::Router plain(replicas(2));
    const auto a = plain.run_workload(reqs);

    engine::Router armed(replicas(2));
    engine::ResilienceOptions res;
    res.shed_watermark = 0.99;  // knobs set, but nothing ever degrades
    armed.set_faults(FaultSchedule{}, res);
    const auto b = armed.run_workload(reqs);

    EXPECT_FALSE(armed.fault_stats().any());
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].id, b.requests()[i].id);
        EXPECT_EQ(a.requests()[i].ttft, b.requests()[i].ttft);
        EXPECT_EQ(a.requests()[i].tpot, b.requests()[i].tpot);
        EXPECT_EQ(a.requests()[i].completion, b.requests()[i].completion);
    }
    EXPECT_EQ(a.end_time(), b.end_time());
}

TEST(FaultReplay, MigratedRequestSurvivesItsTargetFailing)
{
    // Migration steals queued work onto the idler replica; if that replica
    // then fails, the stolen requests must come back through the retry
    // path and complete exactly once — never double-counted between the
    // donor's record and the target's.
    engine::MigrationOptions mig;
    mig.enabled = true;
    mig.min_token_imbalance = 1024;
    engine::Router router(replicas(2), engine::RoutingPolicy::kRoundRobin,
                          mig);
    // Fail mid-burst, while the stolen requests are still in flight.
    router.set_faults(parse_fault_spec("fail:engine=1,at=0.02,recover=0.5"));

    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < 40; ++i) {
        const bool big = i % 2 == 0;
        reqs.push_back({0.001 * i, big ? 4096 : 128, big ? 128 : 8});
    }
    const auto met = router.run_workload(reqs);
    const FaultStats& fs = router.fault_stats();

    EXPECT_GT(router.migration_count(), 0);
    EXPECT_EQ(fs.failures, 1);
    EXPECT_GT(fs.dropped, 0);
    const auto completed = static_cast<std::int64_t>(met.requests().size());
    EXPECT_EQ(completed + fs.lost + fs.shed,
              static_cast<std::int64_t>(reqs.size()));
    std::set<engine::RequestId> ids;
    for (const auto& rec : met.requests())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), met.requests().size());  // no double completion
}

// ------------------------------------------------- retry-backoff boundaries

/**
 * One mid-sized request on one replica, plus the plain makespan so the
 * fail can be planted mid-flight. With backoff_base=0.25 and cap=0.5 a
 * request dropped at F re-attempts at F+0.25, F+0.75, F+1.25, F+1.75,
 * F+2.25, ... — the cap truncates the exponential after attempt 2.
 */
struct RetryFixture
{
    std::vector<engine::RequestSpec> reqs{{0.0, 2048, 128}};
    double makespan;

    RetryFixture()
    {
        engine::Router probe(replicas(1));
        makespan = probe.run_workload(reqs).end_time();
    }

    engine::ResilienceOptions
    res(int max_retries) const
    {
        engine::ResilienceOptions r;
        r.max_retries = max_retries;
        r.backoff_base = 0.25;
        r.backoff_cap = 0.5;
        return r;
    }

    std::string
    fail_spec(double recover_after) const
    {
        return "fail:engine=0,at=" + std::to_string(makespan / 2) +
               ",recover=" + std::to_string(makespan / 2 + recover_after);
    }
};

TEST(FaultRetryBoundary, SucceedsOnTheLastPermittedAttempt)
{
    // Recovery at F+2.0 sits between attempt 4 (F+1.75) and attempt 5
    // (F+2.25): the request must come back on attempt 5 — exactly
    // max_retries — with the backoff pinned at the cap since attempt 2.
    const RetryFixture fx;
    engine::Router router(replicas(1));
    router.set_faults(parse_fault_spec(fx.fail_spec(2.0)), fx.res(5));
    const auto met = router.run_workload(fx.reqs);
    const FaultStats& fs = router.fault_stats();
    EXPECT_EQ(fs.failures, 1);
    EXPECT_EQ(fs.dropped, 1);
    EXPECT_EQ(fs.retries, 5);
    EXPECT_EQ(fs.lost, 0);
    ASSERT_EQ(met.requests().size(), 1u);
    // TTFT includes the outage the request sat through.
    EXPECT_GT(met.requests()[0].completion, fx.makespan / 2 + 2.0);
}

TEST(FaultRetryBoundary, ExhaustedAttemptsAreLostBeforeRecovery)
{
    // Identical outage, one fewer permitted attempt: attempt 5 would
    // have succeeded, so with max_retries=4 the request is declared
    // lost at F+1.75 — strictly before the engine comes back.
    const RetryFixture fx;
    engine::Router router(replicas(1));
    router.set_faults(parse_fault_spec(fx.fail_spec(2.0)), fx.res(4));
    const auto met = router.run_workload(fx.reqs);
    const FaultStats& fs = router.fault_stats();
    EXPECT_EQ(fs.retries, 4);
    EXPECT_EQ(fs.lost, 1);
    EXPECT_EQ(fs.recoveries, 1);
    EXPECT_EQ(met.requests().size(), 0u);
}

TEST(FaultRetryBoundary, RetryRacingRecoveryCompletesOnce)
{
    // Recovery and the first retry land on the same instant (F+0.25).
    // Equal-time events run in posting order: the fail handler posts the
    // dropped request's retry before it posts its own recovery, so the
    // retry fires first, finds the engine still down, and backs off once
    // more — attempt 2 then lands on the recovered engine. The request
    // completes exactly once either way; only the attempt count tells
    // the two orderings apart, and it must do so deterministically.
    const RetryFixture fx;
    engine::Router router(replicas(1));
    router.set_faults(parse_fault_spec(fx.fail_spec(0.25)), fx.res(3));
    const auto met = router.run_workload(fx.reqs);
    const FaultStats& fs = router.fault_stats();
    EXPECT_EQ(fs.failures, 1);
    EXPECT_EQ(fs.recoveries, 1);
    EXPECT_EQ(fs.retries, 2);
    EXPECT_EQ(fs.lost, 0);
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_EQ(met.requests()[0].id, 0);
}

} // namespace
} // namespace shiftpar::fault
