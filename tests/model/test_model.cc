/** @file Unit tests for model configs, presets, and FLOP/byte counters. */

#include <gtest/gtest.h>

#include "model/flops.h"
#include "model/presets.h"

namespace shiftpar::model {
namespace {

TEST(DTypes, Sizes)
{
    EXPECT_DOUBLE_EQ(dtype_bytes(DType::kFp8), 1.0);
    EXPECT_DOUBLE_EQ(dtype_bytes(DType::kFp16), 2.0);
    EXPECT_DOUBLE_EQ(dtype_bytes(DType::kBf16), 2.0);
    EXPECT_STREQ(dtype_name(DType::kFp8), "fp8");
}

TEST(Presets, Table4Structure)
{
    const ModelConfig l70 = llama_70b();
    EXPECT_EQ(l70.num_layers, 80);
    EXPECT_EQ(l70.hidden_size, 8192);
    EXPECT_EQ(l70.q_heads, 64);
    EXPECT_EQ(l70.kv_heads, 8);
    EXPECT_FALSE(l70.is_moe());

    const ModelConfig q32 = qwen_32b();
    EXPECT_EQ(q32.num_layers, 64);
    EXPECT_EQ(q32.hidden_size, 5120);
    EXPECT_EQ(q32.q_heads, 64);
    EXPECT_EQ(q32.kv_heads, 8);

    const ModelConfig l17 = llama_17b_16e();
    EXPECT_EQ(l17.num_layers, 48);
    EXPECT_EQ(l17.q_heads, 40);
    EXPECT_TRUE(l17.is_moe());
    EXPECT_EQ(l17.num_experts, 16);

    const ModelConfig q30 = qwen_30b_a3b();
    EXPECT_EQ(q30.kv_heads, 4);  // the KV-replication stress case
    EXPECT_TRUE(q30.is_moe());
}

TEST(Presets, Table4ParameterCounts)
{
    EXPECT_NEAR(llama_70b().total_params(), 70.6e9, 1e8);
    EXPECT_NEAR(qwen_32b().total_params(), 32.8e9, 1e8);
    EXPECT_NEAR(llama_17b_16e().total_params(), 109e9, 1e9);
    EXPECT_NEAR(llama_17b_16e().active_params(), 17e9, 1e9);
    EXPECT_NEAR(qwen_30b_a3b().total_params(), 30.5e9, 1e9);
    EXPECT_NEAR(qwen_30b_a3b().active_params(), 3.3e9, 1e9);
}

TEST(ModelConfig, DenseActiveEqualsTotal)
{
    const ModelConfig m = llama_70b();
    EXPECT_DOUBLE_EQ(m.active_params(), m.total_params());
}

TEST(ModelConfig, MoeActiveBelowTotal)
{
    const ModelConfig m = qwen_30b_a3b();
    EXPECT_LT(m.active_params(), m.total_params());
}

TEST(ModelConfig, AnalyticCountsWithoutOverride)
{
    ModelConfig m = llama_70b();
    m.params_total_override = 0.0;
    // Analytic Llama-70B: ~69.5B (attn + MLP + embeddings); sanity-band.
    EXPECT_GT(m.total_params(), 65e9);
    EXPECT_LT(m.total_params(), 75e9);
}

TEST(ModelConfig, WeightBytesFollowDtype)
{
    ModelConfig m = llama_70b();
    const double fp8 = m.weight_bytes();
    m.weight_dtype = DType::kFp16;
    EXPECT_DOUBLE_EQ(m.weight_bytes(), 2.0 * fp8);
}

TEST(ModelConfig, KvBytesPerToken)
{
    const ModelConfig m = llama_70b();  // FP16 KV default
    // 2 (K and V) * 8 heads * 128 dims * 2 bytes = 4096 B per layer.
    EXPECT_DOUBLE_EQ(m.kv_bytes_per_token_layer(), 4096.0);
    EXPECT_DOUBLE_EQ(m.kv_bytes_per_token(), 4096.0 * 80);
}

TEST(ModelConfig, KvHeadBytesHelperIsTheSharedUnit)
{
    // kv_head_bytes_per_token is the single source of truth for KV sizing:
    // capacity accounting (kv_bytes_per_token_layer) and migration costing
    // (kvcache::switch_cost_bytes) must both decompose into it exactly.
    const ModelConfig m = llama_70b();
    EXPECT_DOUBLE_EQ(kv_head_bytes_per_token(m.head_dim, m.kv_dtype),
                     2.0 * m.head_dim * dtype_bytes(m.kv_dtype));
    EXPECT_DOUBLE_EQ(m.kv_bytes_per_token_layer(),
                     m.kv_heads *
                         kv_head_bytes_per_token(m.head_dim, m.kv_dtype));
    // And per dtype: FP8 KV heads are half the FP16 ones.
    EXPECT_DOUBLE_EQ(kv_head_bytes_per_token(128, DType::kFp8),
                     kv_head_bytes_per_token(128, DType::kFp16) / 2.0);
}

TEST(Flops, ActivationBytesUseBf16Width)
{
    // layer_activation_bytes routes through the shared dtype table rather
    // than a hard-coded byte count.
    const ModelConfig m = llama_70b();
    EXPECT_DOUBLE_EQ(layer_activation_bytes(m, 3.0),
                     8.0 * 3.0 * m.hidden_size * dtype_bytes(DType::kBf16));
}

TEST(ModelConfig, Fp8KvHalvesCacheFootprint)
{
    ModelConfig m = qwen_32b();
    const double fp16 = m.kv_bytes_per_token();
    m.kv_dtype = DType::kFp8;
    EXPECT_DOUBLE_EQ(m.kv_bytes_per_token(), fp16 / 2.0);
}

TEST(ModelConfig, ValidateRejectsBadGqa)
{
    ModelConfig m = llama_70b();
    m.kv_heads = 7;  // 64 % 7 != 0
    EXPECT_DEATH(m.validate(), "multiple of kv_heads");
}

TEST(Flops, QkvAccountsForGqa)
{
    const ModelConfig m = llama_70b();
    // (64 + 2*8) heads * 128 = 10240 output dims.
    EXPECT_DOUBLE_EQ(qkv_flops(m, 1.0), 2.0 * 8192 * 10240);
}

TEST(Flops, GemmScalesLinearlyInTokens)
{
    const ModelConfig m = qwen_32b();
    EXPECT_DOUBLE_EQ(layer_gemm_flops(m, 100.0),
                     100.0 * layer_gemm_flops(m, 1.0));
}

TEST(Flops, CausalAttentionExactSum)
{
    const ModelConfig m = llama_70b();
    // 3 new tokens after 10 cached: attends 11 + 12 + 13 = 36 keys.
    const double per_pair = 4.0 * m.q_heads * m.head_dim;
    EXPECT_DOUBLE_EQ(attn_flops(m, 3.0, 10.0), per_pair * 36.0);
}

TEST(Flops, DecodeAttentionReadsFullContext)
{
    const ModelConfig m = llama_70b();
    EXPECT_DOUBLE_EQ(kv_read_bytes(m, 1.0, 1000.0),
                     1000.5 * m.kv_bytes_per_token_layer());
    EXPECT_DOUBLE_EQ(kv_write_bytes(m, 4.0),
                     4.0 * m.kv_bytes_per_token_layer());
}

TEST(Flops, DenseWeightReadIsBatchInvariant)
{
    const ModelConfig m = llama_70b();
    EXPECT_DOUBLE_EQ(layer_weight_read_bytes(m, 1.0),
                     layer_weight_read_bytes(m, 1000.0));
}

TEST(Flops, MoeWeightReadGrowsWithBatchUpToAllExperts)
{
    const ModelConfig m = qwen_30b_a3b();
    const double one = layer_weight_read_bytes(m, 1.0);
    const double big = layer_weight_read_bytes(m, 100000.0);
    EXPECT_LT(one, big);
    // A huge batch touches every expert: equals the full dense read.
    ModelConfig dense_equiv = m;
    const double all = m.attn_params_per_layer() +
                       static_cast<double>(m.hidden_size) * m.num_experts +
                       3.0 * static_cast<double>(m.hidden_size) *
                           m.intermediate_size * m.num_experts;
    EXPECT_NEAR(big, all * dtype_bytes(m.weight_dtype), all * 1e-6);
    (void)dense_equiv;
}

TEST(Flops, MoeMlpUsesActiveExpertsOnly)
{
    const ModelConfig m = qwen_30b_a3b();
    // Active MLP params per layer << total MLP params per layer.
    EXPECT_LT(m.mlp_active_params_per_layer(),
              m.mlp_params_per_layer() / 4.0);
    EXPECT_DOUBLE_EQ(mlp_flops(m, 2.0),
                     2.0 * 2.0 * m.mlp_active_params_per_layer());
}

TEST(Flops, LmHeadCountsSampledPositions)
{
    const ModelConfig m = qwen_32b();
    EXPECT_DOUBLE_EQ(lm_head_flops(m, 3.0),
                     2.0 * 3.0 * m.hidden_size * m.vocab_size);
}

} // namespace
} // namespace shiftpar::model
