/**
 * @file
 * Tests for the overload-robust request lifecycle: per-request deadlines,
 * client cancellation streams, hedged retries, per-replica circuit
 * breakers, and graceful drain — plus the conservation invariant
 * (submitted = completed + lost + shed + expired + cancelled) and the
 * promise that every feature is bit-identical to the seed replay when
 * switched off.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "fault/fault_schedule.h"
#include "obs/metrics_registry.h"
#include "workload/lifecycle.h"

namespace shiftpar::engine {
namespace {

using fault::parse_fault_spec;
using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;

/**
 * Build `n` identical {1,4} replicas. A `max_running` cap (0 = default)
 * throttles concurrent sequences so queues form — which is what
 * deadlines, hedges, and drains act on.
 */
std::vector<std::unique_ptr<Engine>>
replicas(int n, std::int64_t max_running = 0)
{
    std::vector<std::unique_ptr<Engine>> engines;
    for (int i = 0; i < n; ++i) {
        EngineConfig cfg;
        cfg.base = {1, 4};
        if (max_running > 0)
            cfg.sched.max_running_seqs = max_running;
        engines.push_back(make_engine(tiny_model(), cfg));
    }
    return engines;
}

std::vector<RequestSpec>
steady_arrivals(int n, double spacing = 0.01)
{
    std::vector<RequestSpec> reqs;
    for (int i = 0; i < n; ++i)
        reqs.push_back({spacing * i, 512, 32});
    return reqs;
}

/** Left-hand side of the lifecycle conservation invariant. */
std::int64_t
settled(const Router& r)
{
    const OverloadStats& os = r.overload_stats();
    const fault::FaultStats& fs = r.fault_stats();
    return os.completed + os.expired + os.cancelled + fs.lost + fs.shed;
}

// -------------------------------------------------------------- deadlines

TEST(Deadline, TightDeadlinesExpireAndConserve)
{
    // Two sequences at a time, so completions spread across the makespan
    // instead of landing together in one giant batch.
    auto reqs = steady_arrivals(40, 0.001);
    Router probe(replicas(1, /*max_running=*/2));
    const double makespan = probe.run_workload(reqs).end_time();

    // One absolute deadline halfway through the plain makespan: early
    // arrivals finish, the backlog expires instead of burning tokens.
    for (auto& s : reqs)
        s.deadline = makespan / 2;
    Router router(replicas(1, /*max_running=*/2));
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_GT(os.expired, 0);
    EXPECT_GT(os.completed, 0);
    EXPECT_EQ(os.cancelled, 0);
    EXPECT_EQ(settled(router), 40);
    EXPECT_EQ(met.requests().size(),
              static_cast<std::size_t>(os.completed));
    // Expiry frees capacity: the deadlined replay must end no later.
    EXPECT_LE(met.end_time(), makespan);
}

TEST(Deadline, GenerousDeadlinesReplayBitIdenticalToPlain)
{
    const auto reqs = steady_arrivals(30);
    Router plain(replicas(2));
    const auto a = plain.run_workload(reqs);

    auto stamped = reqs;
    workload::LifecycleOptions lc;
    lc.deadline = 1e6;  // lifecycle tracking on, but nothing ever expires
    workload::apply_deadlines(&stamped, lc);
    Router armed(replicas(2));
    const auto b = armed.run_workload(stamped);

    EXPECT_EQ(armed.overload_stats().expired, 0);
    EXPECT_EQ(armed.overload_stats().completed, 30);
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].id, b.requests()[i].id);
        EXPECT_EQ(a.requests()[i].ttft, b.requests()[i].ttft);
        EXPECT_EQ(a.requests()[i].tpot, b.requests()[i].tpot);
        EXPECT_EQ(a.requests()[i].completion, b.requests()[i].completion);
    }
    EXPECT_EQ(a.end_time(), b.end_time());
}

// ----------------------------------------------------------- cancellation

TEST(CancelStream, AbortsTargetsAndIgnoresLateAborts)
{
    // Everything arrives at t=0 so the two aborts land while their
    // targets are still live; the abort of request 0 at t=1e6 arrives
    // long after it finished and must be a no-op.
    std::vector<RequestSpec> reqs(40, RequestSpec{0.0, 512, 32});
    Router router(replicas(1));
    router.set_cancellations({{5, 0.0}, {30, 0.0}, {0, 1e6}});
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_EQ(os.cancelled, 2);
    EXPECT_EQ(os.completed, 38);
    EXPECT_EQ(settled(router), 40);
    std::set<RequestId> ids;
    for (const auto& rec : met.requests())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), 38u);
    EXPECT_EQ(ids.count(5), 0u);
    EXPECT_EQ(ids.count(30), 0u);
    EXPECT_EQ(ids.count(0), 1u);
}

TEST(CancelStream, DuringRetryBackoffCountsAsCancelledNotLost)
{
    // The replica fail-stops with the whole workload in flight; every
    // request sits in retry limbo (on no engine) until recovery. An
    // abort landing inside that window must settle the flight as
    // cancelled — the pending retry then stands down instead of
    // resubmitting a request nobody wants.
    const auto reqs = steady_arrivals(10, 0.001);
    Router router(replicas(1));
    ResilienceOptions res;
    res.max_retries = 8;
    res.backoff_base = 1.0;
    res.backoff_cap = 1.0;
    router.set_faults(parse_fault_spec("fail:engine=0,at=0.005,recover=1.5"),
                      res);
    router.set_cancellations({{9, 0.5}});
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    const fault::FaultStats& fs = router.fault_stats();
    EXPECT_EQ(fs.failures, 1);
    EXPECT_GT(fs.dropped, 0);
    EXPECT_EQ(fs.lost, 0);
    EXPECT_EQ(os.cancelled, 1);
    EXPECT_EQ(os.completed, 9);
    EXPECT_EQ(settled(router), 10);
    for (const auto& rec : met.requests())
        EXPECT_NE(rec.id, 9);
}

TEST(CancelStream, AbortOfAnExpiredDeadCopyIsRejectedNotFatal)
{
    // A request that expired leaves its dead copy in the engine's book
    // (the same id may live on elsewhere — the other hedge copy, a
    // retry). An abort reaching that copy must be rejected as
    // not-cancellable, never treated as live work.
    auto engines = replicas(1);
    Engine& e = *engines[0];
    RequestSpec doomed{0.0, 512, 512};
    doomed.deadline = 1e-6;  // expires long before 512 output tokens
    e.submit(doomed, 0);
    e.drain();
    EXPECT_EQ(e.expired_count(), 1);
    EXPECT_EQ(e.metrics().requests().size(), 0u);
    EXPECT_FALSE(e.cancel(0));
}

// ---------------------------------------------------------------- hedging

TEST(Hedge, DuplicatesQueuedWorkAndFirstCompletionWins)
{
    // Round-robin feeds half the work to a 10x straggler; serial
    // replicas (max_running=1) let its backlog sit queued-unscheduled
    // past the hedge delay, so hedges fire onto the healthy replica.
    Router router(replicas(2, /*max_running=*/1),
                  RoutingPolicy::kRoundRobin);
    router.set_faults(
        parse_fault_spec("straggle:engine=0,at=0.005,until=500,slow=10"),
        {});
    OverloadOptions opts;
    opts.hedge_delay = 0.1;
    router.set_overload(opts);

    const auto reqs = steady_arrivals(24, 0.001);
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_GT(os.hedges, 0);
    EXPECT_GT(os.hedge_wins, 0);
    EXPECT_GT(os.hedge_losses, 0);
    EXPECT_LE(os.hedge_wins, os.hedges);
    // Every logical request completes exactly once: first copy wins,
    // the loser is cancelled, nothing is double-reported.
    EXPECT_EQ(os.completed, 24);
    EXPECT_EQ(settled(router), 24);
    // A winning clone reports under its offset id; mapping every record
    // back to its logical request must cover each request exactly once.
    std::set<RequestId> ids;
    for (const auto& rec : met.requests()) {
        const RequestId logical = logical_request_id(rec.id);
        EXPECT_LT(logical, 24);
        ids.insert(logical);
    }
    EXPECT_EQ(met.requests().size(), 24u);
    EXPECT_EQ(ids.size(), 24u);
}

TEST(Hedge, SingleReplicaHasNowhereToHedge)
{
    Router router(replicas(1, /*max_running=*/1));
    OverloadOptions opts;
    opts.hedge_delay = 0.01;
    router.set_overload(opts);
    const auto met = router.run_workload(steady_arrivals(12, 0.001));
    EXPECT_EQ(router.overload_stats().hedges, 0);
    EXPECT_EQ(router.overload_stats().completed, 12);
    EXPECT_EQ(met.requests().size(), 12u);
}

// ------------------------------------------------------- circuit breakers

TEST(Breaker, TripsOnAStragglerThenProbesAndRecloses)
{
    // Paced arrivals over a 10 s horizon, straggle window over the first
    // 3 s only: the breaker must trip during the window, send half-open
    // probes once the open duration elapses, and close on a probe that
    // completes after the straggler heals — all well before the arrivals
    // (and thus the routing decisions that drive the state machine) end.
    const auto reqs = steady_arrivals(200, 0.05);
    Router router(replicas(3), RoutingPolicy::kRoundRobin);
    router.set_faults(
        parse_fault_spec("straggle:engine=0,at=0.01,until=3,slow=8"), {});
    OverloadOptions opts;
    opts.breaker.enabled = true;
    opts.breaker.min_samples = 3;
    opts.breaker.trip_ratio = 2.0;
    opts.breaker.open_duration = 0.5;
    router.set_overload(opts);
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_GT(os.breaker_opens, 0);
    EXPECT_GT(os.breaker_probes, 0);
    EXPECT_GT(os.breaker_closes, 0);
    EXPECT_EQ(os.completed, 200);
    EXPECT_EQ(settled(router), 200);
    EXPECT_EQ(met.requests().size(), 200u);
}

// ---------------------------------------------------------- graceful drain

TEST(Drain, HandsBackWaitingWorkAndResumesAdmission)
{
    // Serial replicas with a dense burst guarantee a waiting queue on
    // engine 0 when the drain starts; the handed-back requests re-route
    // to the survivor and everything still completes exactly once.
    Router router(replicas(2, /*max_running=*/1),
                  RoutingPolicy::kRoundRobin);
    router.set_faults(
        parse_fault_spec("drain:engine=0,at=0.05,resume=2.0"), {});
    const auto reqs = steady_arrivals(30, 0.001);
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_EQ(os.drains, 1);
    EXPECT_GT(os.drained, 0);
    EXPECT_EQ(os.drain_resumes, 1);
    EXPECT_FALSE(router.engine(0).draining());  // resumed
    std::set<RequestId> ids;
    for (const auto& rec : met.requests())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), 30u);  // every request, exactly once
}

TEST(Drain, WithoutResumeTheSurvivorFinishesEverything)
{
    Router router(replicas(2, /*max_running=*/1),
                  RoutingPolicy::kRoundRobin);
    router.set_faults(parse_fault_spec("drain:engine=0,at=0.05"), {});
    const auto reqs = steady_arrivals(30, 0.001);
    const auto met = router.run_workload(reqs);
    const OverloadStats& os = router.overload_stats();
    EXPECT_EQ(os.drains, 1);
    EXPECT_GT(os.drained, 0);
    EXPECT_EQ(os.drain_resumes, 0);
    EXPECT_TRUE(router.engine(0).draining());  // admission stayed closed
    EXPECT_EQ(met.requests().size(), 30u);
    // The drained engine kept only what was already running when the
    // drain started; the survivor absorbed the rest.
    EXPECT_LT(router.engine(0).metrics().requests().size(), 15u);
}

// --------------------------------------------- off-switch and determinism

TEST(Lifecycle, DefaultOptionsAreBitIdenticalToPlainRouter)
{
    const auto reqs = steady_arrivals(40);
    Router plain(replicas(2));
    const auto a = plain.run_workload(reqs);

    Router armed(replicas(2));
    armed.set_overload(OverloadOptions{});  // every knob at its default
    armed.set_cancellations({});
    const auto b = armed.run_workload(reqs);

    EXPECT_FALSE(armed.overload_stats().any());
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].id, b.requests()[i].id);
        EXPECT_EQ(a.requests()[i].ttft, b.requests()[i].ttft);
        EXPECT_EQ(a.requests()[i].tpot, b.requests()[i].tpot);
        EXPECT_EQ(a.requests()[i].completion, b.requests()[i].completion);
    }
    EXPECT_EQ(a.end_time(), b.end_time());
}

TEST(Lifecycle, FullStackReplayIsDeterministic)
{
    const auto run = [] {
        auto reqs = steady_arrivals(60, 0.002);
        workload::LifecycleOptions lc;
        lc.cancel_rate = 0.15;
        lc.cancel_delay_mean = 0.3;
        lc.seed = 7;
        lc.deadline = 1.5;
        lc.deadline_per_token = 0.01;
        workload::apply_deadlines(&reqs, lc);

        Router router(replicas(2, /*max_running=*/2),
                      RoutingPolicy::kRoundRobin);
        router.set_faults(
            parse_fault_spec("straggle:engine=0,at=0.01,until=2,slow=4"),
            {});
        OverloadOptions opts;
        opts.hedge_delay = 0.1;
        opts.breaker.enabled = true;
        opts.breaker.min_samples = 3;
        router.set_overload(opts);
        router.set_cancellations(workload::cancel_stream(reqs, lc));
        const auto met = router.run_workload(reqs);
        EXPECT_EQ(settled(router), 60);
        return std::make_pair(met, router.overload_stats());
    };
    const auto [a, sa] = run();
    const auto [b, sb] = run();
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.expired, sb.expired);
    EXPECT_EQ(sa.cancelled, sb.cancelled);
    EXPECT_EQ(sa.hedges, sb.hedges);
    EXPECT_EQ(sa.hedge_wins, sb.hedge_wins);
    EXPECT_EQ(sa.hedge_losses, sb.hedge_losses);
    EXPECT_EQ(sa.breaker_opens, sb.breaker_opens);
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        EXPECT_EQ(a.requests()[i].id, b.requests()[i].id);
        EXPECT_EQ(a.requests()[i].ttft, b.requests()[i].ttft);
        EXPECT_EQ(a.requests()[i].completion, b.requests()[i].completion);
    }
}

TEST(Lifecycle, OutcomeCountersReachTheRegistryOnlyWhenActive)
{
    obs::MetricsRegistry reg;
    obs::MetricsRegistry* prev =
        obs::MetricsRegistry::set_thread_override(&reg);

    // Feature-off replay: the registry must stay untouched.
    {
        Router plain(replicas(1));
        plain.run_workload(steady_arrivals(10));
    }
    EXPECT_TRUE(reg.empty());

    // Lifecycle replay: every outcome lands in the labeled counter.
    {
        std::vector<RequestSpec> reqs(20, RequestSpec{0.0, 512, 32});
        Router router(replicas(1));
        router.set_cancellations({{3, 0.0}, {11, 0.0}});
        router.run_workload(reqs);
        EXPECT_EQ(router.overload_stats().cancelled, 2);
    }
    std::int64_t total = 0;
    std::int64_t cancelled = 0;
    for (const auto& c : reg.snapshot().counters) {
        if (c.name != "shiftpar_request_outcome_total")
            continue;
        total += c.value;
        for (const auto& [k, v] : c.labels) {
            if (k == "outcome" && v == "cancelled")
                cancelled = c.value;
        }
    }
    EXPECT_EQ(total, 20);  // completed + cancelled, one bump per request
    EXPECT_EQ(cancelled, 2);

    obs::MetricsRegistry::set_thread_override(prev);
}

// --------------------------------------------- client-side stream synthesis

TEST(LifecycleSynthesis, CancelStreamIsSeedDeterministicAndSorted)
{
    const auto reqs = steady_arrivals(200, 0.01);
    workload::LifecycleOptions lc;
    lc.cancel_rate = 0.3;
    lc.cancel_delay_mean = 2.0;
    lc.seed = 42;
    const auto a = workload::cancel_stream(reqs, lc);
    const auto b = workload::cancel_stream(reqs, lc);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    }
    for (std::size_t i = 0; i + 1 < a.size(); ++i)
        EXPECT_LE(a[i].at, a[i + 1].at);  // sorted by abort time
    for (const auto& c : a) {
        ASSERT_GE(c.index, 0);
        ASSERT_LT(c.index, 200);
        // Aborts never precede their target's arrival.
        EXPECT_GE(c.at, reqs[static_cast<std::size_t>(c.index)].arrival);
    }
    // A different seed decorrelates the stream.
    lc.seed = 43;
    const auto c = workload::cancel_stream(reqs, lc);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].index != c[i].index || a[i].at != c[i].at;
    EXPECT_TRUE(differs);

    lc.cancel_rate = 0.0;
    EXPECT_TRUE(workload::cancel_stream(reqs, lc).empty());
}

TEST(LifecycleSynthesis, DeadlinesStampArrivalPlusBudget)
{
    std::vector<RequestSpec> reqs = {{1.0, 100, 10}, {2.0, 100, 40}};
    workload::LifecycleOptions lc;
    lc.deadline = 5.0;
    lc.deadline_per_token = 0.1;
    workload::apply_deadlines(&reqs, lc);
    EXPECT_DOUBLE_EQ(reqs[0].deadline, 1.0 + 5.0 + 0.1 * 10);
    EXPECT_DOUBLE_EQ(reqs[1].deadline, 2.0 + 5.0 + 0.1 * 40);

    std::vector<RequestSpec> untouched = {{1.0, 100, 10}};
    workload::LifecycleOptions off;  // deadline 0 = no-op
    workload::apply_deadlines(&untouched, off);
    EXPECT_DOUBLE_EQ(untouched[0].deadline, 0.0);
}

} // namespace
} // namespace shiftpar::engine
