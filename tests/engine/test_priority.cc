/** @file Tests for priority (QoS-class) scheduling. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "engine/router.h"

namespace shiftpar::engine {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;
using shiftpar::testing::tp8_engine_config;

TEST(Priority, HigherClassAdmittedFirst)
{
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;  // serialize to expose ordering
    auto e = make_engine(tiny_model(), cfg);
    // Batch request submitted first, interactive (priority 1) second.
    RequestSpec batch{0.0, 4000, 50};
    RequestSpec interactive{0.0, 500, 10};
    interactive.priority = 1;
    e->submit(batch, 1);
    e->submit(interactive, 2);
    e->drain();
    const auto& recs = e->metrics().requests();
    ASSERT_EQ(recs.size(), 2u);
    // The interactive request finished first despite later submission.
    EXPECT_EQ(recs[0].id, 2);
    EXPECT_LT(recs[0].wait, recs[1].wait);
}

TEST(Priority, FcfsWithinClass)
{
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;
    auto e = make_engine(tiny_model(), cfg);
    for (int i = 0; i < 3; ++i)
        e->submit({0.0, 1000, 5}, i);
    e->drain();
    const auto& recs = e->metrics().requests();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].id, 0);
    EXPECT_EQ(recs[1].id, 1);
    EXPECT_EQ(recs[2].id, 2);
}

TEST(Priority, InteractiveTtftImprovesUnderLoad)
{
    // A flood of batch work plus periodic interactive requests: raising
    // the interactive priority must cut their TTFT substantially without
    // touching completion correctness.
    const auto run = [&](int interactive_priority) {
        auto e = make_engine(tiny_model(), tp8_engine_config());
        RequestId id = 0;
        for (int i = 0; i < 64; ++i)
            e->submit({0.0, 8000, 20}, id++);
        Summary ttft;
        std::vector<RequestId> interactive_ids;
        for (int i = 0; i < 8; ++i) {
            RequestSpec r{0.5 * i, 400, 20};
            r.priority = interactive_priority;
            interactive_ids.push_back(id);
            e->submit(r, id++);
        }
        e->drain();
        for (const auto& rec : e->metrics().requests()) {
            if (std::find(interactive_ids.begin(), interactive_ids.end(),
                          rec.id) != interactive_ids.end())
                ttft.add(rec.ttft);
        }
        return ttft.mean();
    };
    const double flat = run(0);
    const double prioritized = run(1);
    EXPECT_LT(prioritized, flat / 2.0);
}

TEST(Priority, ArrivedLowClassNotBlockedByFutureHighClass)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    RequestSpec future_vip{50.0, 500, 5};
    future_vip.priority = 9;
    e->submit(future_vip, 1);
    e->submit({0.0, 500, 5}, 2);  // arrived, low class
    e->run_until(1.0);
    // The low-class request must already be past scheduling.
    ASSERT_GE(e->metrics().requests().size() +
                  (e->has_work() ? 1u : 0u),
              1u);
    e->drain();
    const auto& recs = e->metrics().requests();
    ASSERT_EQ(recs.size(), 2u);
    for (const auto& rec : recs) {
        if (rec.id == 2) {
            EXPECT_LT(rec.wait, 1.0);  // not stuck behind the future VIP
        }
    }
}

TEST(Priority, PreemptedRequestRejoinsFrontOfItsClass)
{
    // With a tiny cache, the newest same-class request gets preempted and
    // must still finish before requests submitted after it re-queues.
    auto cfg = tp8_engine_config();
    cfg.sched.max_batched_tokens = 1 << 16;
    auto e = make_engine(tiny_model(), cfg);
    // tiny_model KV capacity is large; shrink working set via many seqs.
    for (int i = 0; i < 6; ++i)
        e->submit({0.0, 2000, 30}, i);
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 6u);
}

} // namespace
} // namespace shiftpar::engine
