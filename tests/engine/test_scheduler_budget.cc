/**
 * @file
 * Regression tests for scheduler token-budget accounting: the decode pass
 * must never push a step past `max_batched_tokens` (the ShiftController's
 * Alg. 2 decision input), preempting a planned victim must refund its
 * retracted chunk, a preempted-then-resumed request must not double-count
 * its prefix-cache hit, and migrated-request admission follows the same
 * FCFS blocking rule as the prefill pass.
 */

#include <gtest/gtest.h>

#include "core/disaggregated.h"
#include "engine/scheduler.h"
#include "hw/presets.h"
#include "kvcache/layout.h"
#include "model/presets.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar::engine {
namespace {

class SchedulerBudgetTest : public ::testing::Test
{
  protected:
    explicit SchedulerBudgetTest(std::int64_t capacity = 1 << 20)
        : cache_(capacity,
                 kvcache::KvLayout::base(model::llama_70b(), {1, 8}), 16)
    {
    }

    Scheduler
    make(SchedulerOptions opts = {})
    {
        return Scheduler(opts, &cache_);
    }

    Request*
    add(std::int64_t prompt, std::int64_t output)
    {
        auto r = std::make_unique<Request>();
        r->id = next_id_++;
        r->spec = {0.0, prompt, output};
        r->prefill_target = prompt;
        requests_.push_back(std::move(r));
        return requests_.back().get();
    }

    /** A request whose prompt was prefilled elsewhere (migrated decode). */
    Request*
    add_prefilled(std::int64_t prompt, std::int64_t output)
    {
        Request* r = add(prompt, output);
        r->prefilled = prompt;
        r->decoded = 1;  // the prefill worker produced the first token
        return r;
    }

    std::vector<Request*>
    complete(Scheduler& s, const BatchPlan& plan, double t)
    {
        std::vector<Request*> finished;
        s.on_step_complete(t, plan, &finished);
        return finished;
    }

    kvcache::CacheManager cache_;
    std::vector<std::unique_ptr<Request>> requests_;
    RequestId next_id_ = 1;
};

// ---- Decode chunks are capped at the remaining budget ----------------------

TEST_F(SchedulerBudgetTest, DecodePassNeverOvershootsBudget)
{
    // Budget 10 with 4-token decode chunks (speculative decoding): the
    // third sequence's chunk must be capped at the 2 remaining tokens, not
    // scheduled at full width (batched 12 > 10).
    auto s = make({.max_batched_tokens = 10, .decode_tokens_per_step = 4});
    for (int i = 0; i < 5; ++i)
        s.enqueue(add_prefilled(16, 50));

    const BatchPlan plan = s.schedule(0.0);
    EXPECT_LE(plan.batched_tokens(), 10);
    EXPECT_EQ(plan.batched_tokens(), 10);  // 4 + 4 + 2
    ASSERT_EQ(plan.chunks.size(), 3u);
    EXPECT_EQ(plan.chunks[2].new_tokens, 2);
}

TEST_F(SchedulerBudgetTest, FuzzedRunsStayWithinBudgetEveryStep)
{
    Rng rng(20260806);
    for (int round = 0; round < 8; ++round) {
        const SchedulerOptions opts{
            .max_batched_tokens = rng.uniform_int(32, 256),
            .max_running_seqs = rng.uniform_int(2, 64),
            .decode_tokens_per_step = rng.uniform_int(1, 4)};
        auto s = make(opts);
        double t = 0.0;
        int pending = static_cast<int>(rng.uniform_int(10, 40));
        for (int step = 0; step < 400 && (pending > 0 || s.has_work());
             ++step) {
            if (pending > 0 && rng.bernoulli(0.4)) {
                --pending;
                if (rng.bernoulli(0.3)) {
                    // Migrated requests always have tokens left to decode
                    // (Engine::submit_prefilled's contract).
                    s.enqueue(add_prefilled(rng.uniform_int(1, 600),
                                            rng.uniform_int(2, 40)));
                } else {
                    s.enqueue(add(rng.uniform_int(1, 600),
                                  rng.uniform_int(1, 40)));
                }
            }
            const BatchPlan plan = s.schedule(t);
            ASSERT_LE(plan.batched_tokens(), opts.max_batched_tokens)
                << "round " << round << " step " << step;
            t += 0.01;
            complete(s, plan, t);
        }
    }
}

// ---- Preempting a planned victim refunds its chunk -------------------------

class SchedulerRefundTest : public SchedulerBudgetTest
{
  protected:
    // 8 blocks of 16 tokens: exactly the four 2-block prompts below, so
    // the first decode append that needs a fresh block fails.
    SchedulerRefundTest() : SchedulerBudgetTest(8 * 16) {}
};

TEST_F(SchedulerRefundTest, PreemptedPlannedChunkIsRefunded)
{
    auto s = make({.max_batched_tokens = 8, .decode_tokens_per_step = 2});
    // Admission order: R1, R2, A, B. A is the preemption victim (most
    // recently admitted other than B); its planned chunk must be refunded.
    s.enqueue(add_prefilled(30, 50));
    s.enqueue(add_prefilled(30, 50));
    Request* a = add_prefilled(30, 50);
    s.enqueue(a);
    Request* b = add_prefilled(32, 50);
    s.enqueue(b);

    // One schedule call: all four admitted (8 blocks exactly), then the
    // decode pass runs R1 (+2, slack), R2 (+2, slack), A (+2, slack) and
    // B (+2) needs a fresh block with none free -> A is preempted, its
    // chunk retracted and refunded, and the refund funds A's re-admission
    // prefill chunk — a full 8-token step. Without the refund the step
    // tops out at 6 tokens.
    const BatchPlan plan = s.schedule(0.0);
    EXPECT_EQ(s.preemption_count(), 1);
    EXPECT_EQ(a->state, RequestState::kPrefill);  // re-admitted this step
    EXPECT_LE(plan.batched_tokens(), 8);
    EXPECT_EQ(plan.batched_tokens(), 8);

    // No stale chunk for the victim's retracted decode work.
    for (const auto& c : plan.chunks) {
        if (c.request == a) {
            EXPECT_TRUE(c.is_prefill);
        }
    }
}

// ---- Prefix hits are counted once per request ------------------------------

class SchedulerPrefixCountTest : public SchedulerBudgetTest
{
  protected:
    // 12 blocks: prefix entry (4) + A (5 incl. one decode block) + P2
    // private prefill (2) + one spare that P2's decode growth exhausts.
    SchedulerPrefixCountTest() : SchedulerBudgetTest(12 * 16) {}
};

TEST_F(SchedulerPrefixCountTest, PreemptThenResumeCountsHitOnce)
{
    auto s = make({.max_batched_tokens = 512});

    // P0 fills the shared prefix entry (63 tokens cached) and finishes.
    Request* p0 = add(64, 1);
    p0->spec.prefix_id = 7;
    p0->spec.prefix_tokens = 64;
    s.enqueue(p0);
    complete(s, s.schedule(0.0), 0.1);
    ASSERT_EQ(p0->state, RequestState::kFinished);
    EXPECT_EQ(cache_.prefix_hit_tokens(), 0);  // entry was empty on attach
    EXPECT_EQ(cache_.prefix_cached_tokens(7), 63);

    // A long-running competitor admitted before P2.
    Request* competitor = add(64, 100);
    s.enqueue(competitor);
    complete(s, s.schedule(0.1), 0.2);

    // P2 reuses the prefix: 63 tokens served from cache, counted once.
    // (P2 also tops the entry up to 64, its own attach target.)
    Request* p2 = add(82, 50);
    p2->spec.prefix_id = 7;
    p2->spec.prefix_tokens = 64;
    s.enqueue(p2);
    complete(s, s.schedule(0.2), 0.3);
    EXPECT_EQ(p2->prefix_hit, 63);
    EXPECT_EQ(cache_.prefix_hit_tokens(), 63);

    // Decode both until the pool is exhausted and P2 (most recently
    // admitted) is recompute-preempted, then until it re-attaches.
    double t = 0.3;
    for (int step = 0; step < 300 && p2->preemptions == 0; ++step) {
        t += 0.1;
        complete(s, s.schedule(t), t);
    }
    ASSERT_GE(p2->preemptions, 1) << "test setup: P2 was never preempted";
    for (int step = 0; step < 300 && !p2->prefix_attached; ++step) {
        t += 0.1;
        complete(s, s.schedule(t), t);
    }
    ASSERT_TRUE(p2->prefix_attached) << "P2 never resumed";

    // The resume re-attached the entry but must not re-count the hit.
    EXPECT_EQ(cache_.prefix_hit_tokens(), 63);
}

// ---- Migrated admission keeps the prefill pass's FCFS rule -----------------

class SchedulerMigratedTest : public SchedulerBudgetTest
{
  protected:
    SchedulerMigratedTest() : SchedulerBudgetTest(8 * 16) {}
};

TEST_F(SchedulerMigratedTest, CacheBlockedMigratedRequestBlocksItsClass)
{
    auto s = make({.max_batched_tokens = 512});
    // First migrated request fills the pool; the second does not fit and
    // the third (smaller, same class) must not jump it — intra-class FCFS,
    // matching the prefill pass.
    Request* big = add_prefilled(96, 50);
    s.enqueue(big);
    Request* blocked = add_prefilled(64, 50);
    s.enqueue(blocked);
    Request* small = add_prefilled(16, 50);
    s.enqueue(small);

    const BatchPlan plan = s.schedule(0.0);
    EXPECT_EQ(big->state, RequestState::kDecode);
    EXPECT_EQ(blocked->state, RequestState::kWaiting);
    EXPECT_EQ(small->state, RequestState::kWaiting)
        << "a smaller migrated request jumped a cache-blocked one";
    EXPECT_EQ(plan.chunks.size(), 1u);
}

} // namespace
} // namespace shiftpar::engine

// ---- Disaggregated decode under cache pressure -----------------------------

namespace shiftpar {
namespace {

TEST(DisaggregatedDecode, MigratedAdmissionConservesRequests)
{
    // Small decode pool + many concurrent migrated requests: admission is
    // cache-limited, exercising the blocked-flag path end to end. Every
    // request must still finish exactly once with sane metrics.
    Rng rng(42);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 4.0, 30.0), rng,
        workload::lognormal_size(6000.0, 0.8, 200.0, 0.5));

    core::DisaggregatedOptions opts;
    opts.prefill_gpus = 4;
    opts.decode_gpus = 2;
    core::DisaggregatedSystem sys(model::llama_70b(), hw::h200_node(),
                                  opts);
    const engine::Metrics met = sys.run_workload(reqs);
    ASSERT_EQ(met.requests().size(), reqs.size());
    for (const auto& rec : met.requests()) {
        EXPECT_GT(rec.ttft, 0.0);
        EXPECT_GE(rec.completion, rec.ttft - 1e-12);
    }
}

} // namespace
} // namespace shiftpar
