/** @file Tests for automatic prefix caching: cache entries, scheduler
 *  integration, eviction, and end-to-end TTFT effect. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "kvcache/cache_manager.h"
#include "model/presets.h"
#include "workload/agentic.h"

namespace shiftpar {
namespace {

using engine::RequestSpec;
using kvcache::CacheManager;
using kvcache::KvLayout;
using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;
using shiftpar::testing::tp8_engine_config;

class PrefixCacheManagerTest : public ::testing::Test
{
  protected:
    PrefixCacheManagerTest()
        : cache_(4096, KvLayout::base(model::llama_70b(), {1, 8}), 16)
    {
    }

    CacheManager cache_;
};

TEST_F(PrefixCacheManagerTest, FirstAttachIsFillerWithNoHit)
{
    const auto a = cache_.attach_prefix(7, 1000);
    EXPECT_EQ(a.hit_tokens, 0);
    EXPECT_TRUE(a.is_filler);
    EXPECT_EQ(cache_.prefix_entry_count(), 1u);
}

TEST_F(PrefixCacheManagerTest, SecondAttachHitsFilledEntry)
{
    cache_.attach_prefix(7, 1000);
    ASSERT_TRUE(cache_.try_append_prefix(7, 1000));
    const auto b = cache_.attach_prefix(7, 1000);
    EXPECT_EQ(b.hit_tokens, 1000);
    EXPECT_FALSE(b.is_filler);
    EXPECT_EQ(cache_.prefix_hit_tokens(), 1000);
}

TEST_F(PrefixCacheManagerTest, PartialEntryGivesPartialHit)
{
    cache_.attach_prefix(7, 1000);
    ASSERT_TRUE(cache_.try_append_prefix(7, 300));
    // Filler still active: the second attach hits 300 and does not fill.
    const auto b = cache_.attach_prefix(7, 1000);
    EXPECT_EQ(b.hit_tokens, 300);
    EXPECT_FALSE(b.is_filler);
}

TEST_F(PrefixCacheManagerTest, GrowingTargetResumesFilling)
{
    // Agent contexts grow turn over turn; a later attach with a larger
    // target extends the same entry.
    cache_.attach_prefix(7, 500);
    ASSERT_TRUE(cache_.try_append_prefix(7, 500));
    cache_.detach_prefix(7);
    const auto b = cache_.attach_prefix(7, 900);
    EXPECT_EQ(b.hit_tokens, 500);
    EXPECT_TRUE(b.is_filler);  // must extend 500 -> 900
}

TEST_F(PrefixCacheManagerTest, EntrySurvivesDetach)
{
    cache_.attach_prefix(7, 100);
    ASSERT_TRUE(cache_.try_append_prefix(7, 100));
    cache_.detach_prefix(7);
    EXPECT_EQ(cache_.prefix_cached_tokens(7), 100);
}

TEST_F(PrefixCacheManagerTest, IdleEntriesEvictedUnderPressure)
{
    // Fill an idle prefix, then demand the whole pool for a request.
    cache_.attach_prefix(7, 2048);
    ASSERT_TRUE(cache_.try_append_prefix(7, 2048));
    cache_.detach_prefix(7);
    EXPECT_TRUE(cache_.try_append(1, 4000));
    EXPECT_EQ(cache_.prefix_entry_count(), 0u);  // evicted
}

TEST_F(PrefixCacheManagerTest, PinnedEntriesAreNotEvicted)
{
    cache_.attach_prefix(7, 2048);
    ASSERT_TRUE(cache_.try_append_prefix(7, 2048));
    // Still attached: the big allocation must fail rather than evict.
    EXPECT_FALSE(cache_.try_append(1, 4000));
    EXPECT_EQ(cache_.prefix_cached_tokens(7), 2048);
}

TEST_F(PrefixCacheManagerTest, LruEvictionOrder)
{
    cache_.attach_prefix(1, 1024);
    ASSERT_TRUE(cache_.try_append_prefix(1, 1024));
    cache_.detach_prefix(1);
    cache_.attach_prefix(2, 1024);
    ASSERT_TRUE(cache_.try_append_prefix(2, 1024));
    cache_.detach_prefix(2);
    // Touch entry 1 so entry 2 becomes the LRU.
    cache_.attach_prefix(1, 1024);
    cache_.detach_prefix(1);
    ASSERT_TRUE(cache_.evict_idle_prefixes(
        cache_.token_capacity() / 16 - 64));  // force one eviction
    EXPECT_GT(cache_.prefix_cached_tokens(1), 0);
    EXPECT_EQ(cache_.prefix_cached_tokens(2), 0);
}

TEST(PrefixEngine, SecondTurnTtftDropsWithCaching)
{
    auto cfg = tp8_engine_config();
    auto e = make_engine(tiny_model(), cfg);
    // Two sequential turns of one agent: 40k shared + 500 new each (long
    // enough that the shared part spans several prefill chunks).
    RequestSpec t1{0.0, 40500, 4, 0, 40000};
    RequestSpec t2{100.0, 41000, 4, 0, 40500};
    e->submit(t1, 1);
    e->submit(t2, 2);
    e->drain();
    const auto& reqs = e->metrics().requests();
    ASSERT_EQ(reqs.size(), 2u);
    // Turn 2 prefills only ~1k fresh tokens; its TTFT must be far below
    // turn 1's even though its prompt is longer.
    EXPECT_LT(reqs[1].ttft, reqs[0].ttft / 2.0);
    EXPECT_GE(e->cache().prefix_hit_tokens(), 40000);
}

TEST(PrefixEngine, CachingDisabledKeepsFullPrefill)
{
    auto cfg = tp8_engine_config();
    cfg.sched.enable_prefix_caching = false;
    auto e = make_engine(tiny_model(), cfg);
    e->submit({0.0, 4500, 4, 0, 4000}, 1);
    e->submit({100.0, 5000, 4, 0, 4500}, 2);
    e->drain();
    EXPECT_EQ(e->cache().prefix_hit_tokens(), 0);
    const auto& reqs = e->metrics().requests();
    // Without caching the longer second prompt takes longer.
    EXPECT_GT(reqs[1].ttft, reqs[0].ttft * 0.9);
}

TEST(PrefixEngine, TokensProcessedDropWithCaching)
{
    Rng rng(3);
    workload::AgenticOptions opts;
    opts.num_agents = 4;
    opts.turns_per_agent = 5;
    const auto reqs = workload::agentic_sessions(rng, opts);

    auto run = [&](bool enabled) {
        auto cfg = tp8_engine_config();
        cfg.sched.enable_prefix_caching = enabled;
        auto e = make_engine(tiny_model(), cfg);
        engine::RequestId id = 0;
        for (const auto& r : reqs)
            e->submit(r, id++);
        e->drain();
        return e->metrics().total_tokens();
    };
    const auto with_cache = run(true);
    const auto without = run(false);
    EXPECT_LT(with_cache, without / 2);  // most prompt tokens are shared
}

TEST(PrefixEngine, ConcurrentSharersAllFinish)
{
    // Many requests with the same prefix submitted at once: one fills,
    // the others take partial hits; everyone must finish.
    auto e = make_engine(tiny_model(), tp8_engine_config());
    for (int i = 0; i < 12; ++i)
        e->submit({0.0, 3000, 8, /*prefix_id=*/5, /*prefix_tokens=*/2500},
                  i);
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 12u);
    EXPECT_EQ(e->cache().num_requests(), 0u);
}

TEST_F(PrefixCacheManagerTest, DetachUnknownKeyIsNoOp)
{
    cache_.detach_prefix(999);  // must not crash or underflow
    EXPECT_EQ(cache_.prefix_entry_count(), 0u);
}

TEST_F(PrefixCacheManagerTest, FillerHandoffAfterDetach)
{
    // Filler A departs mid-fill; the next attacher B becomes the filler
    // and resumes from A's progress.
    const auto a = cache_.attach_prefix(7, 1000);
    ASSERT_TRUE(a.is_filler);
    ASSERT_TRUE(cache_.try_append_prefix(7, 400));
    cache_.detach_prefix(7);

    const auto b = cache_.attach_prefix(7, 1000);
    EXPECT_EQ(b.hit_tokens, 400);
    EXPECT_TRUE(b.is_filler);
    ASSERT_TRUE(cache_.try_append_prefix(7, 600));
    const auto c = cache_.attach_prefix(7, 1000);
    EXPECT_EQ(c.hit_tokens, 1000);
    EXPECT_FALSE(c.is_filler);
}

TEST_F(PrefixCacheManagerTest, EvictionTargetUnreachableReturnsFalse)
{
    cache_.attach_prefix(7, 100);
    ASSERT_TRUE(cache_.try_append_prefix(7, 100));  // pinned
    EXPECT_FALSE(cache_.evict_idle_prefixes(1 << 20));
}

TEST(PrefixEngine, PreemptedFillerResumesFromEntry)
{
    // A filler that gets preempted re-attaches and skips the prefix part
    // it already wrote (the entry survives preemption).
    auto cfg = tp8_engine_config();
    auto e = make_engine(tiny_model(), cfg);
    // First request fills the prefix fully; later requests reuse it even
    // after heavy churn forces preemptions.
    for (int i = 0; i < 16; ++i)
        e->submit({0.1 * i, 20000, 16, /*prefix_id=*/3,
                   /*prefix_tokens=*/18000},
                  i);
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 16u);
    // The shared 18k prefix was served from cache many times over.
    EXPECT_GT(e->cache().prefix_hit_tokens(), 15 * 15000);
}

TEST(AgenticWorkload, PrefixesGrowWithinSession)
{
    Rng rng(9);
    workload::AgenticOptions opts;
    opts.num_agents = 2;
    opts.turns_per_agent = 4;
    const auto reqs = workload::agentic_sessions(rng, opts);
    ASSERT_EQ(reqs.size(), 8u);
    // Group by agent and check prefix growth + validity.
    for (int agent = 0; agent < 2; ++agent) {
        std::int64_t last_prefix = -1;
        for (const auto& r : reqs) {
            if (r.prefix_id != agent)
                continue;
            EXPECT_LE(r.prefix_tokens, r.prompt_tokens);
            EXPECT_GT(r.prefix_tokens, last_prefix);
            last_prefix = r.prefix_tokens;
        }
    }
}

} // namespace
} // namespace shiftpar
