/** @file Tests for the continuous-batching / chunked-prefill scheduler. */

#include <gtest/gtest.h>

#include "engine/scheduler.h"
#include "kvcache/layout.h"
#include "model/presets.h"

namespace shiftpar::engine {
namespace {

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest()
        : cache_(kCapacity,
                 kvcache::KvLayout::base(model::llama_70b(), {1, 8}), 16)
    {
    }

    Scheduler
    make(SchedulerOptions opts = {})
    {
        return Scheduler(opts, &cache_);
    }

    Request*
    add(std::int64_t prompt, std::int64_t output)
    {
        auto r = std::make_unique<Request>();
        r->id = next_id_++;
        r->spec = {0.0, prompt, output};
        r->prefill_target = prompt;
        requests_.push_back(std::move(r));
        return requests_.back().get();
    }

    /** Drive plan lifecycle once. */
    std::vector<Request*>
    complete(Scheduler& s, const BatchPlan& plan, double t)
    {
        std::vector<Request*> finished;
        s.on_step_complete(t, plan, &finished);
        return finished;
    }

    static constexpr std::int64_t kCapacity = 1 << 20;
    kvcache::CacheManager cache_;
    std::vector<std::unique_ptr<Request>> requests_;
    RequestId next_id_ = 1;
};

TEST_F(SchedulerTest, EmptyWhenNoRequests)
{
    auto s = make();
    EXPECT_FALSE(s.has_work());
    EXPECT_TRUE(s.schedule(0.0).empty());
}

TEST_F(SchedulerTest, WholePromptInOneChunkWithinBudget)
{
    auto s = make({.max_batched_tokens = 8192});
    Request* r = add(1000, 5);
    s.enqueue(r);
    const BatchPlan plan = s.schedule(1.5);
    ASSERT_EQ(plan.chunks.size(), 1u);
    EXPECT_EQ(plan.chunks[0].new_tokens, 1000);
    EXPECT_TRUE(plan.chunks[0].is_prefill);
    EXPECT_EQ(plan.batched_tokens(), 1000);
    EXPECT_DOUBLE_EQ(r->first_scheduled, 1.5);
}

TEST_F(SchedulerTest, ChunkedPrefillRespectsBudget)
{
    auto s = make({.max_batched_tokens = 512});
    Request* r = add(1200, 5);
    s.enqueue(r);

    auto p1 = s.schedule(0.0);
    EXPECT_EQ(p1.batched_tokens(), 512);
    complete(s, p1, 0.1);
    EXPECT_EQ(r->prefilled, 512);

    auto p2 = s.schedule(0.1);
    EXPECT_EQ(p2.batched_tokens(), 512);
    complete(s, p2, 0.2);

    auto p3 = s.schedule(0.2);
    EXPECT_EQ(p3.batched_tokens(), 176);  // remainder
    complete(s, p3, 0.3);
    EXPECT_TRUE(r->prefill_done());
    EXPECT_EQ(r->decoded, 1);  // prefill completion samples first token
    EXPECT_DOUBLE_EQ(r->first_token, 0.3);
}

TEST_F(SchedulerTest, DecodeTokensScheduledEachStep)
{
    auto s = make();
    Request* r = add(100, 3);
    s.enqueue(r);
    complete(s, s.schedule(0.0), 0.1);  // prefill + first token
    ASSERT_EQ(r->state, RequestState::kDecode);

    auto p = s.schedule(0.1);
    ASSERT_EQ(p.chunks.size(), 1u);
    EXPECT_FALSE(p.chunks[0].is_prefill);
    EXPECT_EQ(p.chunks[0].new_tokens, 1);
    EXPECT_EQ(p.chunks[0].past, 100);
    auto fin = complete(s, p, 0.2);
    EXPECT_TRUE(fin.empty());
    EXPECT_EQ(r->decoded, 2);

    auto fin2 = complete(s, s.schedule(0.2), 0.3);
    ASSERT_EQ(fin2.size(), 1u);
    EXPECT_EQ(fin2[0], r);
    EXPECT_DOUBLE_EQ(r->finished, 0.3);
    EXPECT_FALSE(s.has_work());
    EXPECT_FALSE(cache_.contains(r->id));
}

TEST_F(SchedulerTest, DecodesAndPrefillShareOneBatch)
{
    auto s = make({.max_batched_tokens = 4096});
    Request* a = add(100, 10);
    s.enqueue(a);
    complete(s, s.schedule(0.0), 0.1);  // a now decoding
    Request* b = add(500, 10);
    s.enqueue(b);

    const auto plan = s.schedule(0.1);
    ASSERT_EQ(plan.chunks.size(), 2u);
    EXPECT_FALSE(plan.chunks[0].is_prefill);  // a's decode token first
    EXPECT_TRUE(plan.chunks[1].is_prefill);   // b's prefill fills the rest
    EXPECT_EQ(plan.batched_tokens(), 501);
}

TEST_F(SchedulerTest, FcfsAdmissionOrder)
{
    auto s = make({.max_batched_tokens = 600});
    Request* a = add(500, 5);
    Request* b = add(500, 5);
    s.enqueue(a);
    s.enqueue(b);
    const auto plan = s.schedule(0.0);
    // Budget admits a fully and only 100 tokens of b.
    ASSERT_EQ(plan.chunks.size(), 2u);
    EXPECT_EQ(plan.chunks[0].request, a);
    EXPECT_EQ(plan.chunks[0].new_tokens, 500);
    EXPECT_EQ(plan.chunks[1].request, b);
    EXPECT_EQ(plan.chunks[1].new_tokens, 100);
}

TEST_F(SchedulerTest, MaxRunningSeqsCapsAdmission)
{
    auto s = make({.max_batched_tokens = 8192, .max_running_seqs = 2});
    for (int i = 0; i < 4; ++i)
        s.enqueue(add(10, 5));
    const auto plan = s.schedule(0.0);
    EXPECT_EQ(plan.chunks.size(), 2u);
    EXPECT_EQ(s.num_running(), 2u);
    EXPECT_EQ(s.num_waiting(), 2u);
}

TEST_F(SchedulerTest, MultiTokenDecodeForSpeculation)
{
    auto s = make({.max_batched_tokens = 8192,
                   .max_running_seqs = 1024,
                   .decode_tokens_per_step = 4});
    Request* r = add(50, 10);
    s.enqueue(r);
    complete(s, s.schedule(0.0), 0.1);  // prefill, decoded = 1
    auto p = s.schedule(0.1);
    ASSERT_EQ(p.chunks.size(), 1u);
    EXPECT_EQ(p.chunks[0].new_tokens, 4);
    complete(s, p, 0.2);
    EXPECT_EQ(r->decoded, 5);
    // Last step is clipped to the remaining output.
    complete(s, s.schedule(0.2), 0.3);
    EXPECT_EQ(r->decoded, 9);
    auto p3 = s.schedule(0.3);
    EXPECT_EQ(p3.chunks[0].new_tokens, 1);
    auto fin = complete(s, p3, 0.4);
    EXPECT_EQ(fin.size(), 1u);
    EXPECT_EQ(r->decoded, 10);
}

TEST_F(SchedulerTest, OutstandingTokensTracksRemainingWork)
{
    auto s = make();
    Request* r = add(100, 10);
    s.enqueue(r);
    EXPECT_EQ(s.outstanding_tokens(), 110);
    complete(s, s.schedule(0.0), 0.1);  // prefilled 100, decoded 1
    EXPECT_EQ(s.outstanding_tokens(), 9);
}

class SchedulerPreemptionTest : public ::testing::Test
{
  protected:
    SchedulerPreemptionTest()
        : cache_(/*token_capacity=*/160,
                 kvcache::KvLayout::base(model::llama_70b(), {1, 8}), 16)
    {
    }

    kvcache::CacheManager cache_;
    std::vector<std::unique_ptr<Request>> requests_;
    RequestId next_id_ = 1;

    Request*
    add(std::int64_t prompt, std::int64_t output)
    {
        auto r = std::make_unique<Request>();
        r->id = next_id_++;
        r->spec = {0.0, prompt, output};
        r->prefill_target = prompt;
        requests_.push_back(std::move(r));
        return requests_.back().get();
    }
};

TEST_F(SchedulerPreemptionTest, DecodeUnderPressurePreemptsNewest)
{
    Scheduler s({.max_batched_tokens = 8192}, &cache_);
    // Two requests that exactly exhaust the 160-token cache at admission:
    // a holds 80 (5 blocks), b holds 80 (5 blocks).
    Request* a = add(80, 50);
    Request* b = add(80, 50);
    s.enqueue(a);
    s.enqueue(b);
    std::vector<Request*> fin;
    s.on_step_complete(0.1, s.schedule(0.0), &fin);
    ASSERT_EQ(s.num_running(), 2u);

    // Next decode step needs a block for a's token 81 -> b (newest) gets
    // recompute-preempted.
    const auto plan = s.schedule(0.1);
    EXPECT_GE(s.preemption_count(), 1);
    // b lost its cache and restarts (it may already be re-admitted to
    // prefill within the same scheduling pass, but it is not decoding).
    EXPECT_NE(b->state, RequestState::kDecode);
    EXPECT_EQ(b->prefilled, 0);
    EXPECT_EQ(b->preemptions, 1);
    // b must re-prefill prompt + its already-produced token.
    EXPECT_EQ(b->prefill_target, 81);
    // a keeps decoding.
    bool a_decodes = false;
    for (const auto& c : plan.chunks)
        a_decodes |= (c.request == a && !c.is_prefill);
    EXPECT_TRUE(a_decodes);
}

TEST_F(SchedulerPreemptionTest, PreemptedRequestEventuallyFinishes)
{
    Scheduler s({.max_batched_tokens = 8192}, &cache_);
    Request* a = add(80, 30);
    Request* b = add(80, 30);
    s.enqueue(a);
    s.enqueue(b);
    std::vector<Request*> finished;
    double t = 0.0;
    for (int step = 0; step < 500 && s.has_work(); ++step) {
        const auto plan = s.schedule(t);
        ASSERT_FALSE(plan.empty()) << "scheduler stalled at step " << step;
        t += 0.01;
        std::vector<Request*> fin;
        s.on_step_complete(t, plan, &fin);
        finished.insert(finished.end(), fin.begin(), fin.end());
    }
    EXPECT_EQ(finished.size(), 2u);
    EXPECT_TRUE(a->done());
    EXPECT_TRUE(b->done());
}

} // namespace
} // namespace shiftpar::engine
