/** @file Tests for client-side request cancellation. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "parallel/perf_model.h"

namespace shiftpar::engine {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;
using shiftpar::testing::tp8_engine_config;

TEST(Cancel, WaitingRequestRemoved)
{
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;
    auto e = make_engine(tiny_model(), cfg);
    e->submit({0.0, 5000, 50}, 1);
    e->submit({0.0, 5000, 50}, 2);  // queued behind request 1
    EXPECT_TRUE(e->cancel(2));
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 1u);
    EXPECT_EQ(e->metrics().requests()[0].id, 1);
    EXPECT_EQ(e->cancelled_count(), 1);
}

TEST(Cancel, RunningRequestReleasesCache)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({0.0, 1000, 1000}, 1);
    e->run_until(0.05);  // mid-decode
    ASSERT_TRUE(e->has_work());
    EXPECT_GT(e->cache().num_requests(), 0u);
    EXPECT_TRUE(e->cancel(1));
    EXPECT_EQ(e->cache().num_requests(), 0u);
    EXPECT_FALSE(e->has_work());
    EXPECT_EQ(e->metrics().requests().size(), 0u);
}

TEST(Cancel, UnknownOrFinishedRequestsReturnFalse)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({0.0, 100, 2}, 1);
    e->drain();
    EXPECT_FALSE(e->cancel(1));   // already finished
    EXPECT_FALSE(e->cancel(99));  // never existed
    EXPECT_EQ(e->cancelled_count(), 0);
}

TEST(Cancel, DoubleCancelIsIdempotent)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({0.0, 1000, 100}, 1);
    EXPECT_TRUE(e->cancel(1));
    EXPECT_FALSE(e->cancel(1));
    EXPECT_EQ(e->cancelled_count(), 1);
}

TEST(Cancel, OtherRequestsUnaffected)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    for (int i = 0; i < 10; ++i)
        e->submit({0.0, 500, 20}, i);
    e->run_until(0.02);
    EXPECT_TRUE(e->cancel(3));
    EXPECT_TRUE(e->cancel(7));
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 8u);
    for (const auto& rec : e->metrics().requests()) {
        EXPECT_NE(rec.id, 3);
        EXPECT_NE(rec.id, 7);
    }
}

TEST(Cancel, MigratedAwayRequestIsRejectedWithoutCrashing)
{
    // Once a request is stolen for migration it belongs to another
    // replica; a late client abort addressed to the old replica must be
    // refused (the router delivers it to the new owner instead).
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;
    auto e = make_engine(tiny_model(), cfg);
    e->submit({0.0, 5000, 50}, 1);
    e->submit({0.0, 5000, 50}, 2);  // queued, zero progress: stealable
    const auto stolen = e->steal_waiting();
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->second, 2);
    EXPECT_FALSE(e->cancel(2));
    EXPECT_EQ(e->cancelled_count(), 0);
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 1u);
}

TEST(Cancel, StealSkipsRequestsWithProgress)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({0.0, 1000, 100}, 1);
    e->run_until(0.05);  // request 1 is running: nothing stealable
    EXPECT_FALSE(e->steal_waiting().has_value());
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 1u);
}

TEST(Cancel, PrefilledRequestReleasesKvOnCancel)
{
    // A migrated-in request (disaggregated decode) admits its prompt KV
    // without compute; cancelling it mid-decode must release that KV.
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit_prefilled({0.0, 4096, 64}, 1);
    e->run_until(0.01);  // mid-decode
    ASSERT_TRUE(e->has_work());
    EXPECT_GT(e->cache().num_requests(), 0u);
    EXPECT_TRUE(e->cancel(1));
    EXPECT_EQ(e->cache().num_requests(), 0u);
    EXPECT_FALSE(e->has_work());
    EXPECT_EQ(e->metrics().requests().size(), 0u);
}

TEST(Cancel, WaitingPrefilledRequestCancelsCleanly)
{
    // Cancel lands between KV-handoff delivery and decode admission: the
    // request is waiting with prefilled state and must cancel cleanly.
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;
    auto e = make_engine(tiny_model(), cfg);
    e->submit_prefilled({0.0, 4096, 64}, 1);
    e->submit_prefilled({0.0, 4096, 64}, 2);  // queued behind request 1
    EXPECT_TRUE(e->cancel(2));
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), 1u);
    EXPECT_EQ(e->metrics().requests()[0].id, 1);
}

TEST(ComponentRemoval, ScalesMatchFig15Methodology)
{
    // The Fig. 15 knobs: removing a component must subtract exactly that
    // component's time.
    const auto m = tiny_model();
    const auto node = shiftpar::testing::test_node();
    const parallel::PerfModel full(node, m);
    parallel::PerfOptions no_comm;
    no_comm.comm_scale = 0.0;
    parallel::PerfOptions no_attn;
    no_attn.attention_scale = 0.0;
    parallel::PerfOptions no_engine;
    no_engine.engine_overhead = false;

    const auto work = parallel::BatchWork::prefill(4096);
    const parallel::ParallelConfig cfg{4, 2};
    const auto base = full.step_time(work, cfg);
    EXPECT_NEAR(parallel::PerfModel(node, m, no_comm)
                    .step_time(work, cfg)
                    .total(),
                base.total() - base.comm, 1e-12);
    EXPECT_NEAR(parallel::PerfModel(node, m, no_attn)
                    .step_time(work, cfg)
                    .total(),
                base.total() - base.attention, 1e-12);
    EXPECT_NEAR(parallel::PerfModel(node, m, no_engine)
                    .step_time(work, cfg)
                    .total(),
                base.total() - base.overhead, 1e-12);
}

} // namespace
} // namespace shiftpar::engine
