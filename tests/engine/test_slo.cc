/** @file Tests for SLO attainment and goodput accounting. */

#include <gtest/gtest.h>

#include "engine/metrics.h"

namespace shiftpar::engine {
namespace {

RequestRecord
record(double ttft, double tpot, std::int64_t prompt, std::int64_t output)
{
    RequestRecord r;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.ttft = ttft;
    r.tpot = tpot;
    r.completion = ttft + tpot * static_cast<double>(output);
    return r;
}

TEST(Slo, EmptyMetrics)
{
    Metrics m(1.0);
    EXPECT_DOUBLE_EQ(m.slo_attainment({1.0, 0.05}), 0.0);
    EXPECT_DOUBLE_EQ(m.goodput({1.0, 0.05}), 0.0);
}

TEST(Slo, AttainmentCountsBothBounds)
{
    Metrics m(1.0);
    m.add_record(record(0.5, 0.01, 100, 10));  // meets both
    m.add_record(record(3.0, 0.01, 100, 10));  // TTFT violation
    m.add_record(record(0.5, 0.20, 100, 10));  // TPOT violation
    m.add_record(record(3.0, 0.20, 100, 10));  // both violated
    EXPECT_DOUBLE_EQ(m.slo_attainment({1.0, 0.05}), 0.25);
}

TEST(Slo, SingleTokenRequestsIgnoreTpot)
{
    Metrics m(1.0);
    m.add_record(record(0.5, 0.0, 100, 1));  // TPOT undefined for 1 token
    EXPECT_DOUBLE_EQ(m.slo_attainment({1.0, 0.001}), 1.0);
}

TEST(Slo, GoodputCountsOnlySatisfyingTokens)
{
    Metrics m(1.0);
    m.add_record(record(0.5, 0.01, 1000, 100));  // ok: 1100 tokens
    m.add_record(record(9.0, 0.01, 5000, 100));  // violates TTFT
    StepRecord step;
    step.start = 0.0;
    step.end = 10.0;  // makespan 10 s
    step.batched_tokens = 6200;
    m.on_step(step);
    EXPECT_DOUBLE_EQ(m.goodput({1.0, 0.05}), 110.0);
    EXPECT_DOUBLE_EQ(m.mean_throughput(), 620.0);
}

TEST(Slo, LooserSloNeverLowersAttainment)
{
    Metrics m(1.0);
    for (int i = 0; i < 20; ++i)
        m.add_record(record(0.1 * i, 0.002 * i, 100, 10));
    const double tight = m.slo_attainment({0.5, 0.01});
    const double loose = m.slo_attainment({1.5, 0.03});
    EXPECT_LE(tight, loose);
}

} // namespace
} // namespace shiftpar::engine
