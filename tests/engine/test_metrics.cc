/**
 * @file
 * Metrics edge cases: merge with empty operands, self-merge, merge
 * equivalence with direct accumulation, and zero-duration throughput /
 * goodput queries.
 */

#include <gtest/gtest.h>

#include "engine/metrics.h"

using namespace shiftpar;
using engine::Metrics;
using engine::RequestRecord;
using engine::SloSpec;
using engine::StepRecord;

namespace {

RequestRecord
record(engine::RequestId id, double ttft, double tpot)
{
    RequestRecord rec;
    rec.id = id;
    rec.arrival = 0.0;
    rec.prompt_tokens = 100;
    rec.output_tokens = 20;
    rec.ttft = ttft;
    rec.tpot = tpot;
    rec.completion = ttft + tpot * 19;
    rec.wait = ttft / 2;
    return rec;
}

StepRecord
step(double start, double end, std::int64_t tokens, int sp)
{
    StepRecord s;
    s.start = start;
    s.end = end;
    s.batched_tokens = tokens;
    s.num_seqs = 1;
    s.cfg = {sp, 1};
    return s;
}

} // namespace

TEST(Metrics, MergeEmptyIsNoop)
{
    Metrics m(1.0);
    m.add_record(record(0, 0.1, 0.02));
    m.on_step(step(0.0, 1.0, 120, 4));

    const Metrics empty(1.0);
    m.merge(empty);
    EXPECT_EQ(m.requests().size(), 1u);
    EXPECT_EQ(m.steps().size(), 1u);
    EXPECT_EQ(m.total_tokens(), 120);
    EXPECT_DOUBLE_EQ(m.end_time(), 1.0);
}

TEST(Metrics, MergeIntoEmptyReproducesSource)
{
    Metrics src(1.0);
    src.add_record(record(0, 0.1, 0.02));
    src.add_record(record(1, 0.3, 0.04));
    src.on_step(step(0.0, 1.5, 200, 4));
    src.on_step(step(1.5, 2.0, 40, 1));

    Metrics dst(1.0);
    dst.merge(src);
    EXPECT_EQ(dst.requests().size(), src.requests().size());
    EXPECT_EQ(dst.total_tokens(), src.total_tokens());
    EXPECT_DOUBLE_EQ(dst.end_time(), src.end_time());
    EXPECT_DOUBLE_EQ(dst.mean_throughput(), src.mean_throughput());
    EXPECT_EQ(dst.sp_steps(), src.sp_steps());
    EXPECT_EQ(dst.tp_steps(), src.tp_steps());
    EXPECT_DOUBLE_EQ(dst.ttft().percentile(50), src.ttft().percentile(50));
}

TEST(Metrics, MergeMatchesDirectAccumulation)
{
    Metrics a(1.0), b(1.0), direct(1.0);
    for (int i = 0; i < 20; ++i) {
        const RequestRecord rec = record(i, 0.05 * (i + 1), 0.01);
        const StepRecord s = step(i * 0.5, i * 0.5 + 0.4, 64 + i, i % 2 ? 4 : 1);
        ((i % 2 == 0) ? a : b).add_record(rec);
        ((i % 2 == 0) ? a : b).on_step(s);
        direct.add_record(rec);
        direct.on_step(s);
    }
    a.merge(b);
    EXPECT_EQ(a.requests().size(), direct.requests().size());
    EXPECT_EQ(a.total_tokens(), direct.total_tokens());
    EXPECT_DOUBLE_EQ(a.end_time(), direct.end_time());
    EXPECT_DOUBLE_EQ(a.mean_throughput(), direct.mean_throughput());
    EXPECT_DOUBLE_EQ(a.ttft().percentile(90), direct.ttft().percentile(90));
    EXPECT_DOUBLE_EQ(a.completion().sum(), direct.completion().sum());
    EXPECT_DOUBLE_EQ(a.throughput().peak_rate(),
                     direct.throughput().peak_rate());
}

TEST(Metrics, SelfMergeIsRejected)
{
    Metrics m(1.0);
    m.add_record(record(0, 0.1, 0.02));
    EXPECT_DEATH(m.merge(m), "itself");
}

TEST(Metrics, ZeroDurationRunHasZeroThroughput)
{
    Metrics m(1.0);
    EXPECT_EQ(m.mean_throughput(), 0.0);

    // Records without any step telemetry: end_time stays 0; throughput
    // and goodput must not divide by zero.
    m.add_record(record(0, 0.1, 0.02));
    EXPECT_EQ(m.end_time(), 0.0);
    EXPECT_EQ(m.mean_throughput(), 0.0);
    EXPECT_EQ(m.goodput({1.0, 1.0}), 0.0);
}

TEST(Metrics, EmptyMetricsSloQueriesAreZero)
{
    const Metrics m(1.0);
    const SloSpec slo{0.5, 0.05};
    EXPECT_EQ(m.slo_attainment(slo), 0.0);
    EXPECT_EQ(m.goodput(slo), 0.0);
}

TEST(Metrics, ZeroWidthStepIsAccepted)
{
    // A degenerate (instantaneous) step must not corrupt the timeline.
    Metrics m(1.0);
    m.on_step(step(2.0, 2.0, 10, 1));
    EXPECT_DOUBLE_EQ(m.end_time(), 2.0);
    EXPECT_DOUBLE_EQ(m.mean_throughput(), 5.0);
}

TEST(Metrics, MalformedStepIsRejected)
{
    Metrics m(1.0);
    EXPECT_DEATH(m.on_step(step(2.0, 1.0, 10, 1)), "malformed");
}

TEST(Metrics, GoodputCountsOnlySloSatisfyingTokens)
{
    Metrics m(1.0);
    m.add_record(record(0, 0.1, 0.01));  // meets SLO
    m.add_record(record(1, 9.0, 0.01));  // TTFT violation
    m.on_step(step(0.0, 10.0, 240, 4));

    const SloSpec slo{0.5, 0.05};
    EXPECT_DOUBLE_EQ(m.slo_attainment(slo), 0.5);
    // Only request 0's 120 tokens count, over the 10 s makespan.
    EXPECT_DOUBLE_EQ(m.goodput(slo), 12.0);
}
