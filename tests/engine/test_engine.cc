/** @file End-to-end tests for the engine loop, metrics, and router. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "model/presets.h"
#include "parallel/perf_model.h"

namespace shiftpar::engine {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::test_node;
using shiftpar::testing::tiny_model;
using shiftpar::testing::tp8_engine_config;

TEST(Engine, SingleRequestLifecycle)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({0.0, 1000, 10}, 1);
    EXPECT_TRUE(e->has_work());
    e->drain();
    EXPECT_FALSE(e->has_work());

    const auto& reqs = e->metrics().requests();
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].prompt_tokens, 1000);
    EXPECT_GT(reqs[0].ttft, 0.0);
    EXPECT_GT(reqs[0].tpot, 0.0);
    EXPECT_GE(reqs[0].completion, reqs[0].ttft);
    // KV fully released at the end.
    EXPECT_EQ(e->cache().num_requests(), 0u);
}

TEST(Engine, TtftMatchesPerfModelPrediction)
{
    const auto m = tiny_model();
    auto cfg = tp8_engine_config();
    cfg.sched.max_batched_tokens = 1 << 20;  // single-chunk prefill
    auto e = make_engine(m, cfg);
    e->submit({0.0, 2048, 2}, 1);
    e->drain();

    const parallel::PerfModel perf(test_node(), m, cfg.perf);
    const double expected = perf.prefill_time(2048, cfg.base);
    EXPECT_NEAR(e->metrics().requests()[0].ttft, expected, 1e-12);
}

TEST(Engine, TpotMatchesDecodeStepTime)
{
    const auto m = tiny_model();
    auto cfg = tp8_engine_config();
    auto e = make_engine(m, cfg);
    const std::int64_t out = 11;
    e->submit({0.0, 256, out}, 1);
    e->drain();

    // With one lone request every decode step is batch 1; TPOT should be
    // within the range of the per-step decode times (context grows).
    const parallel::PerfModel perf(test_node(), m, cfg.perf);
    const double lo = perf.decode_step_time(1, 256, cfg.base);
    const double hi = perf.decode_step_time(1, 256 + out, cfg.base);
    const double tpot = e->metrics().requests()[0].tpot;
    EXPECT_GE(tpot, lo * 0.99);
    EXPECT_LE(tpot, hi * 1.01);
}

TEST(Engine, ArrivalDelayIsRespected)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    e->submit({5.0, 100, 2}, 1);
    e->run_until(5.0);
    e->drain();
    const auto& rec = e->metrics().requests()[0];
    // Wait should be ~zero: the engine was idle when it arrived.
    EXPECT_NEAR(rec.wait, 0.0, 1e-9);
}

TEST(Engine, QueueingShowsUpInWait)
{
    auto cfg = tp8_engine_config();
    cfg.sched.max_running_seqs = 1;  // force serialization
    auto e = make_engine(tiny_model(), cfg);
    e->submit({0.0, 5000, 50}, 1);
    e->submit({0.0, 5000, 50}, 2);
    e->drain();
    const auto& reqs = e->metrics().requests();
    ASSERT_EQ(reqs.size(), 2u);
    // The second-served request queued behind the whole first request.
    const double max_wait = std::max(reqs[0].wait, reqs[1].wait);
    EXPECT_GT(max_wait, 0.01);
}

TEST(Engine, AllSubmittedRequestsFinishExactlyOnce)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    const int n = 40;
    for (int i = 0; i < n; ++i)
        e->submit({0.01 * i, 200 + 13 * i, 5 + i % 7}, i);
    e->run_until(1.0);
    e->drain();
    EXPECT_EQ(e->metrics().requests().size(), static_cast<std::size_t>(n));
    // Token conservation: every prompt token and every output token except
    // the final sampled one (which never re-enters the model) is processed
    // at least once (preemption can re-process).
    std::int64_t expected = 0;
    for (const auto& r : e->metrics().requests())
        expected += r.prompt_tokens + r.output_tokens - 1;
    EXPECT_GE(e->metrics().total_tokens(), expected);
}

TEST(Engine, StepRecordsAreTimeOrderedAndConsistent)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    for (int i = 0; i < 10; ++i)
        e->submit({0.0, 300, 8}, i);
    e->drain();
    double prev_end = 0.0;
    for (const auto& s : e->metrics().steps()) {
        EXPECT_GE(s.start, prev_end - 1e-12);
        EXPECT_GT(s.end, s.start);
        EXPECT_NEAR(s.end - s.start, s.timing.total(), 1e-12);
        EXPECT_GT(s.batched_tokens, 0);
        prev_end = s.end;
    }
}

TEST(Engine, RejectsModelThatDoesNotFit)
{
    engine::EngineConfig cfg;
    cfg.base = {1, 1};  // Llama-17B-16E (109 GB) alone on one GPU is OK...
    cfg.with_shift_model = false;
    model::ModelConfig m = model::llama_17b_16e();
    m.weight_dtype = model::DType::kFp16;  // ...but 218 GB FP16 is not.
    EXPECT_DEATH(Engine(test_node(), m, cfg,
                        std::make_unique<FixedPolicy>(cfg.base)),
                 "does not fit");
}

TEST(Engine, RejectsInvalidSubmission)
{
    auto e = make_engine(tiny_model(), tp8_engine_config());
    EXPECT_DEATH(e->submit({0.0, 0, 5}, 1), "at least one");
}

TEST(Metrics, MergeCombinesEverything)
{
    Metrics a(1.0);
    Metrics b(1.0);
    StepRecord s;
    s.start = 0.0;
    s.end = 0.5;
    s.batched_tokens = 100;
    s.cfg = {8, 1};
    a.on_step(s);
    s.start = 1.0;
    s.end = 2.0;
    s.batched_tokens = 50;
    s.cfg = {1, 8};
    b.on_step(s);
    a.merge(b);
    EXPECT_EQ(a.total_tokens(), 150);
    EXPECT_EQ(a.sp_steps(), 1);
    EXPECT_EQ(a.tp_steps(), 1);
    EXPECT_DOUBLE_EQ(a.end_time(), 2.0);
    EXPECT_DOUBLE_EQ(a.mean_throughput(), 75.0);
}

TEST(Router, RoundRobinSpreadsRequests)
{
    std::vector<std::unique_ptr<Engine>> engines;
    engine::EngineConfig cfg;
    cfg.base = {1, 1};
    for (int i = 0; i < 4; ++i)
        engines.push_back(make_engine(tiny_model(), cfg));
    Router router(std::move(engines), RoutingPolicy::kRoundRobin);
    for (int i = 0; i < 8; ++i)
        router.submit({0.0, 100, 2}, i);
    router.drain();
    for (std::size_t i = 0; i < router.size(); ++i)
        EXPECT_EQ(router.engine(i).metrics().requests().size(), 2u);
}

TEST(Router, LeastTokensBalancesUnevenLoad)
{
    std::vector<std::unique_ptr<Engine>> engines;
    engine::EngineConfig cfg;
    cfg.base = {1, 1};
    for (int i = 0; i < 2; ++i)
        engines.push_back(make_engine(tiny_model(), cfg));
    Router router(std::move(engines), RoutingPolicy::kLeastTokens);
    router.submit({0.0, 10000, 100}, 0);  // heavy -> replica 0
    router.submit({0.0, 100, 2}, 1);      // light -> replica 1
    router.submit({0.0, 100, 2}, 2);      // replica 1 still lighter
    router.drain();
    EXPECT_EQ(router.engine(0).metrics().requests().size(), 1u);
    EXPECT_EQ(router.engine(1).metrics().requests().size(), 2u);
}

TEST(Router, RunWorkloadHandlesUnsortedArrivals)
{
    std::vector<std::unique_ptr<Engine>> engines;
    engines.push_back(make_engine(tiny_model(), tp8_engine_config()));
    Router router(std::move(engines));
    const std::vector<RequestSpec> workload = {
        {2.0, 100, 2}, {0.5, 100, 2}, {1.0, 100, 2}};
    const Metrics m = router.run_workload(workload);
    EXPECT_EQ(m.requests().size(), 3u);
    for (const auto& r : m.requests())
        EXPECT_GE(r.wait, -1e-12);
}

} // namespace
} // namespace shiftpar::engine
