/** @file Edge-case tests for the scheduler: tiny budgets, clipping,
 *  arrival gating under priorities, plan retraction. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/test_helpers.h"
#include "engine/scheduler.h"
#include "kvcache/layout.h"
#include "model/presets.h"

namespace shiftpar::engine {
namespace {

class SchedulerEdge : public ::testing::Test
{
  protected:
    SchedulerEdge()
        : cache_(1 << 18,
                 kvcache::KvLayout::base(model::llama_70b(), {1, 8}), 16)
    {
    }

    Request*
    add(std::int64_t prompt, std::int64_t output, int priority = 0,
        double arrival = 0.0)
    {
        auto r = std::make_unique<Request>();
        r->id = next_id_++;
        r->spec = {arrival, prompt, output};
        r->spec.priority = priority;
        r->prefill_target = prompt;
        requests_.push_back(std::move(r));
        return requests_.back().get();
    }

    void
    run_step(Scheduler& s, double t)
    {
        std::vector<Request*> fin;
        s.on_step_complete(t, s.schedule(t), &fin);
    }

    kvcache::CacheManager cache_;
    std::vector<std::unique_ptr<Request>> requests_;
    RequestId next_id_ = 1;
};

TEST_F(SchedulerEdge, BudgetOfOneStillMakesProgress)
{
    Scheduler s({.max_batched_tokens = 1}, &cache_);
    Request* r = add(3, 2);
    s.enqueue(r);
    double t = 0.0;
    for (int i = 0; i < 10 && s.has_work(); ++i)
        run_step(s, t += 0.01);
    EXPECT_TRUE(r->done());
    // 3 prefill chunks of 1 token + 1 decode step.
    EXPECT_DOUBLE_EQ(r->finished, 0.04);
}

TEST_F(SchedulerEdge, DecodeClipsAtOutputBoundary)
{
    Scheduler s({.max_batched_tokens = 8192,
                 .max_running_seqs = 1024,
                 .decode_tokens_per_step = 100},
                &cache_);
    Request* r = add(10, 3);  // only 2 tokens to decode after prefill
    s.enqueue(r);
    run_step(s, 0.1);  // prefill emits token 1
    const auto plan = s.schedule(0.2);
    ASSERT_EQ(plan.chunks.size(), 1u);
    EXPECT_EQ(plan.chunks[0].new_tokens, 2);
}

TEST_F(SchedulerEdge, FutureArrivalNotScheduled)
{
    Scheduler s({}, &cache_);
    Request* r = add(100, 2, 0, /*arrival=*/5.0);
    s.enqueue(r);
    EXPECT_TRUE(s.schedule(1.0).empty());
    EXPECT_DOUBLE_EQ(s.earliest_waiting_arrival(), 5.0);
    EXPECT_FALSE(s.schedule(5.0).empty());
}

TEST_F(SchedulerEdge, ArrivedLowPriorityAdmittedPastFutureHighPriority)
{
    Scheduler s({}, &cache_);
    s.enqueue(add(100, 2, /*priority=*/5, /*arrival=*/100.0));
    Request* now_req = add(100, 2, /*priority=*/0, /*arrival=*/0.0);
    s.enqueue(now_req);
    const auto plan = s.schedule(0.0);
    ASSERT_EQ(plan.chunks.size(), 1u);
    EXPECT_EQ(plan.chunks[0].request, now_req);
}

TEST_F(SchedulerEdge, HigherPriorityPrefillGetsBudgetFirst)
{
    Scheduler s({.max_batched_tokens = 1000}, &cache_);
    Request* low = add(5000, 2, 0);
    Request* high = add(5000, 2, 3);
    s.enqueue(low);   // submitted first
    s.enqueue(high);  // outranks it
    const auto plan = s.schedule(0.0);
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.chunks[0].request, high);
    EXPECT_EQ(plan.batched_tokens(), 1000);
}

TEST_F(SchedulerEdge, ZeroOutputRequestsAreIllegalUpstream)
{
    // Engine::submit rejects them; scheduler-level contract is output>=1.
    auto e = shiftpar::testing::make_engine(
        shiftpar::testing::tiny_model(),
        shiftpar::testing::tp8_engine_config());
    EXPECT_DEATH(e->submit({0.0, 10, 0}, 1), "at least one");
}

TEST_F(SchedulerEdge, OutstandingTokensZeroWhenIdle)
{
    Scheduler s({}, &cache_);
    EXPECT_EQ(s.outstanding_tokens(), 0);
    EXPECT_FALSE(s.has_work());
    EXPECT_TRUE(std::isinf(s.earliest_waiting_arrival()));
}

TEST_F(SchedulerEdge, BatchPlanAccounting)
{
    Scheduler s({.max_batched_tokens = 600}, &cache_);
    s.enqueue(add(500, 5));
    s.enqueue(add(500, 5));
    const auto plan = s.schedule(0.0);
    EXPECT_EQ(plan.batched_tokens(), 600);
    const auto work = plan.work();
    EXPECT_EQ(work.total_new_tokens(), 600);
    EXPECT_EQ(work.num_seqs(), 2);
    EXPECT_TRUE(work.chunks[0].is_prefill);
}

} // namespace
} // namespace shiftpar::engine
