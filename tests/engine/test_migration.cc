/** @file Tests for cross-replica migration on the cluster replay. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "obs/trace.h"

namespace shiftpar::engine {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;

std::vector<std::unique_ptr<Engine>>
two_replicas()
{
    std::vector<std::unique_ptr<Engine>> engines;
    for (int i = 0; i < 2; ++i) {
        EngineConfig cfg;
        cfg.base = {1, 4};
        engines.push_back(make_engine(tiny_model(), cfg));
    }
    return engines;
}

/** A workload round-robin routing loads lopsidedly: big/small alternate. */
std::vector<RequestSpec>
lopsided_burst(int n)
{
    std::vector<RequestSpec> reqs;
    for (int i = 0; i < n; ++i) {
        const bool big = i % 2 == 0;
        reqs.push_back({0.0001 * i, big ? 8192 : 128, big ? 256 : 8});
    }
    return reqs;
}

/** Counts kMigrated lifecycle events on the bus. */
class MigrationCounter : public obs::TraceSink
{
  public:
    void on_request(const obs::RequestEvent& ev) override
    {
        if (ev.phase == obs::RequestPhase::kMigrated)
            ++migrated_;
    }
    std::int64_t migrated() const { return migrated_; }

  private:
    std::int64_t migrated_ = 0;
};

TEST(Migration, RebalancesLopsidedRoundRobinLoad)
{
    MigrationOptions mig;
    mig.enabled = true;
    mig.min_token_imbalance = 2048;
    Router router(two_replicas(), RoutingPolicy::kRoundRobin, mig);
    MigrationCounter sink;
    router.set_trace(&sink);

    const auto reqs = lopsided_burst(40);
    const Metrics met = router.run_workload(reqs);

    EXPECT_GT(router.migration_count(), 0);
    // Satellite contract: every migration publishes a kMigrated event.
    EXPECT_EQ(sink.migrated(), router.migration_count());
    // Every request finishes exactly once, wherever it ended up.
    ASSERT_EQ(met.requests().size(), reqs.size());
    std::set<RequestId> ids;
    for (const auto& rec : met.requests())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), reqs.size());
}

TEST(Migration, ImprovesTailLatencyOfTheLopsidedLoad)
{
    const auto reqs = lopsided_burst(40);

    Router plain(two_replicas(), RoutingPolicy::kRoundRobin);
    const Metrics without = plain.run_workload(reqs);

    MigrationOptions mig;
    mig.enabled = true;
    mig.min_token_imbalance = 2048;
    Router balanced(two_replicas(), RoutingPolicy::kRoundRobin, mig);
    const Metrics with = balanced.run_workload(reqs);

    ASSERT_GT(balanced.migration_count(), 0);
    // Moving queued stragglers off the overloaded replica must not hurt
    // the worst completion, and in this lopsided burst it should help.
    EXPECT_LE(with.completion().percentile(99),
              without.completion().percentile(99));
}

TEST(Migration, DisabledOptionsNeverMigrate)
{
    Router router(two_replicas(), RoutingPolicy::kRoundRobin);
    const auto reqs = lopsided_burst(20);
    router.run_workload(reqs);
    EXPECT_EQ(router.migration_count(), 0);
}

TEST(Migration, BalancedLoadStaysPut)
{
    MigrationOptions mig;
    mig.enabled = true;
    mig.min_token_imbalance = 2048;
    Router router(two_replicas(), RoutingPolicy::kLeastTokens, mig);
    // Uniform requests through least-tokens routing: no imbalance forms.
    std::vector<RequestSpec> reqs;
    for (int i = 0; i < 20; ++i)
        reqs.push_back({0.05 * i, 1024, 32});
    const Metrics met = router.run_workload(reqs);
    EXPECT_EQ(router.migration_count(), 0);
    EXPECT_EQ(met.requests().size(), reqs.size());
}

} // namespace
} // namespace shiftpar::engine
