/** @file Tests for the paged KV cache: allocator, tables, layouts, manager. */

#include <gtest/gtest.h>

#include "kvcache/cache_manager.h"
#include "model/presets.h"

namespace shiftpar::kvcache {
namespace {

TEST(BlockAllocator, AllocateUntilExhausted)
{
    BlockAllocator a(4, 16);
    EXPECT_EQ(a.num_free(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(a.allocate().has_value());
    EXPECT_FALSE(a.allocate().has_value());
    EXPECT_EQ(a.num_used(), 4);
    EXPECT_DOUBLE_EQ(a.utilization(), 1.0);
}

TEST(BlockAllocator, FreeReturnsBlocks)
{
    BlockAllocator a(2, 16);
    const BlockId b = *a.allocate();
    a.free(b);
    EXPECT_EQ(a.num_free(), 2);
}

TEST(BlockAllocator, DoubleFreePanics)
{
    BlockAllocator a(2, 16);
    const BlockId b = *a.allocate();
    a.free(b);
    EXPECT_DEATH(a.free(b), "double free");
}

TEST(BlockAllocator, InvalidFreePanics)
{
    BlockAllocator a(2, 16);
    EXPECT_DEATH(a.free(99), "invalid block");
}

TEST(BlockAllocator, BlocksForTokens)
{
    BlockAllocator a(10, 16);
    EXPECT_EQ(a.blocks_for_tokens(0), 0);
    EXPECT_EQ(a.blocks_for_tokens(1), 1);
    EXPECT_EQ(a.blocks_for_tokens(16), 1);
    EXPECT_EQ(a.blocks_for_tokens(17), 2);
}

TEST(BlockAllocator, CanAllocate)
{
    BlockAllocator a(3, 16);
    EXPECT_TRUE(a.can_allocate(3));
    EXPECT_FALSE(a.can_allocate(4));
}

TEST(BlockTable, GrowthAllocatesOnBlockBoundaries)
{
    BlockAllocator a(10, 16);
    BlockTable t;
    EXPECT_TRUE(t.append_tokens(10, a));
    EXPECT_EQ(t.num_blocks(), 1);
    EXPECT_TRUE(t.append_tokens(6, a));  // exactly fills the block
    EXPECT_EQ(t.num_blocks(), 1);
    EXPECT_TRUE(t.append_tokens(1, a));
    EXPECT_EQ(t.num_blocks(), 2);
    EXPECT_EQ(t.num_tokens(), 17);
}

TEST(BlockTable, AllOrNothingOnFailure)
{
    BlockAllocator a(2, 16);
    BlockTable t;
    // 40 tokens need 3 blocks but only 2 exist: nothing allocated.
    EXPECT_FALSE(t.append_tokens(40, a));
    EXPECT_EQ(t.num_tokens(), 0);
    EXPECT_EQ(a.num_free(), 2);
}

TEST(BlockTable, ReleaseReturnsEverything)
{
    BlockAllocator a(4, 16);
    BlockTable t;
    ASSERT_TRUE(t.append_tokens(50, a));
    t.release(a);
    EXPECT_EQ(t.num_tokens(), 0);
    EXPECT_EQ(a.num_free(), 4);
}

TEST(KvLayoutTest, DpAndTpAreNotInvariant)
{
    // Section 1: TP and DP cannot switch — incompatible cache layouts.
    const auto m = model::llama_70b();
    const KvLayout dp = KvLayout::dp(m, 8);
    const KvLayout tp = KvLayout::naive_tp(m, 8);
    EXPECT_FALSE(dp.invariant_with(tp));
    EXPECT_GT(switch_cost_bytes(m, dp, tp, 10000), 0.0);
}

TEST(KvLayoutTest, PlacementSwitchCostUsesSharedKvHeadUnit)
{
    // Cross-check of the deduplicated dtype sizing: a full reshard moves
    // every head's cache slice, priced in the same kv_head_bytes_per_token
    // unit that capacity accounting uses.
    const auto m = model::llama_70b();
    const std::int64_t cached = 10000;
    const double cost = switch_cost_bytes(m, KvLayout::dp(m, 8),
                                          KvLayout::naive_tp(m, 8), cached);
    EXPECT_DOUBLE_EQ(
        cost, static_cast<double>(m.kv_heads) *
                  static_cast<double>(cached) *
                  model::kv_head_bytes_per_token(m.head_dim, m.kv_dtype));
    EXPECT_DOUBLE_EQ(cost, static_cast<double>(cached) *
                               m.kv_bytes_per_token_layer());
}

TEST(KvLayoutTest, InvariantSwitchIsFree)
{
    const auto m = model::llama_70b();
    const KvLayout base = KvLayout::base(m, {4, 2});
    const KvLayout shift = KvLayout::shift(m, {4, 2});
    EXPECT_TRUE(base.invariant_with(shift));
    EXPECT_DOUBLE_EQ(switch_cost_bytes(m, base, shift, 1 << 20), 0.0);
}

TEST(KvLayoutTest, NaiveTpSwitchCostCountsMisplacedHeads)
{
    const auto m = model::llama_70b();
    const KvLayout base = KvLayout::base(m, {4, 2});
    const KvLayout naive = KvLayout::naive_tp(m, 8);
    const double cost = switch_cost_bytes(m, base, naive, 1000);
    EXPECT_GT(cost, 0.0);
    // Upper bound: all 8 KV heads' slices move.
    const double all = 8.0 * 1000.0 * 2.0 * m.head_dim *
                       model::dtype_bytes(m.kv_dtype);
    EXPECT_LE(cost, all);
}

TEST(KvLayoutTest, DpToDpIsFree)
{
    const auto m = model::llama_70b();
    EXPECT_DOUBLE_EQ(
        switch_cost_bytes(m, KvLayout::dp(m, 8), KvLayout::dp(m, 8), 5000),
        0.0);
}

TEST(KvLayoutTest, DescribeShowsPlacementAndHeads)
{
    const auto m = model::llama_70b();
    const std::string s = describe(KvLayout::base(m, {1, 8}));
    EXPECT_NE(s.find("head-sharded"), std::string::npos);
    EXPECT_NE(s.find("r0:0"), std::string::npos);
}

TEST(CacheManager, AdmitAndReleaseAccounting)
{
    const auto m = model::llama_70b();
    CacheManager c(1000, KvLayout::base(m, {1, 8}), 16);
    EXPECT_EQ(c.token_capacity(), 1000);
    EXPECT_TRUE(c.try_append(1, 100));
    EXPECT_EQ(c.cached_tokens(1), 100);
    EXPECT_TRUE(c.contains(1));
    EXPECT_EQ(c.num_requests(), 1u);
    c.release(1);
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.free_tokens(), (1000 / 16) * 16);
}

TEST(CacheManager, RejectsWhenFull)
{
    const auto m = model::llama_70b();
    CacheManager c(64, KvLayout::base(m, {1, 8}), 16);
    EXPECT_TRUE(c.try_append(1, 64));
    EXPECT_FALSE(c.try_append(2, 1));
    EXPECT_FALSE(c.contains(2));  // failed admission leaves no residue
    c.release(1);
    EXPECT_TRUE(c.try_append(2, 1));
}

TEST(CacheManager, FailedGrowthKeepsExistingTokens)
{
    const auto m = model::llama_70b();
    CacheManager c(32, KvLayout::base(m, {1, 8}), 16);
    EXPECT_TRUE(c.try_append(1, 30));
    EXPECT_FALSE(c.try_append(1, 100));
    EXPECT_EQ(c.cached_tokens(1), 30);
}

TEST(CacheManager, InvarianceAssertPassesAndFails)
{
    const auto m = model::llama_70b();
    CacheManager c(100, KvLayout::base(m, {4, 2}), 16);
    c.assert_invariant_with(KvLayout::shift(m, {4, 2}));
    EXPECT_DEATH(c.assert_invariant_with(KvLayout::naive_tp(m, 8)),
                 "not invariant");
}

TEST(CacheManager, UtilizationTracksUsage)
{
    const auto m = model::llama_70b();
    CacheManager c(160, KvLayout::base(m, {1, 8}), 16);
    EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
    c.try_append(1, 80);
    EXPECT_DOUBLE_EQ(c.utilization(), 0.5);
}

namespace {

/** Records eviction instants so tests can pin the victim sequence. */
struct EvictionLog : obs::TraceSink
{
    std::vector<std::string> instants;
    void
    on_instant(obs::EngineId, double, const std::string& name) override
    {
        instants.push_back(name);
    }
};

/** Fill three evictable prefix entries (keys 7, 3, 5 in LRU order) into
 *  `c`, optionally after `dummies` empty entries that perturb the
 *  unordered_map's bucket layout without being evictable. */
void
stage_prefixes(CacheManager& c, int dummies)
{
    for (int i = 0; i < dummies; ++i)
        c.attach_prefix(100 + i, 0);
    for (const PrefixKey key : {7, 3, 5}) {
        c.attach_prefix(key, 32);
        EXPECT_TRUE(c.try_append_prefix(key, 32));
        c.detach_prefix(key);
    }
}

} // namespace

// Regression guard for the shiftlint `unordered-emit` finding in
// evict_idle_prefixes: victim selection iterates an unordered_map, so it
// must be a total order over (last_use, key) — never hash-bucket order,
// which varies with the map's insertion history. The two managers here
// hold identical evictable entries in different bucket layouts and must
// report byte-identical eviction traces.
TEST(CacheManager, EvictionOrderIndependentOfHashLayout)
{
    const auto m = model::llama_70b();
    const double clock = 0.0;

    std::vector<std::vector<std::string>> traces;
    for (const int dummies : {0, 29}) {
        CacheManager c(160, KvLayout::base(m, {1, 8}), 16);
        EvictionLog log;
        c.set_trace(&log, 0, &clock);
        stage_prefixes(c, dummies);
        // 96 of 160 tokens are held by idle prefixes; admitting 160
        // evicts all three, least recently used first.
        EXPECT_TRUE(c.try_append(1, 160));
        traces.push_back(log.instants);
    }

    const std::vector<std::string> expected = {
        "prefix_evict #7", "prefix_evict #3", "prefix_evict #5"};
    EXPECT_EQ(traces[0], expected);
    EXPECT_EQ(traces[1], expected);
}

} // namespace
} // namespace shiftpar::kvcache
