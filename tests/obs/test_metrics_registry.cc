/**
 * @file
 * Tests for the self-observability metrics registry: instrument semantics,
 * canonical label ordering, deterministic snapshots/expositions, merge
 * behavior, and the thread-override used by the sweep runner.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/metrics_registry.h"
#include "obs/report_json.h"

namespace shiftpar {
namespace {

using obs::MetricLabels;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(MetricsRegistry, StartsEmptyAndClears)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_TRUE(reg.snapshot().empty());
    reg.counter_add("a");
    reg.gauge_set("b", 1.0);
    reg.observe("c", 2.0);
    EXPECT_FALSE(reg.empty());
    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, CountersAccumulate)
{
    MetricsRegistry reg;
    reg.counter_add("requests_total");
    reg.counter_add("requests_total", 4);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "requests_total");
    EXPECT_EQ(snap.counters[0].value, 5);
}

TEST(MetricsRegistry, GaugeSetOverwritesAndMaxRaises)
{
    MetricsRegistry reg;
    reg.gauge_set("depth", 7.0);
    reg.gauge_set("depth", 3.0);
    reg.gauge_max("peak", 5.0);
    reg.gauge_max("peak", 2.0);  // lower: must not regress
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].name, "depth");
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
    EXPECT_EQ(snap.gauges[1].name, "peak");
    EXPECT_DOUBLE_EQ(snap.gauges[1].value, 5.0);
}

TEST(MetricsRegistry, HistogramsSummarize)
{
    MetricsRegistry reg;
    for (int i = 1; i <= 100; ++i)
        reg.observe("latency", static_cast<double>(i));
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto& h = snap.histograms[0];
    EXPECT_EQ(h.count, 100);
    EXPECT_DOUBLE_EQ(h.sum, 5050.0);
    EXPECT_DOUBLE_EQ(h.mean, 50.5);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, 100.0);
    // Log-bucketed sketch: quantiles are approximate but ordered.
    EXPECT_LE(h.p50, h.p90);
    EXPECT_LE(h.p90, h.p99);
    EXPECT_GT(h.p50, 0.0);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized)
{
    MetricsRegistry reg;
    reg.counter_add("faults", 1, {{"kind", "fail"}, {"site", "router"}});
    reg.counter_add("faults", 2, {{"site", "router"}, {"kind", "fail"}});
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);  // same series either way
    EXPECT_EQ(snap.counters[0].value, 3);
    const MetricLabels expect = {{"kind", "fail"}, {"site", "router"}};
    EXPECT_EQ(snap.counters[0].labels, expect);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameThenLabels)
{
    MetricsRegistry reg;
    reg.counter_add("zz");
    reg.counter_add("aa", 1, {{"k", "2"}});
    reg.counter_add("aa", 1, {{"k", "1"}});
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].name, "aa");
    EXPECT_EQ(snap.counters[0].labels[0].second, "1");
    EXPECT_EQ(snap.counters[1].name, "aa");
    EXPECT_EQ(snap.counters[1].labels[0].second, "2");
    EXPECT_EQ(snap.counters[2].name, "zz");
}

TEST(MetricsRegistry, MergeSumsCountersMaxesGaugesFoldsHistograms)
{
    MetricsRegistry a, b;
    a.counter_add("c", 2);
    b.counter_add("c", 3);
    b.counter_add("only_b", 7);
    a.gauge_max("g", 4.0);
    b.gauge_max("g", 9.0);
    a.observe("h", 1.0);
    b.observe("h", 3.0);

    a.merge_from(b);
    const MetricsSnapshot snap = a.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].value, 5);   // c
    EXPECT_EQ(snap.counters[1].value, 7);   // only_b
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 9.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 2);
    EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 4.0);
}

TEST(MetricsRegistry, MergeOrderInvariantForIntegerAndGaugeSeries)
{
    // For counters and gauges the merge result is order-independent;
    // float histogram sums are why the sweep runner fixes the order.
    MetricsRegistry parts[3];
    for (int i = 0; i < 3; ++i) {
        parts[i].counter_add("c", i + 1);
        parts[i].gauge_max("g", static_cast<double>(10 - i));
    }
    MetricsRegistry fwd, rev;
    for (int i = 0; i < 3; ++i)
        fwd.merge_from(parts[i]);
    for (int i = 2; i >= 0; --i)
        rev.merge_from(parts[i]);
    std::ostringstream a, b;
    fwd.write_prometheus(a);
    rev.write_prometheus(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsRegistry, PrometheusExpositionShape)
{
    MetricsRegistry reg;
    reg.counter_add("shiftpar_fault_requests_total", 3,
                    {{"outcome", "shed"}});
    reg.gauge_set("shiftpar_queue_depth", 4.0);
    reg.observe("shiftpar_run_seconds", 0.5);
    reg.observe("shiftpar_run_seconds", 1.5);
    std::ostringstream os;
    reg.write_prometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE shiftpar_fault_requests_total counter"),
              std::string::npos);
    EXPECT_NE(
        text.find("shiftpar_fault_requests_total{outcome=\"shed\"} 3"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE shiftpar_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE shiftpar_run_seconds summary"),
              std::string::npos);
    EXPECT_NE(text.find("shiftpar_run_seconds{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("shiftpar_run_seconds_sum 2"), std::string::npos);
    EXPECT_NE(text.find("shiftpar_run_seconds_count 2"),
              std::string::npos);
}

TEST(MetricsRegistry, ThreadOverrideRedirectsCurrent)
{
    MetricsRegistry buffer;
    MetricsRegistry* prev = MetricsRegistry::set_thread_override(&buffer);
    MetricsRegistry::current().counter_add("buffered");
    MetricsRegistry::set_thread_override(prev);
    EXPECT_FALSE(buffer.empty());
    ASSERT_EQ(buffer.snapshot().counters.size(), 1u);
    EXPECT_EQ(buffer.snapshot().counters[0].name, "buffered");

    // The override is per-thread: another thread still sees global().
    MetricsRegistry* prev2 = MetricsRegistry::set_thread_override(&buffer);
    std::thread other([] {
        EXPECT_EQ(&MetricsRegistry::current(), &MetricsRegistry::global());
    });
    other.join();
    MetricsRegistry::set_thread_override(prev2);
}

TEST(MetricsRegistry, ReportJsonCarriesMetricsSection)
{
    MetricsRegistry reg;
    reg.counter_add("shiftpar_demo_total", 2, {{"kind", "x"}});
    reg.observe("shiftpar_demo_seconds", 0.25);

    obs::ReportJson report;
    engine::Metrics m;
    report.add_run("run", m);
    report.set_metrics(reg.snapshot());
    std::ostringstream os;
    report.write(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"metrics\""), std::string::npos);
    EXPECT_NE(text.find("\"shiftpar_demo_total\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"x\""), std::string::npos);
    EXPECT_NE(text.find("\"shiftpar_demo_seconds\""), std::string::npos);
}

TEST(MetricsRegistry, EmptySnapshotLeavesReportUnchanged)
{
    obs::ReportJson with, without;
    engine::Metrics m;
    with.add_run("run", m);
    without.add_run("run", m);
    with.set_metrics(MetricsSnapshot{});  // empty: must be dropped
    std::ostringstream a, b;
    with.write(a);
    without.write(b);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------------
// Destruction-order safety of the global registry
// ---------------------------------------------------------------------------

/** Exercised during process teardown, after main() has returned. */
void
touch_registry_at_exit()
{
    // bench_common registers an atexit flush that reads the registry; any
    // later-registered handler (or static destructor in another TU) may
    // run after a function-local `static MetricsRegistry` would have been
    // destroyed. The leaky heap singleton makes this always valid.
    MetricsRegistry::global().counter_add("teardown_touch");
    if (MetricsRegistry::global().snapshot().counters.empty())
        std::abort();  // lost the write: the registry died before us
}

TEST(MetricsRegistryTeardownDeathTest, AtexitHandlerMayUseGlobalRegistry)
{
    // The hazardous ordering: the handler registers BEFORE the first
    // global() call, so with a function-local static the registry would be
    // constructed after (and thus destroyed before) the handler runs —
    // a use-after-destruction that crashes or trips ASan at exit(0).
    // "threadsafe" re-executes the test binary for the child, so the
    // child's registration order is exactly as written here.
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            std::atexit(touch_registry_at_exit);
            MetricsRegistry::global().counter_add("main_touch");
            std::exit(0);
        },
        testing::ExitedWithCode(0), "");
}

} // namespace
} // namespace shiftpar
