/**
 * @file
 * obs::ChromeTraceWriter — well-formed Chrome-trace JSON, async span
 * balance/nesting, per-engine tracks, and end-to-end traces of DP,
 * Shift, and disaggregated deployments.
 */

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_checker.h"
#include "common/test_helpers.h"
#include "core/deployment.h"
#include "core/disaggregated.h"
#include "obs/chrome_trace.h"
#include "workload/synthetic.h"

using namespace shiftpar;
using shiftpar::testing::JsonValue;
using shiftpar::testing::parse_json;

namespace {

/** Parse the writer's output (throws on malformed JSON). */
JsonValue
render(const obs::ChromeTraceWriter& w)
{
    std::ostringstream os;
    w.write(os);
    return parse_json(os.str());
}

/** Collect process_name metadata: pid -> label. */
std::map<int, std::string>
process_names(const JsonValue& doc)
{
    std::map<int, std::string> names;
    for (const auto& e : doc.at("traceEvents").arr()) {
        if (e.at("ph").str() == "M" && e.at("name").str() == "process_name")
            names[static_cast<int>(e.at("pid").num())] =
                e.at("args").at("name").str();
    }
    return names;
}

/** Count events by phase code. */
std::map<std::string, int>
phase_counts(const JsonValue& doc)
{
    std::map<std::string, int> counts;
    for (const auto& e : doc.at("traceEvents").arr())
        ++counts[e.at("ph").str()];
    return counts;
}

/** Assert every async begin has a matching end and markers sit between. */
void
expect_spans_balanced(const JsonValue& doc)
{
    struct Span
    {
        // A single id may carry several sequential b/e pairs (e.g. the
        // prefill and decode legs of a disaggregated request), so track
        // the envelope [first begin, last end].
        double begin = 1e300, end = -1e300;
        int begins = 0, ends = 0;
        std::vector<double> markers;
    };
    std::map<std::string, Span> spans;
    for (const auto& e : doc.at("traceEvents").arr()) {
        const std::string ph = e.at("ph").str();
        if (ph != "b" && ph != "e" && ph != "n")
            continue;
        Span& s = spans[e.at("id").str()];
        const double ts = e.at("ts").num();
        if (ph == "b") {
            ++s.begins;
            s.begin = std::min(s.begin, ts);
        } else if (ph == "e") {
            ++s.ends;
            s.end = std::max(s.end, ts);
        } else {
            s.markers.push_back(ts);
        }
    }
    ASSERT_FALSE(spans.empty());
    for (const auto& [id, s] : spans) {
        EXPECT_EQ(s.begins, s.ends) << "unbalanced span " << id;
        EXPECT_GE(s.end, s.begin) << id;
        for (const double m : s.markers) {
            EXPECT_GE(m, s.begin) << id;
            EXPECT_LE(m, s.end) << id;
        }
    }
}

} // namespace

TEST(ChromeTrace, SyntheticEventsRenderValidJson)
{
    obs::ChromeTraceWriter w;
    w.set_run_label("unit");
    obs::EngineMeta meta;
    meta.label = "engine A";
    const obs::EngineId a = w.register_engine(meta);
    meta.label = "engine B";
    const obs::EngineId b = w.register_engine(meta);
    ASSERT_NE(a, b);

    w.on_request({a, 1, obs::RequestPhase::kSubmit, 0.0, 128});
    w.on_request({a, 1, obs::RequestPhase::kFirstSchedule, 0.5, 0});
    w.on_request({a, 1, obs::RequestPhase::kPrefillChunk, 0.5, 128});
    w.on_request({a, 1, obs::RequestPhase::kFirstToken, 1.0, 0});
    w.on_request({a, 1, obs::RequestPhase::kFinish, 2.0, 16});

    obs::StepEvent step;
    step.engine = b;
    step.start = 0.0;
    step.end = 0.125;
    step.batched_tokens = 128;
    step.num_seqs = 1;
    step.cfg = {4, 2};
    step.shifted = false;
    w.on_step(step);
    w.on_mode_switch({b, 0.125, true, 8, {4, 2}, {1, 8}});
    w.on_gauge({b, 0.125, 0.5, 1000, 2, 3, 4096});
    w.on_instant(b, 0.2, "prefix_evict #1");

    const auto doc = render(w);
    EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");

    const auto names = process_names(doc);
    EXPECT_EQ(names.at(a), "unit/engine A");
    EXPECT_EQ(names.at(b), "unit/engine B");
    // Request spans live on a dedicated per-run process.
    bool found_requests = false;
    for (const auto& [pid, name] : names)
        found_requests |= name.find("requests") != std::string::npos;
    EXPECT_TRUE(found_requests);

    const auto counts = phase_counts(doc);
    EXPECT_EQ(counts.at("b"), 1);
    EXPECT_EQ(counts.at("e"), 1);
    EXPECT_EQ(counts.at("n"), 3);
    EXPECT_EQ(counts.at("X"), 1);
    EXPECT_GE(counts.at("i"), 2);  // mode switch + cache instant
    EXPECT_GE(counts.at("C"), 4);  // counters
    expect_spans_balanced(doc);

    // The step event carries timing/config args and a duration.
    for (const auto& e : doc.at("traceEvents").arr()) {
        if (e.at("ph").str() != "X")
            continue;
        EXPECT_EQ(e.at("name").str(), "base step");
        EXPECT_DOUBLE_EQ(e.at("dur").num(), 0.125 * 1e6);
        EXPECT_EQ(e.at("args").at("batched_tokens").num(), 128.0);
    }
}

TEST(ChromeTrace, CancelEndsTheSpan)
{
    obs::ChromeTraceWriter w;
    const obs::EngineId a = w.register_engine({});
    w.on_request({a, 7, obs::RequestPhase::kSubmit, 0.0, 64});
    w.on_request({a, 7, obs::RequestPhase::kCancel, 1.0, 0});
    const auto doc = render(w);
    const auto counts = phase_counts(doc);
    EXPECT_EQ(counts.at("b"), 1);
    EXPECT_EQ(counts.at("e"), 1);
    expect_spans_balanced(doc);
}

TEST(ChromeTrace, RetryAndLossKeepRequestSpansBalanced)
{
    obs::ChromeTraceWriter w;
    const obs::EngineId a = w.register_engine({});

    // Request 1: submitted, dropped by a replica failure, resubmitted on
    // retry, then finishes. The second kSubmit must not open a second
    // span — it renders as a "resubmit" marker inside the first.
    w.on_request({a, 1, obs::RequestPhase::kSubmit, 0.0, 128});
    w.on_request({a, 1, obs::RequestPhase::kRetried, 0.5, 1});
    w.on_request({a, 1, obs::RequestPhase::kSubmit, 0.75, 128});
    w.on_request({a, 1, obs::RequestPhase::kFinish, 2.0, 16});

    // Request 2: submitted, dropped, retries exhausted — kLost ends the
    // span like a cancellation.
    w.on_request({a, 2, obs::RequestPhase::kSubmit, 0.0, 64});
    w.on_request({a, 2, obs::RequestPhase::kRetried, 0.25, 1});
    w.on_request({a, 2, obs::RequestPhase::kLost, 1.5, 0});

    const auto doc = render(w);
    expect_spans_balanced(doc);

    int resubmits = 0;
    bool lost_closed_a_span = false;
    for (const auto& e : doc.at("traceEvents").arr()) {
        const std::string ph = e.at("ph").str();
        if (ph == "n" && e.at("name").str() == "resubmit")
            ++resubmits;
        if (ph == "e" && e.at("args").has("lost"))
            lost_closed_a_span = true;
    }
    const auto counts = phase_counts(doc);
    EXPECT_EQ(counts.at("b"), 2);
    EXPECT_EQ(counts.at("e"), 2);
    EXPECT_EQ(resubmits, 1);
    EXPECT_TRUE(lost_closed_a_span);
}

TEST(ChromeTrace, DpDeploymentGetsOneTrackPerReplica)
{
    obs::ChromeTraceWriter w;
    w.set_run_label("DP");

    core::Deployment d;
    d.model = shiftpar::testing::tiny_model();
    d.strategy = parallel::Strategy::kDp;
    d.trace = &w;
    const auto workload = workload::uniform_batch(16, 256, 8);
    core::run_deployment(d, workload);

    const auto doc = render(w);
    const auto names = process_names(doc);
    int engine_tracks = 0;
    for (const auto& [pid, name] : names)
        engine_tracks += name.rfind("DP/engine", 0) == 0 ? 1 : 0;
    EXPECT_EQ(engine_tracks, core::resolve(d).replicas);
    expect_spans_balanced(doc);

    // Every request was routed: one kRouted marker per request.
    int routed = 0;
    for (const auto& e : doc.at("traceEvents").arr())
        routed += e.at("name").str() == "routed" ? 1 : 0;
    EXPECT_EQ(routed, 16);
}

TEST(ChromeTrace, ShiftRunEmitsModeTransitions)
{
    obs::ChromeTraceWriter w;
    w.set_run_label("Shift");

    core::Deployment d;
    d.model = shiftpar::testing::tiny_model();
    d.strategy = parallel::Strategy::kShift;
    d.shift_threshold = 64;  // prefill chunks shift up, decode shifts down
    d.trace = &w;
    core::run_deployment(d, workload::uniform_batch(4, 512, 32));

    const auto doc = render(w);
    int shifts = 0, unshifts = 0, shift_steps = 0, base_steps = 0;
    for (const auto& e : doc.at("traceEvents").arr()) {
        const std::string& name = e.at("name").str();
        shifts += name == "shift" ? 1 : 0;
        unshifts += name == "unshift" ? 1 : 0;
        shift_steps += name == "shift step" ? 1 : 0;
        base_steps += name == "base step" ? 1 : 0;
    }
    EXPECT_GE(shifts, 1);
    EXPECT_GE(base_steps, 1);
    EXPECT_GE(shift_steps, 1);
    // Transitions alternate, so the counts differ by at most one.
    EXPECT_LE(std::abs(shifts - unshifts), 1);
    expect_spans_balanced(doc);
}

TEST(ChromeTrace, DisaggregatedPoolsGetSeparateTracks)
{
    obs::ChromeTraceWriter w;
    w.set_run_label("disagg");

    core::DisaggregatedOptions opts;
    opts.prefill_gpus = 4;
    opts.decode_gpus = 4;
    opts.trace = &w;
    core::DisaggregatedSystem sys(shiftpar::testing::tiny_model(), shiftpar::testing::test_node(),
                                  opts);
    sys.run_workload(workload::uniform_batch(8, 256, 8));

    const auto doc = render(w);
    const auto names = process_names(doc);
    bool prefill = false, decode = false;
    for (const auto& [pid, name] : names) {
        prefill |= name.find("prefill pool") != std::string::npos;
        decode |= name.find("decode pool") != std::string::npos;
    }
    EXPECT_TRUE(prefill);
    EXPECT_TRUE(decode);
    expect_spans_balanced(doc);

    int handoffs = 0;
    for (const auto& e : doc.at("traceEvents").arr())
        handoffs +=
            e.at("name").str().rfind("kv_handoff", 0) == 0 ? 1 : 0;
    EXPECT_EQ(handoffs, 8);
}

TEST(ChromeTrace, ConsecutiveRunsKeepSeparateIdSpaces)
{
    // Two runs replayed into one sink: both start at t=0 with request id
    // 0, and must not corrupt each other's spans.
    obs::ChromeTraceWriter w;
    for (const char* label : {"run1", "run2"}) {
        w.set_run_label(label);
        const obs::EngineId id = w.register_engine({});
        w.on_request({id, 0, obs::RequestPhase::kSubmit, 0.0, 32});
        w.on_request({id, 0, obs::RequestPhase::kFinish, 1.0, 4});
    }
    const auto doc = render(w);
    std::set<std::string> ids;
    for (const auto& e : doc.at("traceEvents").arr())
        if (e.at("ph").str() == "b")
            ids.insert(e.at("id").str());
    EXPECT_EQ(ids.size(), 2u);
    expect_spans_balanced(doc);
}

TEST(ChromeTrace, TracingDoesNotPerturbResults)
{
    // The acceptance bar: identical simulation output with and without a
    // sink attached.
    core::Deployment d;
    d.model = shiftpar::testing::tiny_model();
    d.strategy = parallel::Strategy::kShift;
    const auto workload = workload::uniform_batch(12, 384, 16);
    const auto plain = core::run_deployment(d, workload);

    obs::ChromeTraceWriter w;
    d.trace = &w;
    const auto traced = core::run_deployment(d, workload);
    EXPECT_GT(w.num_events(), 0u);

    ASSERT_EQ(plain.requests().size(), traced.requests().size());
    for (std::size_t i = 0; i < plain.requests().size(); ++i) {
        EXPECT_EQ(plain.requests()[i].ttft, traced.requests()[i].ttft);
        EXPECT_EQ(plain.requests()[i].tpot, traced.requests()[i].tpot);
        EXPECT_EQ(plain.requests()[i].completion,
                  traced.requests()[i].completion);
    }
    EXPECT_EQ(plain.end_time(), traced.end_time());
    EXPECT_EQ(plain.total_tokens(), traced.total_tokens());
}
