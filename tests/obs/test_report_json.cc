/**
 * @file
 * obs::ReportJson — schema-versioned run reports: document structure,
 * metric fidelity, SLO evaluation, and null handling.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/json_checker.h"
#include "engine/metrics.h"
#include "obs/report_json.h"

using namespace shiftpar;
using shiftpar::testing::parse_json;

namespace {

/** Metrics with a handful of known records and one step. */
engine::Metrics
sample_metrics()
{
    engine::Metrics m(1.0);
    for (int i = 0; i < 10; ++i) {
        engine::RequestRecord rec;
        rec.id = i;
        rec.arrival = 0.5 * i;
        rec.prompt_tokens = 100;
        rec.output_tokens = 10;
        rec.ttft = 0.1 * (i + 1);
        rec.tpot = 0.02;
        rec.completion = 1.0 + 0.1 * i;
        rec.wait = 0.05;
        m.add_record(rec);
    }
    engine::StepRecord step;
    step.start = 0.0;
    step.end = 6.0;
    step.batched_tokens = 1100;
    step.num_seqs = 10;
    step.cfg = {4, 2};
    m.on_step(step);
    return m;
}

} // namespace

TEST(ReportJson, DocumentCarriesSchemaAndVersion)
{
    obs::ReportJson report("Fig X");
    report.add_run("shift", sample_metrics());
    std::ostringstream os;
    report.write(os);

    const auto doc = parse_json(os.str());
    EXPECT_EQ(doc.at("schema").str(), obs::kReportSchemaName);
    EXPECT_EQ(doc.at("version").num(),
              static_cast<double>(obs::kReportSchemaVersion));
    EXPECT_EQ(doc.at("title").str(), "Fig X");
    ASSERT_EQ(doc.at("runs").arr().size(), 1u);
}

TEST(ReportJson, MetricsMatchTheSource)
{
    const engine::Metrics m = sample_metrics();
    obs::ReportJson report;
    report.add_run("shift", m);
    std::ostringstream os;
    report.write(os);

    const auto run = parse_json(os.str()).at("runs").arr()[0];
    EXPECT_EQ(run.at("name").str(), "shift");
    EXPECT_TRUE(run.at("deployment").is_null());

    const auto& met = run.at("metrics");
    EXPECT_EQ(met.at("requests").num(), 10.0);
    EXPECT_EQ(met.at("total_tokens").num(),
              static_cast<double>(m.total_tokens()));
    EXPECT_DOUBLE_EQ(met.at("duration_s").num(), m.end_time());
    EXPECT_DOUBLE_EQ(met.at("mean_throughput_tok_s").num(),
                     m.mean_throughput());
    const auto& ttft = met.at("ttft_s");
    EXPECT_DOUBLE_EQ(ttft.at("p50").num(), m.ttft().percentile(50));
    EXPECT_DOUBLE_EQ(ttft.at("p99").num(), m.ttft().percentile(99));
    EXPECT_DOUBLE_EQ(ttft.at("mean").num(), m.ttft().mean());
    EXPECT_DOUBLE_EQ(ttft.at("min").num(), m.ttft().min());
    EXPECT_DOUBLE_EQ(ttft.at("max").num(), m.ttft().max());
    EXPECT_EQ(ttft.at("count").num(), 10.0);
    EXPECT_TRUE(met.at("slo").is_null());
}

TEST(ReportJson, DeploymentAndSloBlocks)
{
    obs::RunDeploymentInfo info;
    info.description = "1 engine(s) x (SP=4,TP=2)";
    info.sp = 4;
    info.tp = 2;
    info.replicas = 1;
    info.shift_threshold = 1536;

    engine::SloSpec slo;
    slo.ttft = 0.5;
    slo.tpot = 0.05;

    const engine::Metrics m = sample_metrics();
    obs::ReportJson report("Fig Y");
    report.add_run("shift", m, info, slo);
    std::ostringstream os;
    report.write(os);

    const auto run = parse_json(os.str()).at("runs").arr()[0];
    const auto& dep = run.at("deployment");
    EXPECT_EQ(dep.at("sp").num(), 4.0);
    EXPECT_EQ(dep.at("tp").num(), 2.0);
    EXPECT_EQ(dep.at("replicas").num(), 1.0);
    EXPECT_EQ(dep.at("shift_threshold").num(), 1536.0);
    EXPECT_EQ(dep.at("description").str(), "1 engine(s) x (SP=4,TP=2)");

    const auto& slo_out = run.at("metrics").at("slo");
    EXPECT_DOUBLE_EQ(slo_out.at("ttft_s").num(), 0.5);
    EXPECT_DOUBLE_EQ(slo_out.at("tpot_s").num(), 0.05);
    EXPECT_DOUBLE_EQ(slo_out.at("attainment").num(), m.slo_attainment(slo));
    EXPECT_DOUBLE_EQ(slo_out.at("goodput_tok_s").num(), m.goodput(slo));
}

TEST(ReportJson, MultipleRunsKeepOrder)
{
    obs::ReportJson report;
    report.add_run("DP", sample_metrics());
    report.add_run("TP", sample_metrics());
    report.add_run("Shift", sample_metrics());
    EXPECT_EQ(report.num_runs(), 3u);

    std::ostringstream os;
    report.write(os);
    const auto runs = parse_json(os.str()).at("runs").arr();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].at("name").str(), "DP");
    EXPECT_EQ(runs[1].at("name").str(), "TP");
    EXPECT_EQ(runs[2].at("name").str(), "Shift");
}

TEST(ReportJson, EmptyMetricsRunIsRepresentable)
{
    obs::ReportJson report;
    report.add_run("empty", engine::Metrics(1.0));
    std::ostringstream os;
    report.write(os);
    const auto met = parse_json(os.str()).at("runs").arr()[0].at("metrics");
    EXPECT_EQ(met.at("requests").num(), 0.0);
    EXPECT_EQ(met.at("mean_throughput_tok_s").num(), 0.0);
    EXPECT_EQ(met.at("ttft_s").at("count").num(), 0.0);
}
