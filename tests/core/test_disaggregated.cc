/** @file Tests for the disaggregated prefill/decode baseline. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "core/disaggregated.h"
#include "model/presets.h"

namespace shiftpar::core {
namespace {

using shiftpar::testing::test_node;

TEST(Disaggregated, RejectsOversizedPools)
{
    DisaggregatedOptions opts;
    opts.prefill_gpus = 6;
    opts.decode_gpus = 6;
    EXPECT_DEATH(DisaggregatedSystem(model::llama_70b(), test_node(), opts),
                 "exceed");
}

TEST(Disaggregated, TransferDelayScalesWithContext)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const double small = sys.transfer_delay(1000);
    const double large = sys.transfer_delay(100000);
    EXPECT_GT(large, 50.0 * small);
    // 100k tokens * 327 KB/token ~ 32.7 GB over ~630 GB/s: tens of ms.
    EXPECT_GT(large, 0.02);
    EXPECT_LT(large, 0.2);
}

TEST(Disaggregated, AllRequestsFinishWithSaneMetrics)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < 20; ++i)
        reqs.push_back({0.3 * i, 2000 + 100 * i, 50});
    const auto met = sys.run_workload(reqs);
    ASSERT_EQ(met.requests().size(), reqs.size());
    for (const auto& r : met.requests()) {
        EXPECT_GT(r.ttft, 0.0);
        EXPECT_GT(r.tpot, 0.0);
        EXPECT_GT(r.completion, r.ttft);
    }
}

TEST(Disaggregated, SingleTokenRequestsFinishOnPrefillPool)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto met = sys.run_workload({{0.0, 1024, 1}});
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(met.requests()[0].tpot, 0.0);
    EXPECT_GT(met.requests()[0].completion, 0.0);
}

TEST(Disaggregated, CompletionIncludesTransferDelay)
{
    // One lone request: completion must exceed the colocated equivalent by
    // at least the transfer delay (same pools, no queueing).
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const std::vector<engine::RequestSpec> one = {{0.0, 8192, 64}};
    const auto disagg = sys.run_workload(one);

    Deployment colo;
    colo.model = model::llama_70b();
    colo.strategy = parallel::Strategy::kTp;
    colo.tp = 4;  // prefill-pool-sized colocated engine
    const auto met = run_deployment(colo, one);

    EXPECT_GT(disagg.requests()[0].completion,
              met.requests()[0].completion - 1e-9);
}

TEST(Disaggregated, DecodePoolIsolationKeepsTpotSmooth)
{
    // A heavy prefill storm arrives mid-decode; the disaggregated decode
    // pool must not see its p99 TPOT degrade versus its p50 as much as a
    // colocated deployment of the same total GPUs does.
    std::vector<engine::RequestSpec> reqs;
    reqs.push_back({0.0, 2000, 400});  // long decoder
    for (int i = 0; i < 24; ++i)
        reqs.push_back({2.0 + 0.05 * i, 16000, 4});  // prefill storm

    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto disagg = sys.run_workload(reqs);

    Deployment colo;
    colo.model = model::llama_70b();
    colo.strategy = parallel::Strategy::kTp;
    const auto met = run_deployment(colo, reqs);

    const double disagg_jitter =
        disagg.tpot().percentile(99) / disagg.tpot().percentile(50);
    const double colo_jitter =
        met.tpot().percentile(99) / met.tpot().percentile(50);
    EXPECT_LT(disagg_jitter, colo_jitter);
}

TEST(Disaggregated, StepTelemetryCountsBothPools)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto met = sys.run_workload({{0.0, 1000, 8}, {0.1, 1000, 8}});
    EXPECT_GT(met.steps().size(), 2u);
    EXPECT_GT(met.total_tokens(), 2000);
}

} // namespace
} // namespace shiftpar::core
