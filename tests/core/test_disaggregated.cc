/** @file Tests for the disaggregated prefill/decode baseline. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/test_helpers.h"
#include "core/disaggregated.h"
#include "model/presets.h"

namespace shiftpar::core {
namespace {

using shiftpar::testing::test_node;

TEST(Disaggregated, RejectsOversizedPools)
{
    DisaggregatedOptions opts;
    opts.prefill_gpus = 6;
    opts.decode_gpus = 6;
    EXPECT_DEATH(DisaggregatedSystem(model::llama_70b(), test_node(), opts),
                 "exceed");
}

TEST(Disaggregated, TransferDelayScalesWithContext)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const double small = sys.transfer_delay(1000);
    const double large = sys.transfer_delay(100000);
    EXPECT_GT(large, 50.0 * small);
    // 100k tokens * 327 KB/token ~ 32.7 GB over ~630 GB/s: tens of ms.
    EXPECT_GT(large, 0.02);
    EXPECT_LT(large, 0.2);
}

TEST(Disaggregated, AllRequestsFinishWithSaneMetrics)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < 20; ++i)
        reqs.push_back({0.3 * i, 2000 + 100 * i, 50});
    const auto met = sys.run_workload(reqs);
    ASSERT_EQ(met.requests().size(), reqs.size());
    for (const auto& r : met.requests()) {
        EXPECT_GT(r.ttft, 0.0);
        EXPECT_GT(r.tpot, 0.0);
        EXPECT_GT(r.completion, r.ttft);
    }
}

TEST(Disaggregated, SingleTokenRequestsFinishOnPrefillPool)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto met = sys.run_workload({{0.0, 1024, 1}});
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(met.requests()[0].tpot, 0.0);
    EXPECT_GT(met.requests()[0].completion, 0.0);
}

TEST(Disaggregated, CompletionIncludesTransferDelay)
{
    // One lone request: completion must exceed the colocated equivalent by
    // at least the transfer delay (same pools, no queueing).
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const std::vector<engine::RequestSpec> one = {{0.0, 8192, 64}};
    const auto disagg = sys.run_workload(one);

    Deployment colo;
    colo.model = model::llama_70b();
    colo.strategy = parallel::Strategy::kTp;
    colo.tp = 4;  // prefill-pool-sized colocated engine
    const auto met = run_deployment(colo, one);

    EXPECT_GT(disagg.requests()[0].completion,
              met.requests()[0].completion - 1e-9);
}

TEST(Disaggregated, DecodePoolIsolationKeepsTpotSmooth)
{
    // A heavy prefill storm arrives mid-decode; the disaggregated decode
    // pool must not see its p99 TPOT degrade versus its p50 as much as a
    // colocated deployment of the same total GPUs does.
    std::vector<engine::RequestSpec> reqs;
    reqs.push_back({0.0, 2000, 400});  // long decoder
    for (int i = 0; i < 24; ++i)
        reqs.push_back({2.0 + 0.05 * i, 16000, 4});  // prefill storm

    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto disagg = sys.run_workload(reqs);

    Deployment colo;
    colo.model = model::llama_70b();
    colo.strategy = parallel::Strategy::kTp;
    const auto met = run_deployment(colo, reqs);

    const double disagg_jitter =
        disagg.tpot().percentile(99) / disagg.tpot().percentile(50);
    const double colo_jitter =
        met.tpot().percentile(99) / met.tpot().percentile(50);
    EXPECT_LT(disagg_jitter, colo_jitter);
}

TEST(Disaggregated, StepTelemetryCountsBothPools)
{
    DisaggregatedSystem sys(model::llama_70b(), test_node());
    const auto met = sys.run_workload({{0.0, 1000, 8}, {0.1, 1000, 8}});
    EXPECT_GT(met.steps().size(), 2u);
    EXPECT_GT(met.total_tokens(), 2000);
}

TEST(Disaggregated, ThroughputBinWidthIsHonored)
{
    DisaggregatedOptions opts;
    opts.throughput_bin = 0.25;
    DisaggregatedSystem sys(model::llama_70b(), test_node(), opts);
    const auto met = sys.run_workload({{0.0, 1000, 8}});
    EXPECT_DOUBLE_EQ(met.throughput().bin_seconds(), 0.25);
}

/**
 * A node whose fabric is orders of magnitude slower than its compute:
 * single-GPU pools (no collectives touch the link) make transfer
 * queueing dominate every timing below, so the assertions are exact-ish.
 */
hw::Node
slow_fabric_node()
{
    hw::Node node = test_node();
    node.link.bw = 1.0e7;  // ~seconds per multi-MB KV handoff
    node.link.latency = 0.0;
    node.link.efficiency = 1.0;
    return node;
}

DisaggregatedOptions
tiny_pools()
{
    DisaggregatedOptions opts;
    opts.prefill_gpus = 1;
    opts.decode_gpus = 1;
    return opts;
}

TEST(DisaggregatedOnline, OverlappingTransfersQueueOnTheFabric)
{
    using shiftpar::testing::tiny_model;
    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), tiny_pools());
    const double delta = sys.transfer_delay(2049);
    ASSERT_GT(delta, 1.0);  // the fabric really is the bottleneck

    // Two same-instant requests prefill back to back in well under a
    // second, so their KV handoffs overlap and must serialize FIFO.
    const auto met =
        sys.run_workload({{0.0, 2048, 16}, {0.0, 2048, 16}});
    ASSERT_EQ(met.requests().size(), 2u);
    EXPECT_EQ(sys.stats().transfers, 2);
    EXPECT_NEAR(sys.stats().link_busy_seconds, 2.0 * delta, 0.01 * delta);

    // The second decode cannot start until the link frees: completions
    // are one full transfer apart.
    const double gap = std::abs(met.requests()[1].completion +
                                met.requests()[1].arrival -
                                met.requests()[0].completion -
                                met.requests()[0].arrival);
    EXPECT_GT(gap, 0.9 * delta);
}

TEST(DisaggregatedOnline, SaturatedDecodePoolBackpressuresPrefill)
{
    using shiftpar::testing::tiny_model;
    auto opts = tiny_pools();
    // Budget fits exactly one request's context (2048 + 16 tokens).
    opts.max_inflight_decode_tokens = 2100;
    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), opts);
    const double delta = sys.transfer_delay(2049);

    const auto met =
        sys.run_workload({{0.0, 2048, 16}, {0.0, 2048, 16}});
    ASSERT_EQ(met.requests().size(), 2u);
    EXPECT_EQ(sys.stats().stalled_admissions, 1);
    EXPECT_GT(sys.stats().stall_seconds, 0.9 * delta);

    // The stalled request's queueing delay (and hence TTFT) includes the
    // admission stall: it could not even start prefilling before the
    // first request cleared the decode pool, one transfer later.
    const auto& stalled = met.requests()[0].id == 1 ? met.requests()[0]
                                                    : met.requests()[1];
    EXPECT_GT(stalled.wait, 0.9 * delta);
    EXPECT_GT(stalled.ttft, 0.9 * delta);
}

TEST(DisaggregatedOnline, CancelMidTransferReleasesTheLink)
{
    using shiftpar::testing::tiny_model;
    const std::vector<engine::RequestSpec> reqs = {{0.0, 2048, 16},
                                                   {0.0, 2048, 16}};

    DisaggregatedSystem baseline(tiny_model(), slow_fabric_node(),
                                 tiny_pools());
    const auto met_base = baseline.run_workload(reqs);
    const double delta = baseline.transfer_delay(2049);
    double base_finish_1 = 0.0;
    for (const auto& r : met_base.requests()) {
        if (r.id == 1)
            base_finish_1 = r.arrival + r.completion;
    }

    // Abort request 0 while its KV handoff occupies the fabric (prefill
    // of 2048 tokens finishes in far under a second; the transfer then
    // holds the link for >1 s). Request 1's queued handoff must shift
    // earlier — the in-flight transfer event is released, not leaked.
    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), tiny_pools());
    sys.schedule_cancel(1.0, 0);
    const auto met = sys.run_workload(reqs);

    EXPECT_EQ(sys.stats().cancelled, 1);
    EXPECT_EQ(sys.stats().transfers_cancelled, 1);
    EXPECT_EQ(sys.stats().transfers, 1);
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_EQ(met.requests()[0].id, 1);
    const double finish_1 =
        met.requests()[0].arrival + met.requests()[0].completion;
    // The freed link saves most of a transfer slot.
    EXPECT_LT(finish_1, base_finish_1 - 0.5 * delta);
}

TEST(DisaggregatedOnline, CancelFreesTheAdmissionBudget)
{
    using shiftpar::testing::tiny_model;
    auto opts = tiny_pools();
    opts.max_inflight_decode_tokens = 2100;
    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), opts);
    // Request 1 stalls behind request 0's budget; aborting request 0
    // (whatever stage it is in at t=1) must let request 1 through.
    sys.schedule_cancel(1.0, 0);
    const auto met =
        sys.run_workload({{0.0, 2048, 16}, {0.0, 2048, 16}});

    EXPECT_EQ(sys.stats().cancelled, 1);
    EXPECT_EQ(sys.stats().stalled_admissions, 1);
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_EQ(met.requests()[0].id, 1);
    // Admission resumed at the cancel, not after a full pipeline pass.
    EXPECT_LT(met.requests()[0].wait, 1.5);
}

TEST(DisaggregatedOnline, LinkFailureAbortsAndResendsTheHandoff)
{
    using shiftpar::testing::tiny_model;
    const std::vector<engine::RequestSpec> one = {{0.0, 2048, 16}};

    DisaggregatedSystem base(tiny_model(), slow_fabric_node(), tiny_pools());
    const auto healthy = base.run_workload(one);
    ASSERT_EQ(healthy.requests().size(), 1u);
    const double delta = base.transfer_delay(2049);
    ASSERT_GT(delta, 1.0);
    // Prefill ends well before t=1 and the handoff occupies the slow
    // fabric for > 1 s, so an outage at t=1 lands mid-transfer.
    ASSERT_LT(healthy.requests()[0].ttft, 1.0);

    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), tiny_pools());
    sys.schedule_link_failure(1.0, 3.0);
    const auto met = sys.run_workload(one);

    EXPECT_EQ(sys.stats().link_failures, 1);
    EXPECT_EQ(sys.stats().transfers_resent, 1);
    // Partial KV is useless: the handoff restarts whole after recovery,
    // and the request still completes exactly once.
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_DOUBLE_EQ(met.requests()[0].ttft, healthy.requests()[0].ttft);
    EXPECT_GT(met.requests()[0].completion,
              healthy.requests()[0].completion + 1.0);
}

TEST(DisaggregatedOnline, PrefillDuringOutageQueuesHandoffForRecovery)
{
    using shiftpar::testing::tiny_model;
    DisaggregatedSystem sys(tiny_model(), slow_fabric_node(), tiny_pools());
    // The link is down from the start; prefill finishes during the outage,
    // so the handoff waits for the recovery instant (nothing to abort).
    sys.schedule_link_failure(0.0, 10.0);
    const auto met = sys.run_workload({{0.0, 2048, 16}});

    EXPECT_EQ(sys.stats().link_failures, 1);
    EXPECT_EQ(sys.stats().transfers_resent, 0);
    EXPECT_EQ(sys.stats().transfers, 1);
    ASSERT_EQ(met.requests().size(), 1u);
    EXPECT_GT(met.requests()[0].completion, 10.0);
}

} // namespace
} // namespace shiftpar::core
