/** @file Tests for workload characterization and run-report formatting. */

#include <gtest/gtest.h>

#include "core/report.h"
#include "model/presets.h"
#include "workload/agentic.h"
#include "workload/characterize.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

TEST(Characterize, EmptyWorkload)
{
    const auto s = workload::characterize({});
    EXPECT_EQ(s.num_requests, 0u);
    EXPECT_DOUBLE_EQ(s.mean_rate, 0.0);
}

TEST(Characterize, BasicStats)
{
    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < 100; ++i)
        reqs.push_back({static_cast<double>(i), 1000, 100});
    const auto s = workload::characterize(reqs, 10.0);
    EXPECT_EQ(s.num_requests, 100u);
    EXPECT_DOUBLE_EQ(s.duration, 99.0);
    EXPECT_NEAR(s.mean_rate, 100.0 / 99.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.prompt.percentile(50), 1000.0);
    EXPECT_EQ(s.total_tokens, 110000);
    EXPECT_NEAR(s.token_rate, 110000.0 / 99.0, 1e-9);
    // Uniform arrivals: burstiness ~1.
    EXPECT_NEAR(s.burstiness, 1.0, 0.05);
    EXPECT_DOUBLE_EQ(s.prefix_fraction, 0.0);
}

TEST(Characterize, DetectsBurstiness)
{
    std::vector<engine::RequestSpec> reqs;
    // 100 requests in one second, then silence for 99 s, then one more.
    for (int i = 0; i < 100; ++i)
        reqs.push_back({0.01 * i, 100, 10});
    reqs.push_back({100.0, 100, 10});
    const auto s = workload::characterize(reqs, 10.0);
    EXPECT_GT(s.burstiness, 5.0);
}

TEST(Characterize, CountsPrefixRequests)
{
    Rng rng(3);
    const auto reqs = workload::agentic_sessions(rng, {});
    const auto s = workload::characterize(reqs);
    EXPECT_DOUBLE_EQ(s.prefix_fraction, 1.0);
}

TEST(Characterize, DescribeMentionsKeyNumbers)
{
    std::vector<engine::RequestSpec> reqs = {{0.0, 500, 50},
                                             {1.0, 500, 50}};
    const std::string text =
        workload::describe(workload::characterize(reqs));
    EXPECT_NE(text.find("2 requests"), std::string::npos);
    EXPECT_NE(text.find("prompt tokens"), std::string::npos);
    EXPECT_NE(text.find("sustained demand"), std::string::npos);
}

TEST(Report, ContainsAllSections)
{
    core::Deployment d;
    d.model = model::qwen_32b();
    d.strategy = parallel::Strategy::kShift;
    const auto resolved = core::resolve(d);
    const auto met =
        core::run_deployment(d, workload::uniform_batch(8, 1024, 32));

    core::ReportOptions opts;
    opts.slo = engine::SloSpec{2.0, 0.05};
    opts.timeline = false;
    const std::string text = core::format_report(resolved, met, opts);
    EXPECT_NE(text.find("deployment:"), std::string::npos);
    EXPECT_NE(text.find("TTFT (ms)"), std::string::npos);
    EXPECT_NE(text.find("throughput:"), std::string::npos);
    EXPECT_NE(text.find("shift/TP mode"), std::string::npos);
    EXPECT_NE(text.find("SLO"), std::string::npos);
    EXPECT_NE(text.find("goodput"), std::string::npos);
}

TEST(Report, TimelineOptional)
{
    core::Deployment d;
    d.model = model::qwen_32b();
    d.strategy = parallel::Strategy::kTp;
    const auto resolved = core::resolve(d);
    // A long-running workload so the timeline has > 1 bin.
    std::vector<engine::RequestSpec> reqs;
    for (int i = 0; i < 10; ++i)
        reqs.push_back({0.5 * i, 4096, 64});
    const auto met = core::run_deployment(d, reqs);

    core::ReportOptions with;
    with.timeline = true;
    core::ReportOptions without;
    without.timeline = false;
    EXPECT_NE(core::format_report(resolved, met, with).find("time ->"),
              std::string::npos);
    EXPECT_EQ(core::format_report(resolved, met, without).find("time ->"),
              std::string::npos);
}

TEST(ContextWindow, OverlongRequestRejected)
{
    core::Deployment d;
    d.model = model::qwen_32b();
    d.model.max_context = 4096;
    d.strategy = parallel::Strategy::kTp;
    auto router = core::build(d);
    EXPECT_DEATH(router->submit({0.0, 4000, 200}, 1), "context window");
}

} // namespace
} // namespace shiftpar
