/** @file Tests for the Shift controller, SwiftKV, speculative decoding,
 *  frameworks, and the deployment builder. */

#include <gtest/gtest.h>

#include "common/test_helpers.h"
#include "core/deployment.h"
#include "core/framework.h"
#include "core/shift_controller.h"
#include "model/presets.h"

namespace shiftpar::core {
namespace {

using shiftpar::testing::test_node;

TEST(ShiftController, Algorithm2Decision)
{
    const ShiftController c({8, 1}, /*threshold=*/256);
    // Large batch: base (SP) config.
    EXPECT_EQ(c.choose(257).cfg, (parallel::ParallelConfig{8, 1}));
    // Small batch (<= threshold): full-TP shift config.
    EXPECT_EQ(c.choose(256).cfg, (parallel::ParallelConfig{1, 8}));
    EXPECT_EQ(c.choose(1).cfg, (parallel::ParallelConfig{1, 8}));
    EXPECT_FALSE(c.choose(1).sliced);
}

TEST(ShiftController, SlicingMarksShiftSteps)
{
    const ShiftController c({8, 1}, 256,
                            parallel::WeightStrategy::kOnTheFlySlicing);
    EXPECT_TRUE(c.choose(1).sliced);
    EXPECT_FALSE(c.choose(1000).sliced);  // base steps never slice
}

TEST(ShiftController, RequiresSpBase)
{
    EXPECT_DEATH(ShiftController({1, 8}, 100), "SP > 1");
}

TEST(ShiftController, ReattachForgetsTheFlipState)
{
    class SwitchCounter : public obs::TraceSink
    {
      public:
        void on_mode_switch(const obs::ModeSwitchEvent&) override
        {
            ++switches;
        }
        int switches = 0;
    };

    ShiftController c({8, 1}, 256);
    SwitchCounter sink;
    double clock = 0.0;
    c.attach_trace(&sink, 0, &clock);
    c.choose(1);     // shift; no switch (first decision of the stream)
    c.choose(1000);  // base: one flip
    EXPECT_EQ(sink.switches, 1);

    // Re-attach (a fresh run reusing the policy): the first decision must
    // not be compared against the previous stream's last mode — its flip
    // would be a phantom switch on the new stream.
    c.attach_trace(&sink, 1, &clock);
    c.choose(1);  // shift again, but the history is gone
    EXPECT_EQ(sink.switches, 1);
    c.choose(1000);  // real flip within the new stream still counts
    EXPECT_EQ(sink.switches, 2);
}

TEST(ShiftController, AutoThresholdIsACrossover)
{
    const parallel::PerfModel perf(test_node(), model::llama_70b());
    const parallel::ParallelConfig base{8, 1};
    const std::int64_t th =
        ShiftController::auto_threshold(perf, base, 2048);
    ASSERT_GT(th, 0);
    ASSERT_LT(th, 65536);
    // Below the threshold the shift (TP) config must win; above, the base.
    const auto shift = base.shift_config();
    EXPECT_LT(perf.decode_step_time(std::max<std::int64_t>(1, th / 4), 2048,
                                    shift),
              perf.decode_step_time(std::max<std::int64_t>(1, th / 4), 2048,
                                    base));
    EXPECT_LE(perf.decode_step_time(th * 4, 2048, base),
              perf.decode_step_time(th * 4, 2048, shift));
}

TEST(SwiftKvTest, FactorMath)
{
    const SwiftKv s{.skip_fraction = 0.5, .residual_fraction = 0.1};
    EXPECT_NEAR(s.prefill_compute_factor(), 0.55, 1e-12);
    parallel::PerfOptions opts;
    s.apply(&opts);
    EXPECT_NEAR(opts.swiftkv_prefill_factor, 0.55, 1e-12);
}

TEST(SwiftKvTest, VanillaIsIdentity)
{
    const SwiftKv s{.skip_fraction = 0.0, .residual_fraction = 0.1};
    EXPECT_DOUBLE_EQ(s.prefill_compute_factor(), 1.0);
}

TEST(SpecDecode, ExpectedTokensFormula)
{
    const SpeculativeDecoder d{.draft_len = 4, .acceptance = 0.7};
    // (1 - 0.7^5) / (1 - 0.7) = 2.77309...
    EXPECT_NEAR(d.expected_tokens_per_step(), 2.77310, 1e-4);
    EXPECT_EQ(d.tokens_per_step(), 2);
    EXPECT_GT(d.decode_inflation(), 1.0);
}

TEST(SpecDecode, HighAcceptanceEmitsMore)
{
    const SpeculativeDecoder lo{.draft_len = 5, .acceptance = 0.3};
    const SpeculativeDecoder hi{.draft_len = 5, .acceptance = 0.9};
    EXPECT_GT(hi.tokens_per_step(), lo.tokens_per_step());
}

TEST(SpecDecode, ApplyInstallsBothKnobs)
{
    const SpeculativeDecoder d{.draft_len = 5, .acceptance = 0.8};
    engine::SchedulerOptions sched;
    parallel::PerfOptions perf;
    d.apply(&sched, &perf);
    EXPECT_EQ(sched.decode_tokens_per_step, d.tokens_per_step());
    EXPECT_DOUBLE_EQ(perf.decode_compute_inflation, d.decode_inflation());
}

TEST(SpecDecode, ImprovesTpotEndToEnd)
{
    Deployment plain;
    plain.model = model::llama_70b();
    plain.strategy = parallel::Strategy::kTp;
    Deployment spec = plain;
    spec.spec_decode = SpeculativeDecoder{.draft_len = 5, .acceptance = 0.8};

    const std::vector<engine::RequestSpec> one = {{0.0, 1024, 64}};
    const auto m_plain = run_deployment(plain, one);
    const auto m_spec = run_deployment(spec, one);
    EXPECT_LT(m_spec.tpot().mean(), m_plain.tpot().mean() / 1.5);
}

TEST(SwiftKvTest, ImprovesTtftEndToEnd)
{
    Deployment plain;
    plain.model = model::llama_70b();
    plain.strategy = parallel::Strategy::kSp;
    Deployment swift = plain;
    swift.swiftkv = SwiftKv{};

    const std::vector<engine::RequestSpec> one = {{0.0, 8192, 4}};
    EXPECT_LT(run_deployment(swift, one).ttft().mean(),
              run_deployment(plain, one).ttft().mean());
}

TEST(Deployment, ResolveDp)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kDp;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{1, 1}));
    EXPECT_EQ(r.replicas, 8);
    EXPECT_EQ(r.shift_threshold, 0);
}

TEST(Deployment, ResolveTp)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kTp;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{1, 8}));
    EXPECT_EQ(r.replicas, 1);
}

TEST(Deployment, ResolveSpFullNode)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kSp;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{8, 1}));
}

TEST(Deployment, ResolveShiftLlama70B)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kShift;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{8, 1}));
    EXPECT_TRUE(r.with_shift_model);
    EXPECT_GT(r.shift_threshold, 0);
    // Eq. 1 at SP=8: 12.5% weight overhead.
    EXPECT_NEAR(r.memory.shift_overhead_frac(), 0.125, 1e-9);
}

TEST(Deployment, ResolveShiftMoePicksPaperConfig)
{
    // Section 4.6: Llama-17B-16E needs (SP=4, TP=2) for long-context room.
    Deployment d;
    d.model = model::llama_17b_16e();
    d.strategy = parallel::Strategy::kShift;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{4, 2}));
}

TEST(Deployment, ManualOverridesWin)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kSpTp;
    d.sp = 2;
    d.tp = 4;
    d.shift_threshold = 777;
    const auto r = resolve(d);
    EXPECT_EQ(r.base, (parallel::ParallelConfig{2, 4}));

    d.strategy = parallel::Strategy::kShift;
    const auto r2 = resolve(d);
    EXPECT_EQ(r2.shift_threshold, 777);
}

TEST(Deployment, DescribeMentionsConfig)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kShift;
    const std::string s = resolve(d).describe();
    EXPECT_NE(s.find("(SP=8,TP=1)"), std::string::npos);
    EXPECT_NE(s.find("threshold"), std::string::npos);
}

TEST(Deployment, RunDeploymentEndToEnd)
{
    Deployment d;
    d.model = model::qwen_32b();
    d.strategy = parallel::Strategy::kShift;
    const auto workload = std::vector<engine::RequestSpec>{
        {0.0, 512, 16}, {0.1, 2048, 64}, {0.2, 128, 8}};
    const auto m = run_deployment(d, workload);
    EXPECT_EQ(m.requests().size(), 3u);
    // Shift deployments should exercise both modes on a mixed workload.
    EXPECT_GT(m.tp_steps(), 0);
    EXPECT_GT(m.sp_steps(), 0);
}

TEST(Framework, ProfilesHaveExpectedStrategies)
{
    EXPECT_EQ(ours().strategies.front(), parallel::Strategy::kShift);
    for (const auto& p : {vllm_baseline(), sglang(), trt_llm()}) {
        EXPECT_EQ(p.strategies.size(), 2u);
        EXPECT_TRUE(p.spec_decode.has_value());
        EXPECT_FALSE(p.swiftkv.has_value());
    }
    EXPECT_TRUE(ours().swiftkv.has_value());
}

TEST(Framework, MakeDeploymentRejectsUnofferedStrategy)
{
    EXPECT_DEATH(make_deployment(vllm_baseline(), model::llama_70b(),
                                 test_node(), parallel::Strategy::kShift),
                 "does not offer");
}

TEST(Framework, MakeDeploymentCarriesOverheads)
{
    const auto p = trt_llm();
    const auto d = make_deployment(p, model::llama_70b(), test_node(),
                                   parallel::Strategy::kTp);
    EXPECT_DOUBLE_EQ(d.perf.step_overhead_base, p.step_overhead_base);
    EXPECT_TRUE(d.spec_decode.has_value());
}

} // namespace
} // namespace shiftpar::core
