/** @file Tests for the simulation-driven deployment auto-tuner. */

#include <gtest/gtest.h>

#include "core/autotuner.h"
#include "model/presets.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar::core {
namespace {

std::vector<engine::RequestSpec>
sample_workload(double rate = 2.0, double duration = 40.0)
{
    Rng rng(3);
    return workload::make_requests(
        workload::poisson_arrivals(rng, rate, duration), rng,
        workload::lognormal_size(3000.0, 0.6, 300.0, 0.5));
}

TEST(AutoTuner, CandidatesCoverStrategiesAndSplits)
{
    const AutoTuner tuner(model::llama_70b(), hw::h200_node());
    const auto cands = tuner.candidates({});
    // DP, TP, SP x {8x1, 4x2, 2x4}, Shift x {8x1, 4x2, 2x4} = 8.
    EXPECT_EQ(cands.size(), 8u);
    int shift_count = 0;
    for (const auto& d : cands)
        shift_count += d.strategy == parallel::Strategy::kShift;
    EXPECT_EQ(shift_count, 3);
}

TEST(AutoTuner, ThresholdSweepAddsVariants)
{
    const AutoTuner tuner(model::llama_70b(), hw::h200_node());
    TuneOptions opts;
    opts.sweep_threshold = true;
    const auto base = tuner.candidates({}).size();
    const auto swept = tuner.candidates(opts).size();
    EXPECT_GT(swept, base);
}

TEST(AutoTuner, EpSweepOnlyForMoe)
{
    TuneOptions opts;
    opts.sweep_ep = true;
    const AutoTuner dense(model::llama_70b(), hw::h200_node());
    const AutoTuner moe(model::qwen_30b_a3b(), hw::h200_node());
    EXPECT_EQ(dense.candidates(opts).size(), dense.candidates({}).size());
    EXPECT_GT(moe.candidates(opts).size(), moe.candidates({}).size());
}

TEST(AutoTuner, ResultsSortedByScore)
{
    const AutoTuner tuner(model::qwen_32b(), hw::h200_node());
    const auto ranked = tuner.tune(sample_workload());
    ASSERT_GE(ranked.size(), 4u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i].score, ranked[i - 1].score);
    // Best candidate's score is the normalized optimum (1.0 for a pure
    // single-term objective dominated by one candidate, >= 1 in general).
    EXPECT_GE(ranked.front().score, 0.999);
}

TEST(AutoTuner, ShiftWinsMixedTrafficObjective)
{
    // On dynamic traffic with a combined latency+throughput objective the
    // tuner should select a Shift deployment — the paper's thesis.
    const AutoTuner tuner(model::qwen_32b(), hw::h200_node());
    TuneObjective objective;
    objective.completion = 1.0;
    objective.ttft_p99 = 0.5;
    objective.throughput = 0.5;
    const auto ranked = tuner.tune(sample_workload(3.0), objective);
    EXPECT_EQ(ranked.front().deployment.strategy,
              parallel::Strategy::kShift);
}

TEST(AutoTuner, ThroughputOnlyObjectivePrefersDpOrShift)
{
    const AutoTuner tuner(model::llama_70b(), hw::h200_node());
    TuneObjective objective;
    objective.completion = 0.0;
    objective.throughput = 1.0;
    const auto ranked =
        tuner.tune(workload::uniform_batch(256, 4096, 250), objective);
    const auto s = ranked.front().deployment.strategy;
    EXPECT_TRUE(s == parallel::Strategy::kDp ||
                s == parallel::Strategy::kShift)
        << parallel::strategy_name(s);
}

TEST(AutoTuner, NamesAreDescriptive)
{
    const AutoTuner tuner(model::qwen_32b(), hw::h200_node());
    const auto ranked = tuner.tune(sample_workload(1.0, 20.0));
    bool saw_shift_with_threshold = false;
    for (const auto& r : ranked) {
        EXPECT_FALSE(r.name.empty());
        if (r.name.find("Shift") != std::string::npos)
            saw_shift_with_threshold |=
                r.name.find("thr=") != std::string::npos;
    }
    EXPECT_TRUE(saw_shift_with_threshold);
}

TEST(AutoTuner, EmptySampleIsFatal)
{
    const AutoTuner tuner(model::qwen_32b(), hw::h200_node());
    EXPECT_DEATH(tuner.tune({}), "sample");
}

} // namespace
} // namespace shiftpar::core
