/**
 * @file
 * Tests for the calibration harness: the least-squares fitter must recover
 * known coefficients exactly from a noise-free synthetic profile (and
 * within tolerance under noise), the CSV and JSON formats must round-trip,
 * and degenerate/collinear feature columns must be pinned to zero rather
 * than poisoning the solve.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "calibrate.h"
#include "hw/kernel_coeffs.h"
#include "hw/presets.h"

namespace shiftpar::calibrate {
namespace {

const KernelClassFit*
find_fit(const CalibrationReport& report, const std::string& klass)
{
    for (const auto& f : report.fits)
        if (f.klass == klass)
            return &f;
    return nullptr;
}

hw::KernelCoeffs
h200_coeffs()
{
    const hw::Node node = hw::h200_node();
    return hw::derive_kernel_coeffs(node.gpu, node.link);
}

TEST(Calibrate, NoiseFreeSyntheticRecoversCoefficientsExactly)
{
    const hw::KernelCoeffs truth = h200_coeffs();
    const auto samples = synthesize_profile(truth, 0.0, 42);
    ASSERT_GT(samples.size(), 100u);

    const auto report = fit_profile(samples, "h200", "synthetic");
    EXPECT_EQ(report.total_samples,
              static_cast<std::int64_t>(samples.size()));
    EXPECT_GE(report.overall_r2, 0.99);

    const struct
    {
        const char* klass;
        hw::KernelCoeff expect;
    } cases[] = {{"gemm", truth.gemm},
                 {"attention", truth.attention},
                 {"norm", truth.norm},
                 {"collective", truth.collective}};
    for (const auto& c : cases) {
        const KernelClassFit* fit = find_fit(report, c.klass);
        ASSERT_NE(fit, nullptr) << c.klass;
        EXPECT_NEAR(fit->alpha, c.expect.alpha,
                    1e-6 * c.expect.alpha + 1e-18)
            << c.klass;
        EXPECT_NEAR(fit->beta, c.expect.beta, 1e-6 * c.expect.beta + 1e-24)
            << c.klass;
        EXPECT_NEAR(fit->gamma, c.expect.gamma,
                    1e-6 * c.expect.gamma + 1e-24)
            << c.klass;
        EXPECT_GT(fit->r2, 0.999999) << c.klass;
        EXPECT_LT(fit->resid_p99, 1e-6) << c.klass;
    }
}

TEST(Calibrate, NoisyFitStaysWithinTolerance)
{
    const hw::KernelCoeffs truth = h200_coeffs();
    const auto samples = synthesize_profile(truth, 0.02, 7);
    const auto report = fit_profile(samples, "h200", "synthetic");
    EXPECT_GE(report.overall_r2, 0.99);
    const KernelClassFit* gemm = find_fit(report, "gemm");
    ASSERT_NE(gemm, nullptr);
    EXPECT_NEAR(gemm->beta, truth.gemm.beta, 0.10 * truth.gemm.beta);
    EXPECT_NEAR(gemm->gamma, truth.gemm.gamma, 0.10 * truth.gemm.gamma);
}

TEST(Calibrate, SyntheticNoiseIsDeterministicPerSeed)
{
    const hw::KernelCoeffs truth = h200_coeffs();
    const auto a = synthesize_profile(truth, 0.05, 9);
    const auto b = synthesize_profile(truth, 0.05, 9);
    const auto c = synthesize_profile(truth, 0.05, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds);
    bool any_differs = false;
    for (std::size_t i = 0; i < a.size() && i < c.size(); ++i)
        any_differs = any_differs || a[i].seconds != c[i].seconds;
    EXPECT_TRUE(any_differs);
}

TEST(Calibrate, ProfileCsvRoundTrips)
{
    const auto samples = synthesize_profile(h200_coeffs(), 0.01, 3);
    const std::string path = ::testing::TempDir() + "calib_profile.csv";
    write_profile_csv(path, samples);
    const auto back = read_profile_csv(path);
    ASSERT_EQ(back.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(back[i].kernel, samples[i].kernel);
        EXPECT_EQ(back[i].klass, samples[i].klass);
        // %.17g formatting round-trips doubles exactly.
        EXPECT_DOUBLE_EQ(back[i].count, samples[i].count);
        EXPECT_DOUBLE_EQ(back[i].flops, samples[i].flops);
        EXPECT_DOUBLE_EQ(back[i].bytes, samples[i].bytes);
        EXPECT_DOUBLE_EQ(back[i].seconds, samples[i].seconds);
    }
}

TEST(Calibrate, ReportRoundTripsThroughCoeffsLoader)
{
    // The emitted shiftpar.calibration v1 document is the same format
    // --kernel-coeffs consumes: writing a fit and loading it back must
    // reproduce the fitted coefficients bit-for-bit.
    const auto samples = synthesize_profile(h200_coeffs(), 0.0, 42);
    const auto report = fit_profile(samples, "h200", "synthetic");

    const std::string path = ::testing::TempDir() + "calibration.json";
    {
        std::ofstream os(path);
        ASSERT_TRUE(os.good());
        write_calibration_report(report, os);
    }
    const hw::KernelCoeffs loaded = hw::load_calibrated_coeffs(path);
    EXPECT_EQ(loaded.hardware, "h200");
    const struct
    {
        const char* klass;
        const hw::KernelCoeff* got;
    } cases[] = {{"gemm", &loaded.gemm},
                 {"attention", &loaded.attention},
                 {"norm", &loaded.norm},
                 {"collective", &loaded.collective}};
    for (const auto& c : cases) {
        const KernelClassFit* fit = find_fit(report, c.klass);
        ASSERT_NE(fit, nullptr) << c.klass;
        EXPECT_DOUBLE_EQ(c.got->alpha, fit->alpha) << c.klass;
        EXPECT_DOUBLE_EQ(c.got->beta, fit->beta) << c.klass;
        EXPECT_DOUBLE_EQ(c.got->gamma, fit->gamma) << c.klass;
    }
}

TEST(Calibrate, ReportJsonCarriesSchemaHeader)
{
    const auto samples = synthesize_profile(h200_coeffs(), 0.0, 1);
    const auto report = fit_profile(samples, "h200", "synthetic");
    std::ostringstream os;
    write_calibration_report(report, os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\": \"shiftpar.calibration\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"kernels\""), std::string::npos);
    EXPECT_NE(doc.find("\"residuals\""), std::string::npos);
    EXPECT_EQ(doc.back(), '\n');
}

TEST(Calibrate, AllZeroColumnIsPinnedToZero)
{
    // bytes is identically zero: gamma must come back exactly 0 and the
    // (count, flops) sub-problem must still be solved exactly.
    std::vector<ProfileSample> samples;
    for (int i = 1; i <= 24; ++i) {
        ProfileSample s;
        s.kernel = "k";
        s.klass = "gemm";
        s.count = static_cast<double>(i % 3 + 1);
        s.flops = 1e12 * i;
        s.bytes = 0.0;
        s.seconds = 3e-6 * s.count + 2e-12 * s.flops;
        samples.push_back(s);
    }
    const auto report = fit_profile(samples, "test", "unit");
    const KernelClassFit* fit = find_fit(report, "gemm");
    ASSERT_NE(fit, nullptr);
    EXPECT_DOUBLE_EQ(fit->gamma, 0.0);
    EXPECT_NEAR(fit->alpha, 3e-6, 1e-12);
    EXPECT_NEAR(fit->beta, 2e-12, 1e-18);
    EXPECT_GT(fit->r2, 0.999999);
}

TEST(Calibrate, CollinearColumnsAreDroppedNotExploded)
{
    // flops == bytes to numerical rank: the solver must drop one column
    // (pinning its coefficient to 0), fold the weight into the other, and
    // still predict every sample exactly.
    std::vector<ProfileSample> samples;
    for (int i = 1; i <= 24; ++i) {
        ProfileSample s;
        s.kernel = "k";
        s.klass = "norm";
        s.count = static_cast<double>(i % 4 + 1);
        s.flops = 5e11 * i;
        s.bytes = s.flops;
        s.seconds = 1e-6 * s.count + 4e-12 * s.flops + 6e-12 * s.bytes;
        samples.push_back(s);
    }
    const auto report = fit_profile(samples, "test", "unit");
    const KernelClassFit* fit = find_fit(report, "norm");
    ASSERT_NE(fit, nullptr);
    EXPECT_TRUE(fit->beta == 0.0 || fit->gamma == 0.0)
        << "beta=" << fit->beta << " gamma=" << fit->gamma;
    EXPECT_NEAR(fit->beta + fit->gamma, 1e-11, 1e-17);
    EXPECT_GT(fit->r2, 0.999999);
    EXPECT_LT(fit->resid_p99, 1e-9);
}

TEST(Calibrate, ClassesAreFitIndependently)
{
    // Two classes with different coefficients in one profile: each fit
    // sees only its own rows.
    std::vector<ProfileSample> samples;
    for (int i = 1; i <= 16; ++i) {
        // bytes varies independently of flops so the columns have rank.
        ProfileSample a{"ka", "gemm", 1.0, 1e12 * i, 1e9 * (i % 5 + 1),
                        0.0};
        a.seconds = 2e-12 * a.flops + 1e-12 * a.bytes + 5e-6;
        ProfileSample b{"kb", "attention", 1.0, 2e12 * i,
                        3e9 * (i % 7 + 1), 0.0};
        b.seconds = 7e-12 * b.flops + 9e-12 * b.bytes + 1e-6;
        samples.push_back(a);
        samples.push_back(b);
    }
    const auto report = fit_profile(samples, "test", "unit");
    ASSERT_EQ(report.fits.size(), 2u);
    // std::map ordering: "attention" before "gemm".
    EXPECT_EQ(report.fits[0].klass, "attention");
    EXPECT_EQ(report.fits[1].klass, "gemm");
    EXPECT_NEAR(report.fits[1].beta, 2e-12, 1e-18);
    EXPECT_NEAR(report.fits[0].beta, 7e-12, 1e-18);
}

} // namespace
} // namespace shiftpar::calibrate
