/**
 * @file
 * Fixture suite for shiftlint: one known-bad snippet per check (expected
 * finding), one suppressed variant (expected clean), plus driver-level
 * coverage — SARIF schema shape, baseline round-trip, --fix application,
 * and malformed/stale suppression handling. Snippets live as string
 * literals, so scanning `tests/` with shiftlint itself stays clean (the
 * lexer treats string contents as opaque).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json_checker.h"
#include "driver.h"

namespace shiftpar::lint {
namespace {

/** Build an indexed corpus from (path, text) fixture pairs. */
Corpus
make_corpus(std::initializer_list<std::pair<const char*, const char*>>
                files)
{
    Corpus corpus;
    for (const auto& [path, text] : files)
        corpus.files.push_back(lex_source(path, text));
    corpus.build_index();
    return corpus;
}

/** Run one named check over `corpus` (no suppressions/baseline). */
std::vector<Finding>
run_one(Corpus& corpus, const std::string& check)
{
    Options opts;
    opts.checks = {check};
    return run_checks(corpus, opts).findings;
}

// ---------------------------------------------------------------- lexer

TEST(ShiftlintLexer, StringsCommentsAndPreprocessorAreOpaque)
{
    // rand() appears only in a string, a comment, and an #include-like
    // directive: none of them are code.
    auto corpus = make_corpus({{"a.cc", R"fix(
#include <rand()>
// rand() in a comment
const char* s = "rand()";
)fix"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintLexer, TracksLineNumbers)
{
    auto corpus = make_corpus({{"a.cc", "\n\nint x = rand();\n"}});
    const auto findings = run_one(corpus, "nondet-source");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[0].check, "nondet-source");
}

// ------------------------------------------------------- nondet-source

TEST(ShiftlintNondetSource, FlagsRngAndClockAndGetenv)
{
    auto corpus = make_corpus({{"src/core/x.cc", R"(
int a() { return rand(); }
std::random_device rd;
auto t = std::chrono::system_clock::now();
const char* e = getenv("X");
std::map<Foo*, int> by_ptr;
)"}});
    const auto findings = run_one(corpus, "nondet-source");
    EXPECT_EQ(findings.size(), 5u);
}

TEST(ShiftlintNondetSource, AllowsGetenvInUtil)
{
    auto corpus = make_corpus(
        {{"src/util/logging.cc", "const char* e = getenv(\"L\");\n"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintNondetSource, AllowsMemberFunctionsNamedLikeBanned)
{
    auto corpus = make_corpus({{"a.cc", R"(
double t = histogram.time();
auto c = obj->clock();
std::map<int, Foo*> value_is_pointer_ok;
)"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintNondetSource, SuppressionSilencesWithReason)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source): demo binary, not a simulation path
int a() { return rand(); }
)"}});
    Options opts;
    opts.checks = {"nondet-source"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    ASSERT_EQ(result.suppressed.size(), 1u);
    EXPECT_EQ(result.suppressed[0].check, "nondet-source");
}

// ------------------------------------------------------ unordered-emit

TEST(ShiftlintUnorderedEmit, FlagsIterationInEmittingFunction)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
void dump(Sink* sink, std::unordered_map<int, int>& m)
{
    for (const auto& [k, v] : m)
        sink->on_instant(0, 0.0, "x");
}
)"}});
    const auto findings = run_one(corpus, "unordered-emit");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("dump"), std::string::npos);
}

TEST(ShiftlintUnorderedEmit, MemberDeclaredInHeaderIteratedInCc)
{
    auto corpus = make_corpus(
        {{"src/m.h", "struct M { std::unordered_map<long, long> "
                     "tallies_; };\n"},
         {"src/m.cc", R"(
void M::report(CsvWriter& csv)
{
    for (const auto& [k, v] : tallies_)
        csv.add_row({k, v});
}
)"}});
    EXPECT_EQ(run_one(corpus, "unordered-emit").size(), 1u);
}

TEST(ShiftlintUnorderedEmit, CleanWhenNoSinkInFunction)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
long total(std::unordered_map<int, long>& m)
{
    long sum = 0;
    for (const auto& [k, v] : m)
        sum += v;   // order-independent reduction, no emission
    return sum;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "unordered-emit").empty());
}

TEST(ShiftlintUnorderedEmit, SuppressedWithJustification)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
void dump(Sink* sink, std::unordered_map<int, int>& m)
{
    // shiftlint-allow(unordered-emit): selection below is a total order
    for (const auto& [k, v] : m)
        sink->on_instant(0, 0.0, "x");
}
)"}});
    Options opts;
    opts.checks = {"unordered-emit"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 1u);
}

// -------------------------------------------------- trace-span-balance

TEST(ShiftlintSpanBalance, BeginWithoutEndInTu)
{
    auto corpus = make_corpus({{"src/e.cc", R"(
void straggle(Sink* s) { s->emit(FaultKind::kStraggleStart); }
)"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kStraggleEnd"),
              std::string::npos);
}

TEST(ShiftlintSpanBalance, BalancedTuAndHeadersAreClean)
{
    auto corpus = make_corpus(
        {{"src/e.cc", "void f(Sink* s) { s->emit(kStraggleStart); "
                      "s->emit(kStraggleEnd); }\n"},
         // Headers declare both enumerators; never flagged.
         {"src/trace.h", "enum class K { kStraggleStart };\n"}});
    EXPECT_TRUE(run_one(corpus, "trace-span-balance").empty());
}

TEST(ShiftlintSpanBalance, DrainStartWithoutEndFlagged)
{
    auto corpus = make_corpus({{"src/e.cc", R"(
void drain(Sink* s) { s->emit(FaultKind::kDrainStart); }
)"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kDrainEnd"), std::string::npos);
}

TEST(ShiftlintSpanBalance, GenericBeginEndConvention)
{
    auto corpus = make_corpus(
        {{"src/e.cc", "void f(Sink* s) { s->emit(kBeginTransfer); }\n"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kEndTransfer"),
              std::string::npos);
}

// --------------------------------------------- struct-serializer-drift

TEST(ShiftlintStructDrift, NewFieldMissingFromWriter)
{
    auto corpus = make_corpus(
        {{"src/fault/fault_schedule.h",
          "struct FaultStats { long failures = 0; long brand_new = 0; "
          "};\n"},
         {"src/obs/report_json.cc", R"(
void ReportJson::write()
{
    w.kv("failures", run.faults->failures);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("brand_new"), std::string::npos);
}

TEST(ShiftlintStructDrift, OverloadStatsFieldMissingFromWriter)
{
    // The lifecycle counters are watched against the report writer the
    // same way FaultStats is: a counter added to OverloadStats but not
    // serialized would silently vanish from every run report.
    auto corpus = make_corpus(
        {{"src/engine/overload.h",
          "struct OverloadStats { long expired = 0; long unreported = 0; "
          "};\n"},
         {"src/obs/report_json.cc", R"(
void ReportJson::write()
{
    w.kv("expired", run.overload->expired);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("unreported"), std::string::npos);
}

TEST(ShiftlintStructDrift, DelegatedMergeCoversFields)
{
    // Metrics::merge delegates to add_record; one level of same-file
    // call expansion must count the delegate's field accesses.
    auto corpus = make_corpus(
        {{"src/engine/metrics.h",
          "class Metrics { long total_ = 0; long peak_ = 0; };\n"},
         {"src/engine/metrics.cc", R"(
void Metrics::add_record(long v) { total_ += v; peak_ = v; }
void Metrics::merge(const Metrics& o) { add_record(o.total()); }
)"}});
    EXPECT_TRUE(run_one(corpus, "struct-serializer-drift").empty());
}

TEST(ShiftlintStructDrift, MergeMissingFieldFlagged)
{
    auto corpus = make_corpus(
        {{"src/engine/metrics.h",
          "class Metrics { long total_ = 0; long forgotten_ = 0; };\n"},
         {"src/engine/metrics.cc",
          "void Metrics::merge(const Metrics& o) { total_ += o.total_; "
          "}\n"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("forgotten_"), std::string::npos);
    EXPECT_NE(findings[0].message.find("aggregation"), std::string::npos);
}

TEST(ShiftlintStructDrift, CalibrationReportFieldMissingFromWriter)
{
    // The calibration-report structs are watched against their JSON
    // serializer: a field added to CalibrationReport but never written
    // would silently vanish from the shiftpar.calibration document.
    auto corpus = make_corpus(
        {{"tools/calibrate/calibrate.h",
          "struct CalibrationReport { long total_samples = 0; "
          "double shiny_new_stat = 0.0; };\n"},
         {"tools/calibrate/calibrate.cc", R"(
void write_calibration_report(const CalibrationReport& report,
                              std::ostream& os)
{
    w.kv("total_samples", report.total_samples);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("shiny_new_stat"),
              std::string::npos);
}

TEST(ShiftlintStructDrift, KernelClassFitFullyWrittenIsClean)
{
    auto corpus = make_corpus(
        {{"tools/calibrate/calibrate.h",
          "struct KernelClassFit { long samples = 0; double alpha = 0.0; "
          "double r2 = 0.0; };\n"},
         {"tools/calibrate/calibrate.cc", R"(
void write_calibration_report(const CalibrationReport& report,
                              std::ostream& os)
{
    w.kv("samples", fit.samples);
    w.kv("alpha", fit.alpha);
    w.kv("r2", fit.r2);
}
)"}});
    EXPECT_TRUE(run_one(corpus, "struct-serializer-drift").empty());
}

// ----------------------------------------------------------- sim-contract

TEST(ShiftlintSimContract, AdvanceToMutatingClusterFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    cluster_->post(t + 1.0, [] {});
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("advance_to"), std::string::npos);
}

TEST(ShiftlintSimContract, AdvanceToNotifyingReadyChangeFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    now_ = t;
    notify_ready_changed();
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("notify_ready_changed"),
              std::string::npos);
}

TEST(ShiftlintSimContract, AdvanceToPokingReadyIndexFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    cluster_->notify_ready(this);
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("notify_ready"), std::string::npos);
}

TEST(ShiftlintSimContract, NotifyOutsideAdvanceToIsClean)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
void Engine::submit(Request r)
{
    waiting_.push_back(r);
    notify_ready_changed();
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

TEST(ShiftlintSimContract, AdvanceToReadingClockIsClean)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    const double now = cluster_->now();
    return now <= t;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

TEST(ShiftlintSimContract, PostCapturingIteratorFlagged)
{
    auto corpus = make_corpus({{"src/core/d.cc", R"(
void schedule(Queue& q, std::map<long, long>& m)
{
    auto it = m.find(7);
    q.post(1.0, [it] { consume(it->second); });
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_GE(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("iterator"), std::string::npos);
}

TEST(ShiftlintSimContract, PostCapturingKeyIsClean)
{
    auto corpus = make_corpus({{"src/core/d.cc", R"(
void schedule(Queue& q, std::map<long, long>& m)
{
    auto it = m.find(7);
    const long key = it->first;
    q.post(1.0, [key] { consume(key); });
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

// ------------------------------------------------------ driver plumbing

TEST(ShiftlintDriver, MalformedSuppressionIsAFinding)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source) missing the reason colon
int a() { return rand(); }
)"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    bool saw_bad = false;
    for (const auto& f : result.findings)
        saw_bad |= f.check == "bad-suppression";
    EXPECT_TRUE(saw_bad);
    // The rand() finding is NOT suppressed by a malformed comment.
    bool saw_rand = false;
    for (const auto& f : result.findings)
        saw_rand |= f.check == "nondet-source";
    EXPECT_TRUE(saw_rand);
}

TEST(ShiftlintDriver, StaleSuppressionReported)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source): nothing here actually trips it
int a() { return 4; }
)"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    ASSERT_EQ(result.stale_suppressions.size(), 1u);
    EXPECT_NE(result.stale_suppressions[0].find("a.cc:2"),
              std::string::npos);
}

TEST(ShiftlintDriver, FixRewritesSystemClockOnDisk)
{
    const std::string path =
        ::testing::TempDir() + "/shiftlint_fix_probe.cc";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "auto t = std::chrono::system_clock::now();\n";
    }
    Corpus corpus = load_corpus({path});
    Options opts;
    opts.apply_fixes = true;
    const auto result = run_checks(corpus, opts);
    EXPECT_EQ(result.fixes_applied, 1);
    EXPECT_TRUE(result.findings.empty());  // fixed == resolved

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("steady_clock"), std::string::npos);
    EXPECT_EQ(ss.str().find("system_clock"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ShiftlintDriver, BaselineRoundTripSilencesKnownFindings)
{
    const char* bad = "int a() { return rand(); }\n";
    const std::string base_path =
        ::testing::TempDir() + "/shiftlint_baseline_probe.txt";
    {
        auto corpus = make_corpus({{"a.cc", bad}});
        Options opts;
        const auto result = run_checks(corpus, opts);
        ASSERT_EQ(result.findings.size(), 1u);
        std::ofstream out(base_path, std::ios::trunc);
        write_baseline(out, corpus, result);
    }
    {
        auto corpus = make_corpus({{"a.cc", bad}});
        Options opts;
        opts.baseline_path = base_path;
        const auto result = run_checks(corpus, opts);
        EXPECT_TRUE(result.findings.empty());
        EXPECT_EQ(result.baselined.size(), 1u);
    }
    std::remove(base_path.c_str());
}

// ------------------------------------------------------------- SARIF

TEST(ShiftlintSarif, DocumentShapeAndResultFields)
{
    auto corpus = make_corpus({{"src/x.cc",
                                "int a() { return rand(); }\n"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    ASSERT_EQ(result.findings.size(), 1u);

    std::ostringstream os;
    write_sarif(os, result);
    const auto doc = shiftpar::testing::parse_json(os.str());

    EXPECT_EQ(doc.at("version").str(), "2.1.0");
    const auto& runs = doc.at("runs").arr();
    ASSERT_EQ(runs.size(), 1u);
    const auto& driver = runs[0].at("tool").at("driver");
    EXPECT_EQ(driver.at("name").str(), "shiftlint");
    // Every registered check appears as a rule.
    EXPECT_EQ(driver.at("rules").arr().size(), check_registry().size());

    const auto& results = runs[0].at("results").arr();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].at("ruleId").str(), "nondet-source");
    EXPECT_EQ(results[0].at("level").str(), "error");
    const auto& loc =
        results[0].at("locations").arr()[0].at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").str(), "src/x.cc");
    EXPECT_EQ(loc.at("region").at("startLine").num(), 1.0);
}

} // namespace
} // namespace shiftpar::lint
