/**
 * @file
 * Fixture suite for shiftlint: one known-bad snippet per check (expected
 * finding), one suppressed variant (expected clean), plus driver-level
 * coverage — SARIF schema shape, baseline round-trip, --fix application,
 * and malformed/stale suppression handling. Snippets live as string
 * literals, so scanning `tests/` with shiftlint itself stays clean (the
 * lexer treats string contents as opaque).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json_checker.h"
#include "driver.h"

namespace shiftpar::lint {
namespace {

/** Build an indexed corpus from (path, text) fixture pairs. */
Corpus
make_corpus(std::initializer_list<std::pair<const char*, const char*>>
                files)
{
    Corpus corpus;
    for (const auto& [path, text] : files)
        corpus.files.push_back(lex_source(path, text));
    corpus.build_index();
    return corpus;
}

/** Run one named check over `corpus` (no suppressions/baseline). */
std::vector<Finding>
run_one(Corpus& corpus, const std::string& check)
{
    Options opts;
    opts.checks = {check};
    return run_checks(corpus, opts).findings;
}

// ---------------------------------------------------------------- lexer

TEST(ShiftlintLexer, StringsCommentsAndPreprocessorAreOpaque)
{
    // rand() appears only in a string, a comment, and an #include-like
    // directive: none of them are code.
    auto corpus = make_corpus({{"a.cc", R"fix(
#include <rand()>
// rand() in a comment
const char* s = "rand()";
)fix"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintLexer, TracksLineNumbers)
{
    auto corpus = make_corpus({{"a.cc", "\n\nint x = rand();\n"}});
    const auto findings = run_one(corpus, "nondet-source");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[0].check, "nondet-source");
}

// ------------------------------------------------------- nondet-source

TEST(ShiftlintNondetSource, FlagsRngAndClockAndGetenv)
{
    auto corpus = make_corpus({{"src/core/x.cc", R"(
int a() { return rand(); }
std::random_device rd;
auto t = std::chrono::system_clock::now();
const char* e = getenv("X");
std::map<Foo*, int> by_ptr;
)"}});
    const auto findings = run_one(corpus, "nondet-source");
    EXPECT_EQ(findings.size(), 5u);
}

TEST(ShiftlintNondetSource, AllowsGetenvInUtil)
{
    auto corpus = make_corpus(
        {{"src/util/logging.cc", "const char* e = getenv(\"L\");\n"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintNondetSource, AllowsMemberFunctionsNamedLikeBanned)
{
    auto corpus = make_corpus({{"a.cc", R"(
double t = histogram.time();
auto c = obj->clock();
std::map<int, Foo*> value_is_pointer_ok;
)"}});
    EXPECT_TRUE(run_one(corpus, "nondet-source").empty());
}

TEST(ShiftlintNondetSource, SuppressionSilencesWithReason)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source): demo binary, not a simulation path
int a() { return rand(); }
)"}});
    Options opts;
    opts.checks = {"nondet-source"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    ASSERT_EQ(result.suppressed.size(), 1u);
    EXPECT_EQ(result.suppressed[0].check, "nondet-source");
}

// ------------------------------------------------------ unordered-emit

TEST(ShiftlintUnorderedEmit, FlagsIterationInEmittingFunction)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
void dump(Sink* sink, std::unordered_map<int, int>& m)
{
    for (const auto& [k, v] : m)
        sink->on_instant(0, 0.0, "x");
}
)"}});
    const auto findings = run_one(corpus, "unordered-emit");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("dump"), std::string::npos);
}

TEST(ShiftlintUnorderedEmit, MemberDeclaredInHeaderIteratedInCc)
{
    auto corpus = make_corpus(
        {{"src/m.h", "struct M { std::unordered_map<long, long> "
                     "tallies_; };\n"},
         {"src/m.cc", R"(
void M::report(CsvWriter& csv)
{
    for (const auto& [k, v] : tallies_)
        csv.add_row({k, v});
}
)"}});
    EXPECT_EQ(run_one(corpus, "unordered-emit").size(), 1u);
}

TEST(ShiftlintUnorderedEmit, CleanWhenNoSinkInFunction)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
long total(std::unordered_map<int, long>& m)
{
    long sum = 0;
    for (const auto& [k, v] : m)
        sum += v;   // order-independent reduction, no emission
    return sum;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "unordered-emit").empty());
}

TEST(ShiftlintUnorderedEmit, SuppressedWithJustification)
{
    auto corpus = make_corpus({{"src/x.cc", R"(
void dump(Sink* sink, std::unordered_map<int, int>& m)
{
    // shiftlint-allow(unordered-emit): selection below is a total order
    for (const auto& [k, v] : m)
        sink->on_instant(0, 0.0, "x");
}
)"}});
    Options opts;
    opts.checks = {"unordered-emit"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 1u);
}

// -------------------------------------------------- trace-span-balance

TEST(ShiftlintSpanBalance, BeginWithoutEndInTu)
{
    auto corpus = make_corpus({{"src/e.cc", R"(
void straggle(Sink* s) { s->emit(FaultKind::kStraggleStart); }
)"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kStraggleEnd"),
              std::string::npos);
}

TEST(ShiftlintSpanBalance, BalancedTuAndHeadersAreClean)
{
    auto corpus = make_corpus(
        {{"src/e.cc", "void f(Sink* s) { s->emit(kStraggleStart); "
                      "s->emit(kStraggleEnd); }\n"},
         // Headers declare both enumerators; never flagged.
         {"src/trace.h", "enum class K { kStraggleStart };\n"}});
    EXPECT_TRUE(run_one(corpus, "trace-span-balance").empty());
}

TEST(ShiftlintSpanBalance, DrainStartWithoutEndFlagged)
{
    auto corpus = make_corpus({{"src/e.cc", R"(
void drain(Sink* s) { s->emit(FaultKind::kDrainStart); }
)"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kDrainEnd"), std::string::npos);
}

TEST(ShiftlintSpanBalance, GenericBeginEndConvention)
{
    auto corpus = make_corpus(
        {{"src/e.cc", "void f(Sink* s) { s->emit(kBeginTransfer); }\n"}});
    const auto findings = run_one(corpus, "trace-span-balance");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kEndTransfer"),
              std::string::npos);
}

// --------------------------------------------- struct-serializer-drift

TEST(ShiftlintStructDrift, NewFieldMissingFromWriter)
{
    auto corpus = make_corpus(
        {{"src/fault/fault_schedule.h",
          "struct FaultStats { long failures = 0; long brand_new = 0; "
          "};\n"},
         {"src/obs/report_json.cc", R"(
void ReportJson::write()
{
    w.kv("failures", run.faults->failures);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("brand_new"), std::string::npos);
}

TEST(ShiftlintStructDrift, OverloadStatsFieldMissingFromWriter)
{
    // The lifecycle counters are watched against the report writer the
    // same way FaultStats is: a counter added to OverloadStats but not
    // serialized would silently vanish from every run report.
    auto corpus = make_corpus(
        {{"src/engine/overload.h",
          "struct OverloadStats { long expired = 0; long unreported = 0; "
          "};\n"},
         {"src/obs/report_json.cc", R"(
void ReportJson::write()
{
    w.kv("expired", run.overload->expired);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("unreported"), std::string::npos);
}

TEST(ShiftlintStructDrift, DelegatedMergeCoversFields)
{
    // Metrics::merge delegates to add_record; one level of same-file
    // call expansion must count the delegate's field accesses.
    auto corpus = make_corpus(
        {{"src/engine/metrics.h",
          "class Metrics { long total_ = 0; long peak_ = 0; };\n"},
         {"src/engine/metrics.cc", R"(
void Metrics::add_record(long v) { total_ += v; peak_ = v; }
void Metrics::merge(const Metrics& o) { add_record(o.total()); }
)"}});
    EXPECT_TRUE(run_one(corpus, "struct-serializer-drift").empty());
}

TEST(ShiftlintStructDrift, MergeMissingFieldFlagged)
{
    auto corpus = make_corpus(
        {{"src/engine/metrics.h",
          "class Metrics { long total_ = 0; long forgotten_ = 0; };\n"},
         {"src/engine/metrics.cc",
          "void Metrics::merge(const Metrics& o) { total_ += o.total_; "
          "}\n"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("forgotten_"), std::string::npos);
    EXPECT_NE(findings[0].message.find("aggregation"), std::string::npos);
}

TEST(ShiftlintStructDrift, CalibrationReportFieldMissingFromWriter)
{
    // The calibration-report structs are watched against their JSON
    // serializer: a field added to CalibrationReport but never written
    // would silently vanish from the shiftpar.calibration document.
    auto corpus = make_corpus(
        {{"tools/calibrate/calibrate.h",
          "struct CalibrationReport { long total_samples = 0; "
          "double shiny_new_stat = 0.0; };\n"},
         {"tools/calibrate/calibrate.cc", R"(
void write_calibration_report(const CalibrationReport& report,
                              std::ostream& os)
{
    w.kv("total_samples", report.total_samples);
}
)"}});
    const auto findings = run_one(corpus, "struct-serializer-drift");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("shiny_new_stat"),
              std::string::npos);
}

TEST(ShiftlintStructDrift, KernelClassFitFullyWrittenIsClean)
{
    auto corpus = make_corpus(
        {{"tools/calibrate/calibrate.h",
          "struct KernelClassFit { long samples = 0; double alpha = 0.0; "
          "double r2 = 0.0; };\n"},
         {"tools/calibrate/calibrate.cc", R"(
void write_calibration_report(const CalibrationReport& report,
                              std::ostream& os)
{
    w.kv("samples", fit.samples);
    w.kv("alpha", fit.alpha);
    w.kv("r2", fit.r2);
}
)"}});
    EXPECT_TRUE(run_one(corpus, "struct-serializer-drift").empty());
}

// ----------------------------------------------------------- sim-contract

TEST(ShiftlintSimContract, AdvanceToMutatingClusterFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    cluster_->post(t + 1.0, [] {});
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("advance_to"), std::string::npos);
}

TEST(ShiftlintSimContract, AdvanceToNotifyingReadyChangeFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    now_ = t;
    notify_ready_changed();
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("notify_ready_changed"),
              std::string::npos);
}

TEST(ShiftlintSimContract, AdvanceToPokingReadyIndexFlagged)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    cluster_->notify_ready(this);
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("notify_ready"), std::string::npos);
}

TEST(ShiftlintSimContract, NotifyOutsideAdvanceToIsClean)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
void Engine::submit(Request r)
{
    waiting_.push_back(r);
    notify_ready_changed();
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

TEST(ShiftlintSimContract, AdvanceToReadingClockIsClean)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    const double now = cluster_->now();
    return now <= t;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

TEST(ShiftlintSimContract, PostCapturingIteratorFlagged)
{
    auto corpus = make_corpus({{"src/core/d.cc", R"(
void schedule(Queue& q, std::map<long, long>& m)
{
    auto it = m.find(7);
    q.post(1.0, [it] { consume(it->second); });
}
)"}});
    const auto findings = run_one(corpus, "sim-contract");
    ASSERT_GE(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("iterator"), std::string::npos);
}

TEST(ShiftlintSimContract, PostCapturingKeyIsClean)
{
    auto corpus = make_corpus({{"src/core/d.cc", R"(
void schedule(Queue& q, std::map<long, long>& m)
{
    auto it = m.find(7);
    const long key = it->first;
    q.post(1.0, [key] { consume(key); });
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract").empty());
}

// ------------------------------------------------------ driver plumbing

TEST(ShiftlintDriver, MalformedSuppressionIsAFinding)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source) missing the reason colon
int a() { return rand(); }
)"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    bool saw_bad = false;
    for (const auto& f : result.findings)
        saw_bad |= f.check == "bad-suppression";
    EXPECT_TRUE(saw_bad);
    // The rand() finding is NOT suppressed by a malformed comment.
    bool saw_rand = false;
    for (const auto& f : result.findings)
        saw_rand |= f.check == "nondet-source";
    EXPECT_TRUE(saw_rand);
}

TEST(ShiftlintDriver, StaleSuppressionReported)
{
    auto corpus = make_corpus({{"a.cc", R"(
// shiftlint-allow(nondet-source): nothing here actually trips it
int a() { return 4; }
)"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    ASSERT_EQ(result.stale_suppressions.size(), 1u);
    EXPECT_NE(result.stale_suppressions[0].find("a.cc:2"),
              std::string::npos);
}

TEST(ShiftlintDriver, FixRewritesSystemClockOnDisk)
{
    const std::string path =
        ::testing::TempDir() + "/shiftlint_fix_probe.cc";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "auto t = std::chrono::system_clock::now();\n";
    }
    Corpus corpus = load_corpus({path});
    Options opts;
    opts.apply_fixes = true;
    const auto result = run_checks(corpus, opts);
    EXPECT_EQ(result.fixes_applied, 1);
    EXPECT_TRUE(result.findings.empty());  // fixed == resolved

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("steady_clock"), std::string::npos);
    EXPECT_EQ(ss.str().find("system_clock"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ShiftlintDriver, BaselineRoundTripSilencesKnownFindings)
{
    const char* bad = "int a() { return rand(); }\n";
    const std::string base_path =
        ::testing::TempDir() + "/shiftlint_baseline_probe.txt";
    {
        auto corpus = make_corpus({{"a.cc", bad}});
        Options opts;
        const auto result = run_checks(corpus, opts);
        ASSERT_EQ(result.findings.size(), 1u);
        std::ofstream out(base_path, std::ios::trunc);
        write_baseline(out, corpus, result);
    }
    {
        auto corpus = make_corpus({{"a.cc", bad}});
        Options opts;
        opts.baseline_path = base_path;
        const auto result = run_checks(corpus, opts);
        EXPECT_TRUE(result.findings.empty());
        EXPECT_EQ(result.baselined.size(), 1u);
    }
    std::remove(base_path.c_str());
}

// ------------------------------------------------------------- SARIF

TEST(ShiftlintSarif, DocumentShapeAndResultFields)
{
    auto corpus = make_corpus({{"src/x.cc",
                                "int a() { return rand(); }\n"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    ASSERT_EQ(result.findings.size(), 1u);

    std::ostringstream os;
    write_sarif(os, result);
    const auto doc = shiftpar::testing::parse_json(os.str());

    EXPECT_EQ(doc.at("version").str(), "2.1.0");
    const auto& runs = doc.at("runs").arr();
    ASSERT_EQ(runs.size(), 1u);
    const auto& driver = runs[0].at("tool").at("driver");
    EXPECT_EQ(driver.at("name").str(), "shiftlint");
    // Every registered check appears as a rule.
    EXPECT_EQ(driver.at("rules").arr().size(), check_registry().size());

    const auto& results = runs[0].at("results").arr();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].at("ruleId").str(), "nondet-source");
    EXPECT_EQ(results[0].at("level").str(), "error");
    const auto& loc =
        results[0].at("locations").arr()[0].at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").str(), "src/x.cc");
    EXPECT_EQ(loc.at("region").at("startLine").num(), 1.0);
}

// ----------------------------------------------------- analysis layer

TEST(ShiftlintAnalysis, CallInsideConditionIsNotADefinition)
{
    // `std::isfinite(d)) {` — a call nested in an if-condition followed
    // by the statement body — must not parse as a definition of
    // `std::isfinite` (which would graft the if-body onto a phantom
    // call-graph node).
    auto corpus = make_corpus({{"src/e.cc", R"(
bool Engine::advance_to(double t)
{
    if (t > 0.0 && std::isfinite(t)) {
        now_ = t;
        return true;
    }
    return false;
}
)"}});
    for (const auto& fn : corpus.functions)
        EXPECT_NE(fn.name, "isfinite");
    ASSERT_EQ(corpus.functions.size(), 1u);
    EXPECT_EQ(corpus.functions[0].qualified, "Engine::advance_to");
}

TEST(ShiftlintAnalysis, InClassDefinitionGetsOwnerAttributed)
{
    auto corpus = make_corpus({{"src/b.h", R"(
class Box
{
  public:
    void set(int v) { val_ = v; }

  private:
    int val_ = 0;
};
)"}});
    ASSERT_EQ(corpus.functions.size(), 1u);
    EXPECT_EQ(corpus.functions[0].owner, "Box");
    EXPECT_EQ(corpus.functions[0].qualified, "Box::set");
}

// ------------------------------------------- sim-contract-interproc

TEST(ShiftlintInterproc, AdvanceToNotifyingThroughHelperFlagged)
{
    // Regression fixture for the in-tree bug this check caught: the
    // engine's advance_to jumped the clock and called expire_now, which
    // re-announced the ready time mid-grant.
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    now_ = t;
    return expire_now();
}
bool Engine::expire_now()
{
    expired_ += 1;
    notify_ready_changed();
    return true;
}
)"}});
    const auto findings = run_one(corpus, "sim-contract-interproc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("Engine::expire_now"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("notify_ready_changed"),
              std::string::npos);
}

TEST(ShiftlintInterproc, MutationReachedAcrossTusFlagged)
{
    // The helper lives in another TU; the symbol index resolves the
    // unqualified call through the caller's owning class.
    auto corpus = make_corpus(
        {{"src/engine/a.cc", R"(
bool Engine::advance_to(double t)
{
    drain_queue(t);
    return true;
}
)"},
         {"src/engine/b.cc", R"(
void Engine::drain_queue(double t)
{
    cluster_->post(t, [] {});
}
)"}});
    const auto findings = run_one(corpus, "sim-contract-interproc");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("Engine::drain_queue"),
              std::string::npos);
}

TEST(ShiftlintInterproc, UnresolvableCalleeFailsOpen)
{
    // `mystery_helper` has no definition in the corpus: no edge, no
    // finding — the check never guesses about out-of-corpus code.
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    mystery_helper(t);
    return true;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract-interproc").empty());
}

TEST(ShiftlintInterproc, QualifiedCallNeverFallsBackToLocalName)
{
    // `std::min` must not resolve to an in-corpus free function named
    // `min` that happens to mutate the cluster.
    auto corpus = make_corpus(
        {{"src/engine/a.cc", R"(
bool Engine::advance_to(double t)
{
    const double w = std::min(t, 1.0);
    return w > 0.0;
}
)"},
         {"src/other/m.cc", R"(
double min(double a, double b)
{
    cluster_->post(a, [] {});
    return a < b ? a : b;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract-interproc").empty());
}

TEST(ShiftlintInterproc, BenignHelperChainIsClean)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    return tick(t);
}
bool Engine::tick(double t)
{
    now_ = t;
    return true;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "sim-contract-interproc").empty());
}

TEST(ShiftlintInterproc, SuppressedAtCallSiteWithReason)
{
    auto corpus = make_corpus({{"src/engine/e.cc", R"(
bool Engine::advance_to(double t)
{
    // shiftlint-allow(sim-contract-interproc): lockstep surrogate only
    return expire_now();
}
bool Engine::expire_now()
{
    notify_ready_changed();
    return true;
}
)"}});
    Options opts;
    opts.checks = {"sim-contract-interproc"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 1u);
}

// --------------------------------------------------------- guarded-by

TEST(ShiftlintGuardedBy, UnlockedTouchFlagged)
{
    // Regression fixture for the in-tree bug this check caught:
    // ReportJson::set_title wrote the title without taking the mutex
    // every other method locks.
    auto corpus = make_corpus({{"src/obs/r.h", R"(
class ReportJson
{
  public:
    void set_title(const std::string& t) { title_ = t; }
    std::size_t num_runs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return runs_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::string title_;      // shiftlint-guarded(mutex_)
    std::vector<Run> runs_;  // shiftlint-guarded(mutex_)
};
)"}});
    const auto findings = run_one(corpus, "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("title_"), std::string::npos);
    EXPECT_NE(findings[0].message.find("set_title"), std::string::npos);
}

TEST(ShiftlintGuardedBy, LockingCallersOnEveryPathCoverHelper)
{
    // The private helper never locks, but its only callers do — the
    // chrome-trace "caller holds mutex_" idiom. Out-of-line definitions
    // in a separate TU exercise the cross-TU caller walk.
    auto corpus = make_corpus(
        {{"src/obs/t.h", R"(
class Sink
{
  public:
    void add(int v);
    void merge(const Sink& o);

  private:
    void append_unlocked(int v);
    std::mutex mu_;
    std::vector<int> events_;  // shiftlint-guarded(mu_)
};
)"},
         {"src/obs/t.cc", R"(
void Sink::add(int v)
{
    std::lock_guard<std::mutex> lock(mu_);
    append_unlocked(v);
}
void Sink::merge(const Sink& o)
{
    std::scoped_lock lock(mu_, o.mu_);
    append_unlocked(0);
}
void Sink::append_unlocked(int v)
{
    events_.push_back(v);
}
)"}});
    EXPECT_TRUE(run_one(corpus, "guarded-by").empty());
}

TEST(ShiftlintGuardedBy, OneUnlockedCallerPathFlagged)
{
    auto corpus = make_corpus({{"src/obs/t.h", R"(
class Sink
{
  public:
    void add(int v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        append_unlocked(v);
    }
    void add_fast(int v) { append_unlocked(v); }

  private:
    void append_unlocked(int v) { events_.push_back(v); }
    std::mutex mu_;
    std::vector<int> events_;  // shiftlint-guarded(mu_)
};
)"}});
    const auto findings = run_one(corpus, "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("append_unlocked"),
              std::string::npos);
}

TEST(ShiftlintGuardedBy, ConstructorIsExempt)
{
    auto corpus = make_corpus({{"src/obs/t.h", R"(
class Sink
{
  public:
    Sink() { events_.reserve(64); }

  private:
    std::mutex mu_;
    std::vector<int> events_;  // shiftlint-guarded(mu_)
};
)"}});
    EXPECT_TRUE(run_one(corpus, "guarded-by").empty());
}

TEST(ShiftlintGuardedBy, UnboundAnnotationFlagged)
{
    auto corpus = make_corpus({{"src/obs/t.h", R"(
class Sink
{
  private:
    std::mutex mu_;
    // shiftlint-guarded(mu_)

    std::vector<int> events_;
};
)"}});
    const auto findings = run_one(corpus, "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("binds to no data member"),
              std::string::npos);
}

TEST(ShiftlintGuardedBy, SuppressedTouchWithReason)
{
    auto corpus = make_corpus({{"src/obs/t.h", R"(
class Sink
{
  public:
    int peek() const
    {
        // shiftlint-allow(guarded-by): racy read is advisory only
        return events_.empty() ? 0 : 1;
    }

  private:
    std::mutex mu_;
    std::vector<int> events_;  // shiftlint-guarded(mu_)
};
)"}});
    Options opts;
    opts.checks = {"guarded-by"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 1u);
}

// ------------------------------------------------ outcome-conservation

TEST(ShiftlintOutcome, AssignmentCounterAndStatsTogetherIsClean)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::expire(Flight& f)
{
    f.outcome = FlightOutcome::kExpired;
    count_outcome("expired");
    ++overload_stats_.expired;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "outcome-conservation").empty());
}

TEST(ShiftlintOutcome, CounterReachedThroughCalleeIsClean)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::expire(Flight& f)
{
    f.outcome = FlightOutcome::kExpired;
    record_expiry();
}
void Router::record_expiry()
{
    count_outcome("expired");
    ++overload_stats_.expired;
}
)"}});
    EXPECT_TRUE(run_one(corpus, "outcome-conservation").empty());
}

TEST(ShiftlintOutcome, AssignmentWithoutCounterFlagged)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::expire(Flight& f)
{
    f.outcome = FlightOutcome::kExpired;
    ++overload_stats_.expired;
}
)"}});
    const auto findings = run_one(corpus, "outcome-conservation");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("count_outcome"),
              std::string::npos);
}

TEST(ShiftlintOutcome, AssignmentWithoutStatsUpdateFlagged)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::shed(Flight& f)
{
    f.outcome = FlightOutcome::kShed;
    count_outcome("shed");
}
)"}});
    const auto findings = run_one(corpus, "outcome-conservation");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("'shed' stats"),
              std::string::npos);
}

TEST(ShiftlintOutcome, CounterWithoutTransitionFlagged)
{
    // Reverse direction: the counter books a terminal outcome no
    // flight-table transition backs up.
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::on_loss(Flight& f)
{
    count_outcome("lost");
    ++fault_stats_.lost;
}
)"}});
    const auto findings = run_one(corpus, "outcome-conservation");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("kLost"), std::string::npos);
}

TEST(ShiftlintOutcome, NonTerminalCounterStringsIgnored)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::on_hedge(Flight& f)
{
    count_outcome("hedge_lost");
}
)"}});
    EXPECT_TRUE(run_one(corpus, "outcome-conservation").empty());
}

TEST(ShiftlintOutcome, SuppressedWithReason)
{
    auto corpus = make_corpus({{"src/engine/r.cc", R"(
void Router::expire(Flight& f)
{
    // shiftlint-allow(outcome-conservation): counted by the caller
    f.outcome = FlightOutcome::kExpired;
}
)"}});
    Options opts;
    opts.checks = {"outcome-conservation"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 2u);  // counter + stats findings
}

// ------------------------------------------------------ rng-discipline

TEST(ShiftlintRng, ByValueParameterFlagged)
{
    auto corpus = make_corpus({{"src/w.cc", R"(
std::vector<double> arrivals(Rng rng, double rate)
{
    return {rng.uniform() / rate};
}
)"}});
    const auto findings = run_one(corpus, "rng-discipline");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("by value"), std::string::npos);
}

TEST(ShiftlintRng, ReferenceAndPointerParametersClean)
{
    auto corpus = make_corpus({{"src/w.cc", R"(
double draw(Rng& rng) { return rng.uniform(); }
double draw2(std::mt19937* gen) { return 0.0; }
double draw3(const Rng& rng, Rng&& scratch) { return 0.0; }
)"}});
    EXPECT_TRUE(run_one(corpus, "rng-discipline").empty());
}

TEST(ShiftlintRng, CopyInitializationFlagged)
{
    auto corpus = make_corpus({{"src/w.cc", R"(
void twice(Rng& rng)
{
    Rng local = rng;
    local.uniform();
}
)"}});
    const auto findings = run_one(corpus, "rng-discipline");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("fork"), std::string::npos);
}

TEST(ShiftlintRng, TestMacroSuiteNamedRngIsClean)
{
    // Regression: TEST(Rng, Foo) { ... } parses as a braced definition
    // whose "parameter" is the suite label, not a by-value RNG.
    auto corpus = make_corpus({{"tests/t.cc", R"(
TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
}
)"}});
    EXPECT_TRUE(run_one(corpus, "rng-discipline").empty());
}

TEST(ShiftlintRng, SeedConstructionIsClean)
{
    auto corpus = make_corpus({{"src/w.cc", R"(
void fresh()
{
    Rng rng(2026);
    std::mt19937 gen{42};
}
)"}});
    EXPECT_TRUE(run_one(corpus, "rng-discipline").empty());
}

TEST(ShiftlintRng, SuppressedDeliberateForkWithReason)
{
    auto corpus = make_corpus({{"bench/b.cc", R"(
void both(Rng& rng)
{
    // shiftlint-allow(rng-discipline): deliberate same-stream replay
    Rng local = rng;
    local.uniform();
}
)"}});
    Options opts;
    opts.checks = {"rng-discipline"};
    const auto result = run_checks(corpus, opts);
    EXPECT_TRUE(result.findings.empty());
    EXPECT_EQ(result.suppressed.size(), 1u);
}

// ---------------------------------------- span balance across TUs

TEST(ShiftlintSpanBalance, PairSplitAcrossTusIsClean)
{
    // v2 lifts the pairing corpus-wide: the end emitted from a different
    // TU satisfies the begin.
    auto corpus = make_corpus(
        {{"src/a.cc",
          "void f(Sink* s) { s->emit(FaultKind::kStraggleStart); }\n"},
         {"src/b.cc",
          "void g(Sink* s) { s->emit(FaultKind::kStraggleEnd); }\n"}});
    EXPECT_TRUE(run_one(corpus, "trace-span-balance").empty());
}

// ---------------------------------------------- driver: jobs & stats

TEST(ShiftlintDriver, MalformedGuardAnnotationIsAFinding)
{
    auto corpus = make_corpus({{"src/t.h", R"(
class Sink
{
  private:
    std::mutex mu_;
    std::vector<int> events_;  // shiftlint-guarded()
};
)"}});
    Options opts;
    const auto result = run_checks(corpus, opts);
    bool saw_bad = false;
    for (const auto& f : result.findings)
        saw_bad |= f.check == "bad-annotation";
    EXPECT_TRUE(saw_bad);
}

TEST(ShiftlintDriver, JobsOutputByteIdenticalToSequential)
{
    // A mixed-findings fixture tree, linted at --jobs 1 and --jobs 8:
    // human and SARIF renderings must match byte-for-byte (parallel
    // lexing fills pre-assigned slots; checks merge in registry order).
    const std::string dir = ::testing::TempDir() + "/shiftlint_jobs";
    std::filesystem::create_directories(dir);
    const std::pair<const char*, const char*> files[] = {
        {"a.cc", "int a() { return rand(); }\n"},
        {"b.cc", "auto t = std::chrono::system_clock::now();\n"},
        {"c.cc", "void f(Sink* s) { s->emit(FaultKind::kDrainStart); "
                 "}\n"},
        {"d.cc", "bool Engine::advance_to(double t) { return "
                 "expire_now(); }\n"
                 "bool Engine::expire_now() { notify_ready_changed(); "
                 "return true; }\n"},
        {"e.cc", "void twice(Rng& rng) { Rng local = rng; }\n"},
        {"f.cc", "int clean_file() { return 7; }\n"},
    };
    std::vector<std::string> paths;
    for (const auto& [name, text] : files) {
        paths.push_back(dir + "/" + name);
        std::ofstream out(paths.back(), std::ios::trunc);
        out << text;
    }

    const auto render = [&](int jobs) {
        Corpus corpus = load_corpus(paths, jobs);
        Options opts;
        opts.jobs = jobs;
        const RunResult result = run_checks(corpus, opts);
        std::ostringstream human, sarif;
        write_human(human, result);
        write_sarif(sarif, result);
        return human.str() + "\x01" + sarif.str();
    };

    const std::string seq = render(1);
    ASSERT_NE(seq.find("[nondet-source]"), std::string::npos);
    ASSERT_NE(seq.find("[sim-contract-interproc]"), std::string::npos);
    for (int round = 0; round < 3; ++round)
        EXPECT_EQ(render(8), seq) << "round " << round;

    for (const auto& p : paths)
        std::remove(p.c_str());
}

TEST(ShiftlintDriver, StatsReportCoversEveryCheck)
{
    auto corpus = make_corpus(
        {{"a.cc", "int a() { return rand(); }\n"},
         {"b.cc", "int b() { return 2; }\n"}});
    Options opts;
    RunResult result = run_checks(corpus, opts);
    result.stats.lex_s = 0.001;

    EXPECT_EQ(result.stats.files, 2u);
    ASSERT_EQ(result.stats.checks.size(), check_registry().size());
    std::size_t raw_total = 0;
    for (const auto& c : result.stats.checks)
        raw_total += c.findings;
    EXPECT_GE(raw_total, 1u);

    std::ostringstream os;
    write_stats(os, result);
    const std::string text = os.str();
    EXPECT_NE(text.find("shiftlint stats:"), std::string::npos);
    EXPECT_NE(text.find("files/s"), std::string::npos);
    for (const auto& check : check_registry())
        EXPECT_NE(text.find(check->name()), std::string::npos);
}

} // namespace
} // namespace shiftpar::lint
