/**
 * @file
 * Test-facing alias for the JSON parser.
 *
 * The parser itself was promoted to `util/json_parse.h` once production
 * tools (tracestat, bench_sim_core) needed it; this header keeps the
 * historical `shiftpar::testing` spelling working for the test suite.
 */

#pragma once

#include "util/json_parse.h"

namespace shiftpar::testing {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;
using util::parse_json;

} // namespace shiftpar::testing
