/**
 * @file
 * Minimal recursive-descent JSON parser for validating the observability
 * outputs (Chrome traces, run reports) in tests. Throws std::runtime_error
 * on any syntax violation, so "parses without throwing" doubles as a
 * well-formedness check.
 */

#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace shiftpar::testing {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/** A parsed JSON term. */
struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        v = nullptr;

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
    bool is_object() const { return std::holds_alternative<JsonObject>(v); }
    bool is_array() const { return std::holds_alternative<JsonArray>(v); }
    bool is_string() const { return std::holds_alternative<std::string>(v); }
    bool is_number() const { return std::holds_alternative<double>(v); }

    const JsonObject& obj() const { return std::get<JsonObject>(v); }
    const JsonArray& arr() const { return std::get<JsonArray>(v); }
    const std::string& str() const { return std::get<std::string>(v); }
    double num() const { return std::get<double>(v); }
    bool boolean() const { return std::get<bool>(v); }

    bool has(const std::string& k) const
    {
        return is_object() && obj().count(k) > 0;
    }

    const JsonValue& at(const std::string& k) const
    {
        auto it = obj().find(k);
        if (it == obj().end())
            throw std::runtime_error("missing key: " + k);
        return it->second;
    }
};

namespace detail {

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() + "'");
        ++pos_;
    }

    bool
    consume_literal(const char* lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skip_ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return JsonValue{string()};
          case 't':
            if (consume_literal("true"))
                return JsonValue{true};
            fail("bad literal");
          case 'f':
            if (consume_literal("false"))
                return JsonValue{false};
            fail("bad literal");
          case 'n':
            if (consume_literal("null"))
                return JsonValue{nullptr};
            fail("bad literal");
          default: return JsonValue{number()};
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonObject out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue{out};
        }
        while (true) {
            skip_ws();
            std::string k = string();
            skip_ws();
            expect(':');
            out[k] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue{out};
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonArray out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue{out};
        }
        while (true) {
            out.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue{out};
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("dangling escape");
            const char esc = s_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                for (int i = 0; i < 4; ++i) {
                    if (!std::isxdigit(
                            static_cast<unsigned char>(s_[pos_ + i])))
                        fail("bad \\u escape");
                }
                // Decoded codepoint is irrelevant to the tests; keep the
                // escape verbatim so content assertions can match it.
                out += "\\u" + s_.substr(pos_, 4);
                pos_ += 4;
                break;
              }
              default: fail("bad escape character");
            }
        }
    }

    double
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("bad number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("bad fraction");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("bad exponent");
        }
        return std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse `text`; throws std::runtime_error on malformed JSON. */
inline JsonValue
parse_json(const std::string& text)
{
    return detail::JsonParser(text).parse();
}

} // namespace shiftpar::testing
