/** @file Shared fixtures for engine/core tests: a tiny fast model + node. */

#pragma once

#include "engine/engine.h"
#include "hw/presets.h"
#include "model/model_config.h"

namespace shiftpar::testing {

/** A small 8-head model so engine steps are cheap and numbers are tidy. */
inline model::ModelConfig
tiny_model()
{
    model::ModelConfig m;
    m.name = "tiny-1B";
    m.num_layers = 8;
    m.hidden_size = 1024;
    m.q_heads = 8;
    m.kv_heads = 8;
    m.head_dim = 128;
    m.intermediate_size = 4096;
    m.vocab_size = 32000;
    m.weight_dtype = model::DType::kFp8;
    m.validate();
    return m;
}

/** The standard 8-GPU test node. */
inline hw::Node
test_node()
{
    return hw::h200_node();
}

/** Default engine config over the whole node as TP=8. */
inline engine::EngineConfig
tp8_engine_config()
{
    engine::EngineConfig cfg;
    cfg.base = {1, 8};
    return cfg;
}

/** Build an engine with a fixed policy over its base config. */
inline std::unique_ptr<engine::Engine>
make_engine(const model::ModelConfig& m, engine::EngineConfig cfg)
{
    return std::make_unique<engine::Engine>(
        test_node(), m, cfg,
        std::make_unique<engine::FixedPolicy>(cfg.base));
}

} // namespace shiftpar::testing
