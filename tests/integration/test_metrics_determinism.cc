/**
 * @file
 * Determinism tests for the metrics registry under the sweep runner: the
 * aggregated registry — and therefore the report's `metrics` section and
 * the Prometheus exposition — is byte-identical at `--jobs` 1, 4, and 16,
 * because every point records into a private buffer that run_sweep folds
 * into the parent in point-index order on both execution paths.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "core/deployment.h"
#include "model/presets.h"
#include "obs/metrics_registry.h"
#include "obs/report_json.h"
#include "util/rng.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

/** Run one sweep with synthetic per-point metrics; return the exposition. */
std::string
synthetic_sweep(int jobs, std::size_t points)
{
    bench::detail::set_jobs(jobs);
    obs::MetricsRegistry parent;
    obs::MetricsRegistry* prev =
        obs::MetricsRegistry::set_thread_override(&parent);
    bench::run_sweep(points, [](std::size_t i) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
        reg.counter_add("points_total");
        reg.counter_add("work_units_total",
                        static_cast<std::int64_t>(3 * i + 1),
                        {{"point", i % 2 ? "odd" : "even"}});
        // Irrational-ish values: float summation order differences would
        // show up in the folded histogram sum.
        reg.observe("point_value", 0.1 + 0.7 * static_cast<double>(i));
        reg.gauge_max("deepest_point", static_cast<double>(i));
        return bench::SweepCommit();
    });
    obs::MetricsRegistry::set_thread_override(prev);
    std::ostringstream os;
    parent.write_prometheus(os);
    return os.str();
}

TEST(MetricsDeterminism, SyntheticSweepExpositionIsByteIdenticalAcrossJobs)
{
    constexpr std::size_t kPoints = 23;
    const std::string j1 = synthetic_sweep(1, kPoints);
    const std::string j4 = synthetic_sweep(4, kPoints);
    const std::string j16 = synthetic_sweep(16, kPoints);
    EXPECT_FALSE(j1.empty());
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(j1, j16);
}

/**
 * Real deployments with fault injection: the router's fault-outcome
 * counters flow through the same buffers, and the report carrying both
 * run records and the metrics section stays byte-identical.
 */
void
faulted_sweep(int jobs, obs::ReportJson* report_sink,
              obs::MetricsRegistry* metrics_sink)
{
    bench::detail::set_jobs(jobs);
    bench::detail::set_thread_report(report_sink);
    obs::MetricsRegistry* prev =
        obs::MetricsRegistry::set_thread_override(metrics_sink);
    bench::run_sweep(3, [](std::size_t i) {
        core::Deployment d;
        d.model = model::qwen_32b();
        d.strategy = parallel::Strategy::kDp;
        // Fail one replica mid-replay (recovering later), so retries /
        // sheds / losses hit the metrics registry from worker threads.
        d.faults.events.push_back(
            {fault::FaultKind::kFail, static_cast<int>(i % 2), -1, 0.5,
             6.0, 1.0});
        auto reqs = workload::uniform_batch(6, 500, 150);
        Rng rng(100 + static_cast<std::uint64_t>(i));
        const auto tail = workload::make_requests(
            workload::poisson_arrivals(rng, 2.0, 3.0), rng,
            workload::lognormal_size(500.0, 0.5, 60.0, 0.4));
        reqs.insert(reqs.end(), tail.begin(), tail.end());
        bench::run_deployment_named("point " + std::to_string(i), d,
                                    reqs);
        return bench::SweepCommit();
    });
    obs::MetricsRegistry::set_thread_override(prev);
    bench::detail::set_thread_report(nullptr);
}

TEST(MetricsDeterminism, FaultedSweepReportAndExpositionMatchAcrossJobs)
{
    const auto render = [](int jobs) {
        obs::ReportJson report;
        obs::MetricsRegistry metrics;
        faulted_sweep(jobs, &report, &metrics);
        report.set_metrics(metrics.snapshot());
        std::ostringstream rep, exp;
        report.write(rep);
        metrics.write_prometheus(exp);
        return std::make_pair(rep.str(), exp.str());
    };
    const auto j1 = render(1);
    const auto j4 = render(4);
    const auto j16 = render(16);

    // The fault wiring actually recorded outcomes.
    EXPECT_NE(j1.second.find("shiftpar_fault_transitions_total"),
              std::string::npos);
    EXPECT_NE(j1.second.find("shiftpar_fault_requests_total"),
              std::string::npos);
    EXPECT_NE(j1.first.find("\"metrics\""), std::string::npos);

    EXPECT_EQ(j1.first, j4.first);
    EXPECT_EQ(j1.first, j16.first);
    EXPECT_EQ(j1.second, j4.second);
    EXPECT_EQ(j1.second, j16.second);
}

TEST(MetricsDeterminism, SequentialDirectRecordingMatchesBufferedPath)
{
    // A sweep of one point at jobs=1 must produce the same bytes as
    // recording the same metrics without the sweep runner at all — the
    // buffering layer is transparent.
    obs::MetricsRegistry direct;
    direct.counter_add("c", 5);
    direct.observe("h", 1.25);

    bench::detail::set_jobs(1);
    obs::MetricsRegistry swept;
    obs::MetricsRegistry* prev =
        obs::MetricsRegistry::set_thread_override(&swept);
    bench::run_sweep(1, [](std::size_t) {
        obs::MetricsRegistry::current().counter_add("c", 5);
        obs::MetricsRegistry::current().observe("h", 1.25);
        return bench::SweepCommit();
    });
    obs::MetricsRegistry::set_thread_override(prev);

    std::ostringstream a, b;
    direct.write_prometheus(a);
    swept.write_prometheus(b);
    EXPECT_EQ(a.str(), b.str());
}

} // namespace
} // namespace shiftpar
