/**
 * @file
 * Algorithm 2 conformance: every step the engine executes under a Shift
 * deployment must obey the threshold rule exactly — batched tokens above
 * the threshold run the base (SP) configuration, at-or-below run the
 * SP_TP-ordered full-TP shift configuration — and the KV cache layout
 * must be shared across every switch.
 */

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "kvcache/layout.h"
#include "model/presets.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

TEST(ShiftConformance, EveryStepObeysTheThreshold)
{
    core::Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kShift;
    const auto resolved = core::resolve(d);
    const std::int64_t threshold = resolved.shift_threshold;
    ASSERT_GT(threshold, 0);

    // Mixed traffic guarantees both small decode batches and big prefill
    // chunks.
    Rng rng(5);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 2.0, 40.0), rng,
        workload::lognormal_size(5000.0, 0.8, 200.0, 0.5));

    auto router = core::build(d);
    const auto met = router->run_workload(reqs);

    std::int64_t base_steps = 0;
    std::int64_t shift_steps = 0;
    for (const auto& step : router->engine(0).metrics().steps()) {
        if (step.batched_tokens > threshold) {
            EXPECT_EQ(step.cfg, resolved.base)
                << "batch " << step.batched_tokens;
            ++base_steps;
        } else {
            EXPECT_EQ(step.cfg, resolved.base.shift_config())
                << "batch " << step.batched_tokens;
            ++shift_steps;
        }
    }
    // The workload must actually exercise both branches.
    EXPECT_GT(base_steps, 0);
    EXPECT_GT(shift_steps, 0);
    EXPECT_EQ(met.requests().size(), reqs.size());
}

TEST(ShiftConformance, ManualThresholdIsHonored)
{
    core::Deployment d;
    d.model = model::qwen_32b();
    d.strategy = parallel::Strategy::kShift;
    d.shift_threshold = 64;  // far below the auto value
    const auto resolved = core::resolve(d);
    EXPECT_EQ(resolved.shift_threshold, 64);

    auto router = core::build(d);
    router->run_workload(workload::uniform_batch(8, 2048, 16));
    for (const auto& step : router->engine(0).metrics().steps()) {
        if (step.batched_tokens > 64)
            EXPECT_EQ(step.cfg.sp, resolved.base.sp);
        else
            EXPECT_EQ(step.cfg.sp, 1);
    }
}

TEST(ShiftConformance, ThresholdZeroNeverShifts)
{
    core::Deployment d;
    d.model = model::qwen_32b();
    d.strategy = parallel::Strategy::kShift;
    d.shift_threshold = 0;  // batches > 0 always run the base
    auto router = core::build(d);
    const auto met = router->run_workload({{0.0, 512, 32}});
    EXPECT_EQ(met.tp_steps(), 0);
    EXPECT_GT(met.sp_steps(), 0);
}

TEST(ShiftConformance, SwitchIsKvInvariantForEveryBase)
{
    // Every auto-resolved shift deployment's two configurations must share
    // one cache layout (the engine asserts this; verify it directly too).
    for (const auto& m : model::table4_models()) {
        core::Deployment d;
        d.model = m;
        d.strategy = parallel::Strategy::kShift;
        const auto r = core::resolve(d);
        const auto base = kvcache::KvLayout::base(m, r.base);
        const auto shift = kvcache::KvLayout::shift(m, r.base);
        EXPECT_TRUE(base.invariant_with(shift)) << m.name;
        EXPECT_DOUBLE_EQ(
            kvcache::switch_cost_bytes(m, base, shift, 1 << 20), 0.0)
            << m.name;
    }
}

TEST(ShiftConformance, ShiftStepsDominateLowTraffic)
{
    // One lone request: prefill chunks exceed the threshold (base mode),
    // all decode steps are batch 1 (shift mode).
    core::Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kShift;
    auto router = core::build(d);
    const auto met = router->run_workload({{0.0, 8192, 100}});
    EXPECT_GE(met.sp_steps(), 1);         // the 8k prefill chunk(s)
    EXPECT_GE(met.tp_steps(), 99);        // every decode token
}

} // namespace
} // namespace shiftpar
