/**
 * @file
 * Calibration regression tests: the measured operating points must stay
 * within bands around the paper's published numbers (EXPERIMENTS.md
 * records the exact measured values). These tests pin the *shape* of every
 * headline result so a perf-model change that silently breaks a paper
 * property fails CI.
 */

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "model/presets.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

using core::Deployment;
using core::run_deployment;
using parallel::Strategy;

struct Point
{
    double ttft;
    double tpot;
    double throughput;
};

Point
measure(const model::ModelConfig& m, Strategy s)
{
    Deployment d;
    d.model = m;
    d.strategy = s;
    const std::vector<engine::RequestSpec> one = {{0.0, 4096, 250}};
    const auto lone = run_deployment(d, one);
    const auto sat =
        run_deployment(d, workload::uniform_batch(512, 4096, 250));
    return {lone.ttft().mean(), lone.tpot().mean(),
            sat.mean_throughput()};
}

class Calibration : public ::testing::Test
{
  protected:
    static const Point&
    pt(const std::string& key)
    {
        static std::map<std::string, Point> cache;
        auto it = cache.find(key);
        if (it == cache.end()) {
            const auto m = key.rfind("llama", 0) == 0 ? model::llama_70b()
                                                      : model::qwen_32b();
            const Strategy s =
                key.find("dp") != std::string::npos   ? Strategy::kDp
                : key.find("tp") != std::string::npos ? Strategy::kTp
                : key.find("sp") != std::string::npos ? Strategy::kSp
                                                      : Strategy::kShift;
            it = cache.emplace(key, measure(m, s)).first;
        }
        return it->second;
    }
};

TEST_F(Calibration, LlamaTpDecodeNearPaper)
{
    // Paper Section 4.3.1: Shift/TP TPOT ~9.34 ms for Llama-70B.
    EXPECT_GT(pt("llama_tp").tpot, 6e-3);
    EXPECT_LT(pt("llama_tp").tpot, 13e-3);
}

TEST_F(Calibration, QwenTpDecodeNearPaper)
{
    // Paper: ~8.68 ms for Qwen-32B.
    EXPECT_GT(pt("qwen_tp").tpot, 5e-3);
    EXPECT_LT(pt("qwen_tp").tpot, 12e-3);
}

TEST_F(Calibration, LlamaThroughputBallpark)
{
    // Paper Table 5 / Fig. 12 scale: DP peak ~75k tok/s on 8xH200.
    EXPECT_GT(pt("llama_dp").throughput, 50e3);
    EXPECT_LT(pt("llama_dp").throughput, 100e3);
}

TEST_F(Calibration, TpLosesLargeThroughputFraction)
{
    // Paper: TP loses ~46% (Llama) / ~45% (Qwen) of DP's throughput.
    const double llama = 1.0 - pt("llama_tp").throughput /
                                   pt("llama_dp").throughput;
    const double qwen =
        1.0 - pt("qwen_tp").throughput / pt("qwen_dp").throughput;
    EXPECT_GT(llama, 0.25);
    EXPECT_LT(llama, 0.55);
    EXPECT_GT(qwen, 0.25);
    EXPECT_LT(qwen, 0.55);
}

TEST_F(Calibration, ShiftLosesSmallThroughputFraction)
{
    // Paper: Shift loses only ~18% (Llama) / ~23% (Qwen).
    const double llama = 1.0 - pt("llama_shift").throughput /
                                   pt("llama_dp").throughput;
    const double qwen = 1.0 - pt("qwen_shift").throughput /
                                  pt("qwen_dp").throughput;
    EXPECT_LT(llama, 0.30);
    EXPECT_LT(qwen, 0.30);
}

TEST_F(Calibration, ShiftBeatsTpThroughputByLargeFactor)
{
    // Paper: up to 1.51x higher peak throughput than TP.
    EXPECT_GT(pt("llama_shift").throughput / pt("llama_tp").throughput,
              1.25);
}

TEST_F(Calibration, TtftRatiosMatchPaperShape)
{
    // Paper Fig. 12: Shift TTFT 1.56x lower than TP, ~6x lower than DP
    // (Llama). Bands are generous — shape, not absolutes.
    const double vs_tp = pt("llama_tp").ttft / pt("llama_shift").ttft;
    const double vs_dp = pt("llama_dp").ttft / pt("llama_shift").ttft;
    EXPECT_GT(vs_tp, 1.2);
    EXPECT_LT(vs_tp, 2.2);
    EXPECT_GT(vs_dp, 4.0);
    EXPECT_LT(vs_dp, 10.0);
}

TEST_F(Calibration, DpGenerationSlowerThanShiftByFactor)
{
    // Paper Fig. 1: ~2x faster generation than DP in low traffic.
    const double ratio = pt("llama_dp").tpot / pt("llama_shift").tpot;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 4.0);
}

TEST_F(Calibration, SpWorstTpotButBestTtft)
{
    EXPECT_GE(pt("llama_sp").tpot, pt("llama_dp").tpot * 0.99);
    EXPECT_LE(pt("llama_sp").ttft, pt("llama_tp").ttft);
}

} // namespace
} // namespace shiftpar
