/**
 * @file
 * Randomized stress tests: replay random workloads through random valid
 * deployments and check the engine's global invariants — every request
 * finishes exactly once with sane metrics, the KV cache drains to empty,
 * time moves forward, and runs are deterministic under a fixed seed.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "core/deployment.h"
#include "model/presets.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

/** Draw a random-but-valid deployment for `m`. */
core::Deployment
random_deployment(Rng& rng, const model::ModelConfig& m)
{
    core::Deployment d;
    d.model = m;
    const int pick = static_cast<int>(rng.uniform_int(0, 3));
    d.strategy = pick == 0   ? parallel::Strategy::kDp
                 : pick == 1 ? parallel::Strategy::kTp
                 : pick == 2 ? parallel::Strategy::kSp
                             : parallel::Strategy::kShift;
    d.sched.max_batched_tokens = 1 << rng.uniform_int(9, 14);
    d.sched.max_running_seqs = rng.uniform_int(4, 256);
    if (rng.bernoulli(0.3))
        d.sched.decode_tokens_per_step = rng.uniform_int(2, 4);
    if (rng.bernoulli(0.3))
        d.swiftkv = core::SwiftKv{};
    return d;
}

/** Random workload, possibly with shared prefixes. */
std::vector<engine::RequestSpec>
random_workload(Rng& rng)
{
    const int n = static_cast<int>(rng.uniform_int(5, 80));
    std::vector<engine::RequestSpec> reqs;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
        t += rng.exponential(2.0);
        engine::RequestSpec r;
        r.arrival = t;
        r.prompt_tokens = rng.uniform_int(1, 20000);
        r.output_tokens = rng.uniform_int(1, 500);
        if (rng.bernoulli(0.3)) {
            r.prefix_id = rng.uniform_int(0, 3);
            r.prefix_tokens = rng.uniform_int(0, r.prompt_tokens);
        }
        reqs.push_back(r);
    }
    return reqs;
}

class EngineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineFuzz, InvariantsHoldOnRandomRuns)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const auto m =
        rng.bernoulli(0.5) ? model::llama_70b() : model::qwen_32b();
    const auto d = random_deployment(rng, m);
    const auto reqs = random_workload(rng);

    auto router = core::build(d);
    engine::RequestId id = 0;
    for (const auto& r : reqs) {
        router->run_until(r.arrival);
        router->submit(r, id++);
    }
    router->drain();
    const engine::Metrics met = router->merged_metrics();

    // 1. Conservation: every request finished exactly once.
    ASSERT_EQ(met.requests().size(), reqs.size());
    std::map<engine::RequestId, int> seen;
    for (const auto& rec : met.requests())
        ++seen[rec.id];
    for (const auto& [rid, count] : seen)
        EXPECT_EQ(count, 1) << "request " << rid;

    // 2. Sane per-request metrics.
    for (const auto& rec : met.requests()) {
        EXPECT_GE(rec.wait, -1e-9);
        EXPECT_GT(rec.ttft, 0.0);
        EXPECT_GE(rec.tpot, 0.0);
        EXPECT_GE(rec.completion, rec.ttft - 1e-12);
    }

    // 3. Cache fully drained on every replica: no request holds blocks;
    //    only retained prefix entries may still occupy memory.
    for (std::size_t e = 0; e < router->size(); ++e) {
        const auto& cache = router->engine(e).cache();
        EXPECT_EQ(cache.num_requests(), 0u);
        if (cache.prefix_entry_count() == 0) {
            const std::int64_t all_blocks = cache.token_capacity() / 16;
            EXPECT_EQ(cache.free_tokens(), all_blocks * 16);
        }
    }

    // 4. Steps are time-ordered per engine with positive durations.
    for (std::size_t e = 0; e < router->size(); ++e) {
        double prev = 0.0;
        for (const auto& s : router->engine(e).metrics().steps()) {
            EXPECT_GE(s.start, prev - 1e-12);
            EXPECT_GT(s.end, s.start);
            prev = s.end;
        }
    }
}

TEST_P(EngineFuzz, DeterministicUnderFixedSeed)
{
    const auto run_once = [&]() {
        Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
        const auto d = random_deployment(rng, model::qwen_32b());
        const auto reqs = random_workload(rng);
        const auto met = core::run_deployment(d, reqs);
        return std::pair{met.completion().sum(), met.total_tokens()};
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_DOUBLE_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 24));

TEST(EngineFuzzSweep, ParallelSweepYieldsIdenticalMetrics)
{
    // Random-but-index-derived deployments replayed through run_sweep:
    // the Metrics each point produces must not depend on --jobs.
    const auto sweep_once = [](int jobs) {
        bench::detail::set_jobs(jobs);
        std::vector<std::pair<double, std::int64_t>> out(8);
        bench::run_sweep(out.size(), [&](std::size_t i) {
            Rng rng(1000 + 37 * static_cast<std::uint64_t>(i));
            const auto d = random_deployment(rng, model::qwen_32b());
            const auto reqs = random_workload(rng);
            const auto met = core::run_deployment(d, reqs);
            const auto val =
                std::pair{met.completion().sum(), met.total_tokens()};
            return bench::SweepCommit([&out, i, val] { out[i] = val; });
        });
        return out;
    };
    const auto seq = sweep_once(1);
    const auto par = sweep_once(4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_DOUBLE_EQ(seq[i].first, par[i].first) << "point " << i;
        EXPECT_EQ(seq[i].second, par[i].second) << "point " << i;
    }
}

} // namespace
} // namespace shiftpar
