/**
 * @file
 * Full-matrix integration sweep: every Table 4 model under every strategy
 * serves a mixed workload correctly, and the Table 1/2 perf-model
 * orderings hold for every model (not just the calibrated dense pair).
 */

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "model/presets.h"
#include "parallel/perf_model.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

model::ModelConfig
model_by_name(const std::string& name)
{
    for (const auto& m : model::table4_models())
        if (m.name == name)
            return m;
    ADD_FAILURE() << "unknown model " << name;
    return model::llama_70b();
}

class StrategyMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
  protected:
    model::ModelConfig
    model() const
    {
        return model_by_name(std::get<0>(GetParam()));
    }

    parallel::Strategy
    strategy() const
    {
        return parallel::parse_strategy(std::get<1>(GetParam()));
    }
};

TEST_P(StrategyMatrix, ServesMixedWorkloadCorrectly)
{
    core::Deployment d;
    d.model = model();
    d.strategy = strategy();
    const auto resolved = core::resolve(d);
    EXPECT_TRUE(resolved.memory.fits());

    Rng rng(17);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 3.0, 20.0), rng,
        workload::lognormal_size(2000.0, 0.8, 150.0, 0.5));
    const auto met = core::run_deployment(d, reqs);

    ASSERT_EQ(met.requests().size(), reqs.size());
    EXPECT_GT(met.mean_throughput(), 0.0);
    for (const auto& r : met.requests()) {
        EXPECT_GT(r.ttft, 0.0);
        EXPECT_GE(r.completion, r.ttft - 1e-12);
        EXPECT_GE(r.wait, -1e-12);
    }
    // Component accounting is self-consistent with wall-clock.
    double step_sum = 0.0;
    for (const auto& s : met.steps())
        step_sum += s.timing.total();
    EXPECT_GT(step_sum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllStrategies, StrategyMatrix,
    ::testing::Combine(::testing::Values("Llama-70B", "Qwen-32B",
                                         "Llama-17B-16E", "Qwen-30B-A3B"),
                       ::testing::Values("dp", "tp", "sp", "shift")),
    [](const auto& info) {
        std::string n = std::get<0>(info.param) + "_" +
                        std::get<1>(info.param);
        for (auto& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class PerfOrderings : public ::testing::TestWithParam<std::string>
{
  protected:
    model::ModelConfig m_ = model_by_name(GetParam());
    parallel::PerfModel perf_{hw::h200_node(), m_};

    parallel::ParallelConfig
    sp_config() const
    {
        // The deployment resolver picks the valid full-SP-ish base.
        core::Deployment d;
        d.model = m_;
        d.strategy = parallel::Strategy::kSp;
        return core::resolve(d).base;
    }
};

TEST_P(PerfOrderings, SpPrefillNoSlowerThanTp)
{
    const auto sp = sp_config();
    EXPECT_LE(perf_.prefill_time(8192, sp),
              perf_.prefill_time(8192, {1, 8}) * 1.001);
}

TEST_P(PerfOrderings, TpDecodeNoSlowerThanSpByMuch)
{
    const auto sp = sp_config();
    EXPECT_LE(perf_.decode_step_time(1, 2048, {1, 8}),
              perf_.decode_step_time(1, 2048, sp) * 1.001);
}

TEST_P(PerfOrderings, LargeBatchFavorsSpBase)
{
    const auto sp = sp_config();
    EXPECT_LE(perf_.decode_step_time(8192, 1024, sp),
              perf_.decode_step_time(8192, 1024, {1, 8}) * 1.001);
}

TEST_P(PerfOrderings, StepTimeMonotoneInBatch)
{
    const auto sp = sp_config();
    double prev = 0.0;
    for (std::int64_t batch : {8LL, 64LL, 512LL, 4096LL}) {
        const double t = perf_.decode_step_time(batch, 1024, sp);
        EXPECT_GE(t, prev - 1e-12) << "batch " << batch;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, PerfOrderings,
                         ::testing::Values("Llama-70B", "Qwen-32B",
                                           "Llama-17B-16E", "Qwen-30B-A3B"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace shiftpar
