/**
 * @file
 * Equivalence pins for the CostModel refactor: lifting `PerfModel` behind
 * the `model::CostModel` interface must not move a single bit of any
 * reported number. A frozen copy of the pre-interface step-time arithmetic
 * lives in this file as the reference; `PerfModel::evaluate` must match it
 * to exact double equality across a randomized (SP, TP, batch, context,
 * sliced) sweep, the factory's default must be the roofline model with
 * identical construction, and the cost-metrics instrumentation must not
 * perturb engine timings when enabled (and must not touch the registry
 * when disabled).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/test_helpers.h"
#include "hw/presets.h"
#include "model/presets.h"
#include "obs/metrics_registry.h"
#include "parallel/cost_model_factory.h"
#include "parallel/kernel_cost_model.h"
#include "parallel/perf_model.h"
#include "util/rng.h"
#include "util/units.h"

namespace shiftpar::parallel {
namespace {

/**
 * Frozen copy of the roofline step-time arithmetic as it stood before the
 * CostModel interface existed. Deliberately NOT shared with production
 * code: this is the reference the refactored path is pinned against, and
 * it must keep the exact operation order of the original.
 */
StepTiming
legacy_step_time(const hw::Node& node, const model::ModelConfig& m,
                 const PerfOptions& opts, const hw::CollectiveModel& coll,
                 const BatchWork& work, const ParallelConfig& cfg,
                 bool sliced_weights)
{
    const int g = cfg.world();
    const int rep = kv_replication(m, cfg);
    const double wbytes = model::dtype_bytes(m.weight_dtype);
    const double act_b = opts.act_bytes;

    StepTiming t;
    if (opts.engine_overhead) {
        t.overhead = opts.step_overhead_base +
                     opts.step_overhead_per_rank * (g - 1);
    }

    const std::int64_t n_raw = work.total_new_tokens();
    if (n_raw == 0)
        return t;

    const std::int64_t n = cfg.sp > 1 ? round_up(n_raw, cfg.sp) : n_raw;
    const double rows = static_cast<double>(n) / cfg.sp;

    double compute_tokens = 0.0;
    for (const auto& c : work.chunks) {
        compute_tokens += static_cast<double>(c.new_tokens) *
                          (c.is_prefill ? opts.swiftkv_prefill_factor
                                        : opts.decode_compute_inflation);
    }
    const double compute_scale =
        compute_tokens / static_cast<double>(n_raw);

    const double gemm_flops_pg =
        model::layer_gemm_flops(m, static_cast<double>(n) * compute_scale) /
        g;
    double weight_read_pg =
        model::layer_dense_weight_bytes(m) / cfg.tp +
        model::layer_expert_read_bytes(m, static_cast<double>(n)) /
            (cfg.tp * cfg.ep);
    if (sliced_weights)
        weight_read_pg *= 1.0 + opts.slicing_overhead_frac;
    const double act_bytes_pg =
        model::layer_activation_bytes(m, static_cast<double>(n)) / g;
    const double gemm_layer = node.gpu.kernel_time(
        gemm_flops_pg, weight_read_pg + act_bytes_pg,
        node.gpu.effective_gemm_flops(wbytes));

    double attn_flops = 0.0;
    double kv_traffic = 0.0;
    for (const auto& c : work.chunks) {
        const double nt = static_cast<double>(c.new_tokens);
        const double past = static_cast<double>(c.past);
        if (c.is_prefill) {
            const double f = opts.swiftkv_prefill_factor;
            attn_flops += f * model::attn_flops(m, nt, past);
            kv_traffic += f * model::kv_read_bytes(m, nt, past) +
                          model::kv_write_bytes(m, nt);
        } else {
            attn_flops += opts.decode_compute_inflation *
                          model::attn_flops(m, nt, past);
            kv_traffic += model::kv_read_bytes(m, nt, past) +
                          model::kv_write_bytes(m, nt);
        }
    }
    const double attn_flops_pg = attn_flops / g;
    const double kv_traffic_pg = kv_traffic * rep / g;
    const double attn_layer = node.gpu.kernel_time(
        attn_flops_pg, kv_traffic_pg,
        node.gpu.effective_attn_flops(model::dtype_bytes(m.kv_dtype)));

    double comm_layer = 0.0;
    if (cfg.tp > 1) {
        const double ar_bytes = rows * m.hidden_size * act_b;
        comm_layer += 2.0 * coll.all_reduce(ar_bytes, cfg.tp);
    }
    if (cfg.sp > 1) {
        const double qkv_cols =
            (m.q_heads + 2.0 * m.kv_heads * rep) * m.head_dim / cfg.tp;
        comm_layer += coll.all_to_all(rows * qkv_cols * act_b, cfg.sp);
        const double o_cols =
            static_cast<double>(m.q_heads) * m.head_dim / cfg.tp;
        comm_layer += coll.all_to_all(rows * o_cols * act_b, cfg.sp);
    }
    if (m.is_moe() && cfg.ep > 1) {
        const double routed =
            rows * m.active_experts * m.hidden_size * act_b / cfg.tp;
        comm_layer += 2.0 * coll.all_to_all(routed, cfg.ep);
    }

    t.gemm = m.num_layers * gemm_layer;
    t.attention = m.num_layers * attn_layer * opts.attention_scale;
    t.comm = m.num_layers * comm_layer * opts.comm_scale;

    const double sampled = static_cast<double>(work.num_seqs());
    const double head_flops = model::lm_head_flops(m, sampled) / g;
    const double head_bytes =
        static_cast<double>(m.vocab_size) * m.hidden_size * wbytes / g;
    t.gemm += node.gpu.kernel_time(head_flops, head_bytes,
                                   node.gpu.effective_gemm_flops(wbytes));

    if (cfg.sp > 1) {
        t.comm += opts.comm_scale *
                  coll.all_gather(
                      static_cast<double>(n) * m.hidden_size * act_b,
                      cfg.sp);
    }
    return t;
}

BatchWork
random_work(Rng& rng)
{
    BatchWork work;
    const int prefills = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < prefills; ++i) {
        work.chunks.push_back({rng.uniform_int(1, 4096),
                               rng.uniform_int(0, 8192), true});
    }
    const int decodes = static_cast<int>(rng.uniform_int(0, 64));
    for (int i = 0; i < decodes; ++i)
        work.chunks.push_back({1, rng.uniform_int(1, 8192), false});
    return work;
}

void
expect_identical(const StepTiming& a, const StepTiming& b,
                 const std::string& context)
{
    EXPECT_DOUBLE_EQ(a.gemm, b.gemm) << context;
    EXPECT_DOUBLE_EQ(a.attention, b.attention) << context;
    EXPECT_DOUBLE_EQ(a.comm, b.comm) << context;
    EXPECT_DOUBLE_EQ(a.overhead, b.overhead) << context;
}

void
randomized_equivalence_sweep(const model::ModelConfig& m,
                             const PerfOptions& opts,
                             const std::vector<ParallelConfig>& cfgs,
                             std::uint64_t seed)
{
    const hw::Node node = hw::h200_node();
    const hw::CollectiveModel coll(node.link);
    const PerfModel perf(node, m, opts);
    Rng rng(seed);
    for (int it = 0; it < 200; ++it) {
        const ParallelConfig cfg = cfgs[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cfgs.size()) - 1))];
        const BatchWork work = random_work(rng);
        const bool sliced = rng.uniform_int(0, 1) == 1;
        const StepTiming expected =
            legacy_step_time(node, m, opts, coll, work, cfg, sliced);
        const StepTiming got = perf.evaluate(work, cfg, sliced);
        expect_identical(got, expected,
                         cfg.to_string() + " iter " + std::to_string(it));
    }
}

TEST(CostModelEquivalence, RooflineMatchesFrozenLegacyMathExactly)
{
    const std::vector<ParallelConfig> cfgs = {
        {1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 1},
        {2, 2}, {2, 4}, {4, 1}, {4, 2}, {8, 1}};
    randomized_equivalence_sweep(model::llama_70b(), PerfOptions{}, cfgs,
                                 2026);
    randomized_equivalence_sweep(model::qwen_32b(), PerfOptions{}, cfgs,
                                 8'0808);
}

TEST(CostModelEquivalence, NonDefaultOptionsMatchToo)
{
    PerfOptions opts;
    opts.swiftkv_prefill_factor = 0.6;
    opts.decode_compute_inflation = 1.5;
    opts.comm_scale = 0.5;
    opts.attention_scale = 0.7;
    opts.engine_overhead = false;
    opts.slicing_overhead_frac = 0.45;
    const std::vector<ParallelConfig> cfgs = {{1, 8}, {2, 4}, {8, 1}};
    randomized_equivalence_sweep(model::llama_70b(), opts, cfgs, 17);
}

TEST(CostModelEquivalence, MoeWithExpertParallelMatches)
{
    const std::vector<ParallelConfig> cfgs = {
        {1, 8, 1}, {1, 8, 8}, {4, 2, 8}, {8, 1, 4}};
    randomized_equivalence_sweep(model::llama_17b_16e(), PerfOptions{},
                                 cfgs, 99);
}

TEST(CostModelEquivalence, FactoryDefaultIsTheRooflineModel)
{
    const hw::Node node = hw::h200_node();
    const model::ModelConfig m = model::llama_70b();
    const PerfOptions opts;
    const auto made = make_cost_model(CostModelSpec{}, node, m, opts);
    ASSERT_NE(made, nullptr);
    EXPECT_STREQ(made->name(), "roofline");

    const PerfModel direct(node, m, opts);
    const BatchWork work = BatchWork::prefill(4096);
    for (const ParallelConfig cfg :
         {ParallelConfig{1, 8}, ParallelConfig{4, 2}, ParallelConfig{8, 1}})
        expect_identical(made->evaluate(work, cfg), direct.evaluate(work, cfg),
                         cfg.to_string());
}

TEST(CostModelEquivalence, FactoryKernelKindBuildsKernelModel)
{
    const hw::Node node = hw::h200_node();
    const model::ModelConfig m = model::llama_70b();
    CostModelSpec spec;
    spec.kind = model::CostModelKind::kKernel;
    const auto made = make_cost_model(spec, node, m, PerfOptions{});
    EXPECT_STREQ(made->name(), "kernel");

    // Calibrated coefficients override the derived defaults.
    hw::KernelCoeffs coeffs =
        hw::derive_kernel_coeffs(node.gpu, node.link);
    coeffs.gemm.beta *= 3.0;
    spec.coeffs = coeffs;
    const auto tuned = make_cost_model(spec, node, m, PerfOptions{});
    const BatchWork work = BatchWork::prefill(4096);
    EXPECT_GT(tuned->evaluate(work, {1, 8}).total(),
              made->evaluate(work, {1, 8}).total());
}

TEST(CostModelEquivalence, RooflineBreakdownReportsPseudoKernels)
{
    const PerfModel perf(hw::h200_node(), model::llama_70b());
    std::vector<KernelCost> rows;
    const StepTiming t =
        perf.evaluate(BatchWork::decode(16, 2048), {4, 2}, false, &rows);
    ASSERT_EQ(rows.size(), 4u);
    double sum = 0.0;
    for (const auto& r : rows)
        sum += r.seconds;
    EXPECT_DOUBLE_EQ(sum, t.total());
}

/**
 * Satellite pin: the cost-metrics instrumentation is observation only.
 * With `cost_metrics` on, every per-request timing must be bit-identical
 * to the uninstrumented engine; with it off (the default), the engine
 * must never touch the metrics registry.
 */
TEST(CostModelEquivalence, CostMetricsDoNotPerturbEngineTimings)
{
    using shiftpar::testing::make_engine;
    using shiftpar::testing::tiny_model;
    using shiftpar::testing::tp8_engine_config;

    const auto run = [](bool metrics_on, obs::MetricsRegistry* reg) {
        obs::MetricsRegistry* prev =
            obs::MetricsRegistry::set_thread_override(reg);
        auto cfg = tp8_engine_config();
        cfg.cost_metrics = metrics_on;
        auto e = make_engine(tiny_model(), cfg);
        e->submit({0.0, 2048, 16}, 1);
        e->submit({0.5, 512, 64}, 2);
        e->drain();
        obs::MetricsRegistry::set_thread_override(prev);
        return e->metrics().requests();
    };

    obs::MetricsRegistry on_reg, off_reg, untouched;
    const auto with = run(true, &on_reg);
    const auto without = run(false, &off_reg);

    ASSERT_EQ(with.size(), without.size());
    for (std::size_t i = 0; i < with.size(); ++i) {
        EXPECT_DOUBLE_EQ(with[i].ttft, without[i].ttft) << i;
        EXPECT_DOUBLE_EQ(with[i].tpot, without[i].tpot) << i;
        EXPECT_DOUBLE_EQ(with[i].completion, without[i].completion) << i;
    }

    std::ostringstream on_os, off_os, untouched_os;
    on_reg.write_prometheus(on_os);
    off_reg.write_prometheus(off_os);
    untouched.write_prometheus(untouched_os);
    EXPECT_NE(on_os.str().find("shiftpar_costmodel_evals_total"),
              std::string::npos);
    EXPECT_NE(on_os.str().find("shiftpar_costmodel_kernel_share"),
              std::string::npos);
    // The disabled engine leaves the registry exactly as it found it.
    EXPECT_EQ(off_os.str(), untouched_os.str());
}

} // namespace
} // namespace shiftpar::parallel
