/**
 * @file
 * Randomized chaos soak over the full request lifecycle: every robustness
 * feature at once — MTBF fail/recover faults, a graceful drain, client
 * cancellations, per-request deadlines, hedged retries, and circuit
 * breakers — under seeded random workloads and knob settings.
 *
 * Two properties must survive arbitrary compositions:
 *
 *  1. conservation: submitted = completed + lost + shed + expired +
 *     cancelled, with every completed request reported exactly once;
 *  2. determinism: replaying the identical seed reproduces identical
 *     per-request metrics and identical lifecycle counters.
 *
 * The round count is scaled by SHIFTPAR_CHAOS_ROUNDS (CI's sanitizer job
 * raises it so ASan/UBSan sweep more of the configuration space).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "fault/fault_schedule.h"
#include "util/rng.h"
#include "workload/lifecycle.h"

namespace shiftpar {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::OverloadOptions;
using engine::OverloadStats;
using engine::RequestSpec;
using engine::Router;
using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;

int
chaos_rounds()
{
    // shiftlint-allow(nondet-source): CI knob scales soak depth, not results
    if (const char* env = std::getenv("SHIFTPAR_CHAOS_ROUNDS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 3;  // fast default for local ctest runs
}

/** Everything one chaos replay produces, for the determinism re-check. */
struct ChaosOutcome
{
    OverloadStats overload;
    fault::FaultStats faults;
    std::vector<engine::RequestId> ids;
    std::vector<double> completions;
    double end_time = 0.0;
};

ChaosOutcome
run_chaos(std::uint64_t seed)
{
    Rng rng(seed);

    // Random cluster: 2-4 serial-ish replicas so queues actually form.
    const int n_replicas = static_cast<int>(rng.uniform_int(2, 4));
    const std::int64_t max_running = rng.uniform_int(1, 3);
    std::vector<std::unique_ptr<Engine>> engines;
    for (int i = 0; i < n_replicas; ++i) {
        EngineConfig cfg;
        cfg.base = {1, 2};
        cfg.sched.max_running_seqs = max_running;
        engines.push_back(make_engine(tiny_model(), cfg));
    }
    const auto policy = rng.bernoulli(0.5)
                            ? engine::RoutingPolicy::kRoundRobin
                            : engine::RoutingPolicy::kLeastTokens;
    Router router(std::move(engines), policy);

    // Random workload: bursty-ish arrivals, mixed sizes.
    const int n_reqs = static_cast<int>(rng.uniform_int(40, 90));
    std::vector<RequestSpec> reqs;
    double t = 0.0;
    for (int i = 0; i < n_reqs; ++i) {
        t += rng.exponential(rng.bernoulli(0.3) ? 400.0 : 60.0);
        reqs.push_back({t, rng.uniform_int(64, 1024),
                        rng.uniform_int(8, 64)});
    }

    // Random lifecycle knobs: deadlines + cancels always on (they drive
    // the conservation bookkeeping), hedging and breakers by coin flip.
    workload::LifecycleOptions lc;
    lc.cancel_rate = rng.uniform(0.05, 0.25);
    lc.cancel_delay_mean = rng.uniform(0.2, 2.0);
    lc.seed = seed * 31 + 7;
    lc.deadline = rng.uniform(0.5, 4.0);
    lc.deadline_per_token = 0.01;
    workload::apply_deadlines(&reqs, lc);
    router.set_cancellations(workload::cancel_stream(reqs, lc));

    OverloadOptions opts;
    if (rng.bernoulli(0.6))
        opts.hedge_delay = rng.uniform(0.05, 0.5);
    if (rng.bernoulli(0.6)) {
        opts.breaker.enabled = true;
        opts.breaker.min_samples = static_cast<int>(rng.uniform_int(2, 6));
        opts.breaker.trip_ratio = rng.uniform(1.5, 3.0);
        opts.breaker.open_duration = rng.uniform(0.2, 2.0);
    }
    router.set_overload(opts);

    // Random infrastructure chaos: MTBF churn plus one graceful drain.
    const double horizon = t + 1.0;
    std::string spec = "mtbf:mean=" + std::to_string(horizon / 2) +
                       ",mttr=" + std::to_string(rng.uniform(0.05, 0.3)) +
                       ",duration=" + std::to_string(horizon) +
                       ",seed=" + std::to_string(seed);
    const int drain_target =
        static_cast<int>(rng.uniform_int(0, n_replicas - 1));
    spec += ";drain:engine=" + std::to_string(drain_target) +
            ",at=" + std::to_string(rng.uniform(0.1, horizon / 2));
    if (rng.bernoulli(0.7))
        spec += ",resume=" + std::to_string(horizon);
    engine::ResilienceOptions res;
    res.max_retries = static_cast<int>(rng.uniform_int(2, 6));
    res.backoff_base = rng.uniform(0.05, 0.3);
    res.backoff_cap = rng.uniform(0.5, 2.0);
    router.set_faults(fault::parse_fault_spec(spec), res);

    const auto met = router.run_workload(reqs);

    // Conservation: every submitted request lands in exactly one
    // terminal bucket, and the metrics report exactly the completions.
    const OverloadStats& os = router.overload_stats();
    const fault::FaultStats& fs = router.fault_stats();
    EXPECT_EQ(os.completed + os.expired + os.cancelled + fs.lost + fs.shed,
              n_reqs)
        << "conservation leak at seed " << seed << " (spec: " << spec
        << ")";
    EXPECT_EQ(met.requests().size(),
              static_cast<std::size_t>(os.completed));
    // A winning hedge clone reports under its offset id; mapped back to
    // logical ids, completions must be unique — no request twice.
    std::set<engine::RequestId> unique;
    ChaosOutcome out;
    out.overload = os;
    out.faults = fs;
    for (const auto& rec : met.requests()) {
        const engine::RequestId logical = engine::logical_request_id(rec.id);
        EXPECT_LT(logical, n_reqs);
        unique.insert(logical);
        out.ids.push_back(rec.id);
        out.completions.push_back(rec.completion);
    }
    EXPECT_EQ(unique.size(), met.requests().size())
        << "request completed twice at seed " << seed;
    out.end_time = met.end_time();
    return out;
}

TEST(ChaosSoak, ConservationAndDeterminismHoldUnderRandomChaos)
{
    const int rounds = chaos_rounds();
    for (int round = 0; round < rounds; ++round) {
        const std::uint64_t seed = 1000 + 17 * static_cast<std::uint64_t>(
                                              round);
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        const ChaosOutcome a = run_chaos(seed);
        const ChaosOutcome b = run_chaos(seed);

        EXPECT_EQ(a.overload.completed, b.overload.completed);
        EXPECT_EQ(a.overload.expired, b.overload.expired);
        EXPECT_EQ(a.overload.cancelled, b.overload.cancelled);
        EXPECT_EQ(a.overload.hedges, b.overload.hedges);
        EXPECT_EQ(a.overload.hedge_wins, b.overload.hedge_wins);
        EXPECT_EQ(a.overload.hedge_losses, b.overload.hedge_losses);
        EXPECT_EQ(a.overload.breaker_opens, b.overload.breaker_opens);
        EXPECT_EQ(a.overload.breaker_probes, b.overload.breaker_probes);
        EXPECT_EQ(a.overload.breaker_closes, b.overload.breaker_closes);
        EXPECT_EQ(a.overload.drains, b.overload.drains);
        EXPECT_EQ(a.overload.drained, b.overload.drained);
        EXPECT_EQ(a.faults.failures, b.faults.failures);
        EXPECT_EQ(a.faults.retries, b.faults.retries);
        EXPECT_EQ(a.faults.lost, b.faults.lost);
        EXPECT_EQ(a.faults.shed, b.faults.shed);
        ASSERT_EQ(a.ids.size(), b.ids.size());
        for (std::size_t i = 0; i < a.ids.size(); ++i) {
            EXPECT_EQ(a.ids[i], b.ids[i]);
            EXPECT_DOUBLE_EQ(a.completions[i], b.completions[i]);
        }
        EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
    }
}

} // namespace
} // namespace shiftpar
