/**
 * @file
 * Tests for the parallel bench sweep runner: the thread pool executes and
 * drains work, commits fire in index order regardless of completion order,
 * and a multi-worker sweep produces byte-identical results — including the
 * JSON run report — to the sequential reference path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "common/sweep.h"
#include "model/presets.h"
#include "util/thread_pool.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);

    // The pool is reusable after an idle wait.
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        util::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                count.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive)
{
    EXPECT_GE(util::ThreadPool::default_concurrency(), 1);
    util::ThreadPool pool(0);  // clamps to the default
    EXPECT_GE(pool.size(), 1);
}

TEST(SweepRunner, EffectiveJobsIsCappedByPointCount)
{
    bench::detail::set_jobs(8);
    EXPECT_EQ(bench::effective_jobs(2), 2);
    EXPECT_EQ(bench::effective_jobs(100), 8);
    EXPECT_EQ(bench::effective_jobs(0), 1);
    bench::detail::set_jobs(1);
    EXPECT_EQ(bench::effective_jobs(100), 1);
}

TEST(SweepRunner, CommitsFireInIndexOrder)
{
    bench::detail::set_jobs(4);
    constexpr std::size_t kPoints = 24;
    std::vector<std::size_t> order;
    bench::run_sweep(kPoints, [&](std::size_t i) {
        // Early points sleep longest, so without the reorder buffer the
        // late points would commit first.
        std::this_thread::sleep_for(
            std::chrono::microseconds(200 * (kPoints - i)));
        return bench::SweepCommit([&order, i] { order.push_back(i); });
    });
    ASSERT_EQ(order.size(), kPoints);
    for (std::size_t i = 0; i < kPoints; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepRunner, NullCommitsAreSkipped)
{
    bench::detail::set_jobs(4);
    std::vector<std::size_t> order;
    bench::run_sweep(10, [&](std::size_t i) {
        if (i % 2 == 1)
            return bench::SweepCommit();
        return bench::SweepCommit([&order, i] { order.push_back(i); });
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

/** One deployment point whose inputs depend only on the index. */
engine::Metrics
simulate_point(std::size_t i)
{
    Rng rng(9000 + 31 * static_cast<std::uint64_t>(i));
    core::Deployment d;
    d.model = model::qwen_32b();
    d.strategy = bench::comparison_strategies()[i %
        bench::comparison_strategies().size()];
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 3.0, 20.0), rng,
        workload::lognormal_size(2000.0, 0.6, 150.0, 0.4));
    return core::run_deployment(d, reqs);
}

/** Full-precision fingerprint of a run (any drift flips a byte). */
std::string
fingerprint(const engine::Metrics& met)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%lld|%zu",
                  met.completion().sum(), met.ttft().percentile(99),
                  met.tpot().mean(),
                  static_cast<long long>(met.total_tokens()),
                  met.requests().size());
    return buf;
}

TEST(SweepRunner, ParallelSweepIsByteIdenticalToSequential)
{
    constexpr std::size_t kPoints = 6;
    const auto sweep_once = [&](int jobs) {
        bench::detail::set_jobs(jobs);
        std::vector<std::string> out;
        bench::run_sweep(kPoints, [&](std::size_t i) {
            const std::string fp = fingerprint(simulate_point(i));
            return bench::SweepCommit([&out, fp] { out.push_back(fp); });
        });
        return out;
    };
    const auto seq = sweep_once(1);
    const auto par = sweep_once(4);
    ASSERT_EQ(seq.size(), kPoints);
    EXPECT_EQ(seq, par);
}

TEST(SweepRunner, RunReportIsByteIdenticalAcrossJobCounts)
{
    constexpr std::size_t kPoints = 5;
    const auto sweep_once = [&](int jobs, obs::ReportJson* sink) {
        bench::detail::set_jobs(jobs);
        // Redirect this thread's shared report into `sink`: sequential
        // points record into it directly; parallel points record into
        // per-slot buffers that run_sweep merges into it in index order.
        bench::detail::set_thread_report(sink);
        bench::run_sweep(kPoints, [&](std::size_t i) {
            core::Deployment d;
            d.model = model::llama_70b();
            d.strategy = bench::comparison_strategies()[i %
                bench::comparison_strategies().size()];
            Rng rng(777 + 13 * static_cast<std::uint64_t>(i));
            const auto reqs = workload::make_requests(
                workload::poisson_arrivals(rng, 2.0, 15.0), rng,
                workload::lognormal_size(1500.0, 0.5, 120.0, 0.4));
            bench::run_deployment_named("point " + std::to_string(i), d,
                                        reqs);
            return bench::SweepCommit();
        });
        bench::detail::set_thread_report(nullptr);
    };
    obs::ReportJson seq, par;
    sweep_once(1, &seq);
    sweep_once(4, &par);
    ASSERT_EQ(seq.num_runs(), kPoints);
    std::ostringstream a, b;
    seq.write(a);
    par.write(b);
    EXPECT_EQ(a.str(), b.str());
}

} // namespace
} // namespace shiftpar
