/**
 * @file
 * End-to-end shape assertions for the evaluation figures that are not
 * already covered by test_calibration (which pins Fig. 12's operating
 * points): the Fig. 13 context-sweep monotonicities, the Fig. 14
 * crossover, the Fig. 15 breakdown structure, and the Fig. 16 compounding
 * ladder.
 */

#include <gtest/gtest.h>

#include "common/bench_common.h"
#include "core/deployment.h"
#include "model/presets.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

TEST(FigureShapes, Fig13TtftGrowsWithContextAndShiftStaysLowest)
{
    const auto m = model::llama_70b();
    double prev_shift = 0.0;
    for (std::int64_t input : {2048LL, 8192LL, 32768LL}) {
        const auto shift = bench::min_latency(
            m, parallel::Strategy::kShift, input, 64);
        const auto tp =
            bench::min_latency(m, parallel::Strategy::kTp, input, 64);
        const auto dp =
            bench::min_latency(m, parallel::Strategy::kDp, input, 64);
        EXPECT_GT(shift.ttft, prev_shift);
        EXPECT_LE(shift.ttft, tp.ttft);
        EXPECT_LT(shift.ttft, dp.ttft / 3.0);
        prev_shift = shift.ttft;
    }
}

TEST(FigureShapes, Fig13ThroughputDropsAtLongContext)
{
    const auto m = model::qwen_32b();
    const double short_ctx = bench::peak_throughput(
        m, parallel::Strategy::kShift, 8192, 250, 128);
    const double long_ctx = bench::peak_throughput(
        m, parallel::Strategy::kShift, 65536, 250, 32);
    EXPECT_LT(long_ctx, 0.75 * short_ctx);
}

TEST(FigureShapes, Fig14CrossoverExists)
{
    // TP beats DP at a low rate; DP beats TP at a high one.
    const auto m = model::llama_70b();
    const auto completion = [&](parallel::Strategy s, double rate) {
        Rng rng(11);
        const auto reqs = workload::make_requests(
            workload::poisson_arrivals(rng, rate, 60.0), rng,
            workload::fixed_size(8192, 250));
        return bench::run_strategy(m, s, reqs)
            .metrics.completion()
            .mean();
    };
    EXPECT_LT(completion(parallel::Strategy::kTp, 0.5),
              completion(parallel::Strategy::kDp, 0.5));
    EXPECT_GT(completion(parallel::Strategy::kTp, 5.0),
              completion(parallel::Strategy::kDp, 5.0));
}

TEST(FigureShapes, Fig15BreakdownStructure)
{
    const auto run_components = [&](const model::ModelConfig& m,
                                    parallel::Strategy s,
                                    std::int64_t input) {
        return bench::run_strategy(
                   m, s, workload::uniform_batch(64, input, 128))
            .metrics.component_totals();
    };
    // SP communicates far less than TP at equal work.
    const auto m = model::llama_70b();
    const auto tp = run_components(m, parallel::Strategy::kTp, 8192);
    const auto sp = run_components(m, parallel::Strategy::kSp, 8192);
    EXPECT_LT(sp.comm, tp.comm / 3.0);
    // Attention share grows with context.
    const auto short_ctx = run_components(m, parallel::Strategy::kTp, 1024);
    const auto long_ctx =
        run_components(m, parallel::Strategy::kTp, 65536);
    EXPECT_GT(long_ctx.attention / long_ctx.total(),
              2.0 * (short_ctx.attention / short_ctx.total()));
    // Engine-overhead share is larger for the smaller model.
    const auto qwen =
        run_components(model::qwen_32b(), parallel::Strategy::kTp, 1024);
    EXPECT_GT(qwen.overhead / qwen.total(),
              short_ctx.overhead / short_ctx.total());
}

TEST(FigureShapes, Fig16FeaturesCompound)
{
    // Each production feature must strictly improve mean completion on a
    // decode-and-prefill mixed workload.
    Rng rng(13);
    const auto reqs = workload::make_requests(
        workload::poisson_arrivals(rng, 2.0, 40.0), rng,
        workload::lognormal_size(3000.0, 0.6, 300.0, 0.5));

    core::Deployment d;
    d.model = model::llama_70b();
    d.strategy = parallel::Strategy::kShift;
    const double shift_only =
        core::run_deployment(d, reqs).completion().mean();
    d.swiftkv = core::SwiftKv{};
    const double with_swift =
        core::run_deployment(d, reqs).completion().mean();
    d.spec_decode = core::ours().spec_decode;
    const double with_both =
        core::run_deployment(d, reqs).completion().mean();
    EXPECT_LT(with_swift, shift_only);
    EXPECT_LT(with_both, with_swift);
}

TEST(FigureShapes, Fig17MoeFasterThanDenseAcrossBoard)
{
    for (std::int64_t input : {2048LL, 8192LL}) {
        const auto dense = bench::min_latency(
            model::qwen_32b(), parallel::Strategy::kShift, input, 64);
        const auto moe = bench::min_latency(
            model::qwen_30b_a3b(), parallel::Strategy::kShift, input, 64);
        EXPECT_LT(moe.ttft, dense.ttft);
        EXPECT_LT(moe.tpot, dense.tpot);
    }
}

} // namespace
} // namespace shiftpar
