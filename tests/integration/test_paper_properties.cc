/**
 * @file
 * Integration tests asserting the paper's headline claims as end-to-end
 * properties of the full system (Table 1, Table 3, Section 4 shapes).
 */

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "model/presets.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar {
namespace {

using core::Deployment;
using core::run_deployment;
using parallel::Strategy;

engine::Metrics
run(const model::ModelConfig& m, Strategy s,
    const std::vector<engine::RequestSpec>& w)
{
    Deployment d;
    d.model = m;
    d.strategy = s;
    return run_deployment(d, w);
}

/** One isolated request: minimum-latency regime. */
std::vector<engine::RequestSpec>
lone_request(std::int64_t prompt, std::int64_t output)
{
    return {{0.0, prompt, output}};
}

class Table1Properties : public ::testing::TestWithParam<std::string>
{
  protected:
    model::ModelConfig
    model() const
    {
        return GetParam() == "Llama-70B" ? model::llama_70b()
                                         : model::qwen_32b();
    }
};

TEST_P(Table1Properties, ShiftHasLowestTtft)
{
    const auto w = lone_request(4096, 8);
    const double shift = run(model(), Strategy::kShift, w).ttft().mean();
    const double tp = run(model(), Strategy::kTp, w).ttft().mean();
    const double dp = run(model(), Strategy::kDp, w).ttft().mean();
    const double sp = run(model(), Strategy::kSp, w).ttft().mean();
    EXPECT_LE(shift, tp);
    EXPECT_LE(shift, dp);
    EXPECT_LE(shift, sp * 1.001);  // shift prefills like SP
    // DP is the worst TTFT by a wide margin (no intra-request parallelism).
    EXPECT_GT(dp, 3.0 * shift);
}

TEST_P(Table1Properties, ShiftHasLowestTpot)
{
    const auto w = lone_request(1024, 128);
    const double shift = run(model(), Strategy::kShift, w).tpot().mean();
    const double tp = run(model(), Strategy::kTp, w).tpot().mean();
    const double dp = run(model(), Strategy::kDp, w).tpot().mean();
    const double sp = run(model(), Strategy::kSp, w).tpot().mean();
    EXPECT_LE(shift, tp * 1.001);  // shift decodes like TP
    EXPECT_LT(shift, dp);
    EXPECT_LT(shift, sp);
    // SP is the worst TPOT (full weight stream per decode step).
    EXPECT_GE(sp, dp * 0.999);
}

TEST_P(Table1Properties, ThroughputOrderingDpShiftTp)
{
    // Enough requests to saturate all 8 DP replicas past straggler noise.
    const auto w = workload::uniform_batch(512, 4096, 250);
    const double dp = run(model(), Strategy::kDp, w).mean_throughput();
    const double shift =
        run(model(), Strategy::kShift, w).mean_throughput();
    const double tp = run(model(), Strategy::kTp, w).mean_throughput();
    EXPECT_GT(dp, shift);   // DP is the throughput optimum
    EXPECT_GT(shift, tp);   // Shift beats TP by a wide margin...
    EXPECT_GT(shift / tp, 1.2);
    EXPECT_GT(shift / dp, 0.75);  // ...while staying close to DP
}

INSTANTIATE_TEST_SUITE_P(BothDenseModels, Table1Properties,
                         ::testing::Values("Llama-70B", "Qwen-32B"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(PaperProperties, ShiftUsesBothModesOnMixedTraffic)
{
    // Low-traffic decode steps run the shift (TP) config; prefill bursts
    // run the base (SP) config.
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = Strategy::kShift;
    std::vector<engine::RequestSpec> w;
    for (int i = 0; i < 6; ++i)
        w.push_back({i * 2.0, 6000, 100});
    const auto m = run_deployment(d, w);
    EXPECT_GT(m.sp_steps(), 0);
    EXPECT_GT(m.tp_steps(), 0);
}

TEST(PaperProperties, PureSpNeverShifts)
{
    Deployment d;
    d.model = model::llama_70b();
    d.strategy = Strategy::kSp;
    const auto m = run_deployment(d, lone_request(2048, 32));
    EXPECT_EQ(m.tp_steps(), 0);
}

TEST(PaperProperties, CompletionTimeMonotoneInArrivalRate)
{
    // Fig. 14's premise: higher traffic -> higher completion time, for
    // every strategy.
    const auto m = model::qwen_32b();
    for (Strategy s : {Strategy::kTp, Strategy::kDp, Strategy::kShift}) {
        double prev = 0.0;
        for (double rate : {0.5, 4.0, 16.0}) {
            Rng rng(99);
            const auto w = workload::make_requests(
                workload::poisson_arrivals(rng, rate, 30.0), rng,
                workload::fixed_size(4096, 128));
            const double completion =
                run(m, s, w).completion().mean();
            EXPECT_GE(completion, prev * 0.9)
                << parallel::strategy_name(s) << " at rate " << rate;
            prev = completion;
        }
    }
}

TEST(PaperProperties, MoeModelsServeFasterThanDenseCousins)
{
    // Section 4.6: sparse models attain higher throughput / lower latency
    // because they have fewer active parameters.
    const auto w = lone_request(4096, 32);
    EXPECT_LT(run(model::qwen_30b_a3b(), Strategy::kShift, w).ttft().mean(),
              run(model::qwen_32b(), Strategy::kShift, w).ttft().mean());
}

TEST(PaperProperties, Fp8KvCacheDoublesTokenCapacity)
{
    // Section 4.2.2: the Mooncake run needs FP8 KV to fit.
    Deployment fp16;
    fp16.model = model::qwen_32b();
    fp16.strategy = Strategy::kShift;
    Deployment fp8 = fp16;
    fp8.model.kv_dtype = model::DType::kFp8;
    const auto r16 = core::resolve(fp16);
    const auto r8 = core::resolve(fp8);
    EXPECT_NEAR(static_cast<double>(r8.memory.kv_token_capacity) /
                    static_cast<double>(r16.memory.kv_token_capacity),
                2.0, 0.01);
}

TEST(PaperProperties, SeparateModelsTradeMemoryForSpeed)
{
    // Section 3.3.2 ablation: slicing saves the Eq. 1 memory but shifted
    // decode steps get slower.
    Deployment sep;
    sep.model = model::llama_70b();
    sep.strategy = Strategy::kShift;
    Deployment sliced = sep;
    sliced.weights = parallel::WeightStrategy::kOnTheFlySlicing;

    const auto rs = core::resolve(sep);
    const auto rl = core::resolve(sliced);
    EXPECT_GT(rs.memory.weight_bytes(), rl.memory.weight_bytes());

    const auto w = lone_request(1024, 128);
    const double tpot_sep = run_deployment(sep, w).tpot().mean();
    const double tpot_sliced = run_deployment(sliced, w).tpot().mean();
    EXPECT_GT(tpot_sliced, tpot_sep);
}

} // namespace
} // namespace shiftpar
