/**
 * @file
 * Proof that the discrete-event cluster replay is bit-identical to the
 * historical lockstep replay.
 *
 * `Router::run_workload` now drives every replica as a `sim::Component`
 * on one event queue. For single-engine and pure-DP deployments (no
 * migration) that must change *nothing*: the same requests take the same
 * steps at the same times on the same replicas. This test replays the
 * same workload both ways — through the cluster core and through the
 * pre-refactor lockstep loop (advance everyone to each arrival, submit,
 * drain), which survives as `Router::run_until`/`submit`/`drain` — and
 * requires exact equality of every request record, every step record,
 * and the serialized run report, byte for byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/test_helpers.h"
#include "engine/router.h"
#include "obs/report_json.h"

namespace shiftpar::engine {
namespace {

using shiftpar::testing::make_engine;
using shiftpar::testing::tiny_model;

/** A deterministic mixed workload: ragged prompts, bursts, stragglers. */
std::vector<RequestSpec>
mixed_workload(int n)
{
    std::vector<RequestSpec> reqs;
    for (int i = 0; i < n; ++i) {
        RequestSpec s;
        s.arrival = 0.05 * i + (i % 7 == 0 ? 0.0 : 0.01 * (i % 3));
        s.prompt_tokens = 300 + 137 * (i % 11);
        s.output_tokens = 8 + 19 * (i % 5);
        reqs.push_back(s);
    }
    // A same-instant burst exercises event tie-breaking.
    for (int i = 0; i < 6; ++i)
        reqs.push_back({1.0, 2048 + 64 * i, 32});
    return reqs;
}

std::vector<std::unique_ptr<Engine>>
build_replicas(int count, int tp)
{
    std::vector<std::unique_ptr<Engine>> engines;
    for (int i = 0; i < count; ++i) {
        EngineConfig cfg;
        cfg.base = {1, tp};
        engines.push_back(make_engine(tiny_model(), cfg));
    }
    return engines;
}

/** The pre-refactor lockstep replay, verbatim. */
Metrics
lockstep_replay(Router& router, const std::vector<RequestSpec>& workload)
{
    std::vector<RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RequestSpec& a, const RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    RequestId id = 0;
    for (const auto& spec : sorted) {
        router.run_until(spec.arrival);
        router.submit(spec, id++);
    }
    router.drain();
    return router.merged_metrics();
}

void
expect_identical(const Metrics& a, const Metrics& b)
{
    ASSERT_EQ(a.requests().size(), b.requests().size());
    for (std::size_t i = 0; i < a.requests().size(); ++i) {
        const RequestRecord& x = a.requests()[i];
        const RequestRecord& y = b.requests()[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.arrival, y.arrival);          // exact, not approximate
        EXPECT_EQ(x.prompt_tokens, y.prompt_tokens);
        EXPECT_EQ(x.output_tokens, y.output_tokens);
        EXPECT_EQ(x.ttft, y.ttft);
        EXPECT_EQ(x.tpot, y.tpot);
        EXPECT_EQ(x.completion, y.completion);
        EXPECT_EQ(x.wait, y.wait);
        EXPECT_EQ(x.preemptions, y.preemptions);
    }
    ASSERT_EQ(a.steps().size(), b.steps().size());
    for (std::size_t i = 0; i < a.steps().size(); ++i) {
        const StepRecord& x = a.steps()[i];
        const StepRecord& y = b.steps()[i];
        EXPECT_EQ(x.start, y.start);
        EXPECT_EQ(x.end, y.end);
        EXPECT_EQ(x.batched_tokens, y.batched_tokens);
        EXPECT_EQ(x.num_seqs, y.num_seqs);
    }
    // The serialized run report is the external contract: identical bytes.
    obs::ReportJson ra("equivalence");
    ra.add_run("run", a);
    obs::ReportJson rb("equivalence");
    rb.add_run("run", b);
    std::ostringstream sa, sb;
    ra.write(sa);
    rb.write(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(SimEquivalence, SingleEngineMatchesLockstepBitForBit)
{
    const auto workload = mixed_workload(60);
    Router cluster_router(build_replicas(1, 4));
    const Metrics via_cluster = cluster_router.run_workload(workload);

    Router lockstep_router(build_replicas(1, 4));
    const Metrics via_lockstep = lockstep_replay(lockstep_router, workload);

    expect_identical(via_cluster, via_lockstep);
    EXPECT_EQ(cluster_router.migration_count(), 0);
}

TEST(SimEquivalence, EightReplicaDpMatchesLockstepBitForBit)
{
    const auto workload = mixed_workload(120);
    Router cluster_router(build_replicas(8, 1),
                          RoutingPolicy::kLeastTokens);
    const Metrics via_cluster = cluster_router.run_workload(workload);

    Router lockstep_router(build_replicas(8, 1),
                           RoutingPolicy::kLeastTokens);
    const Metrics via_lockstep = lockstep_replay(lockstep_router, workload);

    expect_identical(via_cluster, via_lockstep);
}

TEST(SimEquivalence, RoundRobinDpMatchesLockstepBitForBit)
{
    // Round-robin routing is sensitive to submission *order* alone, so it
    // doubles as a check that cluster arrival events keep posting order.
    const auto workload = mixed_workload(80);
    Router cluster_router(build_replicas(4, 2),
                          RoutingPolicy::kRoundRobin);
    const Metrics via_cluster = cluster_router.run_workload(workload);

    Router lockstep_router(build_replicas(4, 2),
                           RoutingPolicy::kRoundRobin);
    const Metrics via_lockstep = lockstep_replay(lockstep_router, workload);

    expect_identical(via_cluster, via_lockstep);
}

TEST(SimEquivalence, MigrationOffByDefaultEvenWhenImbalanced)
{
    // A pathological workload (everything lands on one replica's watch)
    // must still replay identically when migration is not requested.
    std::vector<RequestSpec> reqs;
    for (int i = 0; i < 30; ++i)
        reqs.push_back({0.001 * i, 4096, 64});
    Router cluster_router(build_replicas(2, 4));
    const Metrics via_cluster = cluster_router.run_workload(reqs);
    EXPECT_EQ(cluster_router.migration_count(), 0);

    Router lockstep_router(build_replicas(2, 4));
    expect_identical(via_cluster, lockstep_replay(lockstep_router, reqs));
}

} // namespace
} // namespace shiftpar::engine
