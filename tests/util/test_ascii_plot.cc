/** @file Unit tests for the terminal plot renderers. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.h"

namespace shiftpar {
namespace {

TEST(LinePlot, EmptyInput)
{
    EXPECT_EQ(render_line_plot({}), "(empty plot)\n");
}

TEST(LinePlot, ContainsLegendAndAxis)
{
    PlotSeries s{"tok/s", {1.0, 2.0, 3.0, 4.0}};
    LinePlotOptions opts;
    opts.width = 20;
    opts.height = 4;
    opts.y_label = "throughput";
    opts.x_label = "time";
    const std::string out = render_line_plot({s}, opts);
    EXPECT_NE(out.find("throughput"), std::string::npos);
    EXPECT_NE(out.find("time"), std::string::npos);
    EXPECT_NE(out.find("* tok/s"), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(LinePlot, MonotoneSeriesRisesLeftToRight)
{
    // For a strictly increasing series the glyph column index in the top
    // row must be to the right of the one in the bottom row.
    std::vector<double> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(static_cast<double>(i));
    LinePlotOptions opts;
    opts.width = 40;
    opts.height = 8;
    const std::string out = render_line_plot({{"s", vals}}, opts);
    std::istringstream is(out);
    std::string line;
    std::size_t top_pos = std::string::npos;
    std::size_t bottom_pos = std::string::npos;
    while (std::getline(is, line)) {
        const auto pos = line.find('*');
        if (pos == std::string::npos)
            continue;
        if (top_pos == std::string::npos)
            top_pos = pos;  // first row with a glyph = highest values
        bottom_pos = pos;   // last row with a glyph = lowest values
    }
    ASSERT_NE(top_pos, std::string::npos);
    EXPECT_GT(top_pos, bottom_pos);
}

TEST(LinePlot, MultipleSeriesGetDistinctGlyphs)
{
    PlotSeries a{"alpha", {1, 1, 1}};
    PlotSeries b{"beta", {2, 2, 2}};
    LinePlotOptions opts;
    opts.width = 12;
    opts.height = 4;
    const std::string out = render_line_plot({a, b}, opts);
    EXPECT_NE(out.find("* alpha"), std::string::npos);
    EXPECT_NE(out.find("o beta"), std::string::npos);
}

TEST(LinePlot, ConstantSeriesDoesNotDivideByZero)
{
    LinePlotOptions opts;
    opts.width = 10;
    opts.height = 3;
    const std::string out = render_line_plot({{"c", {5.0, 5.0, 5.0}}}, opts);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(LinePlot, LogScaleSkipsNonPositive)
{
    LinePlotOptions opts;
    opts.width = 16;
    opts.height = 5;
    opts.log_y = true;
    const std::string out =
        render_line_plot({{"s", {0.0, 1.0, 10.0, 100.0}}}, opts);
    EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(BarChart, RendersLabelsAndValues)
{
    const std::string out = render_bar_chart(
        {"DP", "TP", "Shift"}, {75535.0, 51162.0, 69147.0},
        "peak throughput (tok/s)", 40);
    EXPECT_NE(out.find("DP"), std::string::npos);
    EXPECT_NE(out.find("Shift"), std::string::npos);
    EXPECT_NE(out.find("75.5k"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(BarChart, LargestValueGetsLongestBar)
{
    const std::string out =
        render_bar_chart({"a", "bb"}, {10.0, 100.0}, "", 20);
    std::istringstream is(out);
    std::string first;
    std::string second;
    std::getline(is, first);
    std::getline(is, second);
    const auto count = [](const std::string& s) {
        return std::count(s.begin(), s.end(), '#');
    };
    EXPECT_LT(count(first), count(second));
    EXPECT_EQ(count(second), 20);
}

TEST(BarChart, EmptyInput)
{
    EXPECT_EQ(render_bar_chart({}, {}, "x"), "(empty chart)\n");
}

TEST(BarChart, MismatchedSizesPanics)
{
    EXPECT_DEATH(render_bar_chart({"a"}, {1.0, 2.0}, ""), "");
}

} // namespace
} // namespace shiftpar
