/** @file Unit tests for the command-line flag parser. */

#include <gtest/gtest.h>

#include <vector>

#include "util/argparse.h"

namespace shiftpar {
namespace {

/** Helper: build argv from a list of tokens. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> tokens)
        : tokens_(std::move(tokens))
    {
        ptrs_.push_back(const_cast<char*>("prog"));
        for (auto& t : tokens_)
            ptrs_.push_back(t.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char** argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> tokens_;
    std::vector<char*> ptrs_;
};

ArgParser
make_parser()
{
    ArgParser p("test program");
    p.add_string("name", "default", "a string");
    p.add_int("count", 5, "an int");
    p.add_double("rate", 1.5, "a double");
    p.add_bool("verbose", false, "a bool");
    return p;
}

TEST(ArgParser, DefaultsApply)
{
    auto p = make_parser();
    Argv a({});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(p.get_string("name"), "default");
    EXPECT_EQ(p.get_int("count"), 5);
    EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
    EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues)
{
    auto p = make_parser();
    Argv a({"--name", "hello", "--count", "42", "--rate", "2.25"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(p.get_string("name"), "hello");
    EXPECT_EQ(p.get_int("count"), 42);
    EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.25);
}

TEST(ArgParser, EqualsSyntax)
{
    auto p = make_parser();
    Argv a({"--name=world", "--count=-3", "--verbose=true"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(p.get_string("name"), "world");
    EXPECT_EQ(p.get_int("count"), -3);
    EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, BareBooleanFlag)
{
    auto p = make_parser();
    Argv a({"--verbose"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, BooleanConsumesExplicitValue)
{
    auto p = make_parser();
    Argv a({"--verbose", "false", "--count", "7"});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_FALSE(p.get_bool("verbose"));
    EXPECT_EQ(p.get_int("count"), 7);
}

TEST(ArgParser, HelpReturnsFalse)
{
    auto p = make_parser();
    Argv a({"--help"});
    EXPECT_FALSE(p.parse(a.argc(), a.argv()));
}

TEST(ArgParser, UsageListsFlagsAndDefaults)
{
    auto p = make_parser();
    const std::string u = p.usage();
    EXPECT_NE(u.find("--name"), std::string::npos);
    EXPECT_NE(u.find("default: 5"), std::string::npos);
    EXPECT_NE(u.find("a double"), std::string::npos);
}

TEST(ArgParser, UnknownFlagIsFatal)
{
    auto p = make_parser();
    Argv a({"--bogus", "1"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "unknown flag");
}

TEST(ArgParser, BadIntIsFatal)
{
    auto p = make_parser();
    Argv a({"--count", "abc"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "expects an integer");
}

TEST(ArgParser, MissingValueIsFatal)
{
    auto p = make_parser();
    Argv a({"--count"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "needs a value");
}

TEST(ArgParser, PositionalArgumentRejected)
{
    auto p = make_parser();
    Argv a({"stray"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "positional");
}

TEST(ArgParser, IntOverflowIsFatal)
{
    // Overflow must not clamp silently to LLONG_MAX: the experiment that
    // runs would not be the one the user typed.
    auto p = make_parser();
    Argv a({"--count", "99999999999999999999"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "out of range");
}

TEST(ArgParser, IntUnderflowIsFatal)
{
    auto p = make_parser();
    Argv a({"--count", "-99999999999999999999"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "out of range");
}

TEST(ArgParser, DoubleOverflowIsFatal)
{
    auto p = make_parser();
    Argv a({"--rate", "1e999"});
    EXPECT_DEATH(p.parse(a.argc(), a.argv()), "out of range");
}

TEST(ArgParser, WrongTypeAccessIsFatal)
{
    auto p = make_parser();
    Argv a({});
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_DEATH(p.get_int("name"), "accessed as");
}

} // namespace
} // namespace shiftpar
