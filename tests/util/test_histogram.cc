/**
 * @file
 * util::Histogram: exact moments, quantile error bounds against the exact
 * `Summary` path it replaced, merge semantics, and adversarial inputs.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"

using shiftpar::Rng;
using shiftpar::Summary;
using shiftpar::util::Histogram;

namespace {

/**
 * Exact percentile by nearest-rank (the histogram's convention): the
 * smallest sample whose rank is >= ceil(p/100 * n).
 */
double
nearest_rank(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    const auto n = static_cast<double>(values.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    rank = std::max<std::size_t>(rank, 1);
    return values[rank - 1];
}

/** Assert every interior quantile is within the histogram's error bound. */
void
expect_quantiles_close(const Histogram& h, const std::vector<double>& values)
{
    for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        const double exact = nearest_rank(values, p);
        const double approx = h.percentile(p);
        EXPECT_NEAR(approx, exact, h.relative_error() * exact + 1e-12)
            << "p" << p;
    }
}

} // namespace

TEST(Histogram, EmptyIsAllZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.stddev(), 0.0);
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.num_buckets(), 0u);
}

TEST(Histogram, MomentsAreExact)
{
    Histogram h;
    Summary s;
    for (const double v : {0.25, 1.0, 3.5, 0.125, 10.0, 2.0}) {
        h.add(v);
        s.add(v);
    }
    EXPECT_EQ(h.count(), s.count());
    EXPECT_DOUBLE_EQ(h.sum(), s.sum());
    EXPECT_DOUBLE_EQ(h.mean(), s.mean());
    EXPECT_DOUBLE_EQ(h.min(), s.min());
    EXPECT_DOUBLE_EQ(h.max(), s.max());
    EXPECT_NEAR(h.stddev(), s.stddev(), 1e-12);
}

TEST(Histogram, EndpointsAreExactMinMax)
{
    Histogram h;
    for (const double v : {0.017, 4.2, 19.0, 0.3})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.017);
    EXPECT_DOUBLE_EQ(h.percentile(100), 19.0);
    // Out-of-range percentiles are caller bugs, same as Summary.
    EXPECT_DEATH(h.percentile(-3), "assertion");
    EXPECT_DEATH(h.percentile(120), "assertion");
}

TEST(Histogram, QuantilesWithinBoundOnLognormal)
{
    // TTFT-like distribution: lognormal latencies spanning ~3 decades.
    Rng rng(7);
    Histogram h;
    std::vector<double> values;
    for (int i = 0; i < 100000; ++i) {
        const double v = rng.lognormal(-2.0, 1.0);
        h.add(v);
        values.push_back(v);
    }
    expect_quantiles_close(h, values);
}

TEST(Histogram, QuantilesWithinBoundOnUniform)
{
    Rng rng(11);
    Histogram h;
    std::vector<double> values;
    for (int i = 0; i < 50000; ++i) {
        const double v = 0.001 + rng.uniform() * 100.0;
        h.add(v);
        values.push_back(v);
    }
    expect_quantiles_close(h, values);
}

TEST(Histogram, AdversarialGeometricSpacing)
{
    // Samples on an exact power grid straddle bucket boundaries — the
    // worst case for a log-bucketed sketch.
    Histogram h;
    std::vector<double> values;
    for (int k = -20; k <= 20; ++k) {
        for (int rep = 0; rep < 7; ++rep) {
            const double v = std::pow(2.0, k);
            h.add(v);
            values.push_back(v);
        }
    }
    expect_quantiles_close(h, values);
}

TEST(Histogram, AdversarialTwoPointMass)
{
    // 10% tiny, 90% huge: percentile queries must land on the correct
    // atom, 9 decades apart.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.add(1e-6);
    for (int i = 0; i < 900; ++i)
        h.add(1e3);
    EXPECT_NEAR(h.percentile(5), 1e-6, h.relative_error() * 1e-6);
    EXPECT_NEAR(h.percentile(10), 1e-6, h.relative_error() * 1e-6);
    EXPECT_NEAR(h.percentile(50), 1e3, h.relative_error() * 1e3);
    EXPECT_NEAR(h.percentile(99), 1e3, h.relative_error() * 1e3);
}

TEST(Histogram, ConstantDistribution)
{
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.add(0.048);
    for (const double p : {1.0, 50.0, 99.0, 99.9})
        EXPECT_NEAR(h.percentile(p), 0.048, h.relative_error() * 0.048);
    EXPECT_EQ(h.num_buckets(), 1u);
}

TEST(Histogram, ZerosAndNegativesClampExactly)
{
    Histogram h;
    h.add(0.0);
    h.add(-5.0);  // latencies cannot be negative; clamps to 0
    h.add(1.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_NEAR(h.percentile(99), 1.0, h.relative_error());
}

TEST(Histogram, MergeMatchesUnion)
{
    Rng rng(23);
    Histogram a, b, all;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.lognormal(0.0, 2.0);
        ((i % 2 == 0) ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    // Same buckets + same counts -> identical quantile answers.
    for (const double p : {1.0, 50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
}

TEST(Histogram, MergeEmptyIsNoop)
{
    Histogram h, empty;
    h.add(1.0);
    h.add(2.0);
    h.merge(empty);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 3.0);

    empty.merge(h);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.percentile(100), 2.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(5.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.num_buckets(), 0u);
}

TEST(Histogram, TighterErrorBoundHoldsToo)
{
    Rng rng(5);
    Histogram h(0.001);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.lognormal(-1.0, 1.5);
        h.add(v);
        values.push_back(v);
    }
    expect_quantiles_close(h, values);
    EXPECT_DOUBLE_EQ(h.relative_error(), 0.001);
}

TEST(Histogram, MergeRequiresMatchingErrorBound)
{
    Histogram coarse(0.01), fine(0.001);
    coarse.add(1.0);
    fine.add(1.0);
    EXPECT_DEATH(coarse.merge(fine), "");
}
