/** @file Unit tests for units, table rendering, and the CSV writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"
#include "util/units.h"

namespace shiftpar {
namespace {

TEST(Units, DecimalMultipliers)
{
    EXPECT_DOUBLE_EQ(gb(141.0), 141.0e9);
    EXPECT_DOUBLE_EQ(tb(4.8), 4.8e12);
    EXPECT_DOUBLE_EQ(tflops(1979.0), 1.979e15);
    EXPECT_DOUBLE_EQ(mb(1.0), 1.0e6);
    EXPECT_DOUBLE_EQ(kb(2.0), 2.0e3);
}

TEST(Units, TimeConversions)
{
    EXPECT_DOUBLE_EQ(usec(6.0), 6.0e-6);
    EXPECT_DOUBLE_EQ(msec(2.5), 2.5e-3);
    EXPECT_DOUBLE_EQ(to_ms(0.05), 50.0);
    EXPECT_DOUBLE_EQ(to_us(0.001), 1000.0);
    EXPECT_DOUBLE_EQ(to_gb(2.0e9), 2.0);
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 4), 0);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(4, 4), 1);
    EXPECT_EQ(ceil_div(5, 4), 2);
}

TEST(Units, RoundUp)
{
    EXPECT_EQ(round_up(0, 8), 0);
    EXPECT_EQ(round_up(1, 8), 8);
    EXPECT_EQ(round_up(8, 8), 8);
    EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "longheader"});
    t.add_row({"xxxx", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a    "), std::string::npos);
    EXPECT_NE(out.find("| longheader "), std::string::npos);
    EXPECT_NE(out.find("| xxxx "), std::string::npos);
    // Header separator lines: top, below header, bottom.
    std::size_t seps = 0;
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line))
        seps += line.rfind("+-", 0) == 0;
    EXPECT_EQ(seps, 3u);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtCountThousandsSeparators)
{
    EXPECT_EQ(Table::fmt_count(0), "0");
    EXPECT_EQ(Table::fmt_count(999), "999");
    EXPECT_EQ(Table::fmt_count(1000), "1,000");
    EXPECT_EQ(Table::fmt_count(75535), "75,535");
    EXPECT_EQ(Table::fmt_count(1234567), "1,234,567");
    EXPECT_EQ(Table::fmt_count(-4200), "-4,200");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = "test_tmp/out.csv";
    {
        CsvWriter csv(path, {"x", "y"});
        ASSERT_TRUE(csv.ok());
        csv.add_row(std::vector<std::string>{"1", "2"});
        csv.add_row(std::vector<double>{3.5, 4.25});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3.5,4.25");
    std::filesystem::remove_all("test_tmp");
}

TEST(Csv, QuotesSpecialCharacters)
{
    const std::string path = "test_tmp/quoted.csv";
    {
        CsvWriter csv(path, {"v"});
        csv.add_row({std::string("a,b")});
        csv.add_row({std::string("say \"hi\"")});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\"");
    std::getline(in, line);
    EXPECT_EQ(line, "\"say \"\"hi\"\"\"");
    std::filesystem::remove_all("test_tmp");
}

} // namespace
} // namespace shiftpar
