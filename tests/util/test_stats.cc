/** @file Unit tests for Summary / TimeSeries accumulators. */

#include <gtest/gtest.h>

#include "util/stats.h"

namespace shiftpar {
namespace {

TEST(Summary, EmptyReturnsZeros)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, MedianInterpolates)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Summary, PercentileEndpoints)
{
    Summary s;
    for (double v : {5.0, 1.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(Summary, PercentileNumpyConvention)
{
    Summary s;
    for (double v : {10.0, 20.0, 30.0, 40.0, 50.0})
        s.add(v);
    // idx = 0.25 * 4 = 1.0 -> exactly the second order statistic.
    EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
    // idx = 0.9 * 4 = 3.6 -> 40 + 0.6 * 10.
    EXPECT_DOUBLE_EQ(s.percentile(90), 46.0);
}

TEST(Summary, QueriesInterleavedWithAdds)
{
    Summary s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
    s.add(100.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Summary, StddevOfKnownSample)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev (n-1)
}

TEST(Summary, ClearResets)
{
    Summary s;
    s.add(5.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(TimeSeries, AccumulatesIntoBins)
{
    TimeSeries ts(2.0);
    ts.add(0.5, 10.0);
    ts.add(1.9, 5.0);
    ts.add(2.0, 7.0);
    EXPECT_EQ(ts.num_bins(), 2u);
    EXPECT_DOUBLE_EQ(ts.bin_value(0), 15.0);
    EXPECT_DOUBLE_EQ(ts.bin_value(1), 7.0);
    EXPECT_DOUBLE_EQ(ts.rate(0), 7.5);
    EXPECT_DOUBLE_EQ(ts.bin_start(1), 2.0);
}

TEST(TimeSeries, PeakRate)
{
    TimeSeries ts(1.0);
    ts.add(0.1, 3.0);
    ts.add(5.5, 20.0);
    EXPECT_DOUBLE_EQ(ts.peak_rate(), 20.0);
    EXPECT_DOUBLE_EQ(ts.bin_value(3), 0.0);  // untouched bin reads zero
}

TEST(TimeSeries, EmptyPeakIsZero)
{
    TimeSeries ts(1.0);
    EXPECT_DOUBLE_EQ(ts.peak_rate(), 0.0);
}

TEST(FormatPercentiles, ContainsKeys)
{
    Summary s;
    s.add(1.0);
    const std::string out = format_percentiles(s);
    EXPECT_NE(out.find("p50="), std::string::npos);
    EXPECT_NE(out.find("p99="), std::string::npos);
}

} // namespace
} // namespace shiftpar
