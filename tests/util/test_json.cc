/**
 * @file
 * util::JsonWriter — escaping, number formatting, and structural
 * correctness checked by re-parsing everything it emits.
 */

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json_checker.h"
#include "util/json.h"

using shiftpar::testing::parse_json;
using shiftpar::util::json_escape;
using shiftpar::util::json_number;
using shiftpar::util::JsonWriter;

TEST(JsonEscape, ControlAndSpecialCharacters)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonNumber, RoundTripsDoubles)
{
    for (const double v : {0.0, 1.0, -2.5, 0.1, 1e-9, 3.141592653589793,
                           1.7976931348623157e308}) {
        const std::string tok = json_number(v);
        EXPECT_DOUBLE_EQ(std::strtod(tok.c_str(), nullptr), v) << tok;
    }
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(json_number(std::nan("")), "null");
    EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, NestedDocumentParsesBack)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object()
        .kv("name", "run \"a\"")
        .kv("count", std::int64_t{42})
        .kv("ratio", 0.25)
        .kv("ok", true)
        .key("missing")
        .null()
        .key("series")
        .begin_array()
        .value(1.0)
        .value(2.0)
        .begin_object()
        .kv("nested", "yes")
        .end_object()
        .end_array()
        .end_object();
    ASSERT_TRUE(w.complete());

    const auto doc = parse_json(os.str());
    EXPECT_EQ(doc.at("name").str(), "run \"a\"");
    EXPECT_EQ(doc.at("count").num(), 42.0);
    EXPECT_EQ(doc.at("ratio").num(), 0.25);
    EXPECT_TRUE(doc.at("ok").boolean());
    EXPECT_TRUE(doc.at("missing").is_null());
    ASSERT_EQ(doc.at("series").arr().size(), 3u);
    EXPECT_EQ(doc.at("series").arr()[2].at("nested").str(), "yes");
}

TEST(JsonWriter, RawSplicesAsOneValue)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object()
        .key("args")
        .raw("{\"tokens\":7}")
        .kv("after", 1)
        .end_object();
    ASSERT_TRUE(w.complete());
    const auto doc = parse_json(os.str());
    EXPECT_EQ(doc.at("args").at("tokens").num(), 7.0);
    EXPECT_EQ(doc.at("after").num(), 1.0);
}

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object()
        .key("obj")
        .begin_object()
        .end_object()
        .key("arr")
        .begin_array()
        .end_array()
        .end_object();
    ASSERT_TRUE(w.complete());
    const auto doc = parse_json(os.str());
    EXPECT_TRUE(doc.at("obj").obj().empty());
    EXPECT_TRUE(doc.at("arr").arr().empty());
}

TEST(JsonWriter, PrettyOutputParsesIdentically)
{
    const auto build = [](JsonWriter& w) {
        w.begin_object()
            .key("runs")
            .begin_array()
            .begin_object()
            .kv("name", "a")
            .kv("x", 1.5)
            .end_object()
            .end_array()
            .end_object();
    };
    std::ostringstream compact, pretty;
    JsonWriter wc(compact), wp(pretty, /*pretty=*/true);
    build(wc);
    build(wp);
    ASSERT_TRUE(wc.complete());
    ASSERT_TRUE(wp.complete());
    EXPECT_NE(compact.str(), pretty.str());

    const auto a = parse_json(compact.str());
    const auto b = parse_json(pretty.str());
    EXPECT_EQ(a.at("runs").arr()[0].at("name").str(),
              b.at("runs").arr()[0].at("name").str());
    EXPECT_EQ(a.at("runs").arr()[0].at("x").num(),
              b.at("runs").arr()[0].at("x").num());
}

TEST(JsonWriter, TopLevelScalar)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.value("hello");
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(parse_json(os.str()).str(), "hello");
}
