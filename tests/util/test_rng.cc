/** @file Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"

namespace shiftpar {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusively)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all of {3,4,5,6} should appear
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(3);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    const int n = 50000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(9);
    const int n = 50001;
    std::vector<double> vals;
    for (int i = 0; i < n; ++i)
        vals.push_back(rng.lognormal(std::log(100.0), 0.5));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[n / 2], 100.0, 5.0);
}

TEST(Rng, ParetoLowerBound)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(19);
    std::vector<double> counts(3, 0.0);
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        counts[rng.categorical({1.0, 2.0, 1.0})] += 1.0;
    EXPECT_NEAR(counts[0] / n, 0.25, 0.02);
    EXPECT_NEAR(counts[1] / n, 0.50, 0.02);
    EXPECT_NEAR(counts[2] / n, 0.25, 0.02);
}

TEST(Rng, CategoricalZeroWeightNeverPicked)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(rng.categorical({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(29);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace shiftpar
