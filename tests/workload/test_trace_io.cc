/** @file Unit tests for trace CSV load/save round-tripping. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "workload/mooncake_trace.h"
#include "workload/trace_io.h"

namespace shiftpar::workload {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    // Each test gets its own directory: ctest runs tests in parallel
    // processes from the same working directory, so a shared path would
    // race between one test's writes and another's teardown.
    std::string
    test_dir() const
    {
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return std::string("trace_test_tmp_") + info->name();
    }

    void TearDown() override
    {
        std::filesystem::remove_all(test_dir());
    }

    std::string
    write_file(const std::string& content)
    {
        std::filesystem::create_directories(test_dir());
        const std::string path = test_dir() + "/trace.csv";
        std::ofstream(path) << content;
        return path;
    }
};

TEST_F(TraceIoTest, LoadBasicTrace)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "0.5,4096,250\n"
        "1.25,128,16\n");
    const auto reqs = load_trace(path);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_DOUBLE_EQ(reqs[0].arrival, 0.5);
    EXPECT_EQ(reqs[0].prompt_tokens, 4096);
    EXPECT_EQ(reqs[1].output_tokens, 16);
}

TEST_F(TraceIoTest, LoadSortsByArrival)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "9.0,10,1\n"
        "1.0,20,1\n"
        "5.0,30,1\n");
    const auto reqs = load_trace(path);
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_EQ(reqs[0].prompt_tokens, 20);
    EXPECT_EQ(reqs[2].prompt_tokens, 10);
}

TEST_F(TraceIoTest, SkipsBlankLines)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "\n"
        "1.0,10,2\n"
        "\n");
    EXPECT_EQ(load_trace(path).size(), 1u);
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_DEATH(load_trace(test_dir() + "/nope.csv"), "cannot open");
}

TEST_F(TraceIoTest, BadHeaderIsFatal)
{
    const auto path = write_file("time,in,out\n1,2,3\n");
    EXPECT_DEATH(load_trace(path), "expected header");
}

TEST_F(TraceIoTest, WrongArityIsFatal)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "1.0,10\n");
    EXPECT_DEATH(load_trace(path), "expected 3 fields");
}

TEST_F(TraceIoTest, NonNumericIsFatal)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "abc,10,2\n");
    EXPECT_DEATH(load_trace(path), "bad number");
}

TEST_F(TraceIoTest, InvalidRequestIsFatal)
{
    const auto path = write_file(
        "arrival_s,prompt_tokens,output_tokens\n"
        "1.0,0,5\n");
    EXPECT_DEATH(load_trace(path), "invalid request");
}

TEST_F(TraceIoTest, SaveLoadRoundTrip)
{
    Rng rng(5);
    MooncakeTraceOptions opts;
    opts.duration = 30.0;
    const auto original = mooncake_conversation_trace(rng, opts);
    ASSERT_FALSE(original.empty());

    const std::string path = test_dir() + "/roundtrip.csv";
    save_trace(path, original);
    const auto loaded = load_trace(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_NEAR(loaded[i].arrival, original[i].arrival, 1e-5);
        EXPECT_EQ(loaded[i].prompt_tokens, original[i].prompt_tokens);
        EXPECT_EQ(loaded[i].output_tokens, original[i].output_tokens);
    }
}

} // namespace
} // namespace shiftpar::workload
