/** @file Tests for arrival processes, samplers, and trace generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/arrival.h"
#include "workload/azure_trace.h"
#include "workload/bursty.h"
#include "workload/mix.h"
#include "workload/mooncake_trace.h"
#include "workload/synthetic.h"

namespace shiftpar::workload {
namespace {

template <typename T>
bool
sorted_by_arrival(const std::vector<T>& reqs)
{
    return std::is_sorted(reqs.begin(), reqs.end(),
                          [](const auto& a, const auto& b) {
                              return a.arrival < b.arrival;
                          });
}

TEST(Arrival, FixedRateSpacing)
{
    const auto times = fixed_rate_arrivals(2.0, 3.0);
    ASSERT_EQ(times.size(), 6u);
    EXPECT_DOUBLE_EQ(times[0], 0.0);
    EXPECT_DOUBLE_EQ(times[1], 0.5);
    EXPECT_LT(times.back(), 3.0);
}

TEST(Arrival, PoissonRateApproximatelyCorrect)
{
    Rng rng(1);
    const auto times = poisson_arrivals(rng, 10.0, 1000.0);
    EXPECT_NEAR(static_cast<double>(times.size()), 10000.0, 400.0);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    for (double t : times) {
        EXPECT_GE(t, 0.0);
        EXPECT_LT(t, 1000.0);
    }
}

TEST(Arrival, GammaBurstinessPreservesMeanRate)
{
    Rng rng(2);
    const auto bursty = gamma_arrivals(rng, 10.0, 0.3, 1000.0);
    EXPECT_NEAR(static_cast<double>(bursty.size()), 10000.0, 700.0);
}

TEST(Arrival, LowBurstinessClustersArrivals)
{
    Rng r1(3);
    Rng r2(3);
    const auto smooth = gamma_arrivals(r1, 5.0, 5.0, 2000.0);
    const auto bursty = gamma_arrivals(r2, 5.0, 0.2, 2000.0);
    // Coefficient of variation of inter-arrival gaps: bursty >> smooth.
    const auto cv = [](const std::vector<double>& t) {
        double sum = 0.0;
        double sq = 0.0;
        const std::size_t n = t.size() - 1;
        for (std::size_t i = 1; i < t.size(); ++i) {
            const double g = t[i] - t[i - 1];
            sum += g;
            sq += g * g;
        }
        const double mean = sum / n;
        return std::sqrt(sq / n - mean * mean) / mean;
    };
    EXPECT_GT(cv(bursty), 1.5 * cv(smooth));
}

TEST(Arrival, StartOffsetApplied)
{
    Rng rng(4);
    const auto times = poisson_arrivals(rng, 5.0, 10.0, 100.0);
    for (double t : times) {
        EXPECT_GE(t, 100.0);
        EXPECT_LT(t, 110.0);
    }
}

TEST(Arrival, BatchArrivalsLandOnPeriods)
{
    Rng rng(5);
    const auto times = batch_arrivals(rng, 9.0, 3.0, 30.0);
    // Every arrival time is a multiple of the 3-second period.
    for (double t : times) {
        const double mod = std::fmod(t, 3.0);
        EXPECT_NEAR(std::min(mod, 3.0 - mod), 0.0, 1e-9);
    }
    // Mean batch size ~9 over 10 batches.
    EXPECT_NEAR(static_cast<double>(times.size()), 90.0, 30.0);
}

TEST(Synthetic, FixedSizeSampler)
{
    Rng rng(1);
    const auto s = fixed_size(128, 32)(rng);
    EXPECT_EQ(s.prompt, 128);
    EXPECT_EQ(s.output, 32);
}

TEST(Synthetic, LognormalMedianAndClamps)
{
    Rng rng(6);
    const auto sampler = lognormal_size(1000.0, 0.5, 100.0, 0.5,
                                        /*min=*/1, /*max_prompt=*/2000,
                                        /*max_output=*/150);
    std::vector<double> prompts;
    for (int i = 0; i < 20000; ++i) {
        const auto s = sampler(rng);
        EXPECT_GE(s.prompt, 1);
        EXPECT_LE(s.prompt, 2000);
        EXPECT_LE(s.output, 150);
        prompts.push_back(static_cast<double>(s.prompt));
    }
    std::sort(prompts.begin(), prompts.end());
    EXPECT_NEAR(prompts[prompts.size() / 2], 1000.0, 50.0);
}

TEST(Synthetic, MakeRequestsPairsArrivalsWithSizes)
{
    Rng rng(7);
    const auto reqs =
        make_requests({1.0, 2.0, 3.0}, rng, fixed_size(10, 5));
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_DOUBLE_EQ(reqs[1].arrival, 2.0);
    EXPECT_EQ(total_tokens(reqs), 45);
}

TEST(Synthetic, UniformBatchAllAtZero)
{
    const auto reqs = uniform_batch(10, 4096, 250);
    EXPECT_EQ(reqs.size(), 10u);
    for (const auto& r : reqs) {
        EXPECT_DOUBLE_EQ(r.arrival, 0.0);
        EXPECT_EQ(r.prompt_tokens, 4096);
        EXPECT_EQ(r.output_tokens, 250);
    }
}

TEST(Bursty, DeterministicAndSorted)
{
    Rng a(42);
    Rng b(42);
    const auto w1 = bursty_workload(a, {});
    const auto w2 = bursty_workload(b, {});
    ASSERT_EQ(w1.size(), w2.size());
    EXPECT_TRUE(sorted_by_arrival(w1));
    for (std::size_t i = 0; i < w1.size(); ++i)
        EXPECT_DOUBLE_EQ(w1[i].arrival, w2[i].arrival);
}

TEST(Bursty, BurstsRaiseLocalRate)
{
    Rng rng(42);
    BurstyOptions opts;
    const auto reqs = bursty_workload(rng, opts);
    const auto starts = burst_starts(opts);
    ASSERT_EQ(starts.size(), static_cast<std::size_t>(opts.num_bursts));
    // Count requests inside vs outside burst windows, per second.
    double in_window = 0.0;
    double out_window = 0.0;
    for (const auto& r : reqs) {
        bool in = false;
        for (double s : starts)
            in |= r.arrival >= s && r.arrival < s + opts.burst_duration;
        (in ? in_window : out_window) += 1.0;
    }
    const double in_secs = opts.num_bursts * opts.burst_duration;
    const double out_secs = opts.duration - in_secs;
    EXPECT_GT(in_window / in_secs, 5.0 * (out_window / out_secs));
}

TEST(AzureTrace, ShortOutputsLongPrompts)
{
    Rng rng(7);
    const auto reqs = azure_code_trace(rng, {});
    ASSERT_GT(reqs.size(), 100u);
    EXPECT_TRUE(sorted_by_arrival(reqs));
    double prompt_sum = 0.0;
    double output_sum = 0.0;
    for (const auto& r : reqs) {
        prompt_sum += static_cast<double>(r.prompt_tokens);
        output_sum += static_cast<double>(r.output_tokens);
    }
    // Code completion: prompts dominate outputs by an order of magnitude.
    EXPECT_GT(prompt_sum, 10.0 * output_sum);
}

TEST(AzureTrace, StaysWithinDuration)
{
    Rng rng(8);
    AzureTraceOptions opts;
    opts.duration = 100.0;
    const auto reqs = azure_code_trace(rng, opts);
    for (const auto& r : reqs)
        EXPECT_LT(r.arrival, 100.0 + opts.big_burst_duration);
}

TEST(MooncakeTrace, BatchedSteadyArrivals)
{
    Rng rng(9);
    MooncakeTraceOptions opts;
    opts.duration = 300.0;
    const auto reqs = mooncake_conversation_trace(rng, opts);
    EXPECT_TRUE(sorted_by_arrival(reqs));
    // ~9 per 3 seconds over 100 periods.
    EXPECT_NEAR(static_cast<double>(reqs.size()), 900.0, 150.0);
    // Long outputs relative to the Azure code trace.
    double output_sum = 0.0;
    for (const auto& r : reqs)
        output_sum += static_cast<double>(r.output_tokens);
    EXPECT_GT(output_sum / static_cast<double>(reqs.size()), 300.0);
}

TEST(Mix, PopulationsAndDeterminism)
{
    Rng a(10);
    Rng b(10);
    const auto w1 = production_mix(a, {});
    const auto w2 = production_mix(b, {});
    ASSERT_EQ(w1.size(), 500u);
    ASSERT_EQ(w1.size(), w2.size());
    for (std::size_t i = 0; i < w1.size(); ++i) {
        EXPECT_EQ(w1[i].prompt_tokens, w2[i].prompt_tokens);
        EXPECT_EQ(w1[i].output_tokens, w2[i].output_tokens);
    }
    EXPECT_TRUE(sorted_by_arrival(w1));
}

} // namespace
} // namespace shiftpar::workload
