#include "parallel/config.h"

#include <sstream>

#include "util/logging.h"

namespace shiftpar::parallel {

std::string
ParallelConfig::to_string() const
{
    std::ostringstream os;
    os << "(SP=" << sp << ",TP=" << tp;
    if (ep > 1)
        os << ",EP=" << ep;
    os << ")";
    return os.str();
}

int
kv_replication(const model::ModelConfig& m, const ParallelConfig& cfg)
{
    const int g = cfg.world();
    if (g <= m.kv_heads)
        return 1;
    return g / m.kv_heads;
}

std::string
validate_config(const model::ModelConfig& m, const ParallelConfig& cfg)
{
    std::ostringstream err;
    if (cfg.sp < 1 || cfg.tp < 1) {
        err << "parallel degrees must be >= 1, got " << cfg.to_string();
        return err.str();
    }
    const int g = cfg.world();
    if (m.q_heads % g != 0) {
        err << m.name << ": " << m.q_heads
            << " query heads are not divisible across " << g << " ranks";
        return err.str();
    }
    if (g <= m.kv_heads) {
        if (m.kv_heads % g != 0) {
            err << m.name << ": " << m.kv_heads
                << " KV heads are not divisible across " << g << " ranks";
            return err.str();
        }
    } else {
        if (g % m.kv_heads != 0) {
            err << m.name << ": cannot replicate " << m.kv_heads
                << " KV heads evenly onto " << g << " ranks";
            return err.str();
        }
    }
    if (cfg.ep < 1) {
        err << "EP degree must be >= 1, got " << cfg.ep;
        return err.str();
    }
    if (cfg.ep > 1) {
        if (!m.is_moe()) {
            err << m.name << ": EP requires a mixture-of-experts model";
            return err.str();
        }
        if (g % cfg.ep != 0) {
            err << m.name << ": EP=" << cfg.ep
                << " does not divide the group of " << g << " ranks";
            return err.str();
        }
        if (m.num_experts % cfg.ep != 0) {
            err << m.name << ": " << m.num_experts
                << " experts are not divisible across EP=" << cfg.ep;
            return err.str();
        }
    }
    return {};
}

void
validate_config_or_die(const model::ModelConfig& m, const ParallelConfig& cfg)
{
    const std::string err = validate_config(m, cfg);
    if (!err.empty())
        fatal("invalid parallel config " + cfg.to_string() + ": " + err);
}

} // namespace shiftpar::parallel
