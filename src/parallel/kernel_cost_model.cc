#include "parallel/kernel_cost_model.h"

#include <algorithm>
#include <utility>

#include "model/flops.h"
#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::parallel {

namespace {

/** Phase count of an all-reduce on this fabric (see hw::CollectiveModel). */
double
all_reduce_phases(const hw::LinkSpec& link, int nranks)
{
    const double p = static_cast<double>(nranks);
    return link.kind == hw::FabricKind::kRing ? 2.0 * (p - 1.0) : 2.0;
}

/** Phase count of an all-to-all / all-gather on this fabric. */
double
exchange_phases(const hw::LinkSpec& link, int nranks)
{
    const double p = static_cast<double>(nranks);
    return link.kind == hw::FabricKind::kRing ? p - 1.0 : 1.0;
}

} // namespace

KernelCostModel::KernelCostModel(hw::Node node, model::ModelConfig m,
                                 hw::KernelCoeffs coeffs, PerfOptions opts)
    : node_(std::move(node)), model_(std::move(m)),
      coeffs_(std::move(coeffs)), opts_(opts)
{
    model_.validate();
}

StepTiming
KernelCostModel::evaluate(const BatchWork& work, const ParallelConfig& cfg,
                          bool sliced_weights,
                          std::vector<KernelCost>* breakdown) const
{
    validate_config_or_die(model_, cfg);
    SP_ASSERT(cfg.world() <= node_.num_gpus,
              "configuration exceeds node size");

    const model::ModelConfig& m = model_;
    const int g = cfg.world();
    const int rep = kv_replication(m, cfg);
    const double L = static_cast<double>(m.num_layers);
    const double wbytes = model::dtype_bytes(m.weight_dtype);
    const double act_b = opts_.act_bytes;
    const double slice =
        sliced_weights ? 1.0 + opts_.slicing_overhead_frac : 1.0;

    StepTiming t;

    // Price one breakdown row: seconds = scale * (count*alpha + beta*flops
    // + gamma*bytes), appended in a fixed order so breakdowns (and the
    // calibration samples derived from them) are deterministic. `bucket`
    // accumulates the row into one Fig. 15 component, so the breakdown
    // sums to the returned step total by construction.
    const auto add = [&](const char* kernel, const char* klass,
                         const hw::KernelCoeff& k, double count,
                         double flops, double bytes, double scale,
                         double* bucket) {
        const double seconds =
            scale * (count * k.alpha + k.beta * flops + k.gamma * bytes);
        *bucket += seconds;
        if (breakdown != nullptr)
            breakdown->push_back({kernel, klass, count, flops, bytes,
                                  seconds});
    };

    if (opts_.engine_overhead) {
        const double overhead = opts_.step_overhead_base +
                                opts_.step_overhead_per_rank * (g - 1);
        t.overhead = overhead;
        if (breakdown != nullptr)
            breakdown->push_back(
                {"engine_overhead", "overhead", 1.0, 0.0, 0.0, overhead});
    }

    const std::int64_t n_raw = work.total_new_tokens();
    if (n_raw == 0)
        return t;

    // Batch semantics shared with the roofline model: SP padding
    // (Section 3.2.1) and feature scaling of the compute tokens.
    const std::int64_t n = cfg.sp > 1 ? round_up(n_raw, cfg.sp) : n_raw;
    const double rows = static_cast<double>(n) / cfg.sp;  // rows per GPU
    double compute_tokens = 0.0;
    for (const auto& c : work.chunks) {
        compute_tokens += static_cast<double>(c.new_tokens) *
                          (c.is_prefill ? opts_.swiftkv_prefill_factor
                                        : opts_.decode_compute_inflation);
    }
    const double n_eff = static_cast<double>(n) * compute_tokens /
                         static_cast<double>(n_raw);

    // ---- Norms: two bandwidth-bound elementwise kernels per layer -------
    // (input RMSNorm + post-attention RMSNorm), each a read+write pass
    // over this rank's rows of the hidden stream.
    add("norm", "norm", coeffs_.norm, 2.0 * L, 0.0,
        2.0 * L * (2.0 * rows * m.hidden_size * act_b), 1.0, &t.gemm);

    // ---- Projection / MLP GEMMs, per layer per GPU ----------------------
    // Weight shards stream at 1/TP (SP replicates weights); activation IO
    // covers each GEMM's input read and sharded output write.
    const double qkv_out = (m.q_heads + 2.0 * m.kv_heads) *
                           static_cast<double>(m.head_dim);
    const double qkv_w = static_cast<double>(m.hidden_size) * qkv_out *
                         wbytes;
    const double o_w = static_cast<double>(m.q_heads) * m.head_dim *
                       m.hidden_size * wbytes;
    // Dense MLP weights, or the router for MoE (expert streams below).
    const double mlp_w =
        model::layer_dense_weight_bytes(m) - m.attn_params_per_layer() *
                                                 wbytes;
    const double expert_read =
        model::layer_expert_read_bytes(m, static_cast<double>(n)) /
        (cfg.tp * cfg.ep);

    add("qkv_gemm", "gemm", coeffs_.gemm, L,
        L * model::qkv_flops(m, n_eff) / g,
        L * (qkv_w / cfg.tp * slice + rows * m.hidden_size * act_b +
             rows * qkv_out * act_b / cfg.tp),
        1.0, &t.gemm);
    add("o_gemm", "gemm", coeffs_.gemm, L,
        L * model::o_flops(m, n_eff) / g,
        L * (o_w / cfg.tp * slice +
             rows * m.q_heads * m.head_dim * act_b / cfg.tp +
             rows * m.hidden_size * act_b),
        1.0, &t.gemm);
    add("mlp_gemm", "gemm", coeffs_.gemm, L,
        L * model::mlp_flops(m, n_eff) / g,
        L * ((mlp_w / cfg.tp + expert_read) * slice +
             2.0 * rows * m.hidden_size * act_b +
             3.0 * rows * m.intermediate_size * act_b / cfg.tp),
        1.0, &t.gemm);

    // ---- Attention, prefill and decode kernels separately ---------------
    // Head-sharded across the whole group (the KV-cache invariance);
    // replicated KV heads multiply cache traffic. One fused launch per
    // layer for each phase present in the batch.
    double prefill_flops = 0.0, prefill_kv = 0.0;
    double decode_flops = 0.0, decode_kv = 0.0;
    bool any_prefill = false, any_decode = false;
    for (const auto& c : work.chunks) {
        const double nt = static_cast<double>(c.new_tokens);
        const double past = static_cast<double>(c.past);
        if (c.is_prefill) {
            const double f = opts_.swiftkv_prefill_factor;
            prefill_flops += f * model::attn_flops(m, nt, past);
            prefill_kv += f * model::kv_read_bytes(m, nt, past) +
                          model::kv_write_bytes(m, nt);
            any_prefill = true;
        } else {
            decode_flops += opts_.decode_compute_inflation *
                            model::attn_flops(m, nt, past);
            decode_kv += model::kv_read_bytes(m, nt, past) +
                         model::kv_write_bytes(m, nt);
            any_decode = true;
        }
    }
    if (any_prefill) {
        add("attn_prefill", "attention", coeffs_.attention, L,
            L * prefill_flops / g, L * prefill_kv * rep / g,
            opts_.attention_scale, &t.attention);
    }
    if (any_decode) {
        add("attn_decode", "attention", coeffs_.attention, L,
            L * decode_flops / g, L * decode_kv * rep / g,
            opts_.attention_scale, &t.attention);
    }

    // ---- Collectives, per layer (Algorithm 1) ---------------------------
    // Priced phases*alpha + wire_volume*gamma with the fabric's phase
    // counts; volumes match hw::CollectiveModel (Table 2 accounting).
    const hw::LinkSpec& link = node_.link;
    if (cfg.tp > 1) {
        const double ar_bytes = rows * m.hidden_size * act_b;
        add("tp_allreduce", "collective", coeffs_.collective,
            2.0 * L * all_reduce_phases(link, cfg.tp), 0.0,
            2.0 * L *
                hw::CollectiveModel::all_reduce_volume(ar_bytes, cfg.tp),
            opts_.comm_scale, &t.comm);
    }
    if (cfg.sp > 1) {
        const double qkv_cols =
            (m.q_heads + 2.0 * m.kv_heads * rep) * m.head_dim / cfg.tp;
        add("sp_a2a_qkv", "collective", coeffs_.collective,
            L * exchange_phases(link, cfg.sp), 0.0,
            L * hw::CollectiveModel::all_to_all_volume(
                    rows * qkv_cols * act_b, cfg.sp),
            opts_.comm_scale, &t.comm);
        const double o_cols =
            static_cast<double>(m.q_heads) * m.head_dim / cfg.tp;
        add("sp_a2a_o", "collective", coeffs_.collective,
            L * exchange_phases(link, cfg.sp), 0.0,
            L * hw::CollectiveModel::all_to_all_volume(
                    rows * o_cols * act_b, cfg.sp),
            opts_.comm_scale, &t.comm);
    }
    if (m.is_moe() && cfg.ep > 1) {
        const double routed =
            rows * m.active_experts * m.hidden_size * act_b / cfg.tp;
        add("ep_a2a", "collective", coeffs_.collective,
            2.0 * L * exchange_phases(link, cfg.ep), 0.0,
            2.0 * L *
                hw::CollectiveModel::all_to_all_volume(routed, cfg.ep),
            opts_.comm_scale, &t.comm);
    }

    // ---- LM head (sampled positions only) -------------------------------
    const double sampled = static_cast<double>(work.num_seqs());
    add("lm_head", "gemm", coeffs_.gemm, 1.0,
        model::lm_head_flops(m, sampled) / g,
        static_cast<double>(m.vocab_size) * m.hidden_size * wbytes / g +
            sampled * m.hidden_size * act_b,
        1.0, &t.gemm);

    // ---- Final sequence all-gather (Algorithm 1 line 13) ----------------
    if (cfg.sp > 1) {
        add("sp_allgather", "collective", coeffs_.collective,
            exchange_phases(link, cfg.sp), 0.0,
            hw::CollectiveModel::all_gather_volume(
                static_cast<double>(n) * m.hidden_size * act_b, cfg.sp),
            opts_.comm_scale, &t.comm);
    }
    return t;
}

} // namespace shiftpar::parallel
