/**
 * @file
 * Head-to-rank mapping and KV-cache invariance (Section 3.3.1).
 *
 * Under a combined (SP, TP) base configuration the QKV projection is
 * 2D-partitioned: TP shards the weight columns (heads) and SP shards the
 * sequence rows. The all-to-all inside each SP group then redistributes
 * heads so each rank holds the full sequence for a *subset of heads* — and
 * that subset follows an interleaved order. For the paper's Figure 6 example
 * (SP=3, TP=2, 6 heads), the rank that serves head k is:
 *
 *      head:   0  1  2  3  4  5
 *      rank:   0  2  4  1  3  5
 *
 * The shift configuration (full TP over the same ranks) must shard its
 * weights in *that* order — the SP_TP group order of Section 3.3.2 — or the
 * KV cache written by the base configuration would be misplaced. This file
 * computes the base layout, the correctly-ordered shift layout, the naive
 * (rank-order) TP layout that breaks invariance, and the comparison between
 * them.
 */

#pragma once

#include <vector>

#include "model/model_config.h"
#include "parallel/config.h"

namespace shiftpar::parallel {

/** The attention heads resident on one rank, in on-device order. */
struct RankHeads
{
    /** Query head ids, ascending. */
    std::vector<int> q;

    /** KV head ids serving those query heads (replicated heads repeat
     *  across ranks when world > kv_heads). */
    std::vector<int> kv;

    bool operator==(const RankHeads&) const = default;
};

/** Complete head placement for one execution configuration. */
class HeadLayout
{
  public:
    /**
     * Head placement of the base (SP, TP) configuration after the Ulysses
     * all-to-all (Algorithm 1 line 4).
     */
    static HeadLayout base(const model::ModelConfig& m,
                           const ParallelConfig& cfg);

    /**
     * Head placement of the shift configuration (SP=1, TP=world) when its
     * weights are loaded in the SP_TP rank order derived from `base_cfg`
     * (Section 3.3.2) — KV-cache invariant with the base layout by
     * construction.
     */
    static HeadLayout shift(const model::ModelConfig& m,
                            const ParallelConfig& base_cfg);

    /**
     * Head placement of a naive full-TP configuration that shards heads in
     * plain rank order 0..world-1. Equals the base layout only when the
     * base has TP=1 or SP=1; used to demonstrate the invariance violation.
     */
    static HeadLayout naive_tp(const model::ModelConfig& m, int world);

    /** @return number of ranks. */
    int world() const { return static_cast<int>(ranks_.size()); }

    /** @return heads on rank `r`. */
    const RankHeads& rank(int r) const;

    /** @return the rank serving each query head: result[head] = rank. */
    std::vector<int> rank_of_q_head() const;

    /** @return KV replication factor (ranks per KV head, >= 1). */
    int kv_replication() const { return kv_replication_; }

    /**
     * @return true when `other` places every KV head on the same set of
     * ranks in the same on-device order — i.e. the two configurations can
     * share one KV cache with zero data movement.
     */
    bool invariant_with(const HeadLayout& other) const;

  private:
    static HeadLayout from_blocks(const model::ModelConfig& m,
                                  const std::vector<int>& block_of_rank);

    std::vector<RankHeads> ranks_;
    int kv_replication_ = 1;
};

} // namespace shiftpar::parallel
