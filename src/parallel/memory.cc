#include "parallel/memory.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::parallel {

MemoryPlan
plan_memory(const model::ModelConfig& m, const hw::GpuSpec& gpu,
            const ParallelConfig& cfg, bool with_shift_model,
            WeightStrategy strategy, const MemoryOptions& opts)
{
    validate_config_or_die(m, cfg);
    MemoryPlan plan;
    const double w = m.weight_bytes();
    // Expert weights additionally shard across the EP dimension
    // (Section 4.6 extension); dense weights shard by TP only.
    const double expert_frac = m.expert_weight_fraction();
    const double dense = w * (1.0 - expert_frac);
    const double experts = w * expert_frac;
    plan.base_weight_bytes = dense / cfg.tp + experts / (cfg.tp * cfg.ep);
    if (with_shift_model && strategy == WeightStrategy::kSeparateModels &&
        cfg.sp > 1) {
        // Eq. (1): the shift model adds W/(SP*TP) per GPU (its expert
        // shards follow the same EP split).
        plan.shift_weight_bytes =
            dense / cfg.world() + experts / (cfg.world() * cfg.ep);
    }
    plan.workspace_bytes = opts.workspace_bytes;

    const double budget = gpu.hbm_bytes * opts.hbm_utilization;
    const double pool =
        budget - plan.weight_bytes() - plan.workspace_bytes;
    plan.kv_pool_bytes = std::max(0.0, pool);

    // Each cached token's KV heads are spread across the group; replicated
    // heads (world > kv_heads) occupy proportionally more space.
    const int rep = kv_replication(m, cfg);
    plan.kv_bytes_per_token_per_gpu =
        m.kv_bytes_per_token() * rep / cfg.world();
    if (plan.kv_bytes_per_token_per_gpu > 0.0 && plan.fits()) {
        plan.kv_token_capacity = static_cast<std::int64_t>(
            plan.kv_pool_bytes / plan.kv_bytes_per_token_per_gpu);
    }
    return plan;
}

std::string
describe(const MemoryPlan& plan)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << "weights " << to_gb(plan.base_weight_bytes) << " GB";
    if (plan.shift_weight_bytes > 0.0)
        os << " + shift " << to_gb(plan.shift_weight_bytes) << " GB";
    os << ", workspace " << to_gb(plan.workspace_bytes) << " GB";
    if (plan.fits()) {
        os << ", KV pool " << to_gb(plan.kv_pool_bytes) << " GB ("
           << plan.kv_token_capacity << " tokens)";
    } else {
        os << ", DOES NOT FIT";
    }
    return os.str();
}

} // namespace shiftpar::parallel
