/**
 * @file
 * Kernel-decomposed step-cost model.
 *
 * Where the roofline `PerfModel` charges one fused region per component,
 * this model walks the per-layer kernel sequence explicitly — input/post
 * norms, QKV GEMM, attention (prefill and decode separately), O GEMM, MLP
 * GEMMs, the TP all-reduces / SP all-to-alls / EP all-to-alls, the LM head,
 * and the final SP all-gather — and prices each kernel with the linear
 * form `alpha + beta*flops + gamma*bytes` under its `hw::KernelCoeffs`
 * class. Collectives are priced `phases*alpha + wire_volume*gamma` with
 * the fabric's phase counts (ring vs switch, mirroring
 * `hw::CollectiveModel`).
 *
 * The decomposition reuses the roofline model's batch semantics exactly:
 * SP padding, SwiftKV prefill scaling, speculative-decode inflation, KV
 * replication, slicing overhead, and the Fig. 15 component-removal knobs
 * all behave identically — only the per-kernel pricing differs. The
 * per-kernel breakdown it reports sums to the returned step total and
 * carries the (flops, bytes) features each cost came from, which is what
 * `tools/calibrate` fits against.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "hw/kernel_coeffs.h"
#include "hw/topology.h"
#include "model/cost_model.h"
#include "model/model_config.h"
#include "parallel/config.h"
#include "parallel/perf_model.h"

namespace shiftpar::parallel {

/** The kernel-decomposed `model::CostModel` implementation. */
class KernelCostModel : public model::CostModel
{
  public:
    /**
     * @param node Device + fabric the engine group runs on.
     * @param m The model being served.
     * @param coeffs Per-kernel-class coefficients (preset or calibrated).
     * @param opts Same engine-overhead/ablation knobs as the roofline
     *        model; feature scaling is applied identically.
     */
    KernelCostModel(hw::Node node, model::ModelConfig m,
                    hw::KernelCoeffs coeffs, PerfOptions opts = {});

    const char* name() const override { return "kernel"; }

    StepTiming evaluate(const BatchWork& work, const ParallelConfig& cfg,
                        bool sliced_weights = false,
                        std::vector<KernelCost>* breakdown =
                            nullptr) const override;

    const hw::KernelCoeffs& coeffs() const { return coeffs_; }
    const model::ModelConfig& model() const { return model_; }
    const hw::Node& node() const { return node_; }
    const PerfOptions& options() const { return opts_; }

  private:
    hw::Node node_;
    model::ModelConfig model_;
    hw::KernelCoeffs coeffs_;
    PerfOptions opts_;
};

} // namespace shiftpar::parallel
