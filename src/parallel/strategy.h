/**
 * @file
 * Parallelism strategy identifiers and helpers.
 */

#pragma once

#include <string>

namespace shiftpar::parallel {

/**
 * The deployment-level parallelization strategies compared in the paper.
 *
 *  - kDp:    data parallelism — P independent single-GPU replicas.
 *  - kTp:    tensor parallelism across all P GPUs.
 *  - kSp:    Ulysses sequence parallelism across all P GPUs.
 *  - kSpTp:  a static combined (SP, TP) configuration (Algorithm 1).
 *  - kShift: Shift Parallelism — dynamic per-step switching between the
 *            base (SP or SP x TP) and shift (full TP) configurations
 *            (Algorithm 2).
 */
enum class Strategy { kDp, kTp, kSp, kSpTp, kShift };

/** @return short printable name ("DP", "TP", "SP", "SP+TP", "Shift"). */
std::string strategy_name(Strategy s);

/** Parse a strategy name (case-insensitive); fatal() on unknown input. */
Strategy parse_strategy(const std::string& name);

} // namespace shiftpar::parallel
