/**
 * @file
 * Per-GPU memory planning (Section 3.3.2).
 *
 * Weights under a (SP, TP) base configuration are sharded by TP only — SP
 * ranks replicate them — so each GPU holds `W / TP` bytes of base weights.
 * Shift Parallelism additionally needs the shift model's full-TP shard:
 *
 *      w_total = W/TP + W/(SP*TP)                       (Eq. 1)
 *
 * with the *separate models* strategy (the paper's production choice), or
 * just `W/TP` with *on-the-fly slicing* (which instead pays a per-step
 * transpose penalty, modeled in `PerfModel`). Whatever HBM remains after
 * weights and the activation workspace becomes the paged KV cache pool.
 */

#pragma once

#include <string>

#include "hw/gpu.h"
#include "model/model_config.h"
#include "parallel/config.h"

namespace shiftpar::parallel {

/** How the shift configuration obtains its weight shards (Section 3.3.2). */
enum class WeightStrategy
{
    /** Load a second, TP=P-sharded copy of the weights (paper default). */
    kSeparateModels,

    /** Slice the base shards per step; no extra memory, transpose cost. */
    kOnTheFlySlicing,
};

/** Result of planning one GPU's memory for an engine. */
struct MemoryPlan
{
    /** Base-model weight bytes per GPU (W / TP). */
    double base_weight_bytes = 0.0;

    /** Shift-model weight bytes per GPU (W / (SP*TP)); 0 when absent. */
    double shift_weight_bytes = 0.0;

    /** Activation/workspace reserve per GPU, bytes. */
    double workspace_bytes = 0.0;

    /** Paged KV pool per GPU, bytes (0 when the model does not fit). */
    double kv_pool_bytes = 0.0;

    /** KV bytes per cached token *on this GPU* (sharding + replication). */
    double kv_bytes_per_token_per_gpu = 0.0;

    /** Total tokens the engine's (sharded) KV cache can hold. */
    std::int64_t kv_token_capacity = 0;

    /** @return total weight bytes per GPU. */
    double weight_bytes() const
    {
        return base_weight_bytes + shift_weight_bytes;
    }

    /** @return shift-model overhead as a fraction of base weights (1/SP). */
    double shift_overhead_frac() const
    {
        return base_weight_bytes > 0.0
                   ? shift_weight_bytes / base_weight_bytes
                   : 0.0;
    }

    /** @return true when weights + workspace fit and some KV pool remains. */
    bool fits() const { return kv_pool_bytes > 0.0; }
};

/** Planner knobs (vLLM-equivalent gpu_memory_utilization etc.). */
struct MemoryOptions
{
    /** Fraction of HBM the engine may use (vLLM gpu_memory_utilization). */
    double hbm_utilization = 0.92;

    /** Activation/CUDA-graph workspace per GPU, bytes. */
    double workspace_bytes = 4.0e9;
};

/**
 * Plan one GPU's memory for an engine running `cfg`.
 *
 * @param with_shift_model Reserve the shift model's weights per Eq. (1)
 *        (only meaningful with `kSeparateModels`).
 */
MemoryPlan plan_memory(const model::ModelConfig& m, const hw::GpuSpec& gpu,
                       const ParallelConfig& cfg, bool with_shift_model,
                       WeightStrategy strategy = WeightStrategy::kSeparateModels,
                       const MemoryOptions& opts = {});

/** Human-readable summary ("weights 13.6 GB + shift 1.7 GB, KV 112 GB"). */
std::string describe(const MemoryPlan& plan);

} // namespace shiftpar::parallel
