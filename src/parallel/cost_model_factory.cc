#include "parallel/cost_model_factory.h"

#include "parallel/kernel_cost_model.h"
#include "util/logging.h"

namespace shiftpar::parallel {

std::unique_ptr<const model::CostModel>
make_cost_model(const CostModelSpec& spec, const hw::Node& node,
                const model::ModelConfig& m, const PerfOptions& opts)
{
    switch (spec.kind) {
        case model::CostModelKind::kRoofline:
            return std::make_unique<PerfModel>(node, m, opts);
        case model::CostModelKind::kKernel: {
            const hw::KernelCoeffs coeffs =
                spec.coeffs ? *spec.coeffs
                            : hw::derive_kernel_coeffs(node.gpu, node.link);
            return std::make_unique<KernelCostModel>(node, m, coeffs, opts);
        }
    }
    fatal("unhandled cost model kind");
}

} // namespace shiftpar::parallel
