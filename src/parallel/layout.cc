#include "parallel/layout.h"

#include <algorithm>

#include "hw/topology.h"
#include "util/logging.h"

namespace shiftpar::parallel {

HeadLayout
HeadLayout::from_blocks(const model::ModelConfig& m,
                        const std::vector<int>& block_of_rank)
{
    const int g = static_cast<int>(block_of_rank.size());
    SP_ASSERT(g >= 1 && m.q_heads % g == 0);
    const int hq = m.q_heads / g;           // query heads per rank
    const int gqa = m.q_heads / m.kv_heads; // query heads per KV head

    HeadLayout layout;
    layout.ranks_.resize(g);
    layout.kv_replication_ = g > m.kv_heads ? g / m.kv_heads : 1;
    for (int r = 0; r < g; ++r) {
        RankHeads& rh = layout.ranks_[r];
        const int first = block_of_rank[r] * hq;
        for (int q = first; q < first + hq; ++q) {
            rh.q.push_back(q);
            const int kv = q / gqa;
            if (rh.kv.empty() || rh.kv.back() != kv)
                rh.kv.push_back(kv);
        }
    }
    return layout;
}

HeadLayout
HeadLayout::base(const model::ModelConfig& m, const ParallelConfig& cfg)
{
    validate_config_or_die(m, cfg);
    const int g = cfg.world();
    // Rank r = sp_idx * TP + tp_idx. TP shards head columns into `tp`
    // chunks; the SP all-to-all splits each chunk into `sp` sub-chunks. The
    // head block owned by rank (i, j) is therefore j * sp + i — exactly the
    // rank's position in the SP_TP group order.
    std::vector<int> block(g);
    for (int r = 0; r < g; ++r) {
        const int i = r / cfg.tp;  // SP index
        const int j = r % cfg.tp;  // TP index
        block[r] = j * cfg.sp + i;
    }
    return from_blocks(m, block);
}

HeadLayout
HeadLayout::shift(const model::ModelConfig& m, const ParallelConfig& base_cfg)
{
    validate_config_or_die(m, base_cfg);
    const int g = base_cfg.world();
    // The shift model's TP=g weights are loaded over ranks enumerated in
    // SP_TP order: the rank at position p in that order gets head block p.
    const std::vector<int> order = hw::sp_tp_group(base_cfg.sp, base_cfg.tp);
    std::vector<int> block(g, -1);
    for (int p = 0; p < g; ++p)
        block[order[p]] = p;
    for (int r = 0; r < g; ++r)
        SP_ASSERT(block[r] >= 0, "SP_TP order must be a permutation");
    return from_blocks(m, block);
}

HeadLayout
HeadLayout::naive_tp(const model::ModelConfig& m, int world)
{
    validate_config_or_die(m, ParallelConfig{1, world});
    std::vector<int> block(world);
    for (int r = 0; r < world; ++r)
        block[r] = r;
    return from_blocks(m, block);
}

const RankHeads&
HeadLayout::rank(int r) const
{
    SP_ASSERT(r >= 0 && r < world());
    return ranks_[static_cast<std::size_t>(r)];
}

std::vector<int>
HeadLayout::rank_of_q_head() const
{
    int num_heads = 0;
    for (const auto& rh : ranks_)
        num_heads += static_cast<int>(rh.q.size());
    std::vector<int> owner(num_heads, -1);
    for (int r = 0; r < world(); ++r) {
        for (int q : ranks_[r].q) {
            SP_ASSERT(owner[q] == -1, "duplicate query head placement");
            owner[q] = r;
        }
    }
    return owner;
}

bool
HeadLayout::invariant_with(const HeadLayout& other) const
{
    if (world() != other.world())
        return false;
    // KV-cache invariance requires each rank to hold the same KV heads in
    // the same order (Section 3.3.1: same layout *and* same head ordering).
    for (int r = 0; r < world(); ++r) {
        if (ranks_[r].kv != other.ranks_[r].kv)
            return false;
    }
    return true;
}

} // namespace shiftpar::parallel
