#include "parallel/strategy.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace shiftpar::parallel {

std::string
strategy_name(Strategy s)
{
    switch (s) {
      case Strategy::kDp:    return "DP";
      case Strategy::kTp:    return "TP";
      case Strategy::kSp:    return "SP";
      case Strategy::kSpTp:  return "SP+TP";
      case Strategy::kShift: return "Shift";
    }
    return "?";
}

Strategy
parse_strategy(const std::string& name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "dp")
        return Strategy::kDp;
    if (lower == "tp")
        return Strategy::kTp;
    if (lower == "sp")
        return Strategy::kSp;
    if (lower == "sp+tp" || lower == "sptp")
        return Strategy::kSpTp;
    if (lower == "shift")
        return Strategy::kShift;
    fatal("unknown parallelism strategy: '" + name + "'");
}

} // namespace shiftpar::parallel
