/**
 * @file
 * Execution-group parallel configuration.
 *
 * `ParallelConfig` describes how one engine's rank group is decomposed into
 * sequence-parallel (SP) and tensor-parallel (TP) dimensions. Data
 * parallelism lives one level up (a deployment runs several engines); within
 * an engine, every forward pass executes under some (SP, TP) with
 * SP * TP = group size. Shift Parallelism alternates per step between a
 * *base* (SP, TP) and the *shift* (1, SP*TP) configuration.
 */

#pragma once

#include <string>

#include "model/model_config.h"

namespace shiftpar::parallel {

/** One (SP, TP[, EP]) decomposition of an engine's rank group. */
struct ParallelConfig
{
    /** Sequence-parallel (Ulysses) degree. */
    int sp = 1;

    /** Tensor-parallel degree. */
    int tp = 1;

    /**
     * Expert-parallel degree (MoE models only; Section 4.6 extension).
     * Experts are distributed over `ep` of the group's ranks, overlapping
     * the SP/TP dimensions; attention and the KV cache are untouched, so
     * EP composes with Shift Parallelism's cache invariance.
     */
    int ep = 1;

    /** @return total ranks in the group (EP overlaps, does not multiply). */
    int world() const { return sp * tp; }

    /** @return the shift configuration: (SP=1, TP=SP*TP), EP preserved. */
    ParallelConfig shift_config() const { return {1, world(), ep}; }

    /** @return true when this is the full-TP configuration. */
    bool is_full_tp() const { return sp == 1; }

    /** @return "(SP=s,TP=t[,EP=e])" for reports. */
    std::string to_string() const;

    bool operator==(const ParallelConfig&) const = default;
};

/**
 * KV-head replication factor needed to spread `m.kv_heads` across
 * `cfg.world()` ranks (Section 3.2.1): 1 when there are at least as many KV
 * heads as ranks, world/kv_heads otherwise.
 */
int kv_replication(const model::ModelConfig& m, const ParallelConfig& cfg);

/**
 * Validate a configuration against a model: positive degrees, query heads
 * divisible across the group, and KV heads either evenly divisible across
 * ranks or evenly replicable. Returns a human-readable error, or an empty
 * string when valid.
 */
std::string validate_config(const model::ModelConfig& m,
                            const ParallelConfig& cfg);

/** As `validate_config`, but fatal() on any error. */
void validate_config_or_die(const model::ModelConfig& m,
                            const ParallelConfig& cfg);

} // namespace shiftpar::parallel
