#include "parallel/perf_model.h"

#include <algorithm>

#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::parallel {

PerfModel::PerfModel(hw::Node node, model::ModelConfig m, PerfOptions opts)
    : node_(std::move(node)), model_(std::move(m)), opts_(opts),
      coll_(node_.link)
{
    model_.validate();
}

StepTiming
PerfModel::evaluate(const BatchWork& work, const ParallelConfig& cfg,
                    bool sliced_weights,
                    std::vector<KernelCost>* breakdown) const
{
    validate_config_or_die(model_, cfg);
    SP_ASSERT(cfg.world() <= node_.num_gpus,
              "configuration exceeds node size");

    const model::ModelConfig& m = model_;
    const int g = cfg.world();
    const int rep = kv_replication(m, cfg);
    const double wbytes = model::dtype_bytes(m.weight_dtype);
    const double act_b = opts_.act_bytes;

    StepTiming t;
    if (opts_.engine_overhead) {
        t.overhead = opts_.step_overhead_base +
                     opts_.step_overhead_per_rank * (g - 1);
    }

    // Report the four aggregates as pseudo-kernels; the roofline model has
    // no finer granularity. Deferred to one exit path so every early
    // return stays covered.
    const auto fill_breakdown = [&](const StepTiming& timing) {
        if (breakdown == nullptr)
            return;
        breakdown->push_back({"gemm", "gemm", 1.0, 0.0, 0.0, timing.gemm});
        breakdown->push_back(
            {"attention", "attention", 1.0, 0.0, 0.0, timing.attention});
        breakdown->push_back(
            {"comm", "collective", 1.0, 0.0, 0.0, timing.comm});
        breakdown->push_back(
            {"overhead", "overhead", 1.0, 0.0, 0.0, timing.overhead});
    };

    const std::int64_t n_raw = work.total_new_tokens();
    if (n_raw == 0) {
        fill_breakdown(t);
        return t;
    }

    // Section 3.2.1 load balancing: pad the batch to a multiple of SP so
    // every rank receives the same number of sequence rows.
    const std::int64_t n =
        cfg.sp > 1 ? round_up(n_raw, cfg.sp) : n_raw;
    const double rows = static_cast<double>(n) / cfg.sp;  // rows per GPU

    // Effective compute tokens after feature scaling: SwiftKV shrinks
    // prefill compute, speculative verification inflates decode compute.
    double compute_tokens = 0.0;
    for (const auto& c : work.chunks) {
        compute_tokens += static_cast<double>(c.new_tokens) *
                          (c.is_prefill ? opts_.swiftkv_prefill_factor
                                        : opts_.decode_compute_inflation);
    }
    const double compute_scale =
        compute_tokens / static_cast<double>(n_raw);

    // ---- GEMM compute + weight streaming, per layer per GPU -------------
    // Each GPU computes rows/SP of the sequence against 1/TP of the weight
    // columns: FLOPs / (SP*TP). Weights are read once per step at 1/TP
    // (SP replicates weights — this term is what makes SP decode slow).
    const double gemm_flops_pg =
        model::layer_gemm_flops(m, static_cast<double>(n) * compute_scale) /
        g;
    // Expert weights are additionally spread over the EP dimension
    // (Section 4.6 extension): each rank streams only its local experts.
    double weight_read_pg =
        model::layer_dense_weight_bytes(m) / cfg.tp +
        model::layer_expert_read_bytes(m, static_cast<double>(n)) /
            (cfg.tp * cfg.ep);
    if (sliced_weights) {
        // On-the-fly slicing transposes each shard before use (FP8 Hopper
        // limitation, Section 3.3.2) — modeled as extra weight traffic.
        weight_read_pg *= 1.0 + opts_.slicing_overhead_frac;
    }
    const double act_bytes_pg =
        model::layer_activation_bytes(m, static_cast<double>(n)) / g;
    const double gemm_layer = node_.gpu.kernel_time(
        gemm_flops_pg, weight_read_pg + act_bytes_pg,
        node_.gpu.effective_gemm_flops(wbytes));

    // ---- Attention, per layer per GPU -----------------------------------
    // Heads are sharded across the whole group (identically under base and
    // shift configs — the KV-cache invariance); replicated KV heads
    // multiply cache traffic.
    double attn_flops = 0.0;
    double kv_traffic = 0.0;
    for (const auto& c : work.chunks) {
        const double nt = static_cast<double>(c.new_tokens);
        const double past = static_cast<double>(c.past);
        if (c.is_prefill) {
            // SwiftKV skips attention in the reduced layers during prefill.
            const double f = opts_.swiftkv_prefill_factor;
            attn_flops += f * model::attn_flops(m, nt, past);
            kv_traffic += f * model::kv_read_bytes(m, nt, past) +
                          model::kv_write_bytes(m, nt);
        } else {
            // Verification queries attend with draft_len+1 positions per
            // emitted token (compute inflation); the cache is still
            // streamed once per chunk, so reads are not inflated.
            attn_flops += opts_.decode_compute_inflation *
                          model::attn_flops(m, nt, past);
            kv_traffic += model::kv_read_bytes(m, nt, past) +
                          model::kv_write_bytes(m, nt);
        }
    }
    const double attn_flops_pg = attn_flops / g;
    const double kv_traffic_pg = kv_traffic * rep / g;
    const double attn_layer = node_.gpu.kernel_time(
        attn_flops_pg, kv_traffic_pg,
        node_.gpu.effective_attn_flops(model::dtype_bytes(m.kv_dtype)));

    // ---- Communication, per layer (Algorithm 1) --------------------------
    double comm_layer = 0.0;
    if (cfg.tp > 1) {
        // Lines 8 and 11: two all-reduces of embed[n/SP, d].
        const double ar_bytes = rows * m.hidden_size * act_b;
        comm_layer += 2.0 * coll_.all_reduce(ar_bytes, cfg.tp);
    }
    if (cfg.sp > 1) {
        // Line 4: all-to-all of the fused QKV heads. GQA replaces 3h with
        // h + 2*h_kv (Section 3.2.1); replication inflates the KV part.
        const double qkv_cols =
            (m.q_heads + 2.0 * m.kv_heads * rep) * m.head_dim / cfg.tp;
        comm_layer += coll_.all_to_all(rows * qkv_cols * act_b, cfg.sp);
        // Line 6: all-to-all of the attention output heads.
        const double o_cols =
            static_cast<double>(m.q_heads) * m.head_dim / cfg.tp;
        comm_layer += coll_.all_to_all(rows * o_cols * act_b, cfg.sp);
    }
    if (m.is_moe() && cfg.ep > 1) {
        // Expert parallelism routes each token's hidden state to its
        // experts and back: dispatch + combine all-to-alls over the EP
        // group, `active_experts` copies per token.
        const double routed =
            rows * m.active_experts * m.hidden_size * act_b / cfg.tp;
        comm_layer += 2.0 * coll_.all_to_all(routed, cfg.ep);
    }

    t.gemm = m.num_layers * gemm_layer;
    t.attention = m.num_layers * attn_layer * opts_.attention_scale;
    t.comm = m.num_layers * comm_layer * opts_.comm_scale;

    // ---- LM head (sampled positions only) --------------------------------
    const double sampled = static_cast<double>(work.num_seqs());
    const double head_flops = model::lm_head_flops(m, sampled) / g;
    const double head_bytes =
        static_cast<double>(m.vocab_size) * m.hidden_size * wbytes / g;
    t.gemm += node_.gpu.kernel_time(head_flops, head_bytes,
                                    node_.gpu.effective_gemm_flops(wbytes));

    // ---- Final sequence all-gather (Algorithm 1 line 13) -----------------
    if (cfg.sp > 1) {
        t.comm += opts_.comm_scale *
                  coll_.all_gather(
                      static_cast<double>(n) * m.hidden_size * act_b,
                      cfg.sp);
    }
    fill_breakdown(t);
    return t;
}

} // namespace shiftpar::parallel
