/**
 * @file
 * Cost-model selection, one struct from flag to engine.
 *
 * `CostModelSpec` is what `--cost-model` / `--kernel-coeffs` parse into; it
 * travels through `core::Deployment` and `engine::EngineConfig` unchanged,
 * and `make_cost_model` turns it into the concrete implementation at the
 * point where the (node, model) pair is known. The default spec builds the
 * roofline `PerfModel` with exactly the arguments the pre-interface engine
 * used, so default deployments stay bit-identical.
 */

#pragma once

#include <memory>
#include <optional>

#include "hw/kernel_coeffs.h"
#include "hw/topology.h"
#include "model/cost_model.h"
#include "model/model_config.h"
#include "parallel/perf_model.h"

namespace shiftpar::parallel {

/** Which step-cost implementation to build, plus its configuration. */
struct CostModelSpec
{
    model::CostModelKind kind = model::CostModelKind::kRoofline;

    /**
     * Per-kernel coefficients for the kernel model (ignored by roofline).
     * Unset means "derive from the node's GPU and link specs".
     */
    std::optional<hw::KernelCoeffs> coeffs;
};

/**
 * Build the cost model a spec describes for one (node, model) pair.
 *
 * @param opts The engine-overhead/ablation knobs, applied identically by
 *        every implementation.
 */
std::unique_ptr<const model::CostModel>
make_cost_model(const CostModelSpec& spec, const hw::Node& node,
                const model::ModelConfig& m, const PerfOptions& opts);

} // namespace shiftpar::parallel
