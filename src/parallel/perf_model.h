/**
 * @file
 * Analytical per-step performance model for all parallelism strategies.
 *
 * The model evaluates one engine iteration (a batch of prefill chunks and
 * decode tokens) under an arbitrary (SP, TP) configuration, following
 * Algorithm 1 of the paper, and returns the step time decomposed into the
 * Figure 15 components: GEMM compute, attention, communication, and engine
 * (vLLM-equivalent) overhead.
 *
 * `PerfModel` is the default `model::CostModel` implementation (the
 * roofline aggregate); see `parallel/kernel_cost_model.h` for the
 * kernel-decomposed alternative. The batch/timing vocabulary lives in
 * `model/cost_model.h` and is re-exported here so pre-interface code keeps
 * compiling against `parallel::BatchWork` / `parallel::StepTiming`.
 *
 * Strategy-distinguishing behaviour captured here:
 *  - TP shards weights (1/TP reads) but pays two all-reduces of the full
 *    `n x d` embedding per layer — comm volume independent of TP degree
 *    (Table 2's "TP x const" comm/compute ratio).
 *  - SP shards the sequence; weights are replicated across SP ranks, so a
 *    decode step streams the *whole* TP shard of the weights regardless of
 *    batch size — the worst TPOT in Table 1. Its two all-to-alls move only
 *    1/(SP*TP) of the head activations (Table 2's constant ratio).
 *  - Small batches are padded up to a multiple of SP (Section 3.2.1 load
 *    balancing), wasting up to (SP-1)/batch of the compute.
 *  - KV replication (world > kv_heads, Section 3.2.1) inflates per-rank KV
 *    traffic and the first all-to-all payload.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "hw/topology.h"
#include "model/cost_model.h"
#include "model/flops.h"
#include "model/model_config.h"
#include "parallel/config.h"
#include "parallel/memory.h"

namespace shiftpar::parallel {

// Source-compatibility aliases: these types predate the CostModel
// interface and every layer refers to them under parallel::.
using model::BatchWork;
using model::CostModel;
using model::KernelCost;
using model::SeqChunk;
using model::StepTiming;

/** Engine-overhead and ablation knobs. */
struct PerfOptions
{
    /** Fixed serving-engine overhead per step, seconds. */
    double step_overhead_base = 2.0e-3;

    /** Additional coordination overhead per extra rank in the group. */
    double step_overhead_per_rank = 0.25e-3;

    /** Extra fraction of weight-read time paid by on-the-fly slicing in
     *  shift-mode steps (FP8 transpose penalty, Section 3.3.2). */
    double slicing_overhead_frac = 0.30;

    /** Activation dtype bytes (BF16 activations around FP8 GEMMs). */
    double act_bytes = 2.0;

    /**
     * SwiftKV prefill-compute factor (Section 4.5): fraction of the full
     * per-token prefill compute (GEMM + attention) that remains after the
     * SwiftKV model transformation. 1.0 = disabled.
     */
    double swiftkv_prefill_factor = 1.0;

    /**
     * Speculative-decoding compute inflation on decode chunks: the verify
     * pass processes draft_len+1 tokens to emit E accepted tokens, so each
     * emitted token costs (draft_len+1)/E target-model FLOPs (plus the
     * draft model). 1.0 = disabled.
     */
    double decode_compute_inflation = 1.0;

    /**
     * Component-removal knobs for the Fig. 15 methodology ("taking away
     * one component at a time"): scale factors on the communication and
     * attention components, and a switch for the engine overhead. 1/true
     * = the real system; 0/false = component removed.
     */
    double comm_scale = 1.0;
    double attention_scale = 1.0;
    bool engine_overhead = true;
};

/**
 * The roofline step-cost model (default `model::CostModel`).
 *
 * Construct once per (node, model) pair and query with any valid
 * configuration; the model is stateless across calls.
 */
class PerfModel : public model::CostModel
{
  public:
    PerfModel(hw::Node node, model::ModelConfig m, PerfOptions opts = {});

    const char* name() const override { return "roofline"; }

    /**
     * Time one engine iteration (see `model::CostModel::evaluate`). The
     * optional breakdown reports the four roofline aggregates as
     * pseudo-kernels — this model has no finer granularity.
     */
    StepTiming evaluate(const BatchWork& work, const ParallelConfig& cfg,
                        bool sliced_weights = false,
                        std::vector<KernelCost>* breakdown =
                            nullptr) const override;

    /** Pre-interface name for `evaluate` (kept for callers and tests). */
    StepTiming step_time(const BatchWork& work, const ParallelConfig& cfg,
                         bool sliced_weights = false) const
    {
        return evaluate(work, cfg, sliced_weights);
    }

    const model::ModelConfig& model() const { return model_; }
    const hw::Node& node() const { return node_; }
    const PerfOptions& options() const { return opts_; }

  private:
    hw::Node node_;
    model::ModelConfig model_;
    PerfOptions opts_;
    hw::CollectiveModel coll_;
};

} // namespace shiftpar::parallel
