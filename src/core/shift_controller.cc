#include "core/shift_controller.h"

#include "util/logging.h"

namespace shiftpar::core {

ShiftController::ShiftController(parallel::ParallelConfig base,
                                 std::int64_t threshold,
                                 parallel::WeightStrategy weights)
    : base_(base), threshold_(threshold), weights_(weights)
{
    SP_ASSERT(base_.sp > 1,
              "Shift Parallelism needs a base configuration with SP > 1");
    SP_ASSERT(threshold_ >= 0);
}

void
ShiftController::attach_trace(obs::TraceSink* sink, obs::EngineId id,
                              const double* clock)
{
    trace_ = sink;
    trace_id_ = id;
    trace_clock_ = clock;
    // A controller can be re-attached (a new engine or a fresh run reusing
    // the policy object): the flip detector must forget the previous
    // stream's last mode, or the first decision here would be compared
    // against another engine's history and emit a phantom mode switch.
    last_shift_ = false;
    have_last_ = false;
}

engine::ExecutionPolicy::Choice
ShiftController::choose(std::int64_t batched_tokens) const
{
    // Algorithm 2: n > threshold -> base (SP or SP x TP); else full TP.
    const bool shift = batched_tokens <= threshold_;
    if (trace_ && have_last_ && shift != last_shift_) {
        trace_->on_mode_switch({trace_id_, *trace_clock_, shift,
                                batched_tokens,
                                shift ? base_ : base_.shift_config(),
                                shift ? base_.shift_config() : base_});
    }
    last_shift_ = shift;
    have_last_ = true;
    if (!shift)
        return {base_, false};
    return {base_.shift_config(),
            weights_ == parallel::WeightStrategy::kOnTheFlySlicing};
}

std::int64_t
ShiftController::auto_threshold(const model::CostModel& cost,
                                const parallel::ParallelConfig& base,
                                std::int64_t context, std::int64_t max_batch)
{
    const parallel::ParallelConfig shift = base.shift_config();
    const auto base_wins = [&](std::int64_t n) {
        return cost.decode_step_time(n, context, base) <=
               cost.decode_step_time(n, context, shift);
    };
    if (base_wins(1))
        return 0;  // base never loses: always run the base config
    if (!base_wins(max_batch))
        return max_batch;  // shift always wins up to the search bound
    // Bisect for the crossover: smallest n where the base config wins.
    std::int64_t lo = 1;          // base loses here
    std::int64_t hi = max_batch;  // base wins here
    while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (base_wins(mid))
            hi = mid;
        else
            lo = mid;
    }
    return lo;  // batches > lo run base, <= lo run shift
}

} // namespace shiftpar::core
