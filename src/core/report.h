/**
 * @file
 * Run-report formatting: one call turning (deployment, metrics) into the
 * latency/throughput summary every example and experiment prints.
 */

#pragma once

#include <optional>
#include <string>

#include "core/deployment.h"
#include "engine/metrics.h"

namespace shiftpar::core {

/** Report content controls. */
struct ReportOptions
{
    /** Evaluate SLO attainment/goodput against this objective. */
    std::optional<engine::SloSpec> slo;

    /** Include an ASCII throughput timeline. */
    bool timeline = false;

    /** Timeline plot width, characters. */
    int plot_width = 72;
};

/**
 * Format the standard run report: deployment line, latency percentile
 * table (TTFT / TPOT / completion / wait), throughput and step-mode
 * counts, optional SLO section and timeline.
 */
std::string format_report(const ResolvedDeployment& deployment,
                          const engine::Metrics& metrics,
                          const ReportOptions& opts = {});

} // namespace shiftpar::core
