#include "core/deployment.h"

#include <sstream>

#include "core/shift_controller.h"
#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::core {

namespace {

/**
 * Smallest TP degree (power-of-two divisor of the node) at which the model
 * fits each GPU with at least `min_kv_fraction` of HBM left for KV cache.
 */
int
min_tp_that_fits(const Deployment& d, bool with_shift_model)
{
    for (int tp = 1; tp <= d.node.num_gpus; tp *= 2) {
        const parallel::ParallelConfig probe{1, tp};
        if (!parallel::validate_config(d.model, probe).empty())
            continue;
        // Shift-weight reservation scales with the eventual SP degree; use
        // the worst case (the full remaining node as SP) for the fit test.
        const int sp = d.node.num_gpus / tp;
        const parallel::ParallelConfig full{sp, tp};
        if (!parallel::validate_config(d.model, full).empty())
            continue;
        const auto plan = parallel::plan_memory(
            d.model, d.node.gpu, full, with_shift_model && sp > 1, d.weights,
            d.mem);
        if (plan.fits() &&
            plan.kv_pool_bytes >=
                d.min_kv_fraction * d.node.gpu.hbm_bytes) {
            return tp;
        }
    }
    fatal("model '" + d.model.name + "' does not fit on node '" +
          d.node.gpu.name + "' at any TP degree");
}

} // namespace

std::string
ResolvedDeployment::describe() const
{
    std::ostringstream os;
    os << replicas << " engine(s) x " << base.to_string();
    if (shift_threshold > 0)
        os << ", shift threshold " << shift_threshold << " tokens";
    // Mentioned only off the default so existing run descriptions (and the
    // reports pinned against them) keep their exact bytes.
    if (cost_kind != model::CostModelKind::kRoofline)
        os << ", cost model " << model::cost_model_kind_name(cost_kind);
    os << ", " << parallel::describe(memory);
    return os.str();
}

ResolvedDeployment
resolve(const Deployment& d)
{
    ResolvedDeployment r;
    r.sched = d.sched;
    r.perf = d.perf;
    r.cost_kind = d.cost.kind;
    if (d.swiftkv)
        d.swiftkv->apply(&r.perf);
    if (d.spec_decode)
        d.spec_decode->apply(&r.sched, &r.perf);

    const int gpus = d.node.num_gpus;
    switch (d.strategy) {
      case parallel::Strategy::kDp: {
        const int tp = d.tp > 0 ? d.tp : min_tp_that_fits(d, false);
        r.base = {1, tp};
        r.replicas = gpus / tp;
        break;
      }
      case parallel::Strategy::kTp:
        r.base = {1, d.tp > 0 ? d.tp : gpus};
        break;
      case parallel::Strategy::kSp: {
        const int tp = d.tp > 0 ? d.tp : min_tp_that_fits(d, false);
        r.base = {d.sp > 0 ? d.sp : gpus / tp, tp};
        break;
      }
      case parallel::Strategy::kSpTp: {
        SP_ASSERT(d.sp > 0 && d.tp > 0,
                  "SP+TP strategy requires explicit sp and tp");
        r.base = {d.sp, d.tp};
        break;
      }
      case parallel::Strategy::kShift: {
        const int tp = d.tp > 0 ? d.tp : min_tp_that_fits(d, true);
        r.base = {d.sp > 0 ? d.sp : gpus / tp, tp};
        r.with_shift_model =
            d.weights == parallel::WeightStrategy::kSeparateModels &&
            r.base.sp > 1;
        break;
      }
    }
    if (d.ep > 1)
        r.base.ep = d.ep;
    parallel::validate_config_or_die(d.model, r.base);
    SP_ASSERT(r.base.world() * r.replicas <= gpus,
              "deployment exceeds node GPU count");

    r.memory = parallel::plan_memory(d.model, d.node.gpu, r.base,
                                     r.with_shift_model, d.weights, d.mem);
    if (!r.memory.fits()) {
        fatal("deployment does not fit: " + parallel::describe(r.memory));
    }

    if (d.strategy == parallel::Strategy::kShift) {
        if (d.shift_threshold >= 0) {
            r.shift_threshold = d.shift_threshold;
        } else {
            // The threshold crossover is found under the same cost model
            // the engines will run with; the default spec constructs the
            // roofline model with the exact pre-interface arguments.
            const auto cost =
                parallel::make_cost_model(d.cost, d.node, d.model, r.perf);
            r.shift_threshold =
                ShiftController::auto_threshold(*cost, r.base);
        }
    }
    return r;
}

std::unique_ptr<engine::Router>
build(const Deployment& d)
{
    return build(d, resolve(d));
}

std::unique_ptr<engine::Router>
build(const Deployment& d, const ResolvedDeployment& r)
{
    engine::EngineConfig ecfg;
    ecfg.base = r.base;
    ecfg.sched = r.sched;
    ecfg.perf = r.perf;
    ecfg.mem = d.mem;
    ecfg.cost = d.cost;
    // Kernel-share telemetry piggybacks on the profiling opt-in: metrics
    // are pure observation, but only profiled runs pay for them.
    ecfg.cost_metrics = d.profile != nullptr;
    ecfg.weights = d.weights;
    ecfg.with_shift_model = r.with_shift_model;
    ecfg.block_size = d.block_size;
    ecfg.throughput_bin = d.throughput_bin;

    std::vector<std::unique_ptr<engine::Engine>> engines;
    for (int i = 0; i < r.replicas; ++i) {
        std::unique_ptr<engine::ExecutionPolicy> policy;
        if (d.strategy == parallel::Strategy::kShift && r.base.sp > 1) {
            policy = std::make_unique<ShiftController>(
                r.base, r.shift_threshold, d.weights);
        } else {
            policy = std::make_unique<engine::FixedPolicy>(r.base);
        }
        if (d.trace) {
            obs::EngineMeta meta;
            meta.label =
                "engine " + std::to_string(i) + " " + r.base.to_string();
            meta.base = r.base;
            meta.shift_threshold = r.shift_threshold;
            ecfg.trace = d.trace;
            ecfg.trace_id = d.trace->register_engine(meta);
        }
        engines.push_back(std::make_unique<engine::Engine>(
            d.node, d.model, ecfg, std::move(policy)));
    }
    auto router =
        std::make_unique<engine::Router>(std::move(engines), d.routing);
    router->set_trace(d.trace);
    router->set_profile(d.profile);
    router->set_faults(d.faults, d.resilience);
    router->set_overload(d.overload);
    router->set_cancellations(d.cancellations);
    return router;
}

engine::Metrics
run_deployment(const Deployment& d,
               const std::vector<engine::RequestSpec>& workload)
{
    auto router = build(d);
    return router->run_workload(workload);
}

engine::Metrics
run_deployment(const Deployment& d,
               const std::vector<engine::RequestSpec>& workload,
               obs::ReportJson* report, const std::string& run_name)
{
    // Resolve once and reuse for both the build and the report record:
    // resolving is pure but not free (memory planning + threshold
    // auto-tuning), and sweep workers call this concurrently.
    const ResolvedDeployment r = resolve(d);
    auto router = build(d, r);
    engine::Metrics m = router->run_workload(workload);
    if (report) {
        obs::RunDeploymentInfo info;
        info.description = r.describe();
        info.sp = r.base.sp;
        info.tp = r.base.tp;
        info.replicas = r.replicas;
        info.shift_threshold = r.shift_threshold;
        // Recorded only off the default; the writer skips the empty
        // string, so roofline reports keep their exact bytes.
        if (r.cost_kind != model::CostModelKind::kRoofline)
            info.cost_model = model::cost_model_kind_name(r.cost_kind);
        // Fault counters are recorded only when the replay actually
        // injected something, so fault-free reports stay byte-identical.
        std::optional<fault::FaultStats> faults;
        if (router->fault_stats().any())
            faults = router->fault_stats();
        // Same rule for lifecycle counters: absent unless the run had
        // deadlines, cancels, hedges, breaker activity, or drains.
        std::optional<engine::OverloadStats> overload;
        if (router->overload_stats().any())
            overload = router->overload_stats();
        report->add_run(run_name, m, info, {}, faults, overload);
    }
    return m;
}

} // namespace shiftpar::core
