/**
 * @file
 * SwiftKV model transformation (Qiao et al. 2025; Section 4.5).
 *
 * SwiftKV ("SingleInputKV") projects the KV cache of the upper ~half of the
 * transformer layers from a single earlier hidden state, so prefill skips
 * most of the compute in those layers while decode runs the full model.
 * For a system-level model the relevant effect is a *prefill compute
 * reduction factor*: with 50% layer skip the paper reports roughly 2x less
 * prefill compute at negligible quality loss. Decode cost and KV cache
 * capacity are unchanged.
 */

#pragma once

#include "parallel/perf_model.h"

namespace shiftpar::core {

/** SwiftKV configuration. */
struct SwiftKv
{
    /**
     * Fraction of layers whose prefill compute is skipped (0 = vanilla
     * model, 0.5 = the published 50% SingleInputKV configuration).
     */
    double skip_fraction = 0.5;

    /**
     * Residual compute in skipped layers (the lightweight KV projection
     * that replaces them), as a fraction of a full layer.
     */
    double residual_fraction = 0.1;

    /** @return the prefill compute factor to install in `PerfOptions`. */
    double prefill_compute_factor() const;

    /** Install this transformation into a perf-model option set. */
    void apply(parallel::PerfOptions* opts) const;
};

} // namespace shiftpar::core
