/**
 * @file
 * Deployment builder — the library's top-level public API.
 *
 * A `Deployment` names a model, a node, a parallelization strategy, and
 * optional production features (SwiftKV, speculative decoding). `resolve`
 * turns it into a concrete plan — the (SP, TP) base configuration, replica
 * count, shift threshold, and memory plan — applying the paper's
 * auto-configuration rules:
 *
 *  - TP only as deep as needed for the model (plus shift weights, Eq. 1)
 *    to fit each GPU with a healthy KV pool, the rest of the node to SP
 *    (Section 3.2.2's "avoid partitioning with TP as much as each
 *    partition fits").
 *  - DP replicas are the smallest TP groups that fit the model.
 *  - The shift threshold defaults to the measured step-time crossover.
 *
 * `build` instantiates the engines and router; `run_deployment` replays a
 * workload end to end.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spec_decode.h"
#include "core/swiftkv.h"
#include "engine/router.h"
#include "hw/presets.h"
#include "model/model_config.h"
#include "obs/report_json.h"
#include "obs/trace.h"
#include "parallel/cost_model_factory.h"
#include "parallel/strategy.h"

namespace shiftpar::core {

/** A complete serving deployment description. */
struct Deployment
{
    model::ModelConfig model;
    hw::Node node = hw::h200_node();
    parallel::Strategy strategy = parallel::Strategy::kShift;

    /** Manual (SP, TP) override; 0 = auto-configure. */
    int sp = 0;
    int tp = 0;

    /**
     * Expert-parallel degree for MoE models (Section 4.6 extension;
     * 1 = disabled). Composes with any strategy, including Shift.
     */
    int ep = 1;

    /** Shift threshold in batched tokens; -1 = auto-tune (Alg. 2). */
    std::int64_t shift_threshold = -1;

    parallel::WeightStrategy weights =
        parallel::WeightStrategy::kSeparateModels;
    engine::SchedulerOptions sched;
    parallel::PerfOptions perf;
    parallel::MemoryOptions mem;

    /**
     * Step-cost model selection (`--cost-model` / `--kernel-coeffs` in the
     * bench harness). The default roofline spec reproduces the
     * pre-interface engine bit-identically; the kernel spec prices each
     * step from the per-kernel decomposition instead.
     */
    parallel::CostModelSpec cost;

    engine::RoutingPolicy routing = engine::RoutingPolicy::kLeastTokens;

    /** KV block size, tokens. */
    int block_size = 16;

    /** Metrics throughput-bin width, seconds. */
    double throughput_bin = 1.0;

    /** Minimum KV pool as a fraction of HBM for auto TP selection. */
    double min_kv_fraction = 0.25;

    /** Optional production features (Section 4.5). */
    std::optional<SwiftKv> swiftkv;
    std::optional<SpeculativeDecoder> spec_decode;

    /**
     * Fault schedule replayed against the built router's engines during
     * `run_workload` (robustness experiments). Empty = no fault machinery
     * runs at all; results are bit-identical to a build without it.
     */
    fault::FaultSchedule faults;

    /** Retry/backoff and load-shedding knobs used when `faults` is set. */
    engine::ResilienceOptions resilience;

    /**
     * Request-lifecycle robustness knobs (hedged retries, circuit
     * breakers). Default-constructed = every feature off; the lifecycle
     * machinery stays cold and results are bit-identical to a build
     * without it.
     */
    engine::OverloadOptions overload;

    /**
     * Client cancellation stream replayed during `run_workload`
     * (`workload::cancel_stream` derives one deterministically). Indices
     * address positions in the arrival-sorted workload.
     */
    std::vector<engine::CancelEvent> cancellations;

    /**
     * Observability sink (borrowed, may be null). When set, `build`
     * registers every engine replica on the bus and all layers publish
     * lifecycle/step/gauge events to it. Null disables tracing;
     * simulation results are bit-identical either way.
     */
    obs::TraceSink* trace = nullptr;

    /**
     * Cluster self-profiling accumulator (borrowed, may be null). When
     * set, the replay cluster attributes host wall time per component
     * kind and folds heap/queue stats into it (`--profile` in the bench
     * harness). Like `trace`, it only observes: simulation results are
     * bit-identical either way.
     */
    sim::ClusterProfile* profile = nullptr;
};

/** The concrete plan a deployment resolves to. */
struct ResolvedDeployment
{
    /** Base (SP, TP) of each engine group. */
    parallel::ParallelConfig base;

    /** Engine replica count (1 except for DP). */
    int replicas = 1;

    /** Shift threshold (0 when the strategy never shifts). */
    std::int64_t shift_threshold = 0;

    /** Whether engines reserve the shift model's weights (Eq. 1). */
    bool with_shift_model = false;

    /** Per-GPU memory plan of each engine. */
    parallel::MemoryPlan memory;

    /** Scheduler/perf options with features applied. */
    engine::SchedulerOptions sched;
    parallel::PerfOptions perf;

    /** Which cost-model implementation steps are priced with. */
    model::CostModelKind cost_kind = model::CostModelKind::kRoofline;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/** Resolve auto-configuration; fatal() when nothing fits. */
ResolvedDeployment resolve(const Deployment& d);

/** Build the engines + router for a deployment. */
std::unique_ptr<engine::Router> build(const Deployment& d);

/**
 * As above with a pre-computed plan, so callers that already resolved the
 * deployment (for reporting, labels, ...) do not pay for — or depend on
 * the determinism of — a second resolve. `r` must come from `resolve(d)`.
 */
std::unique_ptr<engine::Router> build(const Deployment& d,
                                      const ResolvedDeployment& r);

/** Convenience: build, replay `workload`, and return merged metrics. */
engine::Metrics run_deployment(const Deployment& d,
                               const std::vector<engine::RequestSpec>& workload);

/**
 * As above, and additionally record the run — resolved deployment plan plus
 * merged metrics — into `report` under `run_name` (no-op when `report` is
 * null).
 */
engine::Metrics run_deployment(const Deployment& d,
                               const std::vector<engine::RequestSpec>& workload,
                               obs::ReportJson* report,
                               const std::string& run_name);

} // namespace shiftpar::core
