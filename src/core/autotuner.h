/**
 * @file
 * Deployment auto-tuner: pick the best serving configuration for a target
 * workload by simulation.
 *
 * The paper's operating point (which strategy, which (SP, TP) split, which
 * shift threshold) depends on the traffic; this tuner enumerates valid
 * candidates — every strategy, every (SP, TP) decomposition of the node
 * that fits the model, and a small threshold sweep around the analytic
 * crossover for Shift — replays a sample workload under each, and ranks
 * them by a weighted objective over completion time, tail TTFT, and
 * throughput.
 */

#pragma once

#include <string>
#include <vector>

#include "core/deployment.h"

namespace shiftpar::core {

/** Objective weights; all terms are normalized to the candidate field. */
struct TuneObjective
{
    /** Weight on mean completion time (minimize). */
    double completion = 1.0;

    /** Weight on p99 TTFT (minimize). */
    double ttft_p99 = 0.0;

    /** Weight on combined throughput (maximize). */
    double throughput = 0.0;
};

/** Search-space controls. */
struct TuneOptions
{
    /** Strategies to consider. */
    std::vector<parallel::Strategy> strategies = {
        parallel::Strategy::kDp, parallel::Strategy::kTp,
        parallel::Strategy::kSp, parallel::Strategy::kShift};

    /** Also sweep shift thresholds at {1/4x, 1x, 4x} of the crossover. */
    bool sweep_threshold = false;

    /** Also sweep EP degrees for MoE models. */
    bool sweep_ep = false;
};

/** One evaluated candidate. */
struct TuneResult
{
    Deployment deployment;
    ResolvedDeployment resolved;

    /** Raw measurements on the sample workload. */
    double mean_completion = 0.0;
    double ttft_p99 = 0.0;
    double throughput = 0.0;

    /** Normalized objective (lower is better). */
    double score = 0.0;

    /** Candidate label ("Shift (SP=4,TP=2) thr=3749"). */
    std::string name;
};

/** Simulation-driven deployment search. */
class AutoTuner
{
  public:
    AutoTuner(model::ModelConfig model, hw::Node node);

    /**
     * Enumerate, simulate, score, and rank candidates on `sample`.
     *
     * @return candidates sorted best-first; never empty (fatal if nothing
     * fits the node).
     */
    std::vector<TuneResult>
    tune(const std::vector<engine::RequestSpec>& sample,
         const TuneObjective& objective = {},
         const TuneOptions& options = {}) const;

    /** The candidate deployments that would be evaluated (for tests). */
    std::vector<Deployment> candidates(const TuneOptions& options) const;

  private:
    model::ModelConfig model_;
    hw::Node node_;
};

} // namespace shiftpar::core
