/**
 * @file
 * Disaggregated prefill/decode serving baseline (Section 5 related work:
 * Splitwise / DistServe / Mooncake).
 *
 * The node's GPUs are split into a prefill pool and a decode pool, each a
 * TP group. Requests prefill on the prefill pool (producing the first
 * token), their KV cache is transferred over the node fabric, and
 * decoding continues on the decode pool. Compared with colocated
 * chunked-prefill serving (and Shift Parallelism), disaggregation removes
 * prefill/decode interference but dedicates resources to each phase and
 * pays a per-request KV-transfer delay — the tradeoff the paper's related
 * work section describes.
 *
 * The replay is an *online* pipeline on the discrete-event cluster core:
 * both pools advance on one timeline, each KV handoff is a fabric
 * transfer queuing FIFO on a shared `hw::LinkChannel` (overlapping
 * handoffs serialize), and admission to the prefill pool is gated by the
 * decode pool's committed-context budget — a saturated decode pool
 * back-pressures new prefills instead of letting finished-but-
 * untransferable KV pile up. Client cancellations can land at any stage,
 * including mid-transfer, where they release the link for the transfers
 * queued behind.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/deployment.h"
#include "util/logging.h"

namespace shiftpar::core {

/** Pool split and transfer model for a disaggregated deployment. */
struct DisaggregatedOptions
{
    /** GPUs dedicated to prefill (TP group). */
    int prefill_gpus = 4;

    /** GPUs dedicated to decode (TP group). */
    int decode_gpus = 4;

    /** Scheduler/perf knobs applied to both pools. */
    engine::SchedulerOptions sched;
    parallel::PerfOptions perf;
    parallel::MemoryOptions mem;

    /** Throughput timeline bin width for both pools and the combined
     *  metrics, seconds. */
    double throughput_bin = 1.0;

    /**
     * Admission budget: total context tokens (prompt + output) of
     * requests admitted to prefill and not yet finished (or cancelled).
     * An arrival that would exceed the budget waits — decode-pool
     * backpressure stalling prefill admission. 0 derives the budget from
     * the decode pool's KV token capacity.
     */
    std::int64_t max_inflight_decode_tokens = 0;

    /**
     * Observability sink (borrowed, may be null). When set, the prefill
     * and decode pools register as separate engines on the bus; KV
     * handoffs appear as instant events on the prefill pool's track.
     */
    obs::TraceSink* trace = nullptr;
};

/** Pipeline counters of one `DisaggregatedSystem::run_workload`. */
struct DisaggregatedStats
{
    /** KV handoffs delivered to the decode pool. */
    std::int64_t transfers = 0;

    /** Handoffs released mid-flight or while queued by a cancellation. */
    std::int64_t transfers_cancelled = 0;

    /** Arrivals delayed by the decode-pool admission budget. */
    std::int64_t stalled_admissions = 0;

    /** Total admission delay across stalled arrivals, seconds. */
    double stall_seconds = 0.0;

    /** Requests cancelled before completing. */
    std::int64_t cancelled = 0;

    /** Fabric occupancy of delivered handoffs, seconds. */
    double link_busy_seconds = 0.0;

    /** Injected link outages replayed. */
    std::int64_t link_failures = 0;

    /** Handoffs aborted by a link outage and re-sent after recovery. */
    std::int64_t transfers_resent = 0;
};

/** A prefill-pool + decode-pool deployment of one model on one node. */
class DisaggregatedSystem
{
  public:
    /** Fatal when the pools exceed the node or the model does not fit. */
    DisaggregatedSystem(model::ModelConfig model, hw::Node node,
                        DisaggregatedOptions opts = {});

    /**
     * Replay a workload end to end on one event timeline: arrivals gate
     * on the admission budget, prefill completions schedule fabric
     * transfers, transfer completions feed the decode pool, and scheduled
     * cancellations release whichever stage holds the request. Combined
     * per-request records carry true TTFT (prefill pool, inclusive of
     * admission stall), TPOT (decode pool), and completion; throughput
     * counts both pools' tokens. Cancelled requests produce no record.
     */
    engine::Metrics run_workload(
        const std::vector<engine::RequestSpec>& workload);

    /**
     * Schedule a client abort of request `id` (its position in the
     * arrival-sorted workload) at time `t`, delivered during the next
     * `run_workload`.
     */
    void schedule_cancel(double t, engine::RequestId id)
    {
        cancels_.emplace_back(t, id);
    }

    /**
     * Schedule a fabric outage over [at, recover_at) for the next
     * `run_workload` (fault injection). Handoffs on the wire when the
     * link dies are aborted through the same cancel path client aborts
     * use — transfers queued behind them shift accordingly — and are
     * re-sent whole once the link recovers (partially transferred KV is
     * useless without its tail). Prefills finishing during the outage
     * queue their handoff for the recovery instant.
     */
    void schedule_link_failure(double at, double recover_at)
    {
        SP_ASSERT(recover_at > at && at >= 0.0);
        link_failures_.emplace_back(at, recover_at);
    }

    /** @return pipeline counters of the last `run_workload`. */
    const DisaggregatedStats& stats() const { return stats_; }

    /** KV-transfer delay for a context of `tokens` tokens on an idle
     *  fabric, seconds (analytic; queueing adds on top during replay). */
    double transfer_delay(std::int64_t tokens) const;

    /** @return resolved prefill-pool configuration. */
    const parallel::ParallelConfig& prefill_config() const
    {
        return prefill_cfg_;
    }

    /** @return resolved decode-pool configuration. */
    const parallel::ParallelConfig& decode_config() const
    {
        return decode_cfg_;
    }

  private:
    model::ModelConfig model_;
    hw::Node node_;
    DisaggregatedOptions opts_;
    parallel::ParallelConfig prefill_cfg_;
    parallel::ParallelConfig decode_cfg_;
    std::vector<std::pair<double, engine::RequestId>> cancels_;
    std::vector<std::pair<double, double>> link_failures_;
    DisaggregatedStats stats_;
};

} // namespace shiftpar::core
