/**
 * @file
 * Disaggregated prefill/decode serving baseline (Section 5 related work:
 * Splitwise / DistServe / Mooncake).
 *
 * The node's GPUs are split into a prefill pool and a decode pool, each a
 * TP group. Requests prefill on the prefill pool (producing the first
 * token), their KV cache is transferred over the node fabric, and
 * decoding continues on the decode pool. Compared with colocated
 * chunked-prefill serving (and Shift Parallelism), disaggregation removes
 * prefill/decode interference but dedicates resources to each phase and
 * pays a per-request KV-transfer delay — the tradeoff the paper's related
 * work section describes.
 */

#pragma once

#include <vector>

#include "core/deployment.h"

namespace shiftpar::core {

/** Pool split and transfer model for a disaggregated deployment. */
struct DisaggregatedOptions
{
    /** GPUs dedicated to prefill (TP group). */
    int prefill_gpus = 4;

    /** GPUs dedicated to decode (TP group). */
    int decode_gpus = 4;

    /** Scheduler/perf knobs applied to both pools. */
    engine::SchedulerOptions sched;
    parallel::PerfOptions perf;
    parallel::MemoryOptions mem;

    /**
     * Observability sink (borrowed, may be null). When set, the prefill
     * and decode pools register as separate engines on the bus; KV
     * handoffs appear as instant events on the prefill pool's track.
     */
    obs::TraceSink* trace = nullptr;
};

/** A prefill-pool + decode-pool deployment of one model on one node. */
class DisaggregatedSystem
{
  public:
    /** Fatal when the pools exceed the node or the model does not fit. */
    DisaggregatedSystem(model::ModelConfig model, hw::Node node,
                        DisaggregatedOptions opts = {});

    /**
     * Replay a workload end to end: prefill pool -> KV transfer -> decode
     * pool. Combined per-request records carry true TTFT (prefill pool),
     * TPOT (decode pool), and completion; throughput counts both pools'
     * tokens over the combined makespan.
     */
    engine::Metrics run_workload(
        const std::vector<engine::RequestSpec>& workload);

    /** KV-transfer delay for a context of `tokens` tokens, seconds. */
    double transfer_delay(std::int64_t tokens) const;

    /** @return resolved prefill-pool configuration. */
    const parallel::ParallelConfig& prefill_config() const
    {
        return prefill_cfg_;
    }

    /** @return resolved decode-pool configuration. */
    const parallel::ParallelConfig& decode_config() const
    {
        return decode_cfg_;
    }

  private:
    model::ModelConfig model_;
    hw::Node node_;
    DisaggregatedOptions opts_;
    parallel::ParallelConfig prefill_cfg_;
    parallel::ParallelConfig decode_cfg_;
};

} // namespace shiftpar::core
