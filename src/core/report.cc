#include "core/report.h"

#include <sstream>

#include "util/ascii_plot.h"
#include "util/table.h"
#include "util/units.h"

namespace shiftpar::core {

std::string
format_report(const ResolvedDeployment& deployment,
              const engine::Metrics& metrics, const ReportOptions& opts)
{
    std::ostringstream os;
    os << "deployment: " << deployment.describe() << "\n";

    Table table({"metric", "p50", "p90", "p99", "mean"});
    const auto row = [&](const char* name, const util::Histogram& s,
                         double scale, int prec) {
        table.add_row({name, Table::fmt(s.percentile(50) * scale, prec),
                       Table::fmt(s.percentile(90) * scale, prec),
                       Table::fmt(s.percentile(99) * scale, prec),
                       Table::fmt(s.mean() * scale, prec)});
    };
    row("TTFT (ms)", metrics.ttft(), 1e3, 1);
    row("TPOT (ms)", metrics.tpot(), 1e3, 2);
    row("completion (s)", metrics.completion(), 1.0, 2);
    row("queue wait (s)", metrics.wait(), 1.0, 2);
    os << table.render();

    os << "throughput: "
       << Table::fmt_count(
              static_cast<long long>(metrics.mean_throughput()))
       << " tok/s mean, "
       << Table::fmt_count(
              static_cast<long long>(metrics.throughput().peak_rate()))
       << " tok/s peak over "
       << Table::fmt(metrics.end_time(), 1) << " s\n";
    os << "steps: "
       << Table::fmt_count(metrics.sp_steps() + metrics.tp_steps())
       << " total (" << Table::fmt_count(metrics.sp_steps())
       << " base/SP mode, " << Table::fmt_count(metrics.tp_steps())
       << " shift/TP mode)\n";

    if (opts.slo) {
        os << "SLO (TTFT<=" << Table::fmt(opts.slo->ttft, 2) << "s, TPOT<="
           << Table::fmt(to_ms(opts.slo->tpot), 0) << "ms): "
           << Table::fmt(100.0 * metrics.slo_attainment(*opts.slo), 1)
           << "% attainment, "
           << Table::fmt_count(
                  static_cast<long long>(metrics.goodput(*opts.slo)))
           << " tok/s goodput\n";
    }

    if (opts.timeline && metrics.throughput().num_bins() > 1) {
        PlotSeries series{"combined tok/s", {}};
        for (std::size_t b = 0; b < metrics.throughput().num_bins(); ++b)
            series.values.push_back(metrics.throughput().rate(b));
        LinePlotOptions plot;
        plot.width = opts.plot_width;
        plot.height = 10;
        plot.y_label = "throughput (tok/s)";
        plot.x_label = "time ->";
        os << "\n" << render_line_plot({series}, plot);
    }
    return os.str();
}

} // namespace shiftpar::core
