/**
 * @file
 * Out-of-the-box framework profiles for the production comparison
 * (Fig. 16).
 *
 * The paper compares its production stack (vLLM + ArcticInference plug-in:
 * Shift Parallelism + SwiftKV + suffix-style speculative decoding) against
 * vLLM, SGLang, and TRT-LLM "out of the box", each with its best available
 * speculative decoding, in both latency-optimized (TP) and
 * throughput-optimized (DP) configurations. At system-model granularity a
 * framework is a bundle of: engine overhead constants, the parallelism
 * strategies it offers, and the speculative-decoding quality it ships.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/deployment.h"

namespace shiftpar::core {

/** One serving framework's system-level profile. */
struct FrameworkProfile
{
    std::string name;

    /** Per-step engine overhead, seconds. */
    double step_overhead_base = 2.0e-3;

    /** Per-extra-rank coordination overhead, seconds. */
    double step_overhead_per_rank = 0.25e-3;

    /** Parallelism strategies the framework can deploy. */
    std::vector<parallel::Strategy> strategies;

    /** Best available speculative decoding (nullopt = none). */
    std::optional<SpeculativeDecoder> spec_decode;

    /** SwiftKV-style prefill reduction (nullopt = none). */
    std::optional<SwiftKv> swiftkv;
};

/** Our production stack: Shift Parallelism + SwiftKV + Arctic speculator. */
FrameworkProfile ours();

/** vLLM out of the box (TP / DP, ngram speculator). */
FrameworkProfile vllm_baseline();

/** SGLang out of the box. */
FrameworkProfile sglang();

/** TensorRT-LLM out of the box. */
FrameworkProfile trt_llm();

/**
 * Build a deployment of `model` under `profile` using `strategy` (must be
 * one the framework offers), enabling the profile's features.
 */
Deployment make_deployment(const FrameworkProfile& profile,
                           const model::ModelConfig& model,
                           const hw::Node& node,
                           parallel::Strategy strategy);

} // namespace shiftpar::core
