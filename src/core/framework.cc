#include "core/framework.h"

#include <algorithm>

#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::core {

FrameworkProfile
ours()
{
    FrameworkProfile p;
    p.name = "Ours (Shift+SwiftKV+Spec)";
    p.step_overhead_base = msec(2.0);
    p.step_overhead_per_rank = msec(0.25);
    p.strategies = {parallel::Strategy::kShift, parallel::Strategy::kSp,
                    parallel::Strategy::kTp, parallel::Strategy::kDp};
    // Arctic/suffix speculator: long drafts with high acceptance on
    // repetitive agentic traffic.
    p.spec_decode = SpeculativeDecoder{.draft_len = 5,
                                       .acceptance = 0.8,
                                       .draft_cost_frac = 0.02};
    p.swiftkv = SwiftKv{.skip_fraction = 0.5, .residual_fraction = 0.1};
    return p;
}

FrameworkProfile
vllm_baseline()
{
    FrameworkProfile p;
    p.name = "vLLM";
    p.step_overhead_base = msec(2.0);
    p.step_overhead_per_rank = msec(0.25);
    p.strategies = {parallel::Strategy::kTp, parallel::Strategy::kDp};
    // ngram speculator: short drafts, moderate acceptance.
    p.spec_decode = SpeculativeDecoder{.draft_len = 3,
                                       .acceptance = 0.55,
                                       .draft_cost_frac = 0.03};
    return p;
}

FrameworkProfile
sglang()
{
    FrameworkProfile p;
    p.name = "SGLang";
    p.step_overhead_base = msec(1.6);
    p.step_overhead_per_rank = msec(0.22);
    p.strategies = {parallel::Strategy::kTp, parallel::Strategy::kDp};
    p.spec_decode = SpeculativeDecoder{.draft_len = 4,
                                       .acceptance = 0.6,
                                       .draft_cost_frac = 0.05};
    return p;
}

FrameworkProfile
trt_llm()
{
    FrameworkProfile p;
    p.name = "TRT-LLM";
    p.step_overhead_base = msec(1.3);
    p.step_overhead_per_rank = msec(0.20);
    p.strategies = {parallel::Strategy::kTp, parallel::Strategy::kDp};
    p.spec_decode = SpeculativeDecoder{.draft_len = 4,
                                       .acceptance = 0.6,
                                       .draft_cost_frac = 0.05};
    return p;
}

Deployment
make_deployment(const FrameworkProfile& profile,
                const model::ModelConfig& model, const hw::Node& node,
                parallel::Strategy strategy)
{
    const bool offered =
        std::find(profile.strategies.begin(), profile.strategies.end(),
                  strategy) != profile.strategies.end();
    if (!offered) {
        fatal("framework '" + profile.name + "' does not offer strategy " +
              parallel::strategy_name(strategy));
    }
    Deployment d;
    d.model = model;
    d.node = node;
    d.strategy = strategy;
    d.perf.step_overhead_base = profile.step_overhead_base;
    d.perf.step_overhead_per_rank = profile.step_overhead_per_rank;
    d.swiftkv = profile.swiftkv;
    d.spec_decode = profile.spec_decode;
    return d;
}

} // namespace shiftpar::core
