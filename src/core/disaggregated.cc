#include "core/disaggregated.h"

#include <algorithm>

#include "util/logging.h"

namespace shiftpar::core {

DisaggregatedSystem::DisaggregatedSystem(model::ModelConfig model,
                                         hw::Node node,
                                         DisaggregatedOptions opts)
    : model_(std::move(model)), node_(std::move(node)), opts_(opts),
      prefill_cfg_{1, opts.prefill_gpus}, decode_cfg_{1, opts.decode_gpus}
{
    SP_ASSERT(opts_.prefill_gpus >= 1 && opts_.decode_gpus >= 1);
    if (opts_.prefill_gpus + opts_.decode_gpus > node_.num_gpus) {
        fatal("disaggregated pools exceed the node: " +
              std::to_string(opts_.prefill_gpus) + "+" +
              std::to_string(opts_.decode_gpus) + " > " +
              std::to_string(node_.num_gpus));
    }
    parallel::validate_config_or_die(model_, prefill_cfg_);
    parallel::validate_config_or_die(model_, decode_cfg_);
}

double
DisaggregatedSystem::transfer_delay(std::int64_t tokens) const
{
    // The full KV cache of the context moves from the prefill pool to the
    // decode pool over the node fabric (point-to-point, no reduction).
    const double bytes =
        static_cast<double>(tokens) * model_.kv_bytes_per_token();
    return bytes / (node_.link.bw * node_.link.efficiency) +
           node_.link.latency;
}

engine::Metrics
DisaggregatedSystem::run_workload(
    const std::vector<engine::RequestSpec>& workload)
{
    auto make_engine = [&](const parallel::ParallelConfig& cfg,
                           const char* pool) {
        engine::EngineConfig ecfg;
        ecfg.base = cfg;
        ecfg.sched = opts_.sched;
        ecfg.perf = opts_.perf;
        ecfg.mem = opts_.mem;
        if (opts_.trace) {
            obs::EngineMeta meta;
            meta.label = std::string(pool) + " pool " + cfg.to_string();
            meta.base = cfg;
            ecfg.trace = opts_.trace;
            ecfg.trace_id = opts_.trace->register_engine(meta);
        }
        return std::make_unique<engine::Engine>(
            node_, model_, ecfg,
            std::make_unique<engine::FixedPolicy>(cfg));
    };
    auto prefill_engine = make_engine(prefill_cfg_, "prefill");
    auto decode_engine = make_engine(decode_cfg_, "decode");

    // ---- Phase 1: prefill pool produces the first token -------------------
    std::vector<engine::RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        engine::RequestSpec prefill_spec = sorted[i];
        prefill_spec.output_tokens = 1;  // prefill emits the first token
        prefill_engine->run_until(prefill_spec.arrival);
        prefill_engine->submit(prefill_spec,
                               static_cast<engine::RequestId>(i));
    }
    prefill_engine->drain();

    // Index prefill results by request id.
    std::vector<engine::RequestRecord> prefill_recs(sorted.size());
    for (const auto& rec : prefill_engine->metrics().requests())
        prefill_recs[static_cast<std::size_t>(rec.id)] = rec;

    // ---- Phase 2: KV transfer + decode pool --------------------------------
    // The decode pool's arrivals are the prefill completions plus the
    // migration delay; the pools are independent resources so the decode
    // schedule is computed after the fact without loss of fidelity.
    struct Handoff
    {
        double ready;
        std::size_t index;
    };
    std::vector<Handoff> handoffs;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i].output_tokens <= 1)
            continue;  // single-token requests finish on the prefill pool
        const double done = prefill_recs[i].arrival +
                            prefill_recs[i].completion;
        handoffs.push_back(
            {done + transfer_delay(sorted[i].prompt_tokens + 1), i});
    }
    std::stable_sort(handoffs.begin(), handoffs.end(),
                     [](const Handoff& a, const Handoff& b) {
                         return a.ready < b.ready;
                     });
    for (const auto& h : handoffs) {
        engine::RequestSpec decode_spec = sorted[h.index];
        decode_spec.arrival = h.ready;
        decode_engine->run_until(h.ready);
        decode_engine->submit_prefilled(
            decode_spec, static_cast<engine::RequestId>(h.index));
        if (opts_.trace) {
            opts_.trace->on_instant(prefill_engine->trace_id(), h.ready,
                                    "kv_handoff #" + std::to_string(h.index));
        }
    }
    decode_engine->drain();

    std::vector<engine::RequestRecord> decode_recs(sorted.size());
    std::vector<bool> has_decode(sorted.size(), false);
    for (const auto& rec : decode_engine->metrics().requests()) {
        decode_recs[static_cast<std::size_t>(rec.id)] = rec;
        has_decode[static_cast<std::size_t>(rec.id)] = true;
    }

    // ---- Combine ------------------------------------------------------------
    engine::Metrics combined(1.0);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        engine::RequestRecord rec;
        rec.id = static_cast<engine::RequestId>(i);
        rec.arrival = sorted[i].arrival;
        rec.prompt_tokens = sorted[i].prompt_tokens;
        rec.output_tokens = sorted[i].output_tokens;
        rec.ttft = prefill_recs[i].ttft;
        rec.wait = prefill_recs[i].wait;
        rec.preemptions = prefill_recs[i].preemptions;
        if (has_decode[i]) {
            const double finish =
                decode_recs[i].arrival + decode_recs[i].completion;
            rec.completion = finish - sorted[i].arrival;
            const double first_token =
                sorted[i].arrival + prefill_recs[i].ttft;
            rec.tpot = (finish - first_token) /
                       static_cast<double>(sorted[i].output_tokens - 1);
            rec.preemptions += decode_recs[i].preemptions;
        } else {
            rec.completion = prefill_recs[i].completion;
            rec.tpot = 0.0;
        }
        combined.add_record(rec);
    }
    // Fold both pools' step telemetry for throughput/step accounting.
    for (const auto& s : prefill_engine->metrics().steps())
        combined.on_step(s);
    for (const auto& s : decode_engine->metrics().steps())
        combined.on_step(s);
    return combined;
}

} // namespace shiftpar::core
