#include "core/disaggregated.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>

#include "hw/interconnect.h"
#include "sim/cluster.h"
#include "util/logging.h"

namespace shiftpar::core {

DisaggregatedSystem::DisaggregatedSystem(model::ModelConfig model,
                                         hw::Node node,
                                         DisaggregatedOptions opts)
    : model_(std::move(model)), node_(std::move(node)), opts_(opts),
      prefill_cfg_{1, opts.prefill_gpus}, decode_cfg_{1, opts.decode_gpus}
{
    SP_ASSERT(opts_.prefill_gpus >= 1 && opts_.decode_gpus >= 1);
    if (opts_.prefill_gpus + opts_.decode_gpus > node_.num_gpus) {
        fatal("disaggregated pools exceed the node: " +
              std::to_string(opts_.prefill_gpus) + "+" +
              std::to_string(opts_.decode_gpus) + " > " +
              std::to_string(node_.num_gpus));
    }
    parallel::validate_config_or_die(model_, prefill_cfg_);
    parallel::validate_config_or_die(model_, decode_cfg_);
}

double
DisaggregatedSystem::transfer_delay(std::int64_t tokens) const
{
    // The full KV cache of the context moves from the prefill pool to the
    // decode pool over the node fabric (point-to-point, no reduction).
    const double bytes =
        static_cast<double>(tokens) * model_.kv_bytes_per_token();
    return bytes / (node_.link.bw * node_.link.efficiency) +
           node_.link.latency;
}

engine::Metrics
DisaggregatedSystem::run_workload(
    const std::vector<engine::RequestSpec>& workload)
{
    stats_ = {};
    auto make_engine = [&](const parallel::ParallelConfig& cfg,
                           const char* pool) {
        engine::EngineConfig ecfg;
        ecfg.base = cfg;
        ecfg.sched = opts_.sched;
        ecfg.perf = opts_.perf;
        ecfg.mem = opts_.mem;
        ecfg.throughput_bin = opts_.throughput_bin;
        if (opts_.trace) {
            obs::EngineMeta meta;
            meta.label = std::string(pool) + " pool " + cfg.to_string();
            meta.base = cfg;
            ecfg.trace = opts_.trace;
            ecfg.trace_id = opts_.trace->register_engine(meta);
        }
        return std::make_unique<engine::Engine>(
            node_, model_, ecfg,
            std::make_unique<engine::FixedPolicy>(cfg));
    };
    auto prefill = make_engine(prefill_cfg_, "prefill");
    auto decode = make_engine(decode_cfg_, "decode");

    std::vector<engine::RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    const std::size_t n = sorted.size();

    // Admission budget: an arrival only enters the prefill pool when the
    // decode pool has (future) room for its whole context, so KV never
    // finishes prefill with nowhere to go.
    const std::int64_t budget = opts_.max_inflight_decode_tokens > 0
                                    ? opts_.max_inflight_decode_tokens
                                    : decode->cache().token_capacity();

    enum class Stage
    {
        kPending,    // arrived, stalled by the admission budget
        kPrefill,    // in the prefill pool
        kTransfer,   // KV handoff on the fabric
        kDecode,     // in the decode pool
        kDone,
        kCancelled,
    };
    struct Tracked
    {
        Stage stage = Stage::kPending;
        double transfer_start = 0.0;
        double transfer_end = 0.0;  ///< scheduled handoff completion
        double admit_ready = 0.0;   ///< when backpressure began stalling it
        std::int64_t fabric_id = -1;  ///< current fabric reservation
    };
    std::vector<Tracked> track(n);

    hw::LinkChannel fabric(node_.link);
    // Fabric reservations get fresh ids (a handoff re-sent after a link
    // outage must not collide with its aborted reservation); the map
    // resolves a reservation back to its request.
    std::int64_t next_fabric_id = 0;
    std::unordered_map<std::int64_t, std::size_t> fabric_owner;
    double link_down_until = 0.0;
    sim::Cluster cluster;
    cluster.add(prefill.get());
    cluster.add(decode.get());

    std::int64_t committed = 0;
    std::vector<std::size_t> stalled;  // FIFO via head index
    std::size_t stalled_head = 0;

    auto context_tokens = [&](std::size_t i) {
        return sorted[i].prompt_tokens + sorted[i].output_tokens;
    };

    auto start_prefill = [&](std::size_t i, double t) {
        track[i].stage = Stage::kPrefill;
        committed += context_tokens(i);
        engine::RequestSpec ps = sorted[i];
        ps.output_tokens = 1;  // prefill emits the first token
        prefill->advance_clock_to(t);
        prefill->submit(ps, static_cast<engine::RequestId>(i));
    };

    // FIFO drain of stalled arrivals whenever budget frees. Head-of-line
    // blocking is deliberate: admitting around a stalled request would
    // starve large contexts under steady small-request load.
    auto drain_admissions = [&](double t) {
        while (stalled_head < stalled.size()) {
            const std::size_t i = stalled[stalled_head];
            if (track[i].stage == Stage::kCancelled) {
                ++stalled_head;
                continue;
            }
            if (committed + context_tokens(i) > budget)
                break;
            ++stalled_head;
            stats_.stall_seconds += t - track[i].admit_ready;
            start_prefill(i, t);
        }
    };

    // Completion events carry the window end they were scheduled against;
    // a fabric cancel can shift queued transfers earlier, in which case
    // the stale event is dropped in favor of the reposted one.
    std::function<void(std::size_t, double)> post_transfer_complete =
        [&](std::size_t i, double end) {
            cluster.post(end, [&, i, end] {
                if (track[i].stage != Stage::kTransfer ||
                    track[i].transfer_end != end)
                    return;
                track[i].stage = Stage::kDecode;
                ++stats_.transfers;
                stats_.link_busy_seconds += end - track[i].transfer_start;
                engine::RequestSpec ds = sorted[i];
                ds.arrival = end;
                decode->advance_clock_to(end);
                decode->submit_prefilled(ds,
                                         static_cast<engine::RequestId>(i));
                if (opts_.trace) {
                    opts_.trace->on_instant(prefill->trace_id(), end,
                                            "kv_handoff #" +
                                                std::to_string(i));
                }
            });
        };

    // Reserve the fabric for request `i`'s handoff no earlier than `t`
    // (pushed past any link outage in force) and arm its completion.
    auto start_transfer = [&](std::size_t i, double t) {
        const double bytes =
            static_cast<double>(sorted[i].prompt_tokens + 1) *
            model_.kv_bytes_per_token();
        const std::int64_t fid = next_fabric_id++;
        const auto win =
            fabric.reserve(fid, std::max(t, link_down_until), bytes);
        fabric_owner[fid] = i;
        track[i].fabric_id = fid;
        track[i].stage = Stage::kTransfer;
        track[i].transfer_start = win.start;
        track[i].transfer_end = win.end;
        post_transfer_complete(i, win.end);
    };

    prefill->set_on_finish([&](const engine::Request& r) {
        const auto i = static_cast<std::size_t>(r.id);
        const double t = prefill->now();
        if (sorted[i].output_tokens <= 1) {
            // Single-token requests finish on the prefill pool.
            track[i].stage = Stage::kDone;
            committed -= context_tokens(i);
            cluster.post(t, [&, t] { drain_admissions(t); });
            return true;
        }
        start_transfer(i, t);
        return true;
    });

    decode->set_on_finish([&](const engine::Request& r) {
        const auto i = static_cast<std::size_t>(r.id);
        const double t = decode->now();
        track[i].stage = Stage::kDone;
        committed -= context_tokens(i);
        cluster.post(t, [&, t] { drain_admissions(t); });
        return true;
    });

    for (std::size_t i = 0; i < n; ++i) {
        if (context_tokens(i) > budget) {
            fatal("request " + std::to_string(i) + "'s context (" +
                  std::to_string(context_tokens(i)) +
                  " tokens) exceeds the decode-pool admission budget (" +
                  std::to_string(budget) + ")");
        }
        cluster.post(sorted[i].arrival, [&, i] {
            const double t = sorted[i].arrival;
            if (track[i].stage == Stage::kCancelled)
                return;  // aborted before arriving
            if (stalled_head < stalled.size() ||
                committed + context_tokens(i) > budget) {
                track[i].admit_ready = t;
                stalled.push_back(i);
                ++stats_.stalled_admissions;
                return;
            }
            start_prefill(i, t);
        });
    }

    for (const auto& [when, id] : cancels_) {
        cluster.post(when, [&, when, id] {
            const auto i = static_cast<std::size_t>(id);
            if (i >= n || track[i].stage == Stage::kDone ||
                track[i].stage == Stage::kCancelled)
                return;
            const Stage was = track[i].stage;
            track[i].stage = Stage::kCancelled;
            ++stats_.cancelled;
            switch (was) {
              case Stage::kPending:
                // Nothing committed yet; drain skips the dead entry.
                break;
              case Stage::kPrefill:
                prefill->cancel(id);
                committed -= context_tokens(i);
                break;
              case Stage::kTransfer: {
                // Release the fabric reservation; transfers queued behind
                // shift earlier, so repost their completion events.
                ++stats_.transfers_cancelled;
                for (const std::int64_t shifted :
                     fabric.cancel(track[i].fabric_id, when)) {
                    const std::size_t j = fabric_owner.at(shifted);
                    const auto w = fabric.window(shifted);
                    track[j].transfer_start = w.start;
                    track[j].transfer_end = w.end;
                    post_transfer_complete(j, w.end);
                }
                committed -= context_tokens(i);
                break;
              }
              case Stage::kDecode:
                decode->cancel(id);
                committed -= context_tokens(i);
                break;
              default:
                break;
            }
            if (was != Stage::kPending)
                cluster.post(when, [&, when] { drain_admissions(when); });
        });
    }

    for (const auto& [at, recover_at] : link_failures_) {
        cluster.post(at, [&, at, recover_at] {
            ++stats_.link_failures;
            link_down_until = std::max(link_down_until, recover_at);
            if (opts_.trace) {
                obs::FaultEvent ev;
                ev.engine = prefill->trace_id();
                ev.kind = obs::FaultKind::kLinkDegrade;
                ev.t = at;
                opts_.trace->on_fault(ev);
            }
            // Every pending handoff — on the wire or queued — is aborted
            // through the cancel path (partial KV is useless without its
            // tail) and re-sent whole, FIFO by request index, once the
            // link recovers.
            for (std::size_t i = 0; i < n; ++i) {
                if (track[i].stage != Stage::kTransfer)
                    continue;
                fabric.cancel(track[i].fabric_id, at);
                // Invalidate the aborted handoff's pending completion
                // event (NaN compares unequal to every window end).
                track[i].transfer_end =
                    std::numeric_limits<double>::quiet_NaN();
                ++stats_.transfers_resent;
                cluster.post(recover_at, [&, i, recover_at] {
                    // A client abort during the outage wins; its cancel
                    // against the dead reservation was already a no-op.
                    if (track[i].stage != Stage::kTransfer)
                        return;
                    start_transfer(i, recover_at);
                });
            }
            cluster.post(recover_at, [&, recover_at] {
                if (opts_.trace) {
                    obs::FaultEvent ev;
                    ev.engine = prefill->trace_id();
                    ev.kind = obs::FaultKind::kLinkRestore;
                    ev.t = recover_at;
                    opts_.trace->on_fault(ev);
                }
            });
        });
    }

    cluster.run();
    if (prefill->has_work() || decode->has_work())
        fatal("disaggregated replay deadlocked: a pool still holds "
              "unfinished requests its KV cache cannot admit");
    for (std::size_t k = stalled_head; k < stalled.size(); ++k) {
        if (track[stalled[k]].stage == Stage::kPending)
            fatal("disaggregated replay deadlocked: request " +
                  std::to_string(stalled[k]) +
                  " never cleared the admission budget");
    }

    std::vector<engine::RequestRecord> prefill_recs(n);
    std::vector<bool> has_prefill(n, false);
    for (const auto& rec : prefill->metrics().requests()) {
        prefill_recs[static_cast<std::size_t>(rec.id)] = rec;
        has_prefill[static_cast<std::size_t>(rec.id)] = true;
    }
    std::vector<engine::RequestRecord> decode_recs(n);
    std::vector<bool> has_decode(n, false);
    for (const auto& rec : decode->metrics().requests()) {
        decode_recs[static_cast<std::size_t>(rec.id)] = rec;
        has_decode[static_cast<std::size_t>(rec.id)] = true;
    }

    engine::Metrics combined(opts_.throughput_bin);
    for (std::size_t i = 0; i < n; ++i) {
        if (track[i].stage != Stage::kDone || !has_prefill[i])
            continue;  // cancelled requests produce no record
        engine::RequestRecord rec;
        rec.id = static_cast<engine::RequestId>(i);
        rec.arrival = sorted[i].arrival;
        rec.prompt_tokens = sorted[i].prompt_tokens;
        rec.output_tokens = sorted[i].output_tokens;
        // Prefill arrivals keep the client timestamp, so its TTFT/wait
        // already include any admission stall.
        rec.ttft = prefill_recs[i].ttft;
        rec.wait = prefill_recs[i].wait;
        rec.preemptions = prefill_recs[i].preemptions;
        if (has_decode[i]) {
            const double finish =
                decode_recs[i].arrival + decode_recs[i].completion;
            rec.completion = finish - sorted[i].arrival;
            const double first_token =
                sorted[i].arrival + prefill_recs[i].ttft;
            rec.tpot = (finish - first_token) /
                       static_cast<double>(sorted[i].output_tokens - 1);
            rec.preemptions += decode_recs[i].preemptions;
        } else {
            rec.completion = prefill_recs[i].completion;
            rec.tpot = 0.0;
        }
        combined.add_record(rec);
    }
    // Fold both pools' step telemetry for throughput/step accounting.
    for (const auto& s : prefill->metrics().steps())
        combined.on_step(s);
    for (const auto& s : decode->metrics().steps())
        combined.on_step(s);
    return combined;
}

} // namespace shiftpar::core
