#include "core/autotuner.h"

#include <algorithm>
#include <sstream>

#include "core/shift_controller.h"
#include "util/logging.h"

namespace shiftpar::core {

AutoTuner::AutoTuner(model::ModelConfig model, hw::Node node)
    : model_(std::move(model)), node_(std::move(node))
{
    model_.validate();
}

std::vector<Deployment>
AutoTuner::candidates(const TuneOptions& options) const
{
    std::vector<Deployment> out;
    const auto add = [&](Deployment d) {
        // Keep only candidates that resolve and fit; resolve() is fatal on
        // misfit, so pre-check with the same memory math.
        const std::string err = parallel::validate_config(
            model_, {d.sp > 0 ? d.sp : 1, d.tp > 0 ? d.tp : 1, d.ep});
        (void)err;  // degree-validity is re-checked per concrete config
        out.push_back(std::move(d));
    };

    std::vector<int> ep_degrees = {1};
    if (options.sweep_ep && model_.is_moe()) {
        for (int ep = 2; ep <= node_.num_gpus; ep *= 2)
            if (model_.num_experts % ep == 0)
                ep_degrees.push_back(ep);
    }

    for (parallel::Strategy s : options.strategies) {
        for (int ep : ep_degrees) {
            Deployment base;
            base.model = model_;
            base.node = node_;
            base.strategy = s;
            base.ep = ep;
            if (s == parallel::Strategy::kSp ||
                s == parallel::Strategy::kShift) {
                // Sweep (SP, TP) decompositions of the whole node.
                for (int tp = 1; tp <= node_.num_gpus; tp *= 2) {
                    const int sp = node_.num_gpus / tp;
                    if (sp < 2)
                        continue;  // SP degenerates to TP
                    const parallel::ParallelConfig cfg{sp, tp, ep};
                    if (!parallel::validate_config(model_, cfg).empty())
                        continue;
                    const auto plan = parallel::plan_memory(
                        model_, node_.gpu, cfg,
                        s == parallel::Strategy::kShift, base.weights,
                        base.mem);
                    if (!plan.fits() ||
                        plan.kv_pool_bytes <
                            base.min_kv_fraction * node_.gpu.hbm_bytes)
                        continue;
                    Deployment d = base;
                    d.sp = sp;
                    d.tp = tp;
                    add(d);
                    if (s == parallel::Strategy::kShift &&
                        options.sweep_threshold) {
                        const parallel::PerfModel perf(node_, model_,
                                                       d.perf);
                        const std::int64_t th =
                            ShiftController::auto_threshold(perf, cfg);
                        for (std::int64_t scaled :
                             {th / 4, th * 4}) {
                            if (scaled < 1)
                                continue;
                            Deployment dt = d;
                            dt.shift_threshold = scaled;
                            add(dt);
                        }
                    }
                }
            } else {
                const parallel::ParallelConfig probe{
                    1, s == parallel::Strategy::kTp ? node_.num_gpus : 1,
                    ep};
                if (!parallel::validate_config(model_, probe).empty())
                    continue;
                const auto plan = parallel::plan_memory(
                    model_, node_.gpu, probe, false, base.weights,
                    base.mem);
                if (!plan.fits())
                    continue;
                add(base);
            }
        }
    }
    if (out.empty())
        fatal("no deployment of '" + model_.name + "' fits node '" +
              node_.gpu.name + "'");
    return out;
}

std::vector<TuneResult>
AutoTuner::tune(const std::vector<engine::RequestSpec>& sample,
                const TuneObjective& objective,
                const TuneOptions& options) const
{
    SP_ASSERT(!sample.empty(), "tuning needs a sample workload");
    std::vector<TuneResult> results;
    for (const Deployment& d : candidates(options)) {
        TuneResult r;
        r.deployment = d;
        r.resolved = resolve(d);
        const engine::Metrics met = run_deployment(d, sample);
        r.mean_completion = met.completion().mean();
        r.ttft_p99 = met.ttft().percentile(99);
        r.throughput = met.mean_throughput();
        std::ostringstream name;
        name << parallel::strategy_name(d.strategy) << " "
             << r.resolved.base.to_string();
        if (d.strategy == parallel::Strategy::kShift)
            name << " thr=" << r.resolved.shift_threshold;
        r.name = name.str();
        results.push_back(std::move(r));
    }

    // Normalize each term against the best candidate and combine.
    double best_completion = 1e300;
    double best_ttft = 1e300;
    double best_thr = 0.0;
    for (const auto& r : results) {
        best_completion = std::min(best_completion, r.mean_completion);
        best_ttft = std::min(best_ttft, r.ttft_p99);
        best_thr = std::max(best_thr, r.throughput);
    }
    for (auto& r : results) {
        r.score =
            objective.completion *
                (r.mean_completion / std::max(best_completion, 1e-12)) +
            objective.ttft_p99 *
                (r.ttft_p99 / std::max(best_ttft, 1e-12)) +
            objective.throughput *
                (best_thr / std::max(r.throughput, 1e-12));
    }
    std::stable_sort(results.begin(), results.end(),
                     [](const TuneResult& a, const TuneResult& b) {
                         return a.score < b.score;
                     });
    return results;
}

} // namespace shiftpar::core
