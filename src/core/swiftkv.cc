#include "core/swiftkv.h"

#include "util/logging.h"

namespace shiftpar::core {

double
SwiftKv::prefill_compute_factor() const
{
    SP_ASSERT(skip_fraction >= 0.0 && skip_fraction <= 1.0);
    SP_ASSERT(residual_fraction >= 0.0 && residual_fraction <= 1.0);
    return (1.0 - skip_fraction) + skip_fraction * residual_fraction;
}

void
SwiftKv::apply(parallel::PerfOptions* opts) const
{
    SP_ASSERT(opts != nullptr);
    opts->swiftkv_prefill_factor = prefill_compute_factor();
}

} // namespace shiftpar::core
