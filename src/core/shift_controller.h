/**
 * @file
 * The Shift Parallelism controller — the paper's primary contribution
 * (Section 3.3, Algorithm 2).
 *
 * Per engine step, the controller inspects the batched-token count and
 * selects:
 *   - the *base* configuration (SP, or a combined SP x TP) when the batch
 *     is large — maximizing throughput and prefill speed;
 *   - the *shift* configuration (SP=1, TP=P over the SP_TP rank order)
 *     when the batch is small — minimizing decode latency (TPOT).
 *
 * Because the two configurations are KV-cache invariant (Section 3.3.1),
 * the switch requires no data movement; the engine asserts this on every
 * shifted step.
 */

#pragma once

#include <cstdint>

#include "engine/engine.h"
#include "parallel/memory.h"
#include "parallel/perf_model.h"

namespace shiftpar::core {

/** Algorithm 2: threshold policy over the batched-token count. */
class ShiftController : public engine::ExecutionPolicy
{
  public:
    /**
     * @param base The base (SP, TP) configuration (SP > 1).
     * @param threshold Batch sizes strictly greater run the base config;
     *        smaller-or-equal run the shift config.
     * @param weights Weight-handling strategy; slicing marks shifted steps
     *        so the perf model charges the transpose penalty.
     */
    ShiftController(parallel::ParallelConfig base, std::int64_t threshold,
                    parallel::WeightStrategy weights =
                        parallel::WeightStrategy::kSeparateModels);

    Choice choose(std::int64_t batched_tokens) const override;

    /**
     * Publish shift/unshift transitions to the trace bus: every flip of
     * Algorithm 2's decision emits a `ModeSwitchEvent` stamped with the
     * engine clock and the batch size that triggered it.
     */
    void attach_trace(obs::TraceSink* sink, obs::EngineId id,
                      const double* clock) override;

    /** @return the decision threshold in batched tokens. */
    std::int64_t threshold() const { return threshold_; }

    /** @return the base configuration. */
    const parallel::ParallelConfig& base() const { return base_; }

    /**
     * Auto-tune the threshold: the smallest batched-token count at which a
     * base-config decode step is no slower than a shift-config step (the
     * crossover of the two step-time curves), found by bisection.
     *
     * @param cost The engine's step-cost model (any implementation).
     * @param base The base configuration.
     * @param context Representative per-sequence context length.
     * @param max_batch Search upper bound.
     */
    static std::int64_t auto_threshold(const model::CostModel& cost,
                                       const parallel::ParallelConfig& base,
                                       std::int64_t context = 2048,
                                       std::int64_t max_batch = 65536);

  private:
    parallel::ParallelConfig base_;
    std::int64_t threshold_;
    parallel::WeightStrategy weights_;

    /** Trace bus (borrowed, may be null) and mode-flip detection state. */
    obs::TraceSink* trace_ = nullptr;
    obs::EngineId trace_id_ = 0;
    const double* trace_clock_ = nullptr;
    mutable bool last_shift_ = false;
    mutable bool have_last_ = false;
};

} // namespace shiftpar::core
