#include "core/spec_decode.h"

#include <cmath>

#include "util/logging.h"

namespace shiftpar::core {

double
SpeculativeDecoder::expected_tokens_per_step() const
{
    SP_ASSERT(draft_len >= 1);
    SP_ASSERT(acceptance > 0.0 && acceptance < 1.0);
    return (1.0 - std::pow(acceptance, draft_len + 1)) / (1.0 - acceptance);
}

std::int64_t
SpeculativeDecoder::tokens_per_step() const
{
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::floor(expected_tokens_per_step())));
}

double
SpeculativeDecoder::decode_inflation() const
{
    const double emitted =
        static_cast<double>(tokens_per_step());
    // Verify pass runs draft_len+1 tokens through the target model and the
    // draft adds its own (small) cost per proposed token.
    return (static_cast<double>(draft_len) + 1.0) *
           (1.0 + draft_cost_frac) / emitted;
}

void
SpeculativeDecoder::apply(engine::SchedulerOptions* sched,
                          parallel::PerfOptions* perf) const
{
    SP_ASSERT(sched != nullptr && perf != nullptr);
    sched->decode_tokens_per_step = tokens_per_step();
    perf->decode_compute_inflation = decode_inflation();
}

} // namespace shiftpar::core
