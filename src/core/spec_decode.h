/**
 * @file
 * Speculative decoding model (Section 4.5; SuffixDecoding / Arctic
 * speculator style).
 *
 * A draft process proposes `draft_len` tokens; the target model verifies
 * them in one forward pass. With per-token acceptance probability `alpha`,
 * the expected number of tokens emitted per verify step is the standard
 *
 *     E = (1 - alpha^(draft_len+1)) / (1 - alpha)
 *
 * The engine consumes this as (a) `tokens_per_step` — how many output
 * tokens each decode step advances — and (b) a decode compute inflation of
 * (draft_len + 1) / E (verified-but-rejected tokens plus the draft's own
 * cost), installed into `PerfOptions`.
 */

#pragma once

#include <cstdint>

#include "engine/scheduler.h"
#include "parallel/perf_model.h"

namespace shiftpar::core {

/** Speculative decoding configuration. */
struct SpeculativeDecoder
{
    /** Draft proposal length per verify step. */
    int draft_len = 4;

    /** Per-token acceptance probability, in (0, 1). */
    double acceptance = 0.7;

    /** Draft-model cost as a fraction of target-model decode compute. */
    double draft_cost_frac = 0.05;

    /** @return expected emitted tokens per verify step, E >= 1. */
    double expected_tokens_per_step() const;

    /** @return E rounded down to an integer step advance (>= 1). */
    std::int64_t tokens_per_step() const;

    /** @return the decode compute inflation factor (>= 1). */
    double decode_inflation() const;

    /** Install into scheduler + perf-model options. */
    void apply(engine::SchedulerOptions* sched,
               parallel::PerfOptions* perf) const;
};

} // namespace shiftpar::core
