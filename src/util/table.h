/**
 * @file
 * Aligned ASCII table rendering for benchmark reports.
 *
 * Every bench binary prints its figure/table as an aligned text table so the
 * paper-vs-measured comparison is readable directly from stdout (and is
 * captured verbatim into bench_output.txt).
 */

#pragma once

#include <string>
#include <vector>

namespace shiftpar {

/** Builds and renders a column-aligned text table. */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a pre-formatted row (must match header arity). */
    void add_row(std::vector<std::string> row);

    /**
     * Format a double with `precision` fractional digits (fixed notation).
     */
    static std::string fmt(double v, int precision = 1);

    /** Format an integer with thousands separators (e.g. "75,535"). */
    static std::string fmt_count(long long v);

    /** @return the rendered table, trailing newline included. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace shiftpar
