#include "util/argparse.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace shiftpar {

namespace {

const char*
kind_name(int kind)
{
    switch (kind) {
      case 0: return "string";
      case 1: return "int";
      case 2: return "double";
      case 3: return "bool";
    }
    return "?";
}

} // namespace

ArgParser::ArgParser(std::string description)
    : description_(std::move(description))
{
}

void
ArgParser::add_string(const std::string& name, const std::string& def,
                      const std::string& help)
{
    SP_ASSERT(flags_.find(name) == flags_.end(), "duplicate flag ", name);
    flags_[name] = {Kind::kString, help, def};
    order_.push_back(name);
}

void
ArgParser::add_int(const std::string& name, std::int64_t def,
                   const std::string& help)
{
    SP_ASSERT(flags_.find(name) == flags_.end(), "duplicate flag ", name);
    flags_[name] = {Kind::kInt, help, std::to_string(def)};
    order_.push_back(name);
}

void
ArgParser::add_double(const std::string& name, double def,
                      const std::string& help)
{
    SP_ASSERT(flags_.find(name) == flags_.end(), "duplicate flag ", name);
    std::ostringstream os;
    os << def;
    flags_[name] = {Kind::kDouble, help, os.str()};
    order_.push_back(name);
}

void
ArgParser::add_bool(const std::string& name, bool def,
                    const std::string& help)
{
    SP_ASSERT(flags_.find(name) == flags_.end(), "duplicate flag ", name);
    flags_[name] = {Kind::kBool, help, def ? "true" : "false"};
    order_.push_back(name);
}

void
ArgParser::set_value(const std::string& name, const std::string& value)
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        fatal("unknown flag --" + name + "\n" + usage());
    // Validate typed values eagerly so errors point at the command line.
    // Overflow is an error, not a silent clamp: a fault spec or sweep
    // bound that saturates to LLONG_MAX/inf would run a very different
    // experiment from the one the user typed.
    if (it->second.kind == Kind::kInt) {
        errno = 0;
        char* end = nullptr;
        std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            fatal("flag --" + name + " expects an integer, got '" + value +
                  "'");
        if (errno == ERANGE)
            fatal("flag --" + name + " value is out of range: '" + value +
                  "'");
    } else if (it->second.kind == Kind::kDouble) {
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            fatal("flag --" + name + " expects a number, got '" + value +
                  "'");
        if (errno == ERANGE || std::isinf(v))
            fatal("flag --" + name + " value is out of range: '" + value +
                  "'");
    } else if (it->second.kind == Kind::kBool) {
        if (value != "true" && value != "false")
            fatal("flag --" + name + " expects true/false, got '" + value +
                  "'");
    }
    it->second.value = value;
}

bool
ArgParser::parse(int argc, char** argv)
{
    program_ = argc > 0 ? argv[0] : "program";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("positional arguments are not supported: '" + arg + "'");
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            set_value(arg.substr(0, eq), arg.substr(eq + 1));
            continue;
        }
        auto it = flags_.find(arg);
        if (it == flags_.end())
            fatal("unknown flag --" + arg + "\n" + usage());
        if (it->second.kind == Kind::kBool) {
            // Bare boolean flag; consume an optional true/false value.
            if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                                 std::string(argv[i + 1]) == "false")) {
                set_value(arg, argv[++i]);
            } else {
                set_value(arg, "true");
            }
            continue;
        }
        if (i + 1 >= argc)
            fatal("flag --" + arg + " needs a value");
        set_value(arg, argv[++i]);
    }
    return true;
}

const ArgParser::Flag&
ArgParser::lookup(const std::string& name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        fatal("flag --" + name + " was never declared");
    if (it->second.kind != kind) {
        fatal("flag --" + name + " is a " +
              kind_name(static_cast<int>(it->second.kind)) +
              ", accessed as " + kind_name(static_cast<int>(kind)));
    }
    return it->second;
}

const std::string&
ArgParser::get_string(const std::string& name) const
{
    return lookup(name, Kind::kString).value;
}

std::int64_t
ArgParser::get_int(const std::string& name) const
{
    return std::strtoll(lookup(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double
ArgParser::get_double(const std::string& name) const
{
    return std::strtod(lookup(name, Kind::kDouble).value.c_str(), nullptr);
}

bool
ArgParser::get_bool(const std::string& name) const
{
    return lookup(name, Kind::kBool).value == "true";
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << description_ << "\n\nflags:\n";
    for (const auto& name : order_) {
        const Flag& f = flags_.at(name);
        os << "  --" << name << " <" << kind_name(static_cast<int>(f.kind))
           << ">  " << f.help << " (default: " << f.value << ")\n";
    }
    return os.str();
}

} // namespace shiftpar
