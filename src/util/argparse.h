/**
 * @file
 * Minimal command-line flag parser for the example and bench binaries.
 *
 * Supports `--name value`, `--name=value`, and boolean `--flag` forms, with
 * typed accessors and an auto-generated `--help`. Unknown flags are fatal —
 * a typo'd experiment knob should never run silently with defaults.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shiftpar {

/** Declarative flag set bound to argc/argv. */
class ArgParser
{
  public:
    /**
     * @param description One-line program description for --help.
     */
    explicit ArgParser(std::string description);

    /** Declare a string flag with a default. */
    void add_string(const std::string& name, const std::string& def,
                    const std::string& help);

    /** Declare an integer flag with a default. */
    void add_int(const std::string& name, std::int64_t def,
                 const std::string& help);

    /** Declare a floating-point flag with a default. */
    void add_double(const std::string& name, double def,
                    const std::string& help);

    /** Declare a boolean flag (false unless present or `=true`). */
    void add_bool(const std::string& name, bool def,
                  const std::string& help);

    /**
     * Parse argv. On `--help` prints usage and returns false (caller should
     * exit 0); on malformed input calls fatal().
     */
    bool parse(int argc, char** argv);

    /** Typed accessors (fatal on unknown name or wrong type). */
    const std::string& get_string(const std::string& name) const;
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_bool(const std::string& name) const;

    /** @return usage text. */
    std::string usage() const;

  private:
    enum class Kind { kString, kInt, kDouble, kBool };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value;  // canonical textual value
    };

    const Flag& lookup(const std::string& name, Kind kind) const;
    void set_value(const std::string& name, const std::string& value);

    std::string description_;
    std::string program_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace shiftpar
