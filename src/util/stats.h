/**
 * @file
 * Statistical accumulators used for experiment reporting.
 *
 * Two tools cover the exact-sample figures in the paper:
 *  - `Summary`: exact sample store with mean/percentile queries (TTFT, TPOT,
 *    completion-time distributions — Fig. 11).
 *  - `TimeSeries`: time-binned accumulation for throughput/arrival timelines
 *    (Fig. 7, Fig. 9, Fig. 10).
 *
 * Bucketed distributions live in `util::Histogram` (util/histogram.h), the
 * log-bucketed quantile sketch — the single histogram implementation in the
 * tree. A fixed-width-bin `Histogram` used to live here too; it had no
 * production users and was folded away.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shiftpar {

/**
 * Exact-sample summary statistics.
 *
 * Stores every sample; suited to the per-request metric volumes this
 * simulator produces (at most a few hundred thousand samples per run).
 * Percentiles use linear interpolation between order statistics
 * (the same convention as numpy's default).
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double value);

    /** @return number of samples added. */
    std::size_t count() const { return values_.size(); }

    /** @return sum of samples (0 when empty). */
    double sum() const { return sum_; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const;

    /** @return smallest sample (0 when empty). */
    double min() const;

    /** @return largest sample (0 when empty). */
    double max() const;

    /** @return sample standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    /**
     * @param p Percentile in [0, 100].
     * @return the interpolated percentile (0 when empty).
     */
    double percentile(double p) const;

    /** @return the median (50th percentile). */
    double median() const { return percentile(50.0); }

    /** @return all samples in insertion order. */
    const std::vector<double>& values() const { return values_; }

    /** Remove all samples. */
    void clear();

  private:
    /** Sort the cached copy if new samples arrived since the last query. */
    void ensure_sorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = true;
    double sum_ = 0.0;
};

/**
 * Accumulates values into fixed-duration time bins starting at t = 0.
 *
 * Used for throughput timelines: `add(t, tokens)` accumulates tokens into
 * the bin containing `t`; `rate(i)` divides by the bin width to yield
 * tokens/second.
 */
class TimeSeries
{
  public:
    /** @param bin_seconds Width of each time bin in seconds (> 0). */
    explicit TimeSeries(double bin_seconds);

    /** Accumulate `value` into the bin containing time `t` (t >= 0). */
    void add(double t, double value);

    /** @return number of bins touched so far (highest bin index + 1). */
    std::size_t num_bins() const { return bins_.size(); }

    /** @return accumulated value in bin `i` (0 for untouched bins). */
    double bin_value(std::size_t i) const;

    /** @return accumulated value / bin width — a rate — for bin `i`. */
    double rate(std::size_t i) const;

    /** @return the start time of bin `i`. */
    double bin_start(std::size_t i) const;

    /** @return the maximum per-bin rate across all bins (0 when empty). */
    double peak_rate() const;

    /** @return the bin width in seconds. */
    double bin_seconds() const { return bin_seconds_; }

  private:
    double bin_seconds_;
    std::vector<double> bins_;
};

/** Render "p50=.. p90=.. p99=.." for quick textual reports. */
std::string format_percentiles(const Summary& s);

} // namespace shiftpar
