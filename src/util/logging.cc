#include "util/logging.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace shiftpar {

namespace {

/**
 * Initial level from the `SHIFTPAR_LOG_LEVEL` environment variable
 * (debug/info/warn/error/silent, case-insensitive, or the numeric level);
 * defaults to warn when unset or unparsable.
 */
LogLevel
level_from_env()
{
    const char* env = std::getenv("SHIFTPAR_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::kWarn;
    std::string v;
    for (const char* p = env; *p != '\0'; ++p)
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (v == "debug" || v == "0")
        return LogLevel::kDebug;
    if (v == "info" || v == "1")
        return LogLevel::kInfo;
    if (v == "warn" || v == "warning" || v == "2")
        return LogLevel::kWarn;
    if (v == "error" || v == "3")
        return LogLevel::kError;
    if (v == "silent" || v == "none" || v == "off" || v == "4")
        return LogLevel::kSilent;
    std::fprintf(stderr,
                 "[WARN] unrecognized SHIFTPAR_LOG_LEVEL '%s' "
                 "(want debug/info/warn/error/silent); using warn\n",
                 env);
    return LogLevel::kWarn;
}

LogLevel&
global_level()
{
    static LogLevel level = level_from_env();
    return level;
}

/** Parse the env var at start-up so a bad value warns even if nothing logs. */
[[maybe_unused]] const LogLevel g_startup_level = global_level();

/** Seconds of wall time since the process's first log line. */
double
monotonic_seconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

const char*
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO";
      case LogLevel::kWarn:  return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kSilent: return "SILENT";
    }
    return "?";
}

void
emit(const char* level, const std::string& msg)
{
    std::fprintf(stderr, "[%10.6f] [%s] %s\n", monotonic_seconds(), level,
                 msg.c_str());
}

} // namespace

void
set_log_level(LogLevel level)
{
    global_level() = level;
}

LogLevel
log_level()
{
    return global_level();
}

void
log_message(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(global_level()))
        return;
    emit(level_name(level), msg);
}

void
fatal(const std::string& msg)
{
    emit("FATAL", msg);
    std::exit(1);
}

void
panic(const std::string& msg)
{
    emit("PANIC", msg);
    std::abort();
}

} // namespace shiftpar
