/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every source of randomness in the simulator flows through an explicitly
 * seeded `Rng` so that all experiments are reproducible bit-for-bit. The
 * generator is xoshiro256** seeded via SplitMix64 — fast, high quality, and
 * stable across platforms (unlike `std::mt19937` distributions, whose
 * results are implementation-defined; all distribution transforms here are
 * hand-rolled for that reason).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace shiftpar {

/**
 * Deterministic random number generator with common distributions.
 *
 * Copyable; copies continue the same stream independently. Use `split()` to
 * derive decorrelated child streams (e.g. one per workload component).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next_u64();

    /** @return a double uniform in [0, 1). */
    double uniform();

    /** @return a double uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniform in [lo, hi] inclusive. */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** @return an exponential variate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** @return a standard normal variate (Box-Muller, stateless per call). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /**
     * @return a lognormal variate whose underlying normal has the given
     * mu/sigma (so median = exp(mu)).
     */
    double lognormal(double mu, double sigma);

    /** @return a Pareto variate with scale `xm` and shape `alpha`. */
    double pareto(double xm, double alpha);

    /** @return true with probability `p`. */
    bool bernoulli(double p);

    /**
     * Sample an index from a categorical distribution.
     *
     * @param weights Non-negative weights; need not be normalized.
     * @return index in [0, weights.size()).
     */
    std::size_t categorical(const std::vector<double>& weights);

    /** Derive a decorrelated child generator. */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace shiftpar
