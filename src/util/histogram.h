/**
 * @file
 * Streaming log-bucketed histogram with bounded relative quantile error.
 *
 * HDR/DDSketch-style accumulator: samples land in geometrically spaced
 * buckets whose width is a fixed relative fraction of their value, so any
 * quantile query is answered within `relative_error` of the exact order
 * statistic while memory stays O(log(max/min)) regardless of sample count.
 * Replaces the store-every-sample `Summary` on the engine metrics hot path
 * (TTFT / TPOT / completion / wait distributions), where million-request
 * runs made per-sample storage the dominant metrics cost.
 *
 * Moments (count/sum/mean/min/max/stddev) are tracked exactly; only
 * interior percentiles are approximate. The default 0.5% relative error is
 * well inside the <= 1% the run reports promise.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace shiftpar::util {

/** Log-bucketed quantile sketch over non-negative samples. */
class Histogram
{
  public:
    /**
     * @param relative_error Maximum relative quantile error, in (0, 0.5).
     *        Bucket boundaries grow by gamma = (1+e)/(1-e) per bucket and
     *        queries return the geometric midpoint, so any returned
     *        quantile q satisfies |q - exact| <= relative_error * exact.
     */
    explicit Histogram(double relative_error = 0.005);

    /** Add one sample. Negative samples clamp to 0 (latencies only). */
    void add(double value);

    /** Fold another histogram into this one (must share the error bound). */
    void merge(const Histogram& other);

    /** @return number of samples added. */
    std::size_t count() const { return count_; }

    /** @return exact sum of samples (0 when empty). */
    double sum() const { return sum_; }

    /** @return exact arithmetic mean (0 when empty). */
    double mean() const;

    /** @return exact smallest sample (0 when empty). */
    double min() const;

    /** @return exact largest sample (0 when empty). */
    double max() const;

    /** @return exact sample standard deviation (0 below 2 samples). */
    double stddev() const;

    /**
     * @param p Percentile in [0, 100].
     * @return a value within `relative_error` of the exact percentile
     *         (0 when empty). p=0 and p=100 return the exact min/max.
     */
    double percentile(double p) const;

    /** @return the median (50th percentile). */
    double median() const { return percentile(50.0); }

    /** @return the configured relative error bound. */
    double relative_error() const { return relative_error_; }

    /** @return number of occupied buckets (zero bucket included). */
    std::size_t num_buckets() const
    {
        return buckets_.size() + (zero_count_ > 0 ? 1u : 0u);
    }

    /** Remove all samples. */
    void clear();

  private:
    /** Bucket index for a strictly positive value. */
    int bucket_index(double value) const;

    /** Geometric midpoint of bucket `index` (its representative value). */
    double bucket_value(int index) const;

    double relative_error_;
    double gamma_;      ///< bucket growth factor (1+e)/(1-e)
    double log_gamma_;  ///< cached ln(gamma)

    /** Values below this are counted as zero (1 ns at latency scale). */
    static constexpr double kMinTrackable = 1e-9;

    std::map<int, std::uint64_t> buckets_;
    std::uint64_t zero_count_ = 0;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace shiftpar::util
