#include "util/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace shiftpar::util {
namespace {

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() + "'");
        ++pos_;
    }

    bool
    consume_literal(const char* lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skip_ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return JsonValue{string()};
          case 't':
            if (consume_literal("true"))
                return JsonValue{true};
            fail("bad literal");
          case 'f':
            if (consume_literal("false"))
                return JsonValue{false};
            fail("bad literal");
          case 'n':
            if (consume_literal("null"))
                return JsonValue{nullptr};
            fail("bad literal");
          default: return JsonValue{number()};
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonObject out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue{out};
        }
        while (true) {
            skip_ws();
            std::string k = string();
            skip_ws();
            expect(':');
            out[k] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue{out};
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonArray out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue{out};
        }
        while (true) {
            out.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue{out};
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("dangling escape");
            const char esc = s_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                for (int i = 0; i < 4; ++i) {
                    if (!std::isxdigit(
                            static_cast<unsigned char>(s_[pos_ + i])))
                        fail("bad \\u escape");
                }
                // Decoded codepoint is irrelevant to every consumer in this
                // tree (no emitter writes non-ASCII); keep the escape
                // verbatim so content assertions can match it.
                out += "\\u" + s_.substr(pos_, 4);
                pos_ += 4;
                break;
              }
              default: fail("bad escape character");
            }
        }
    }

    double
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("bad number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("bad fraction");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("bad exponent");
        }
        return std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parse_json(const std::string& text)
{
    return JsonParser(text).parse();
}

} // namespace shiftpar::util
