#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace shiftpar::util {

Histogram::Histogram(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_))
{
    SP_ASSERT(relative_error > 0.0 && relative_error < 0.5,
              "relative error must be in (0, 0.5)");
}

int
Histogram::bucket_index(double value) const
{
    // Bucket i covers (gamma^(i-1), gamma^i]; ceil keeps the upper edge.
    return static_cast<int>(std::ceil(std::log(value) / log_gamma_ - 1e-12));
}

double
Histogram::bucket_value(int index) const
{
    // Geometric midpoint of (gamma^(i-1), gamma^i]: 2*gamma^i/(gamma+1),
    // which is within relative_error of every value in the bucket.
    return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void
Histogram::add(double value)
{
    if (!(value > 0.0))
        value = 0.0;  // clamp negatives/NaN: these are latency samples
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    sum_sq_ += value * value;
    if (value < kMinTrackable) {
        ++zero_count_;
        return;
    }
    ++buckets_[bucket_index(value)];
}

void
Histogram::merge(const Histogram& other)
{
    SP_ASSERT(relative_error_ == other.relative_error_,
              "merging histograms with different error bounds");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    zero_count_ += other.zero_count_;
    for (const auto& [index, n] : other.buckets_)
        buckets_[index] += n;
}

double
Histogram::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::min() const
{
    return count_ > 0 ? min_ : 0.0;
}

double
Histogram::max() const
{
    return count_ > 0 ? max_ : 0.0;
}

double
Histogram::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Histogram::percentile(double p) const
{
    SP_ASSERT(p >= 0.0 && p <= 100.0);
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    // Rank of the target order statistic, 1-based ceil like HdrHistogram.
    const double target =
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t seen = zero_count_;
    if (static_cast<double>(seen) >= target)
        return 0.0;
    for (const auto& [index, n] : buckets_) {
        seen += n;
        if (static_cast<double>(seen) >= target) {
            // Clamp into the exact observed range so endpoint buckets do
            // not report values outside [min, max].
            return std::clamp(bucket_value(index), min_, max_);
        }
    }
    return max_;  // unreachable when counts are consistent
}

void
Histogram::clear()
{
    buckets_.clear();
    zero_count_ = 0;
    count_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

} // namespace shiftpar::util
